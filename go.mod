module haste

go 1.22
