// Package haste is a Go implementation of charging task scheduling for
// directional wireless charger networks — the HASTE problem of Dai et al.
// (ICPP 2018 / IEEE TMC 2021): given rotatable directional wireless
// chargers on a 2D field and a stream of charging tasks
// ⟨position, device orientation, release time, end time, required energy⟩,
// schedule every charger's orientation per time slot to maximize the total
// weighted charging utility U(x) = min(x/E_j, 1) of harvested energy.
//
// The package is a facade over the implementation packages:
//
//   - NewProblem precomputes dominant task sets (Algorithm 1) and the
//     power matrix for an Instance.
//   - ScheduleOffline is the centralized offline algorithm (Algorithm 2,
//     TabularGreedy) with approximation ratio (1−ρ)(1−1/e).
//   - RunOnline is the distributed online algorithm (Algorithm 3) with
//     competitive ratio ½(1−ρ)(1−1/e), driven over a simulated message
//     network with full communication accounting.
//   - Simulate executes any schedule physically, applying the switching
//     delay ρ.
//   - GreedyUtility and GreedyCover are the paper's comparison baselines.
//
// A minimal end-to-end use:
//
//	in := haste.DefaultWorkload().Generate(rand.New(rand.NewSource(1)))
//	p, err := haste.NewProblem(in)
//	if err != nil { ... }
//	res := haste.ScheduleOffline(p, haste.DefaultOptions(4))
//	out := haste.Simulate(p, res.Schedule)
//	fmt.Println("charging utility:", out.Utility)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper's evaluation.
package haste

import (
	"io"

	"haste/internal/baseline"
	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/instio"
	"haste/internal/model"
	"haste/internal/online"
	"haste/internal/sim"
	"haste/internal/workload"
)

// Geometry and problem-model types.
type (
	// Point is a 2D location in meters.
	Point = geom.Point
	// Charger is a static directional wireless charger.
	Charger = model.Charger
	// Task is a charging task five-tuple.
	Task = model.Task
	// Params holds the physical and scheduling constants (α, β, D, A_s,
	// A_o, T_s, ρ, τ).
	Params = model.Params
	// Instance is a complete HASTE problem description.
	Instance = model.Instance
	// Utility is a charging-utility function; the paper's default is
	// LinearBounded.
	Utility = model.Utility
	// LinearBounded is U(x) = min(x/E_j, 1) (Eq. 1 of the paper).
	LinearBounded = model.LinearBounded
)

// Scheduling types.
type (
	// Problem is an Instance with dominant task sets and power matrix
	// precomputed.
	Problem = core.Problem
	// Schedule assigns one dominant-set policy per charger per slot.
	Schedule = core.Schedule
	// Options configures the offline scheduler (colors, samples,
	// tie-breaking).
	Options = core.Options
	// Result is an offline scheduling result.
	Result = core.Result
	// Outcome is the physically simulated result of executing a schedule.
	Outcome = sim.Outcome
	// OnlineOptions configures the distributed online scheduler.
	OnlineOptions = online.Options
	// OnlineResult is a distributed online run: executed orientations,
	// physical outcome and communication statistics.
	OnlineResult = online.Result
	// WorkloadConfig generates random problem instances.
	WorkloadConfig = workload.Config
)

// Deg converts degrees to radians (all API angles are radians).
func Deg(d float64) float64 { return geom.Deg(d) }

// NewProblem validates the instance and precomputes everything the
// schedulers need (Algorithm 1 dominant-set extraction included).
func NewProblem(in *Instance) (*Problem, error) { return core.NewProblem(in) }

// DefaultOptions returns offline scheduler options for a color count C
// (C = 1 is the exact locally greedy scheduler; larger C approaches the
// 1−1/e ratio at higher cost).
func DefaultOptions(colors int) Options { return core.DefaultOptions(colors) }

// ScheduleOffline runs the centralized offline algorithm (Algorithm 2).
func ScheduleOffline(p *Problem, opt Options) Result { return core.TabularGreedy(p, opt) }

// Evaluate computes the relaxed HASTE-R objective of a schedule (no
// switching delay) — the quantity the approximation guarantee bounds.
func Evaluate(p *Problem, s Schedule) float64 { return core.Evaluate(p, s) }

// Simulate executes a schedule on the physical model, charging covered
// active tasks and applying the switching delay ρ.
func Simulate(p *Problem, s Schedule) Outcome { return sim.Execute(p, s) }

// RunOnline simulates the online scenario end to end: tasks arrive at
// their release slots and the chargers renegotiate their orientations
// through Algorithm 3's message protocol. On the default in-memory
// substrate the error is always nil; a non-nil error reports a failure of
// the real-socket substrate selected via OnlineOptions.Driver.
func RunOnline(p *Problem, opt OnlineOptions) (OnlineResult, error) { return online.Run(p, opt) }

// GreedyUtility is the comparison baseline where each charger maximizes
// its own delivered utility without coordination.
func GreedyUtility(p *Problem) Schedule { return baseline.GreedyUtility(p) }

// GreedyCover is the comparison baseline where each charger covers as many
// active tasks as possible.
func GreedyCover(p *Problem) Schedule { return baseline.GreedyCover(p) }

// SaveInstance writes an instance to w as versioned, human-editable JSON
// (angles in degrees). See LoadInstance for the inverse.
func SaveInstance(w io.Writer, in *Instance, comment string) error {
	return instio.Save(w, in, comment)
}

// LoadInstance reads and validates an instance saved by SaveInstance or
// written by hand (schema: internal/instio).
func LoadInstance(r io.Reader) (*Instance, error) { return instio.Load(r) }

// DefaultWorkload returns the paper's §7.1 simulation setup (50 m × 50 m,
// 50 chargers, 200 tasks).
func DefaultWorkload() WorkloadConfig { return workload.Default() }

// SmallScaleWorkload returns the §7.3.1 setup used for optimality
// comparisons (5 chargers, 10 tasks, 10 m × 10 m).
func SmallScaleWorkload() WorkloadConfig { return workload.SmallScale() }
