package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders the /metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Both representations are produced
// from the same MetricsSnapshot, so a scrape and a JSON read taken from
// one snapshot reconcile exactly: every Prometheus sample is a field of
// the JSON document under a fixed name mapping, and the latency histogram
// is the same per-bucket counts re-expressed cumulatively with the bucket
// bounds converted from milliseconds to seconds.
//
// Content negotiation: GET /metrics?format=prometheus, or an Accept
// header naming text/plain (what a Prometheus scraper sends), selects
// this format; everything else gets the JSON snapshot unchanged.

// prometheusContentType is the exposition-format content type scrapers
// expect.
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPrometheus reports whether the request asked for the Prometheus
// text format — explicitly via ?format=prometheus (or format=json for the
// default), or through the Accept header.
func wantsPrometheus(r *http.Request) bool {
	if f := r.URL.Query().Get("format"); f != "" {
		return f == "prometheus"
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// promNum formats a sample value the way Prometheus clients do: shortest
// round-trip representation, so the reconciliation test can parse samples
// back and compare them exactly against the JSON snapshot.
func promNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promWriter accumulates exposition lines; the tiny wrapper keeps the
// metric families tidy (one HELP/TYPE header per family).
type promWriter struct {
	w io.Writer
}

func (p promWriter) family(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(p.w, "%s%s %s\n", name, labels, promNum(v))
}

// writePrometheus renders the snapshot in the exposition format. Families
// appear in a fixed order and labeled samples are sorted by label value,
// so the output is deterministic for a given snapshot.
func writePrometheus(w io.Writer, m MetricsSnapshot) {
	p := promWriter{w: w}

	p.family("haste_uptime_seconds", "Seconds since the server started.", "gauge")
	p.sample("haste_uptime_seconds", "", m.UptimeSeconds)

	p.family("haste_requests_total", "HTTP requests handled, all routes.", "counter")
	p.sample("haste_requests_total", "", float64(m.Requests))

	p.family("haste_requests_by_status_total", "HTTP requests by response status code.", "counter")
	codes := make([]string, 0, len(m.ByStatus))
	for code := range m.ByStatus {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		p.sample("haste_requests_by_status_total", `code="`+code+`"`, float64(m.ByStatus[code]))
	}

	p.family("haste_scheduled_total", "Requests that ran the scheduler.", "counter")
	p.sample("haste_scheduled_total", "", float64(m.Scheduled))

	p.family("haste_sharded_runs_total", "Completed runs that took the shard-and-stitch path.", "counter")
	p.sample("haste_sharded_runs_total", "", float64(m.ShardedRuns))

	p.family("haste_shard_components_total", "Components scheduled across sharded runs.", "counter")
	p.sample("haste_shard_components_total", "", float64(m.ShardComps))

	p.family("haste_in_flight", "Schedule requests holding a worker slot.", "gauge")
	p.sample("haste_in_flight", "", float64(m.InFlight))

	p.family("haste_queued", "Schedule requests waiting for a slot.", "gauge")
	p.sample("haste_queued", "", float64(m.Queued))

	p.family("haste_draining", "1 once BeginDrain was called, else 0.", "gauge")
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	p.sample("haste_draining", "", draining)

	p.family("haste_cache_hits_total", "Compiled-problem cache hits.", "counter")
	p.sample("haste_cache_hits_total", "", float64(m.Cache.Hits))
	p.family("haste_cache_misses_total", "Compiled-problem cache misses.", "counter")
	p.sample("haste_cache_misses_total", "", float64(m.Cache.Misses))
	p.family("haste_cache_compile_errors_total", "Instance compilations that failed.", "counter")
	p.sample("haste_cache_compile_errors_total", "", float64(m.Cache.CompileErrors))
	p.family("haste_cache_evictions_total", "Compiled problems evicted from the cache.", "counter")
	p.sample("haste_cache_evictions_total", "", float64(m.Cache.Evictions))
	p.family("haste_cache_byte_memo_hits_total", "Requests whose body bytes skipped JSON decoding.", "counter")
	p.sample("haste_cache_byte_memo_hits_total", "", float64(m.Cache.MemoHits))
	p.family("haste_cache_entries", "Compiled problems resident in the cache.", "gauge")
	p.sample("haste_cache_entries", "", float64(m.Cache.Entries))

	p.family("haste_kernel_calls_total", "Kernel marginal evaluations (when requested).", "counter")
	p.sample("haste_kernel_calls_total", "", float64(m.Kernel.Calls))
	p.family("haste_kernel_visited_total", "Kernel entries visited.", "counter")
	p.sample("haste_kernel_visited_total", "", float64(m.Kernel.Visited))
	p.family("haste_kernel_offered_total", "Kernel entries offered.", "counter")
	p.sample("haste_kernel_offered_total", "", float64(m.Kernel.Offered))
	p.family("haste_kernel_pruned_total", "Kernel entries pruned.", "counter")
	p.sample("haste_kernel_pruned_total", "", float64(m.Kernel.Pruned))

	p.family("haste_sessions_open", "Incremental sessions currently open.", "gauge")
	p.sample("haste_sessions_open", "", float64(m.Sessions.Open))
	p.family("haste_sessions_created_total", "Sessions opened over the process lifetime.", "counter")
	p.sample("haste_sessions_created_total", "", float64(m.Sessions.Created))
	p.family("haste_sessions_closed_total", "Sessions deleted.", "counter")
	p.sample("haste_sessions_closed_total", "", float64(m.Sessions.Closed))
	p.family("haste_session_mutations_total", "Session mutations applied.", "counter")
	p.sample("haste_session_mutations_total", "", float64(m.Sessions.Mutations))
	p.family("haste_session_solves_total", "Successful session solves.", "counter")
	p.sample("haste_session_solves_total", "", float64(m.Sessions.Solves))
	p.family("haste_session_warm_reused_components_total", "Components adopted from warm starts.", "counter")
	p.sample("haste_session_warm_reused_components_total", "", float64(m.Sessions.WarmReused))

	// The request-latency histogram: the JSON snapshot's per-bucket counts
	// re-expressed as Prometheus cumulative buckets, bounds in seconds.
	p.family("haste_request_duration_seconds", "Scheduling-request latency.", "histogram")
	var cum int64
	for i, ub := range m.Latency.BucketsMS {
		cum += m.Latency.Counts[i]
		p.sample("haste_request_duration_seconds_bucket", `le="`+promNum(ub/1e3)+`"`, float64(cum))
	}
	cum += m.Latency.Counts[len(m.Latency.BucketsMS)]
	p.sample("haste_request_duration_seconds_bucket", `le="+Inf"`, float64(cum))
	p.sample("haste_request_duration_seconds_sum", "", m.Latency.SumMS/1e3)
	p.sample("haste_request_duration_seconds_count", "", float64(m.Latency.Count))
}
