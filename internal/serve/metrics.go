package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"haste/internal/core"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// request-latency histogram; the implicit last bucket is +Inf.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// metrics aggregates the service's observability counters. Everything is
// either atomic or guarded by mu, so the handler path records with no
// contention beyond one mutex for the (rare) kernel-stats merge.
type metrics struct {
	start time.Time

	requests  atomic.Int64 // every HTTP request, all routes
	scheduled atomic.Int64 // schedule requests that ran the scheduler
	inFlight  atomic.Int64 // schedule requests holding a worker slot
	queued    atomic.Int64 // schedule requests waiting for a slot

	shardedRuns     atomic.Int64 // completed runs that took the shard-and-stitch path
	shardComponents atomic.Int64 // components scheduled across those runs (Σ Result.Shards)

	sessionsCreated   atomic.Int64 // sessions opened over the process lifetime
	sessionsClosed    atomic.Int64 // sessions deleted
	sessionMutations  atomic.Int64 // add/remove/complete mutations applied
	sessionSolves     atomic.Int64 // successful session solves (create + PATCH)
	sessionWarmReused atomic.Int64 // components adopted from warm starts (Σ Result.WarmReused)

	mu       sync.Mutex
	byStatus map[int]int64
	kernel   core.KernelStats

	latCounts []atomic.Int64 // one per bucket + overflow
	latCount  atomic.Int64
	latSumUS  atomic.Int64 // microseconds, so the sum can stay integral
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		byStatus:  make(map[int]int64),
		latCounts: make([]atomic.Int64, len(latencyBucketsMS)+1),
	}
}

func (m *metrics) recordStatus(code int) {
	m.requests.Add(1)
	m.mu.Lock()
	m.byStatus[code]++
	m.mu.Unlock()
}

func (m *metrics) recordLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	idx := sort.SearchFloat64s(latencyBucketsMS, ms)
	m.latCounts[idx].Add(1)
	m.latCount.Add(1)
	m.latSumUS.Add(d.Microseconds())
}

// recordShards counts a completed scheduling run's sharding: shards is
// core.Result.Shards, 0 for monolithic runs (which leave both counters
// untouched). shard_components_total therefore always reconciles with the
// sum of the shards fields of all successful schedule responses.
func (m *metrics) recordShards(shards int) {
	if shards <= 0 {
		return
	}
	m.shardedRuns.Add(1)
	m.shardComponents.Add(int64(shards))
}

func (m *metrics) recordKernel(ks core.KernelStats) {
	if ks == (core.KernelStats{}) {
		return
	}
	m.mu.Lock()
	m.kernel.Calls += ks.Calls
	m.kernel.Visited += ks.Visited
	m.kernel.Offered += ks.Offered
	m.kernel.Pruned += ks.Pruned
	m.mu.Unlock()
}

// LatencySnapshot is the histogram as served on /metrics: cumulative-free
// per-bucket counts with their upper bounds in milliseconds (the last
// count is the +Inf overflow bucket).
type LatencySnapshot struct {
	BucketsMS []float64 `json:"buckets_ms"`
	Counts    []int64   `json:"counts"`
	Count     int64     `json:"count"`
	SumMS     float64   `json:"sum_ms"`
}

// SessionMetrics is the incremental-session section of the snapshot.
type SessionMetrics struct {
	Open       int64 `json:"open"`
	Created    int64 `json:"created_total"`
	Closed     int64 `json:"closed_total"`
	Mutations  int64 `json:"mutations_total"`
	Solves     int64 `json:"solves_total"`
	WarmReused int64 `json:"warm_reused_components_total"`
}

// MetricsSnapshot is the JSON document GET /metrics returns.
type MetricsSnapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      int64            `json:"requests_total"`
	Scheduled     int64            `json:"scheduled_total"`
	ShardedRuns   int64            `json:"sharded_runs_total"`
	ShardComps    int64            `json:"shard_components_total"`
	ByStatus      map[string]int64 `json:"requests_by_status"`
	InFlight      int64            `json:"in_flight"`
	Queued        int64            `json:"queued"`
	Draining      bool             `json:"draining"`
	Latency       LatencySnapshot  `json:"latency"`
	Cache         CacheStats       `json:"cache"`
	Kernel        core.KernelStats `json:"kernel"`
	Sessions      SessionMetrics   `json:"sessions"`
}

func (m *metrics) snapshot(cache CacheStats, draining bool, sessionsOpen int) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.requests.Load(),
		Scheduled:     m.scheduled.Load(),
		ShardedRuns:   m.shardedRuns.Load(),
		ShardComps:    m.shardComponents.Load(),
		ByStatus:      make(map[string]int64),
		InFlight:      m.inFlight.Load(),
		Queued:        m.queued.Load(),
		Draining:      draining,
		Cache:         cache,
		Sessions: SessionMetrics{
			Open:       int64(sessionsOpen),
			Created:    m.sessionsCreated.Load(),
			Closed:     m.sessionsClosed.Load(),
			Mutations:  m.sessionMutations.Load(),
			Solves:     m.sessionSolves.Load(),
			WarmReused: m.sessionWarmReused.Load(),
		},
	}
	m.mu.Lock()
	for code, n := range m.byStatus {
		snap.ByStatus[statusKey(code)] = n
	}
	snap.Kernel = m.kernel
	m.mu.Unlock()
	snap.Latency = LatencySnapshot{
		BucketsMS: latencyBucketsMS,
		Counts:    make([]int64, len(m.latCounts)),
		Count:     m.latCount.Load(),
		SumMS:     float64(m.latSumUS.Load()) / 1e3,
	}
	for i := range m.latCounts {
		snap.Latency.Counts[i] = m.latCounts[i].Load()
	}
	return snap
}

func statusKey(code int) string {
	// Three-digit HTTP statuses only; avoids fmt on the metrics path.
	return string([]byte{'0' + byte(code/100%10), '0' + byte(code/10%10), '0' + byte(code%10)})
}
