package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"haste/internal/workload"
)

// benchBody builds a /v1/schedule body for a paper-scale (fig. 4 default,
// n=50 chargers / m=200 tasks) instance generated from the given seed.
func benchBody(b *testing.B, seed int64) []byte {
	b.Helper()
	cfg := workload.Default()
	in := cfg.Generate(rand.New(rand.NewSource(seed)))
	return requestBody(b, instanceJSON(b, in), nil)
}

func benchServe(b *testing.B, s *Server, body []byte) {
	b.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
}

// BenchmarkServeCold measures the full cold path: JSON decode, canonical
// hash, NewProblem compile, then the greedy run. Every iteration posts a
// never-seen instance (distinct seed) and CacheSize 1 keeps the cache from
// amortizing anything across iterations.
func BenchmarkServeCold(b *testing.B) {
	bodies := make([][]byte, b.N)
	for i := range bodies {
		bodies[i] = benchBody(b, int64(1000+i))
	}
	s := New(Config{CacheSize: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServe(b, s, bodies[i])
	}
	b.StopTimer()
	st := s.CacheStats()
	if st.Hits != 0 || st.Misses != int64(b.N) {
		b.Fatalf("cold benchmark was not cold: %+v", st)
	}
}

// BenchmarkServeWarm measures the byte-identical warm path: the raw-byte
// memo resolves the canonical hash without decoding the instance and the
// compiled problem is reused, so an iteration costs one greedy run plus
// the HTTP/JSON envelope.
func BenchmarkServeWarm(b *testing.B) {
	body := benchBody(b, 1)
	s := New(Config{})
	benchServe(b, s, body) // prime: one compile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServe(b, s, body)
	}
	b.StopTimer()
	st := s.CacheStats()
	if st.Misses != 1 || st.Hits != int64(b.N) {
		b.Fatalf("warm benchmark was not warm: %+v", st)
	}
}

// BenchmarkServeWarmRespelled measures the warm path for a semantically
// identical but differently-spelled instance: the byte memo misses, so the
// request pays decode + canonical hash, but the compiled problem is shared
// via the canonical hash. This is the floor for clients that rebuild their
// JSON per request.
func BenchmarkServeWarmRespelled(b *testing.B) {
	cfg := workload.Default()
	in := cfg.Generate(rand.New(rand.NewSource(1)))
	raw := instanceJSON(b, in)
	compact := requestBody(b, raw, nil)

	var ind bytes.Buffer
	if err := json.Indent(&ind, bytes.TrimSpace(raw), "", "    "); err != nil {
		b.Fatal(err)
	}
	respelled := requestBody(b, ind.Bytes(), nil)

	s := New(Config{})
	benchServe(b, s, compact) // prime the problem cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServe(b, s, respelled)
	}
	b.StopTimer()
	st := s.CacheStats()
	if st.Misses != 1 {
		b.Fatalf("respelled benchmark recompiled: %+v", st)
	}
}

// BenchmarkServeTraced measures the cost of request tracing on the warm
// schedule path: the same instance scheduled with and without
// "trace": true, at the paper's fig. 4 scale (one dense component) and at
// the clustered FleetScale(200) shape (multi-component sharded solve,
// where the probe records one span subtree per component). The traced
// rows pay span recording plus the phase forest's JSON in the response.
func BenchmarkServeTraced(b *testing.B) {
	shapes := []struct {
		name string
		cfg  workload.Config
	}{
		{"fig4", workload.Default()},
		{"clustered", workload.FleetScale(200)},
	}
	for _, shape := range shapes {
		raw := instanceJSON(b, shape.cfg.Generate(rand.New(rand.NewSource(1))))
		for _, traced := range []bool{false, true} {
			name := shape.name + "/untraced"
			opts := map[string]any(nil)
			if traced {
				name = shape.name + "/traced"
				opts = map[string]any{"trace": true}
			}
			b.Run(name, func(b *testing.B) {
				body := requestBody(b, raw, opts)
				s := New(Config{})
				benchServe(b, s, body) // prime: one compile
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchServe(b, s, body)
				}
			})
		}
	}
}

// BenchmarkServeThroughput drives the service over real HTTP with 1, 4 and
// 16 concurrent clients on a warm cache, reporting requests/sec. On a
// single-vCPU host the concurrency levels mostly measure queueing overhead;
// on multi-core hardware they show the shared compiled problem scheduling
// concurrently.
func BenchmarkServeThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients%d", clients), func(b *testing.B) {
			body := benchBody(b, 1)
			s := New(Config{MaxConcurrent: clients, QueueDepth: 2 * clients})
			ts := httptest.NewServer(s)
			defer ts.Close()
			// Prime the cache once so every measured request is warm.
			res, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			res.Body.Close()

			var failed atomic.Int64
			b.SetParallelism(clients) // GOMAXPROCS may be 1; force N client goroutines
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					res, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
					if err != nil {
						failed.Add(1)
						continue
					}
					if res.StatusCode != http.StatusOK {
						failed.Add(1)
					}
					res.Body.Close()
				}
			})
			b.StopTimer()
			if n := failed.Load(); n > 0 {
				b.Fatalf("%d requests failed", n)
			}
		})
	}
}
