package serve

import (
	"math/rand"
	"net/http"
	"testing"
	"time"

	"haste/internal/core"
	"haste/internal/model"
	"haste/internal/workload"
)

// clusteredConfig is the serve-side many-component shape: six isolated
// clusters, small enough to schedule in microseconds but decomposed enough
// that ShardAuto (threshold 4) takes the sharded path on its own.
func clusteredConfig() workload.Config {
	c := workload.SmallScale()
	c.NumChargers = 12
	c.NumTasks = 36
	c.Placement = workload.Clustered
	c.NumClusters = 6
	c.Params.Radius = 8
	c.ClusterRadius = 6
	c.DurationMin, c.DurationMax = 3, 9
	c.ReleaseMax = 5
	return c
}

func clusteredInstance(t testing.TB, seed int64) *model.Instance {
	t.Helper()
	return clusteredConfig().Generate(rand.New(rand.NewSource(seed)))
}

// TestScheduleSharding: the shard request knob maps onto the scheduler as
// documented — true forces the sharded path, false forces monolithic,
// omitted lets ShardAuto decide (and this instance decomposes well past
// the default threshold, so auto shards). All three report the same
// utility, and the /metrics shard counters reconcile exactly with the sum
// of the shards fields of the responses.
func TestScheduleSharding(t *testing.T) {
	in := clusteredInstance(t, 1)
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	want := p.SchedulableComponents()
	if want < core.DefaultShardThreshold {
		t.Fatalf("seed drifted: %d schedulable components, need ≥ %d for the auto case",
			want, core.DefaultShardThreshold)
	}

	s := New(Config{})
	raw := instanceJSON(t, in)
	run := func(opts map[string]any) scheduleResponse {
		t.Helper()
		rec := post(s, "/v1/schedule", requestBody(t, raw, opts))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
		var resp scheduleResponse
		decodeResponse(t, rec.Body.Bytes(), &resp)
		return resp
	}

	sharded := run(map[string]any{"shard": true})
	if sharded.Shards != want {
		t.Fatalf("shard=true: shards = %d, want %d", sharded.Shards, want)
	}
	mono := run(map[string]any{"shard": false})
	if mono.Shards != 0 {
		t.Fatalf("shard=false: shards = %d, want 0 (monolithic)", mono.Shards)
	}
	auto := run(nil)
	if auto.Shards != want {
		t.Fatalf("shard omitted: shards = %d, want %d (auto above threshold)", auto.Shards, want)
	}

	// The stitching contract on the wire: toggling the knob never changes
	// the utility, and the two sharded runs are bit-identical.
	if sharded.RUtility != mono.RUtility || auto.RUtility != mono.RUtility {
		t.Fatalf("utilities diverge across shard modes: %v / %v / %v",
			sharded.RUtility, mono.RUtility, auto.RUtility)
	}
	if err := schedulesEqual(sharded.Schedule, auto.Schedule); err != nil {
		t.Fatalf("sharded runs not bit-identical: %v", err)
	}

	m := s.Metrics()
	if m.ShardedRuns != 2 {
		t.Fatalf("sharded_runs_total = %d, want 2 (shard=true + auto)", m.ShardedRuns)
	}
	if got := int64(sharded.Shards + mono.Shards + auto.Shards); m.ShardComps != got {
		t.Fatalf("shard_components_total = %d, does not reconcile with Σ response shards = %d",
			m.ShardComps, got)
	}
}

// TestShardedRequestTimeout: a sharded run cancelled mid-flight by the
// request budget must return every pooled state of every component
// sub-Problem (StatesInUse aggregates across them), keep the compiled
// problem cached, and serve a later sharded request from that same cache
// entry bit-identically.
func TestShardedRequestTimeout(t *testing.T) {
	s := New(Config{RequestTimeout: time.Millisecond})
	cfg := clusteredConfig()
	cfg.NumChargers = 80
	cfg.NumTasks = 1920
	cfg.NumClusters = 16
	cfg.DurationMin, cfg.DurationMax = 20, 50
	cfg.ReleaseMax = 30
	in := cfg.Generate(rand.New(rand.NewSource(1)))
	raw := instanceJSON(t, in)

	// Every component is beyond paper scale (5 chargers × 120 tasks,
	// K ≈ 80); at colors 8 × 64 samples the full run takes a few hundred
	// milliseconds — two orders of magnitude past the 1ms budget, so the
	// deadline always lands mid-run even on a loaded 1-vCPU box.
	slow := requestBody(t, raw, map[string]any{"shard": true, "colors": 8})
	rec := post(s, "/v1/schedule", slow)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.Bytes())
	}
	for el := s.cache.ll.Front(); el != nil; el = el.Next() {
		p := el.Value.(*cacheEntry).p
		if n := p.StatesInUse(); n != 0 {
			t.Fatalf("cancelled sharded run leaked %d pooled states", n)
		}
	}

	// The cache entry (and its compiled component sub-Problems) survive the
	// cancellation: rerunning with a sane budget is a hit, sharded, and
	// deterministic.
	s.cfg.RequestTimeout = time.Minute
	var first scheduleResponse
	for i := 0; i < 2; i++ {
		rec = post(s, "/v1/schedule", slow)
		if rec.Code != http.StatusOK {
			t.Fatalf("post-timeout status %d: %s", rec.Code, rec.Body.Bytes())
		}
		var resp scheduleResponse
		decodeResponse(t, rec.Body.Bytes(), &resp)
		if resp.Cache != "hit" {
			t.Fatalf("post-timeout run %d reported cache %q", i, resp.Cache)
		}
		if resp.Shards < 2 {
			t.Fatalf("post-timeout run %d: shards = %d, want ≥ 2", i, resp.Shards)
		}
		if i == 0 {
			first = resp
		} else if err := schedulesEqual(first.Schedule, resp.Schedule); err != nil {
			t.Fatalf("sharded rerun after cancel not bit-identical: %v", err)
		}
	}
	for el := s.cache.ll.Front(); el != nil; el = el.Next() {
		p := el.Value.(*cacheEntry).p
		if n := p.StatesInUse(); n != 0 {
			t.Fatalf("cached problem leaked %d pooled states after rerun", n)
		}
	}
}
