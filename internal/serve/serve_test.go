package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"haste/internal/core"
	"haste/internal/instio"
	"haste/internal/workload"
)

// post runs one request through the handler and returns the recorder.
func post(s *Server, path string, body []byte) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	s.ServeHTTP(rec, req)
	return rec
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestScheduleMatchesDirectCall(t *testing.T) {
	s := New(Config{})
	in := testInstance(t, 1)
	body := requestBody(t, instanceJSON(t, in), map[string]any{"colors": 2, "samples": 4, "seed": 9})

	rec := post(s, "/v1/schedule", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var resp scheduleResponse
	decodeResponse(t, rec.Body.Bytes(), &resp)

	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	want := core.TabularGreedy(p, core.Options{
		Colors: 2, Samples: 4, PreferStay: true, Workers: 1,
		Rng: rand.New(rand.NewSource(9)),
	})
	if err := schedulesEqual(resp.Schedule, want.Schedule.Policy); err != nil {
		t.Fatalf("service schedule differs from direct call: %v", err)
	}
	if resp.RUtility != want.RUtility {
		t.Fatalf("RUtility %v != %v", resp.RUtility, want.RUtility)
	}
	if resp.Cache != "miss" {
		t.Fatalf("first request reported cache %q", resp.Cache)
	}
	wantHash, err := instio.HashInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if resp.InstanceHash != wantHash {
		t.Fatalf("instance hash %q != %q", resp.InstanceHash, wantHash)
	}
}

// TestWarmCacheSkipsNewProblem: the second identical request is a cache
// hit (NewProblem skipped — asserted via the hit counter) and a
// differently formatted spelling of the same instance still hits through
// the canonical hash.
func TestWarmCacheSkipsNewProblem(t *testing.T) {
	s := New(Config{})
	in := testInstance(t, 2)
	raw := instanceJSON(t, in)
	body := requestBody(t, raw, nil)

	var resp scheduleResponse
	rec := post(s, "/v1/schedule", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	decodeResponse(t, rec.Body.Bytes(), &resp)
	cold := resp

	rec = post(s, "/v1/schedule", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	decodeResponse(t, rec.Body.Bytes(), &resp)
	if resp.Cache != "hit" {
		t.Fatalf("identical request reported cache %q", resp.Cache)
	}
	if err := schedulesEqual(resp.Schedule, cold.Schedule); err != nil {
		t.Fatalf("warm schedule differs from cold: %v", err)
	}

	// Same instance, different JSON spelling: compact it.
	var compact bytes.Buffer
	if err := json.Compact(&compact, raw); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(compact.Bytes(), raw) {
		t.Fatal("compact form should differ from the indented wire form")
	}
	rec = post(s, "/v1/schedule", requestBody(t, compact.Bytes(), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("respelled: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	decodeResponse(t, rec.Body.Bytes(), &resp)
	if resp.Cache != "hit" {
		t.Fatalf("respelled instance reported cache %q — canonical hashing broken", resp.Cache)
	}
	if resp.InstanceHash != cold.InstanceHash {
		t.Fatalf("respelled instance hash %q != %q", resp.InstanceHash, cold.InstanceHash)
	}

	st := s.CacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 1 miss / 2 hits", st)
	}
	if st.MemoHits != 1 {
		t.Fatalf("byte-memo hits = %d, want 1 (only the byte-identical repeat)", st.MemoHits)
	}
}

func TestScheduleErrors(t *testing.T) {
	s := New(Config{MaxSamples: 16})
	valid := instanceJSON(t, testInstance(t, 3))
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"not json", http.MethodPost, "/v1/schedule", "{", http.StatusBadRequest},
		{"empty body", http.MethodPost, "/v1/schedule", "", http.StatusBadRequest},
		{"missing instance", http.MethodPost, "/v1/schedule", `{"colors":1}`, http.StatusBadRequest},
		{"unknown envelope field", http.MethodPost, "/v1/schedule",
			`{"instance":{},"bogus":1}`, http.StatusBadRequest},
		{"trailing garbage", http.MethodPost, "/v1/schedule",
			string(requestBody(t, valid, nil)) + "garbage", http.StatusBadRequest},
		{"invalid instance", http.MethodPost, "/v1/schedule",
			`{"instance":{"version":99}}`, http.StatusBadRequest},
		{"instance wrong type", http.MethodPost, "/v1/schedule",
			`{"instance":[1,2,3]}`, http.StatusBadRequest},
		{"samples over cap", http.MethodPost, "/v1/schedule",
			string(requestBody(t, valid, map[string]any{"colors": 2, "samples": 17})), http.StatusBadRequest},
		{"default samples over cap", http.MethodPost, "/v1/schedule",
			string(requestBody(t, valid, map[string]any{"colors": 200})), http.StatusBadRequest},
		{"horizon over cap", http.MethodPost, "/v1/schedule",
			`{"instance":{"version":1,"params":{"alpha":1,"beta":0,"radius_m":5,"charge_angle_deg":90,"receive_angle_deg":180,"slot_seconds":1},"chargers":[{"x":0,"y":0}],"tasks":[{"x":1,"y":1,"phi_deg":0,"release_slot":0,"end_slot":2000000000,"energy_j":10,"weight":1}]}}`,
			http.StatusBadRequest},
		{"get not allowed", http.MethodGet, "/v1/schedule", "", http.StatusMethodNotAllowed},
		{"unknown route", http.MethodPost, "/v1/other", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			s.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body.Bytes())
			}
			var er errorResponse
			decodeResponse(t, rec.Body.Bytes(), &er)
			if er.Error == "" || er.Status != tc.status {
				t.Fatalf("malformed error body: %s", rec.Body.Bytes())
			}
		})
	}
}

func TestBodyTooLarge(t *testing.T) {
	s := New(Config{MaxBodyBytes: 512})
	body := requestBody(t, instanceJSON(t, testInstance(t, 4)), nil)
	if len(body) <= 512 {
		t.Fatalf("test instance too small (%d bytes) to trip the limit", len(body))
	}
	rec := post(s, "/v1/schedule", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body.Bytes())
	}
	var er errorResponse
	decodeResponse(t, rec.Body.Bytes(), &er)
}

func TestHealthzAndDrain(t *testing.T) {
	s := New(Config{})
	rec := get(s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	s.BeginDrain()
	rec = get(s, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", rec.Code)
	}
	rec = post(s, "/v1/schedule", requestBody(t, instanceJSON(t, testInstance(t, 5)), nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining schedule status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	var er errorResponse
	decodeResponse(t, rec.Body.Bytes(), &er)
}

func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	body := requestBody(t, instanceJSON(t, testInstance(t, 6)), map[string]any{"kernel_stats": true})
	for i := 0; i < 3; i++ {
		if rec := post(s, "/v1/schedule", body); rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
	post(s, "/v1/schedule", []byte("{"))

	rec := get(s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var m MetricsSnapshot
	decodeResponse(t, rec.Body.Bytes(), &m)
	if m.Scheduled != 3 {
		t.Errorf("scheduled_total = %d, want 3", m.Scheduled)
	}
	if m.ByStatus["200"] != 3 || m.ByStatus["400"] != 1 {
		t.Errorf("requests_by_status = %v, want 3×200 and 1×400", m.ByStatus)
	}
	if m.Cache.Hits != 2 || m.Cache.Misses != 1 {
		t.Errorf("cache = %+v, want 2 hits / 1 miss", m.Cache)
	}
	if m.Latency.Count != 4 {
		t.Errorf("latency count = %d, want 4 (schedule requests only)", m.Latency.Count)
	}
	if m.Kernel.Calls == 0 {
		t.Errorf("kernel stats not aggregated: %+v", m.Kernel)
	}
	if m.InFlight != 0 || m.Queued != 0 {
		t.Errorf("idle gauges nonzero: in_flight=%d queued=%d", m.InFlight, m.Queued)
	}
	if got := len(m.Latency.Counts); got != len(m.Latency.BucketsMS)+1 {
		t.Errorf("histogram has %d counts for %d buckets", got, len(m.Latency.BucketsMS))
	}
}

// TestRequestTimeout: a request whose schedule cannot finish within the
// configured timeout returns 504 with a JSON error, and the pooled states
// of the cached problem are all returned.
func TestRequestTimeout(t *testing.T) {
	s := New(Config{RequestTimeout: time.Millisecond})
	cfg := workload.Default() // paper-scale: C=8 × 64 samples ≫ 1ms
	in := cfg.Generate(rand.New(rand.NewSource(7)))
	raw := instanceJSON(t, in)
	rec := post(s, "/v1/schedule", requestBody(t, raw, map[string]any{"colors": 8}))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.Bytes())
	}
	var er errorResponse
	decodeResponse(t, rec.Body.Bytes(), &er)
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("504 missing Retry-After")
	}

	// The compiled problem stays cached and leak-free: rerun with a sane
	// budget must succeed as a cache hit with a balanced pool.
	s.cfg.RequestTimeout = time.Minute
	rec = post(s, "/v1/schedule", requestBody(t, raw, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-timeout status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var resp scheduleResponse
	decodeResponse(t, rec.Body.Bytes(), &resp)
	if resp.Cache != "hit" {
		t.Fatalf("post-timeout request reported cache %q", resp.Cache)
	}
	for el := s.cache.ll.Front(); el != nil; el = el.Next() {
		p := el.Value.(*cacheEntry).p
		if n := p.StatesInUse(); n != 0 {
			t.Fatalf("cached problem leaked %d pooled states after timeout", n)
		}
	}
}

// TestBackpressure: with one worker slot and a queue of one, a third
// concurrent request is shed with 429 + Retry-After.
func TestBackpressure(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, RequestTimeout: 30 * time.Second})
	cfg := workload.Default()
	in := cfg.Generate(rand.New(rand.NewSource(8)))
	slow := requestBody(t, instanceJSON(t, in), map[string]any{"colors": 8})

	type result struct {
		code int
		body []byte
	}
	results := make(chan result, 2)
	launch := func() {
		go func() {
			rec := post(s, "/v1/schedule", slow)
			results <- result{rec.Code, rec.Body.Bytes()}
		}()
	}

	launch() // occupies the worker slot
	waitGauge(t, func() bool { return s.Metrics().InFlight == 1 })
	launch() // occupies the queue slot
	waitGauge(t, func() bool { return s.Metrics().Queued == 1 })

	rec := post(s, "/v1/schedule", slow) // queue full → shed
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.Bytes())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	var er errorResponse
	decodeResponse(t, rec.Body.Bytes(), &er)

	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("in-flight/queued request failed with %d: %s", r.code, r.body)
		}
	}
	if m := s.Metrics(); m.InFlight != 0 || m.Queued != 0 {
		t.Fatalf("gauges not drained: %+v", m)
	}
}

func waitGauge(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheEvictionLRU: with a cache of two, three distinct instances
// evict the least recently used; re-requesting the evicted one recompiles.
func TestCacheEvictionLRU(t *testing.T) {
	s := New(Config{CacheSize: 2})
	bodies := make([][]byte, 3)
	for i := range bodies {
		bodies[i] = requestBody(t, instanceJSON(t, testInstance(t, int64(20+i))), nil)
	}
	for _, b := range bodies { // a, b, c → evicts a
		if rec := post(s, "/v1/schedule", b); rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
	st := s.CacheStats()
	if st.Misses != 3 || st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after fill = %+v, want 3 misses / 1 eviction / 2 entries", st)
	}
	var resp scheduleResponse
	rec := post(s, "/v1/schedule", bodies[0]) // evicted → miss again
	decodeResponse(t, rec.Body.Bytes(), &resp)
	if resp.Cache != "miss" {
		t.Fatalf("evicted instance reported cache %q", resp.Cache)
	}
	rec = post(s, "/v1/schedule", bodies[2]) // still resident → hit
	decodeResponse(t, rec.Body.Bytes(), &resp)
	if resp.Cache != "hit" {
		t.Fatalf("resident instance reported cache %q", resp.Cache)
	}
}

// TestLazyAndPreferStayOptions: option plumbing reaches core — lazy must
// be bit-identical to eager, prefer_stay=false must match the direct call.
func TestLazyAndPreferStayOptions(t *testing.T) {
	s := New(Config{})
	in := testInstance(t, 9)
	raw := instanceJSON(t, in)
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}

	var eager, lazy, noStay scheduleResponse
	decodeResponse(t, post(s, "/v1/schedule", requestBody(t, raw, map[string]any{"seed": 3})).Body.Bytes(), &eager)
	decodeResponse(t, post(s, "/v1/schedule", requestBody(t, raw, map[string]any{"seed": 3, "lazy": true})).Body.Bytes(), &lazy)
	decodeResponse(t, post(s, "/v1/schedule", requestBody(t, raw, map[string]any{"seed": 3, "prefer_stay": false})).Body.Bytes(), &noStay)

	if err := schedulesEqual(eager.Schedule, lazy.Schedule); err != nil {
		t.Fatalf("lazy diverged from eager: %v", err)
	}
	want := core.TabularGreedy(p, core.Options{
		Colors: 1, PreferStay: false, Workers: 1, Rng: rand.New(rand.NewSource(3)),
	})
	if err := schedulesEqual(noStay.Schedule, want.Schedule.Policy); err != nil {
		t.Fatalf("prefer_stay=false diverged from direct call: %v", err)
	}
}
