package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"haste/internal/core"
	"haste/internal/instio"
	"haste/internal/model"
)

// parseWire decodes instance bytes exactly as the server does, so a test
// mirror starts from the same parsed instance the session compiled.
func parseWire(t testing.TB, raw []byte) *model.Instance {
	t.Helper()
	var f instio.File
	if err := strictUnmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	in, err := f.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// sessionTask builds an exactly-representable task near a charger of the
// instance: integral offsets and a zero orientation survive every wire
// round trip bit-for-bit, so mirror instances stay identical to what the
// server applied.
func sessionTask(in *model.Instance, chargerIdx, variant int) instio.FileTask {
	c := in.Chargers[chargerIdx%len(in.Chargers)]
	dur := 2*in.Params.Tau + 3 + variant%3
	return instio.FileTask{
		X:       c.Pos.X + float64(variant%5) - 2,
		Y:       c.Pos.Y + float64(variant%3) - 1,
		PhiDeg:  0,
		Release: variant % 4,
		End:     variant%4 + dur,
		Energy:  2000 + float64(variant)*250,
		Weight:  1 + float64(variant%4),
	}
}

func do(s *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(method, path, strings.NewReader(string(body)))
	s.ServeHTTP(rec, req)
	return rec
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// createSession opens a session over raw instance bytes and returns the
// decoded response.
func createSession(t testing.TB, s *Server, raw []byte, opts string) sessionResponse {
	t.Helper()
	body := `{"instance":` + strings.TrimSpace(string(raw)) + opts + `}`
	rec := do(s, http.MethodPost, "/v1/session", []byte(body))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var resp sessionResponse
	decodeResponse(t, rec.Body.Bytes(), &resp)
	if resp.SessionID == "" || resp.Rev != 1 {
		t.Fatalf("create: bad response %+v", resp)
	}
	return resp
}

// sessionOptions are the scheduling options every session test fixes, and
// their core equivalent for from-scratch reference solves.
const sessionOptsJSON = `,"colors":2,"samples":4,"seed":9`

func sessionRefOptions(workers int) core.Options {
	return core.Options{Colors: 2, Samples: 4, PreferStay: true, Workers: workers,
		Shard: core.ShardOn, Rng: rand.New(rand.NewSource(9))}
}

// TestSessionLifecycle drives a session end to end — create, a mutation
// walk over adds/removes/completes with a client-side mirror, GET, delete
// — and pins the acceptance criterion: after every PATCH the session's
// schedule is bit-identical to a from-scratch /v1/schedule solve of the
// mirrored instance, while the warm chain actually reuses components.
func TestSessionLifecycle(t *testing.T) {
	s := New(Config{})
	in := clusteredInstance(t, 2)
	raw := instanceJSON(t, in)
	resp := createSession(t, s, raw, sessionOptsJSON)
	id := resp.SessionID

	mirror := parseWire(t, raw)
	refs := make([]int64, len(mirror.Tasks))
	for j := range refs {
		refs[j] = int64(j + 1)
	}
	if resp.Tasks != len(mirror.Tasks) {
		t.Fatalf("create reports %d tasks, instance has %d", resp.Tasks, len(mirror.Tasks))
	}

	// The creation solve must already match a cold from-scratch solve.
	requireSessionMatchesCold(t, s, resp.sessionView, mirror)

	removeRef := func(ref int64) {
		for j, r := range refs {
			if r != ref {
				continue
			}
			last := len(refs) - 1
			mirror.Tasks[j] = mirror.Tasks[last]
			mirror.Tasks[j].ID = j
			mirror.Tasks = mirror.Tasks[:last]
			refs[j] = refs[last]
			refs = refs[:last]
			return
		}
		t.Fatalf("mirror has no ref %d", ref)
	}

	warmTotal := 0
	patches := []struct {
		name string
		muts []sessionMutation
	}{
		{"remove+add", []sessionMutation{
			{Op: "remove", Ref: 3},
			{Op: "add", Task: taskPtr(sessionTask(mirror, 0, 1))},
		}},
		{"complete", []sessionMutation{{Op: "complete", Ref: 7}}},
		{"adds", []sessionMutation{
			{Op: "add", Task: taskPtr(sessionTask(mirror, 2, 4))},
			{Op: "add", Task: taskPtr(sessionTask(mirror, 4, 6))},
		}},
		{"empty-resolve", nil},
	}
	nextRef := int64(len(mirror.Tasks) + 1)
	for pi, pc := range patches {
		body := mustJSON(t, sessionPatchRequest{Mutations: pc.muts})
		rec := do(s, http.MethodPatch, "/v1/session/"+id, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("patch %s: status %d: %s", pc.name, rec.Code, rec.Body.Bytes())
		}
		var pr sessionResponse
		decodeResponse(t, rec.Body.Bytes(), &pr)
		if pr.Rev != int64(pi)+2 {
			t.Fatalf("patch %s: rev %d, want %d", pc.name, pr.Rev, pi+2)
		}

		adds := 0
		for _, mu := range pc.muts {
			switch mu.Op {
			case "add":
				tk := instio.TaskFromFile(*mu.Task, len(mirror.Tasks))
				mirror.Tasks = append(mirror.Tasks, tk)
				refs = append(refs, nextRef)
				if pr.Refs[adds] != nextRef {
					t.Fatalf("patch %s: add got ref %d, want %d", pc.name, pr.Refs[adds], nextRef)
				}
				nextRef++
				adds++
			default:
				removeRef(mu.Ref)
			}
		}
		if adds != len(pr.Refs) {
			t.Fatalf("patch %s: %d refs returned for %d adds", pc.name, len(pr.Refs), adds)
		}
		if pr.Tasks != len(mirror.Tasks) {
			t.Fatalf("patch %s: session has %d tasks, mirror %d", pc.name, pr.Tasks, len(mirror.Tasks))
		}
		warmTotal += pr.WarmReused
		requireSessionMatchesCold(t, s, pr.sessionView, mirror)

		// GET returns exactly the revision the PATCH reported.
		grec := do(s, http.MethodGet, "/v1/session/"+id, nil)
		var view sessionView
		decodeResponse(t, grec.Body.Bytes(), &view)
		if view.Rev != pr.Rev || schedulesEqual(view.Schedule, pr.Schedule) != nil {
			t.Fatalf("patch %s: GET view diverges from PATCH response", pc.name)
		}
	}
	if warmTotal == 0 {
		t.Fatal("no component was ever warm-reused across the walk")
	}

	snap := s.Metrics()
	if snap.Sessions.Open != 1 || snap.Sessions.Created != 1 {
		t.Fatalf("session gauges: %+v", snap.Sessions)
	}
	if want := int64(5); snap.Sessions.Solves != want { // create + 4 patches
		t.Fatalf("solves_total = %d, want %d", snap.Sessions.Solves, want)
	}
	if snap.Sessions.Mutations != 5 {
		t.Fatalf("mutations_total = %d, want 5", snap.Sessions.Mutations)
	}
	if snap.Sessions.WarmReused != int64(warmTotal) {
		t.Fatalf("warm_reused_components_total = %d, want %d", snap.Sessions.WarmReused, warmTotal)
	}

	if rec := do(s, http.MethodDelete, "/v1/session/"+id, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rec.Code)
	}
	if rec := do(s, http.MethodGet, "/v1/session/"+id, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET after delete: status %d, want 404", rec.Code)
	}
	if rec := do(s, http.MethodPatch, "/v1/session/"+id, []byte(`{"mutations":[]}`)); rec.Code != http.StatusNotFound {
		t.Fatalf("PATCH after delete: status %d, want 404", rec.Code)
	}
	if s.SessionCount() != 0 {
		t.Fatalf("SessionCount = %d after delete", s.SessionCount())
	}
}

func taskPtr(ft instio.FileTask) *instio.FileTask { return &ft }

// requireSessionMatchesCold asserts a session view is bit-identical to
// both a direct cold core solve of the mirror instance and (closing the
// loop over the wire format) a /v1/schedule request for it.
func requireSessionMatchesCold(t *testing.T, s *Server, view sessionView, mirror *model.Instance) {
	t.Helper()
	cp := &model.Instance{Chargers: mirror.Chargers,
		Tasks:  append([]model.Task(nil), mirror.Tasks...),
		Params: mirror.Params, Utility: mirror.Utility}
	fresh, err := core.NewProblem(cp)
	if err != nil {
		t.Fatal(err)
	}
	cold := core.TabularGreedy(fresh, sessionRefOptions(s.cfg.CoreWorkers))
	if cold.RUtility != view.RUtility {
		t.Fatalf("session r_utility %v, cold solve %v", view.RUtility, cold.RUtility)
	}
	if err := schedulesEqual(view.Schedule, cold.Schedule.Policy); err != nil {
		t.Fatalf("session schedule diverges from cold core solve: %v", err)
	}

	rec := post(s, "/v1/schedule", requestBody(t, instanceJSON(t, cp),
		map[string]any{"colors": 2, "samples": 4, "seed": 9, "shard": true}))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/schedule reference: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var sr scheduleResponse
	decodeResponse(t, rec.Body.Bytes(), &sr)
	if sr.RUtility != view.RUtility {
		t.Fatalf("session r_utility %v, /v1/schedule %v", view.RUtility, sr.RUtility)
	}
	if err := schedulesEqual(view.Schedule, sr.Schedule); err != nil {
		t.Fatalf("session schedule diverges from /v1/schedule: %v", err)
	}
}

// TestSessionConcurrentPatches hammers one session with parallel PATCHes
// (run under -race in CI): every mutation must land exactly once, the
// final schedule must be bit-identical to a from-scratch solve of the
// session's final task table, and no pooled state may leak.
func TestSessionConcurrentPatches(t *testing.T) {
	s := New(Config{MaxConcurrent: 4})
	in := clusteredInstance(t, 3)
	resp := createSession(t, s, instanceJSON(t, in), sessionOptsJSON)
	id := resp.SessionID

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var body []byte
			if g%4 == 3 {
				// A removal racing the adds; initial refs 1..m are all valid.
				body = mustJSON(t, sessionPatchRequest{Mutations: []sessionMutation{
					{Op: "remove", Ref: int64(g)},
				}})
			} else {
				body = mustJSON(t, sessionPatchRequest{Mutations: []sessionMutation{
					{Op: "add", Task: taskPtr(sessionTask(in, g, g))},
				}})
			}
			rec := do(s, http.MethodPatch, "/v1/session/"+id, body)
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("goroutine %d: status %d: %s", g, rec.Code, rec.Body.Bytes())
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	sess := s.lookupSession(id)
	sess.mu.Lock()
	finalView := sess.view
	finalIn := &model.Instance{Chargers: sess.p.In.Chargers,
		Tasks:  append([]model.Task(nil), sess.p.In.Tasks...),
		Params: sess.p.In.Params, Utility: sess.p.In.Utility}
	leaked := sess.p.StatesInUse()
	sess.mu.Unlock()

	if leaked != 0 {
		t.Fatalf("%d pooled states still checked out after all PATCHes", leaked)
	}
	if finalView.Rev != workers+1 {
		t.Fatalf("rev %d after %d patches, want %d", finalView.Rev, workers, workers+1)
	}
	wantTasks := len(in.Tasks) + 6 - 2 // 6 adds, 2 removes
	if len(finalIn.Tasks) != wantTasks {
		t.Fatalf("final task table has %d tasks, want %d", len(finalIn.Tasks), wantTasks)
	}
	fresh, err := core.NewProblem(finalIn)
	if err != nil {
		t.Fatal(err)
	}
	cold := core.TabularGreedy(fresh, sessionRefOptions(s.cfg.CoreWorkers))
	if cold.RUtility != finalView.RUtility {
		t.Fatalf("final r_utility %v, from-scratch %v", finalView.RUtility, cold.RUtility)
	}
	if err := schedulesEqual(finalView.Schedule, cold.Schedule.Policy); err != nil {
		t.Fatalf("final schedule diverges from from-scratch solve: %v", err)
	}
}

// TestSessionCancelledPatch pins the abandonment contract: a PATCH whose
// client is gone keeps its (already applied) mutations, does not advance
// the revision, leaks no pooled state, and a later empty PATCH re-solves
// to exactly the from-scratch schedule of the accumulated task table.
func TestSessionCancelledPatch(t *testing.T) {
	s := New(Config{})
	in := clusteredInstance(t, 4)
	resp := createSession(t, s, instanceJSON(t, in), sessionOptsJSON)
	id := resp.SessionID
	sess := s.lookupSession(id)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := mustJSON(t, sessionPatchRequest{Mutations: []sessionMutation{
		{Op: "add", Task: taskPtr(sessionTask(in, 1, 2))},
	}})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPatch, "/v1/session/"+id, strings.NewReader(string(body))).WithContext(ctx)
	s.ServeHTTP(rec, req)

	sess.mu.Lock()
	rev, tasks, leaked := sess.rev, len(sess.p.In.Tasks), sess.p.StatesInUse()
	sess.mu.Unlock()
	if rev != 1 {
		t.Fatalf("cancelled PATCH advanced rev to %d", rev)
	}
	if tasks != len(in.Tasks)+1 {
		t.Fatalf("cancelled PATCH lost its mutation: %d tasks, want %d", tasks, len(in.Tasks)+1)
	}
	if leaked != 0 {
		t.Fatalf("%d pooled states leaked by the abandoned solve", leaked)
	}
	if got := s.Metrics().ByStatus["499"]; got < 1 {
		t.Fatalf("client-gone PATCH not recorded: 499 count %d", got)
	}

	rec2 := do(s, http.MethodPatch, "/v1/session/"+id, []byte(`{"mutations":[]}`))
	if rec2.Code != http.StatusOK {
		t.Fatalf("recovery PATCH: status %d: %s", rec2.Code, rec2.Body.Bytes())
	}
	var pr sessionResponse
	decodeResponse(t, rec2.Body.Bytes(), &pr)
	if pr.Rev != 2 || pr.Tasks != len(in.Tasks)+1 {
		t.Fatalf("recovery PATCH: rev %d tasks %d, want rev 2 tasks %d", pr.Rev, pr.Tasks, len(in.Tasks)+1)
	}
	mirror := parseWire(t, instanceJSON(t, in))
	mirror.Tasks = append(mirror.Tasks, instio.TaskFromFile(sessionTask(in, 1, 2), len(mirror.Tasks)))
	requireSessionMatchesCold(t, s, pr.sessionView, mirror)
}

// TestSessionValidation pins the 4xx surface: malformed bodies, invalid
// tasks (including non-finite coordinates — satellite of the finiteness
// bugfix), unknown refs, batch atomicity, unknown ops, the session limit
// and unknown session IDs.
func TestSessionValidation(t *testing.T) {
	s := New(Config{MaxSessions: 1})
	in := clusteredInstance(t, 5)
	raw := instanceJSON(t, in)
	resp := createSession(t, s, raw, sessionOptsJSON)
	id := resp.SessionID
	tasks0 := resp.Tasks

	patch := func(body string) *httptest.ResponseRecorder {
		return do(s, http.MethodPatch, "/v1/session/"+id, []byte(body))
	}
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"malformed json":   {`{"mutations":`, http.StatusBadRequest},
		"unknown field":    {`{"mutationz":[]}`, http.StatusBadRequest},
		"unknown op":       {`{"mutations":[{"op":"pause","ref":1}]}`, http.StatusBadRequest},
		"add without task": {`{"mutations":[{"op":"add"}]}`, http.StatusBadRequest},
		"unknown ref":      {`{"mutations":[{"op":"remove","ref":99999}]}`, http.StatusBadRequest},
		"double remove":    {`{"mutations":[{"op":"remove","ref":1},{"op":"remove","ref":1}]}`, http.StatusBadRequest},
		"non-finite coordinate": {`{"mutations":[{"op":"add","task":` +
			`{"x":1e999,"y":0,"phi_deg":0,"release_slot":0,"end_slot":9,"energy_j":10,"weight":1}}]}`,
			http.StatusBadRequest},
		"empty window": {`{"mutations":[{"op":"add","task":` +
			`{"x":0,"y":0,"phi_deg":0,"release_slot":4,"end_slot":4,"energy_j":10,"weight":1}}]}`,
			http.StatusBadRequest},
	} {
		rec := patch(tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.want, rec.Body.Bytes())
		}
		var er errorResponse
		decodeResponse(t, rec.Body.Bytes(), &er)
		if er.Status != rec.Code || er.Error == "" {
			t.Errorf("%s: inconsistent error body %s", name, rec.Body.Bytes())
		}
	}

	// Batch atomicity: a valid add followed by an invalid one applies
	// neither — the task count and revision are untouched.
	atomic := mustJSON(t, sessionPatchRequest{Mutations: []sessionMutation{
		{Op: "add", Task: taskPtr(sessionTask(in, 0, 1))},
		{Op: "remove", Ref: 424242},
	}})
	if rec := patch(string(atomic)); rec.Code != http.StatusBadRequest {
		t.Fatalf("atomicity batch: status %d, want 400", rec.Code)
	}
	grec := do(s, http.MethodGet, "/v1/session/"+id, nil)
	var view sessionView
	decodeResponse(t, grec.Body.Bytes(), &view)
	if view.Rev != 1 || view.Tasks != tasks0 {
		t.Fatalf("rejected batch mutated the session: rev %d tasks %d", view.Rev, view.Tasks)
	}

	// Session limit: MaxSessions=1 refuses a second create with 429.
	body := `{"instance":` + strings.TrimSpace(string(raw)) + `}`
	if rec := do(s, http.MethodPost, "/v1/session", []byte(body)); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429", rec.Code)
	}

	// Unknown session ID → 404 on every session route.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/session/nope"},
		{http.MethodPatch, "/v1/session/nope"},
		{http.MethodDelete, "/v1/session/nope"},
		{http.MethodGet, "/v1/session/nope/subscribe"},
	} {
		body := ""
		if probe.method == http.MethodPatch {
			body = `{"mutations":[]}`
		}
		if rec := do(s, probe.method, probe.path, []byte(body)); rec.Code != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", probe.method, probe.path, rec.Code)
		}
	}

	// A non-finite charger coordinate in the instance is refused at
	// session creation (and by /v1/schedule) with 400, not compiled. The
	// open session is deleted first so the probe reaches validation
	// rather than the session limit.
	if rec := do(s, http.MethodDelete, "/v1/session/"+id, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rec.Code)
	}
	bad := `{"version":1,"params":{"alpha":1,"beta":0,"radius_m":5,"charge_angle_deg":90,` +
		`"receive_angle_deg":180,"slot_seconds":1},"chargers":[{"x":1e999,"y":0}],"tasks":[]}`
	for _, path := range []string{"/v1/session", "/v1/schedule"} {
		if rec := do(s, http.MethodPost, path, []byte(`{"instance":`+bad+`}`)); rec.Code != http.StatusBadRequest {
			t.Fatalf("non-finite instance on %s: status %d, want 400", path, rec.Code)
		}
	}
}

// TestSessionSubscribe exercises the SSE stream against a real HTTP
// server: the subscriber receives the current revision immediately, a
// revision event after a PATCH, and a close event on DELETE.
func TestSessionSubscribe(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	in := clusteredInstance(t, 6)
	resp := createSession(t, s, instanceJSON(t, in), sessionOptsJSON)
	id := resp.SessionID

	sub, err := http.Get(ts.URL + "/v1/session/" + id + "/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	if sub.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", sub.StatusCode)
	}
	if ct := sub.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("subscribe: Content-Type %q", ct)
	}
	events := bufio.NewScanner(sub.Body)
	readEvent := func() (string, sessionView) {
		t.Helper()
		var name string
		var view sessionView
		for events.Scan() {
			line := events.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				payload := strings.TrimPrefix(line, "data: ")
				if err := json.Unmarshal([]byte(payload), &view); err != nil {
					t.Fatalf("bad SSE payload %q: %v", payload, err)
				}
			case line == "":
				return name, view
			}
		}
		t.Fatalf("stream ended early: %v", events.Err())
		return "", view
	}

	name, view := readEvent()
	if name != "schedule" || view.Rev != 1 {
		t.Fatalf("first event %q rev %d, want schedule rev 1", name, view.Rev)
	}

	body := mustJSON(t, sessionPatchRequest{Mutations: []sessionMutation{
		{Op: "add", Task: taskPtr(sessionTask(in, 0, 3))},
	}})
	if rec := do(s, http.MethodPatch, "/v1/session/"+id, body); rec.Code != http.StatusOK {
		t.Fatalf("patch: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	name, view = readEvent()
	if name != "schedule" || view.Rev != 2 {
		t.Fatalf("post-PATCH event %q rev %d, want schedule rev 2", name, view.Rev)
	}

	if rec := do(s, http.MethodDelete, "/v1/session/"+id, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rec.Code)
	}
	name, _ = readEvent()
	if name != "close" {
		t.Fatalf("final event %q, want close", name)
	}
}
