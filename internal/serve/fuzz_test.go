package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"haste/internal/workload"
)

// fuzzServer is shared across fuzz executions (the cache surviving between
// inputs is exactly the production shape — a byte-identical re-send must
// hit the memo, a mutated one must recompile). Modest limits keep
// pathological inputs cheap; the caps are part of what is being fuzzed.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzServer() *Server {
	fuzzOnce.Do(func() {
		fuzzSrv = New(Config{
			CacheSize:      8,
			MaxConcurrent:  2,
			QueueDepth:     4,
			MaxSamples:     64,
			MaxSlots:       512,
			MaxBodyBytes:   1 << 20,
			RequestTimeout: 2 * time.Second,
		})
	})
	return fuzzSrv
}

// FuzzScheduleHandler: arbitrary bytes POSTed to /v1/schedule must never
// panic the handler and must always yield a well-formed JSON document —
// a schedule on 200, an {"error", "status"} object otherwise, with the
// recorded status matching the wire status.
func FuzzScheduleHandler(f *testing.F) {
	// Valid envelope around a real instance.
	in := workload.SmallScale().Generate(rand.New(rand.NewSource(1)))
	valid := string(bytes.TrimSpace(instanceJSON(f, in)))
	f.Add(`{"instance":` + valid + `}`)
	f.Add(`{"instance":` + valid + `,"colors":3,"samples":6,"seed":42,"lazy":true,"kernel_stats":true}`)
	f.Add(`{"instance":` + valid + `,"prefer_stay":false}`)

	// A many-component clustered instance so the fuzzer exercises the
	// shard-and-stitch path (and its mutations of the shard knob).
	clustered := string(bytes.TrimSpace(instanceJSON(f, clusteredInstance(f, 1))))
	f.Add(`{"instance":` + clustered + `,"shard":true}`)
	f.Add(`{"instance":` + clustered + `,"shard":false,"colors":2,"samples":4}`)
	f.Add(`{"instance":` + clustered + `,"shard":true,"colors":3,"samples":6,"lazy":true}`)

	// The instio loader's own fuzz seeds, wrapped in the envelope — the
	// handler must reject or accept them exactly as gracefully.
	for _, inst := range []string{
		`{"version":1,"params":{"alpha":1,"beta":1,"radius_m":1,"charge_angle_deg":60,"receive_angle_deg":60,"slot_seconds":60},"chargers":[{"x":0,"y":0}],"tasks":[]}`,
		`{"version":1}`,
		`[]`,
		`{"version":1,"params":{"alpha":1,"beta":0,"radius_m":5,"charge_angle_deg":90,"receive_angle_deg":180,"slot_seconds":1},"chargers":[],"tasks":[{"x":1,"y":1,"phi_deg":0,"release_slot":0,"end_slot":2,"energy_j":10,"weight":1}]}`,
	} {
		f.Add(`{"instance":` + inst + `}`)
	}

	// Malformed envelopes and hostile options.
	f.Add(``)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`{"instance":null}`)
	f.Add(`{"instance":{},"colors":-100,"samples":-5}`)
	f.Add(`{"instance":{"version":1},"samples":99999999}`)
	f.Add(`{"instance":` + valid + `,"colors":1000000,"seed":-9223372036854775808}`)
	f.Add(`{"instance":` + valid + `}trailing`)
	// Horizon bomb: a single task ending at slot 2e9 must be rejected by
	// the MaxSlots cap, not scheduled (the greedy tables scale with K).
	f.Add(`{"instance":{"version":1,"params":{"alpha":1,"beta":0,"radius_m":5,"charge_angle_deg":90,"receive_angle_deg":180,"slot_seconds":1},"chargers":[{"x":0,"y":0}],"tasks":[{"x":1,"y":1,"phi_deg":0,"release_slot":0,"end_slot":2000000000,"energy_j":10,"weight":1}]}}`)
	f.Add(`{"instance":{"version":1,"params":{"alpha":1e308,"beta":1e308,"radius_m":1e308,"charge_angle_deg":360,"receive_angle_deg":360,"slot_seconds":1e-308},"chargers":[{"x":1e308,"y":-1e308}],"tasks":[{"x":0,"y":0,"phi_deg":1e20,"release_slot":0,"end_slot":1,"energy_j":1e-300,"weight":0}]}}`)

	f.Fuzz(func(t *testing.T, body string) {
		s := fuzzServer()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader([]byte(body)))
		s.ServeHTTP(rec, req) // must not panic — the fuzzer catches any
		checkJSONResponse(t, rec, body)
	})
}

// checkJSONResponse asserts the universal response contract: JSON
// Content-Type, a schedule document on 200/201, a consistent
// {"error","status"} object otherwise.
func checkJSONResponse(t *testing.T, rec *httptest.ResponseRecorder, input string) {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q on input %q", ct, input)
	}
	switch rec.Code {
	case http.StatusOK, http.StatusCreated:
		var resp struct {
			Schedule [][]int `json:"schedule"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("status %d body is not a schedule document: %v\n%s", rec.Code, err, rec.Body.Bytes())
		}
		if resp.Schedule == nil {
			t.Fatalf("status %d body has no schedule: %s", rec.Code, rec.Body.Bytes())
		}
	default:
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Fatalf("status %d body is not a JSON error: %v\n%s", rec.Code, err, rec.Body.Bytes())
		}
		if er.Error == "" || er.Status != rec.Code {
			t.Fatalf("status %d with inconsistent error body: %s", rec.Code, rec.Body.Bytes())
		}
	}
}

// fuzzSession is the long-lived session the PATCH fuzzer mutates, created
// lazily against the shared fuzz server and recreated when a prior input
// grew it past a size bound (accumulated adds would otherwise make later
// executions ever more expensive).
var fuzzSessID string

func fuzzSessionID(t *testing.T) string {
	s := fuzzServer()
	if fuzzSessID != "" {
		if sess := s.lookupSession(fuzzSessID); sess != nil {
			sess.mu.Lock()
			n := len(sess.p.In.Tasks)
			sess.mu.Unlock()
			if n < 200 {
				return fuzzSessID
			}
			do(s, http.MethodDelete, "/v1/session/"+fuzzSessID, nil)
		}
	}
	in := clusteredInstance(t, 77)
	body := `{"instance":` + string(bytes.TrimSpace(instanceJSON(t, in))) + `,"colors":2,"samples":4,"seed":3}`
	rec := do(s, http.MethodPost, "/v1/session", []byte(body))
	if rec.Code != http.StatusCreated {
		t.Fatalf("fuzz session create: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var resp sessionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	fuzzSessID = resp.SessionID
	return fuzzSessID
}

// FuzzSessionPatch: arbitrary bytes PATCHed into a live session must
// never panic the handler, must always yield well-formed JSON, and must
// leave the session consistent — readable via GET, zero pooled states
// checked out, task count within the mutation batch's bounds.
func FuzzSessionPatch(f *testing.F) {
	// Well-formed batches, then hostile ones. State carries across inputs
	// (refs get consumed, tasks accumulate) — robustness, not
	// reproducibility, is the contract under fuzz.
	f.Add(`{"mutations":[]}`)
	f.Add(`{"mutations":[{"op":"add","task":{"x":1,"y":1,"phi_deg":0,"release_slot":0,"end_slot":9,"energy_j":500,"weight":1}}]}`)
	f.Add(`{"mutations":[{"op":"remove","ref":1}]}`)
	f.Add(`{"mutations":[{"op":"complete","ref":2}]}`)
	f.Add(`{"mutations":[{"op":"remove","ref":3},{"op":"add","task":{"x":2,"y":3,"phi_deg":90,"release_slot":1,"end_slot":8,"energy_j":400,"weight":2}}]}`)
	f.Add(`{"mutations":[{"op":"add","task":{"x":1e999,"y":0,"phi_deg":0,"release_slot":0,"end_slot":9,"energy_j":10,"weight":1}}]}`)
	f.Add(`{"mutations":[{"op":"add","task":{"x":0,"y":0,"phi_deg":1e308,"release_slot":5,"end_slot":5,"energy_j":-1,"weight":-2}}]}`)
	f.Add(`{"mutations":[{"op":"remove","ref":-9223372036854775808},{"op":"remove","ref":9223372036854775807}]}`)
	f.Add(`{"mutations":[{"op":"pause"}]}`)
	f.Add(`{"mutations":[{"op":"add"}]}`)
	f.Add(`{"mutations":[{"op":"remove","ref":1},{"op":"remove","ref":1}]}`)
	f.Add(``)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`{"mutations":null}`)
	f.Add(`{"mutationz":[]}`)
	f.Add(`{"mutations":[]}trailing`)

	f.Fuzz(func(t *testing.T, body string) {
		s := fuzzServer()
		id := fuzzSessionID(t)
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPatch, "/v1/session/"+id, bytes.NewReader([]byte(body)))
		s.ServeHTTP(rec, req) // must not panic — the fuzzer catches any
		checkJSONResponse(t, rec, body)

		sess := s.lookupSession(id)
		if sess == nil {
			t.Fatalf("session vanished after PATCH %q", body)
		}
		sess.mu.Lock()
		leaked := sess.p.StatesInUse()
		tasks := len(sess.p.In.Tasks)
		viewTasks := sess.view.Tasks
		sess.mu.Unlock()
		if leaked != 0 {
			t.Fatalf("%d pooled states checked out after PATCH %q", leaked, body)
		}
		if rec.Code == http.StatusOK && viewTasks != tasks {
			t.Fatalf("view reports %d tasks, problem has %d after PATCH %q", viewTasks, tasks, body)
		}
		if rec := do(s, http.MethodGet, "/v1/session/"+id, nil); rec.Code != http.StatusOK {
			t.Fatalf("GET after PATCH %q: status %d", body, rec.Code)
		}
	})
}
