package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"haste/internal/obs"
)

// This file is the request-logging middleware: every request gets a fresh
// trace id (obs.NewID) that is returned in the X-Trace-Id response header,
// stored in the request context for handlers (the session lifecycle logs
// and traced responses echo it), and attached to the structured access-log
// line emitted when the handler returns. The logger defaults to discard
// (Config.Logger), so an unconfigured server logs nothing and pays only
// the slog Enabled check per request.

// traceIDKey is the context key under which the per-request trace id is
// stored.
type traceIDKey struct{}

// withTraceID returns ctx carrying the request's trace id.
func withTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// traceIDFrom returns the request's trace id, or "" outside the
// middleware (direct handler invocations in tests).
func traceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// statusWriter captures the response status for the access log while
// delegating everything else to the wrapped ResponseWriter. Flush is
// forwarded so the SSE subscribe stream keeps working through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// Status returns the logged status: what WriteHeader recorded, or 200 if
// the handler wrote nothing explicit.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// serveLogged is the ServeHTTP body: assign the trace id, expose it on the
// response, run the mux through the status-capturing writer, then emit one
// access-log line.
func (s *Server) serveLogged(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	id := obs.NewID()
	w.Header().Set("X-Trace-Id", id)
	sw := &statusWriter{ResponseWriter: w}
	r = r.WithContext(withTraceID(r.Context(), id))
	s.mux.ServeHTTP(sw, r)
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("trace_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.Status()),
		slog.Float64("elapsed_ms", float64(time.Since(t0))/float64(time.Millisecond)),
	)
}
