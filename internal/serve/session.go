package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	mrand "math/rand"
	"net/http"
	"sync"
	"time"

	"haste/internal/core"
	"haste/internal/instio"
	"haste/internal/model"
	"haste/internal/obs"
)

// This file is the session API: the streaming counterpart of the one-shot
// POST /v1/schedule. A session pins a mutable compiled problem server-side
// so task churn — arrivals, cancellations, completions — costs a delta
// patch plus a warm-started solve instead of re-uploading, re-compiling
// and re-solving the whole instance:
//
//	POST   /v1/session                — create from an instance; initial solve
//	GET    /v1/session/{id}           — latest schedule revision (no solve)
//	PATCH  /v1/session/{id}           — apply add/remove/complete mutations, re-solve warm
//	GET    /v1/session/{id}/subscribe — SSE stream of schedule revisions
//	DELETE /v1/session/{id}           — close the session
//
// The session's problem starts as a CloneCompiled of the cache-resident
// compiled problem (concurrent /v1/schedule requests keep solving the
// shared original), and every mutation goes through the delta operations
// of core/incremental.go with the dirty charger set fed into the next
// solve's warm start (core/warm.go). Solves run ShardOn — warm reuse is
// component-granular — which by the stitching contract yields exactly the
// monolithic utility; internal/difftest's mutation-walk sweep pins warm
// session solves bit-identical to cold from-scratch ones.
//
// Tasks are addressed by refs: stable int64 handles that survive the
// dense-ID swap-remove renumbering inside the compiled problem. The
// instance's initial tasks get refs 1..m in instance order; each "add"
// mutation's assigned ref is returned in the PATCH response.
//
// Concurrency: a session serializes its mutations and solves behind one
// mutex (concurrent PATCHes queue; each still holds a worker slot while
// it waits, and the slot-holder ahead of it is the one making progress).
// Subscribers never take the mutex for longer than a snapshot copy. A
// PATCH whose solve times out or loses its client keeps the mutations —
// they are applied and marked dirty — but does not advance the revision;
// any later PATCH (an empty mutation list is allowed for exactly this)
// re-solves from the accumulated state, and the abandoned solve releases
// every pooled EnergyState on its way out (core.TabularGreedyCtx's
// contract, asserted by the session lifecycle tests).

// sessionCreateRequest is the POST /v1/session body: the instance in the
// instio wire format plus the scheduling options fixed for the session's
// lifetime. Options are part of the warm-start fingerprint, so they are
// set once at creation rather than per PATCH.
type sessionCreateRequest struct {
	Instance json.RawMessage `json:"instance"`

	Colors     int   `json:"colors,omitempty"`
	Samples    int   `json:"samples,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	PreferStay *bool `json:"prefer_stay,omitempty"`
	Lazy       bool  `json:"lazy,omitempty"`

	// Trace asks for the phase breakdown of this request (same contract
	// as scheduleRequest.Trace).
	Trace bool `json:"trace,omitempty"`
}

// sessionMutation is one entry of a PATCH mutation list. Op "add" carries
// a task in the instio wire schema; "remove" (the task left the network)
// and "complete" (it finished charging) both carry the ref of the task to
// drop — they are distinguished for API clarity and metrics only.
type sessionMutation struct {
	Op   string           `json:"op"`
	Task *instio.FileTask `json:"task,omitempty"`
	Ref  int64            `json:"ref,omitempty"`
}

// sessionPatchRequest is the PATCH /v1/session/{id} body. An empty
// mutation list is allowed and simply re-solves (fully warm), which is
// how a client recovers the revision after a timed-out solve.
type sessionPatchRequest struct {
	Mutations []sessionMutation `json:"mutations"`

	// Trace asks for the phase breakdown of this request, including the
	// delta_patch span covering mutation validation and application.
	Trace bool `json:"trace,omitempty"`
}

// sessionView is one schedule revision as exposed on every session
// endpoint and SSE event.
type sessionView struct {
	Rev        int64   `json:"rev"`
	Tasks      int     `json:"tasks"`
	Slots      int     `json:"slots"`
	Schedule   [][]int `json:"schedule"`
	RUtility   float64 `json:"r_utility"`
	Shards     int     `json:"shards"`
	WarmReused int     `json:"warm_reused"`
}

// sessionResponse is the success body of create and PATCH.
type sessionResponse struct {
	SessionID string `json:"session_id"`
	sessionView
	Refs      []int64 `json:"refs,omitempty"` // refs assigned to this PATCH's adds, in op order
	ElapsedMS float64 `json:"elapsed_ms"`

	// TraceID and Trace are set when the request asked for tracing (same
	// contract as scheduleResponse).
	TraceID string      `json:"trace_id,omitempty"`
	Trace   []*obs.Node `json:"trace,omitempty"`
}

// session is one resident scheduling session.
type session struct {
	id string

	// Scheduling options, fixed at creation (the warm fingerprint).
	colors, samples int
	preferStay      bool
	lazy            bool
	seed            int64

	mu      sync.Mutex
	p       *core.Problem
	warm    *core.WarmStart
	rev     int64
	view    sessionView
	refOf   []int64       // dense task index → ref
	denseOf map[int64]int // ref → dense task index
	nextRef int64
	closed  bool
	watch   map[chan struct{}]struct{}
}

// registerSessionRoutes mounts the session endpoints (called by New).
func (s *Server) registerSessionRoutes() {
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/session/{id}", s.handleSessionGet)
	s.mux.HandleFunc("PATCH /v1/session/{id}", s.handleSessionPatch)
	s.mux.HandleFunc("GET /v1/session/{id}/subscribe", s.handleSessionSubscribe)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
}

func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on a working OS
	}
	return "s" + hex.EncodeToString(b[:])
}

func (s *Server) lookupSession(id string) *session {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return s.sessions[id]
}

// SessionCount returns the number of open sessions.
func (s *Server) SessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status, err := s.sessionCreate(w, r, t0)
	if err != nil {
		if status == statusClientGone {
			s.met.recordStatus(status)
		} else {
			s.writeError(w, status, err.Error())
		}
	}
	s.met.recordLatency(time.Since(t0))
}

func (s *Server) sessionCreate(w http.ResponseWriter, r *http.Request, t0 time.Time) (int, error) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		return http.StatusServiceUnavailable, errors.New("draining")
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req sessionCreateRequest
	tDecode := time.Now()
	if status, err := decodeStrictBody(r.Body, &req); err != nil {
		return status, err
	}
	var tr *obs.Trace
	if req.Trace {
		tr = obs.New()
		tr.Span("decode", tDecode, time.Since(tDecode))
	}
	if len(req.Instance) == 0 {
		return http.StatusBadRequest, errors.New("missing \"instance\"")
	}
	if eff := effectiveSamples(req.Colors, req.Samples); eff > s.cfg.MaxSamples {
		return http.StatusBadRequest,
			fmt.Errorf("effective samples %d exceeds the limit %d", eff, s.cfg.MaxSamples)
	}
	if n := s.SessionCount(); n >= s.cfg.MaxSessions {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		return http.StatusTooManyRequests,
			fmt.Errorf("session limit reached (%d open)", n)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	asp := tr.Start("acquire_slot")
	release, status, err := s.acquireSlot(ctx, r, w)
	asp.End()
	if err != nil {
		return status, err
	}
	defer release()

	rsp := tr.Start("resolve_problem")
	shared, _, hit, err := s.resolveProblem(req.Instance)
	rsp.Bool("cache_hit", hit).End()
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("invalid instance: %v", err)
	}

	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	sess := &session{
		id:         newSessionID(),
		colors:     req.Colors,
		samples:    req.Samples,
		preferStay: req.PreferStay == nil || *req.PreferStay,
		lazy:       req.Lazy,
		seed:       seed,
		p:          shared.CloneCompiled(),
		denseOf:    make(map[int64]int, len(shared.In.Tasks)),
		watch:      make(map[chan struct{}]struct{}),
	}
	m := len(sess.p.In.Tasks)
	sess.refOf = make([]int64, m)
	for j := 0; j < m; j++ {
		ref := int64(j + 1)
		sess.refOf[j] = ref
		sess.denseOf[ref] = j
	}
	sess.nextRef = int64(m + 1)

	sess.mu.Lock()
	defer sess.mu.Unlock()
	s.met.scheduled.Add(1)
	if status, err := sess.solveLocked(ctx, s, r, tr); err != nil {
		return status, err
	}

	s.sessMu.Lock()
	s.sessions[sess.id] = sess
	s.sessMu.Unlock()
	s.met.sessionsCreated.Add(1)
	s.cfg.Logger.Info("session created",
		"trace_id", traceIDFrom(r.Context()),
		"session_id", sess.id,
		"tasks", len(sess.p.In.Tasks))

	resp := sessionResponse{
		SessionID:   sess.id,
		sessionView: sess.view,
		ElapsedMS:   float64(time.Since(t0)) / float64(time.Millisecond),
	}
	if tr != nil {
		resp.TraceID = traceIDFrom(r.Context())
		resp.Trace = tr.Tree()
	}
	s.writeJSON(w, http.StatusCreated, resp)
	return 0, nil
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(r.PathValue("id"))
	if sess == nil {
		s.writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.mu.Lock()
	view := sess.view
	sess.mu.Unlock()
	s.writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleSessionPatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status, err := s.sessionPatch(w, r, t0)
	if err != nil {
		if status == statusClientGone {
			s.met.recordStatus(status)
		} else {
			s.writeError(w, status, err.Error())
		}
	}
	s.met.recordLatency(time.Since(t0))
}

func (s *Server) sessionPatch(w http.ResponseWriter, r *http.Request, t0 time.Time) (int, error) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		return http.StatusServiceUnavailable, errors.New("draining")
	}
	sess := s.lookupSession(r.PathValue("id"))
	if sess == nil {
		return http.StatusNotFound, errors.New("no such session")
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req sessionPatchRequest
	tDecode := time.Now()
	if status, err := decodeStrictBody(r.Body, &req); err != nil {
		return status, err
	}
	var tr *obs.Trace
	if req.Trace {
		tr = obs.New()
		tr.Span("decode", tDecode, time.Since(tDecode))
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	asp := tr.Start("acquire_slot")
	release, status, err := s.acquireSlot(ctx, r, w)
	asp.End()
	if err != nil {
		return status, err
	}
	defer release()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return http.StatusGone, errors.New("session closed")
	}

	// Two-phase mutation handling: validate the whole batch against the
	// session's current (plus batch-simulated) task set, then apply — the
	// apply phase cannot fail, so a rejected batch changes nothing.
	psp := tr.Start("delta_patch").Int("mutations", int64(len(req.Mutations)))
	tasks, err := sess.validateMutationsLocked(req.Mutations)
	if err != nil {
		psp.End()
		return http.StatusBadRequest, err
	}
	refs := sess.applyMutationsLocked(req.Mutations, tasks)
	psp.End()
	s.met.sessionMutations.Add(int64(len(req.Mutations)))

	s.met.scheduled.Add(1)
	if status, err := sess.solveLocked(ctx, s, r, tr); err != nil {
		return status, err
	}

	resp := sessionResponse{
		SessionID:   sess.id,
		sessionView: sess.view,
		Refs:        refs,
		ElapsedMS:   float64(time.Since(t0)) / float64(time.Millisecond),
	}
	if tr != nil {
		resp.TraceID = traceIDFrom(r.Context())
		resp.Trace = tr.Tree()
	}
	s.writeJSON(w, http.StatusOK, resp)
	return 0, nil
}

// validateMutationsLocked checks every mutation of a batch without
// touching the problem: ops well-formed, added tasks valid for this
// instance's parameters, removed refs resolvable at their point in the
// batch. It returns the decoded tasks of the add ops, in op order.
func (sess *session) validateMutationsLocked(muts []sessionMutation) ([]model.Task, error) {
	var tasks []model.Task
	removed := make(map[int64]bool)
	added := make(map[int64]bool)
	next := sess.nextRef
	live := len(sess.refOf)
	for idx, mu := range muts {
		switch mu.Op {
		case "add":
			if mu.Task == nil {
				return nil, fmt.Errorf("mutation %d: \"add\" requires \"task\"", idx)
			}
			t := instio.TaskFromFile(*mu.Task, live)
			if err := sess.p.In.CheckTask(t); err != nil {
				return nil, fmt.Errorf("mutation %d: %v", idx, err)
			}
			tasks = append(tasks, t)
			added[next] = true
			next++
			live++
		case "remove", "complete":
			known := added[mu.Ref]
			if !known {
				_, ok := sess.denseOf[mu.Ref]
				known = ok && !removed[mu.Ref]
			}
			if !known {
				return nil, fmt.Errorf("mutation %d: no task with ref %d", idx, mu.Ref)
			}
			removed[mu.Ref] = true
			delete(added, mu.Ref)
			live--
		default:
			return nil, fmt.Errorf("mutation %d: unknown op %q (want add, remove or complete)", idx, mu.Op)
		}
	}
	return tasks, nil
}

// applyMutationsLocked applies a validated batch through the delta
// operations, maintaining the ref ↔ dense-index mapping across the
// swap-remove renumbering and feeding every dirty charger set into the
// warm start. It returns the refs assigned to the batch's adds.
func (sess *session) applyMutationsLocked(muts []sessionMutation, tasks []model.Task) []int64 {
	var refs []int64
	nextTask := 0
	for _, mu := range muts {
		var dirty []int
		switch mu.Op {
		case "add":
			t := tasks[nextTask]
			nextTask++
			var err error
			dirty, err = sess.p.AddTask(t)
			if err != nil {
				panic(fmt.Sprintf("serve: validated add failed: %v", err))
			}
			ref := sess.nextRef
			sess.nextRef++
			sess.refOf = append(sess.refOf, ref)
			sess.denseOf[ref] = len(sess.refOf) - 1
			refs = append(refs, ref)
		default: // "remove" / "complete", validated above
			dense := sess.denseOf[mu.Ref]
			var err error
			dirty, err = sess.p.RemoveTask(dense)
			if err != nil {
				panic(fmt.Sprintf("serve: validated remove failed: %v", err))
			}
			last := len(sess.refOf) - 1
			if dense != last {
				moved := sess.refOf[last]
				sess.refOf[dense] = moved
				sess.denseOf[moved] = dense
			}
			sess.refOf = sess.refOf[:last]
			delete(sess.denseOf, mu.Ref)
		}
		if sess.warm != nil {
			sess.warm.MarkDirty(dirty)
		}
	}
	return refs
}

// solveLocked runs one warm solve of the session's problem and, on
// success, advances the revision and wakes subscribers. A cancelled or
// timed-out solve leaves the revision untouched (the applied mutations
// stay, accumulated into the warm dirty set) and returns the same status
// mapping as /v1/schedule.
func (sess *session) solveLocked(ctx context.Context, s *Server, r *http.Request, tr *obs.Trace) (int, error) {
	opt := core.Options{
		Trace:      tr,
		Colors:     sess.colors,
		Samples:    sess.samples,
		PreferStay: sess.preferStay,
		Lazy:       sess.lazy,
		Workers:    s.cfg.CoreWorkers,
		// Warm reuse is component-granular, so sessions always take the
		// shard-and-stitch path — bit-identical utility by the stitching
		// contract, -1 padding past each component's horizon.
		Shard:       core.ShardOn,
		Rng:         mrand.New(mrand.NewSource(sess.seed)),
		Incumbent:   sess.warm,
		CollectWarm: true,
	}
	// A request that is already dead (client gone, timeout burned on queue
	// wait) gets no solve at all — its mutations are applied and dirty,
	// and the next PATCH picks them up.
	err := ctx.Err()
	var res core.Result
	if err == nil {
		res, err = core.TabularGreedyCtx(ctx, sess.p, opt)
	}
	if err != nil {
		if r.Context().Err() != nil {
			return statusClientGone, errors.New("client went away mid-solve")
		}
		return http.StatusGatewayTimeout,
			fmt.Errorf("solve exceeded the %s request timeout", s.cfg.RequestTimeout)
	}
	sess.warm = res.Warm
	sess.rev++
	sess.view = sessionView{
		Rev:        sess.rev,
		Tasks:      len(sess.p.In.Tasks),
		Slots:      res.Schedule.Slots(),
		Schedule:   res.Schedule.Policy,
		RUtility:   res.RUtility,
		Shards:     res.Shards,
		WarmReused: res.WarmReused,
	}
	for ch := range sess.watch {
		select {
		case ch <- struct{}{}:
		default: // already signalled; the subscriber will catch up
		}
	}
	s.met.sessionSolves.Add(1)
	s.met.sessionWarmReused.Add(int64(res.WarmReused))
	s.met.recordKernel(res.Kernel)
	s.met.recordShards(res.Shards)
	return 0, nil
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sessMu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.sessMu.Unlock()
	if sess == nil {
		s.writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.mu.Lock()
	sess.closed = true
	rev := sess.rev
	for ch := range sess.watch {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	sess.mu.Unlock()
	s.met.sessionsClosed.Add(1)
	s.cfg.Logger.Info("session closed",
		"trace_id", traceIDFrom(r.Context()),
		"session_id", id,
		"rev", rev)
	s.writeJSON(w, http.StatusOK, map[string]any{"session_id": id, "closed": true})
}

// handleSessionSubscribe streams schedule revisions as server-sent
// events: one "schedule" event per revision (coalescing — a subscriber
// that falls behind skips intermediate revisions and gets the latest),
// then a final "close" event when the session is deleted. The stream ends
// when the client disconnects, the session closes, or the server drains.
func (s *Server) handleSessionSubscribe(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(r.PathValue("id"))
	if sess == nil {
		s.writeError(w, http.StatusNotFound, "no such session")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch := make(chan struct{}, 1)
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		s.writeError(w, http.StatusGone, "session closed")
		return
	}
	sess.watch[ch] = struct{}{}
	sess.mu.Unlock()
	defer func() {
		sess.mu.Lock()
		delete(sess.watch, ch)
		sess.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	s.met.recordStatus(http.StatusOK)

	enc := json.NewEncoder(w)
	sent := int64(0) // last revision written; 0 = nothing yet
	for {
		sess.mu.Lock()
		view := sess.view
		closed := sess.closed
		sess.mu.Unlock()
		if view.Rev > sent {
			fmt.Fprintf(w, "event: schedule\ndata: ")
			_ = enc.Encode(view) // Encode appends the newline
			fmt.Fprintf(w, "\n")
			fl.Flush()
			sent = view.Rev
		}
		if closed || s.draining.Load() {
			fmt.Fprintf(w, "event: close\ndata: {}\n\n")
			fl.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}

// decodeStrictBody decodes a JSON request body with unknown fields and
// trailing data rejected, mapping oversized bodies to 413.
func decodeStrictBody(body interface{ Read([]byte) (int, error) }, v any) (int, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("malformed request: %v", err)
	}
	if dec.More() {
		return http.StatusBadRequest, errors.New("malformed request: trailing data after JSON body")
	}
	return 0, nil
}
