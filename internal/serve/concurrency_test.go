package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"haste/internal/core"
	"haste/internal/model"
	"haste/internal/workload"
)

// The service-boundary extension of the repo's bit-identity discipline
// (internal/difftest, DESIGN.md §3): N goroutines hammering the service
// with a mix of byte-identical, respelled and distinct instances must get
// back exactly the schedules a direct core.TabularGreedy call computes,
// and the cache counters must reconcile exactly with the request counts.
// CI runs this under -race, so the cache's singleflight and LRU locking
// are exercised as well as the shared-Problem concurrent scheduling path.

type hammerVariant struct {
	name string
	body []byte
	want core.Result // direct core reference for this instance + options
}

// buildVariants prepares the request mix: distinct instances, each in an
// indented and a compacted spelling (same canonical hash), with per-variant
// option sets mirrored into the direct reference call.
func buildVariants(t *testing.T, distinct int) ([]hammerVariant, []*model.Instance) {
	t.Helper()
	var variants []hammerVariant
	var instances []*model.Instance
	for d := 0; d < distinct; d++ {
		cfg := workload.SmallScale()
		cfg.NumChargers = 4 + d%3
		cfg.NumTasks = 8 + 2*(d%4)
		in := cfg.Generate(rand.New(rand.NewSource(int64(100 + d))))
		instances = append(instances, in)
		raw := instanceJSON(t, in)
		var compact bytes.Buffer
		if err := json.Compact(&compact, raw); err != nil {
			t.Fatal(err)
		}

		p, err := core.NewProblem(in)
		if err != nil {
			t.Fatal(err)
		}
		colors := 1 + d%3
		seed := int64(40 + d)
		want := core.TabularGreedy(p, core.Options{
			Colors: colors, Samples: 4 * colors, PreferStay: true, Workers: 1,
			Rng: rand.New(rand.NewSource(seed)),
		})
		opts := map[string]any{"colors": colors, "samples": 4 * colors, "seed": seed}
		variants = append(variants,
			hammerVariant{name: "indented", body: requestBody(t, raw, opts), want: want},
			hammerVariant{name: "compact", body: requestBody(t, compact.Bytes(), opts), want: want},
		)
	}
	return variants, instances
}

func TestConcurrentRequestsBitIdentical(t *testing.T) {
	const (
		distinct   = 4
		goroutines = 8
		perWorker  = 12
	)
	s := New(Config{CacheSize: 2 * distinct, MaxConcurrent: 4, QueueDepth: goroutines * perWorker})
	ts := httptest.NewServer(s)
	defer ts.Close()

	variants, _ := buildVariants(t, distinct)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perWorker)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < perWorker; r++ {
				v := variants[rng.Intn(len(variants))]
				res, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(v.body))
				if err != nil {
					errs <- err
					continue
				}
				body, err := io.ReadAll(res.Body)
				res.Body.Close()
				if err != nil {
					errs <- err
					continue
				}
				if res.StatusCode != http.StatusOK {
					errs <- errStatus(res.StatusCode, body)
					continue
				}
				var resp scheduleResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					errs <- err
					continue
				}
				if err := schedulesEqual(resp.Schedule, v.want.Schedule.Policy); err != nil {
					errs <- err
					continue
				}
				if resp.RUtility != v.want.RUtility {
					errs <- errUtility(resp.RUtility, v.want.RUtility)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("hammer: %v", err)
	}

	// Reconciliation: every schedule request resolved exactly one cache
	// outcome, and thanks to singleflight the misses are exactly the
	// distinct canonical instances (the cache is big enough to never
	// evict here).
	st := s.CacheStats()
	total := int64(goroutines * perWorker)
	if st.Hits+st.Misses+st.CompileErrors != total {
		t.Fatalf("cache outcomes %d hits + %d misses + %d errors != %d requests",
			st.Hits, st.Misses, st.CompileErrors, total)
	}
	if st.CompileErrors != 0 {
		t.Fatalf("unexpected compile errors: %+v", st)
	}
	if st.Misses != distinct {
		t.Fatalf("misses = %d, want exactly %d (one compile per distinct instance)", st.Misses, distinct)
	}
	if st.Evictions != 0 {
		t.Fatalf("unexpected evictions: %+v", st)
	}
	m := s.Metrics()
	if m.Scheduled != total {
		t.Fatalf("scheduled_total = %d, want %d", m.Scheduled, total)
	}
	if m.ByStatus["200"] != total {
		t.Fatalf("status 200 count = %d, want %d", m.ByStatus["200"], total)
	}
	if m.InFlight != 0 || m.Queued != 0 {
		t.Fatalf("gauges not back to zero: %+v", m)
	}

	// No pooled state may stay checked out across the whole hammer.
	for el := s.cache.ll.Front(); el != nil; el = el.Next() {
		p := el.Value.(*cacheEntry).p
		if n := p.StatesInUse(); n != 0 {
			t.Fatalf("cached problem leaked %d pooled states", n)
		}
	}
}

// TestThunderingHerdSingleCompile: many goroutines requesting the same
// never-seen instance at once must trigger exactly one NewProblem.
func TestThunderingHerdSingleCompile(t *testing.T) {
	const goroutines = 16
	s := New(Config{MaxConcurrent: goroutines, QueueDepth: goroutines})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := requestBody(t, instanceJSON(t, testInstance(t, 55)), nil)
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer res.Body.Close()
			raw, _ := io.ReadAll(res.Body)
			if res.StatusCode != http.StatusOK {
				errs <- errStatus(res.StatusCode, raw)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("herd: %v", err)
	}
	st := s.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (singleflight must dedupe the herd)", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, goroutines-1)
	}
}

type statusError struct {
	code int
	body string
}

func (e statusError) Error() string { return "unexpected status " + statusKey(e.code) + ": " + e.body }

func errStatus(code int, body []byte) error { return statusError{code, string(body)} }

type utilityError struct{ got, want float64 }

func (e utilityError) Error() string {
	b, _ := json.Marshal(map[string]float64{"got": e.got, "want": e.want})
	return "RUtility mismatch: " + string(b)
}

func errUtility(got, want float64) error { return utilityError{got, want} }
