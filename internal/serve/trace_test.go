package serve

import (
	"net/http"
	"testing"
	"time"

	"haste/internal/obs"
)

func rootNamed(nodes []*obs.Node, name string) *obs.Node {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// A traced schedule request returns the phase forest — decode, slot
// acquisition, problem resolution, and the core solve subtree — with a
// trace id matching the X-Trace-Id header, root durations summing to
// within the request's measured latency, and a schedule bit-identical to
// the untraced request.
func TestScheduleTraced(t *testing.T) {
	s := New(Config{})
	raw := instanceJSON(t, testInstance(t, 41))

	var plain scheduleResponse
	rec := post(s, "/v1/schedule", requestBody(t, raw, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("untraced status %d: %s", rec.Code, rec.Body.Bytes())
	}
	decodeResponse(t, rec.Body.Bytes(), &plain)
	if plain.TraceID != "" || plain.Trace != nil {
		t.Fatal("untraced response carries trace fields")
	}
	if rec.Header().Get("X-Trace-Id") == "" {
		t.Fatal("untraced response missing X-Trace-Id")
	}

	t0 := time.Now()
	rec = post(s, "/v1/schedule", requestBody(t, raw, map[string]any{"trace": true}))
	wallMS := float64(time.Since(t0)) / float64(time.Millisecond)
	if rec.Code != http.StatusOK {
		t.Fatalf("traced status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var traced scheduleResponse
	decodeResponse(t, rec.Body.Bytes(), &traced)

	if err := schedulesEqual(plain.Schedule, traced.Schedule); err != nil {
		t.Fatalf("traced schedule diverges: %v", err)
	}
	if traced.RUtility != plain.RUtility {
		t.Fatalf("traced utility %v != untraced %v", traced.RUtility, plain.RUtility)
	}
	if traced.TraceID == "" || traced.TraceID != rec.Header().Get("X-Trace-Id") {
		t.Fatalf("trace id %q does not match X-Trace-Id %q",
			traced.TraceID, rec.Header().Get("X-Trace-Id"))
	}
	for _, phase := range []string{"decode", "acquire_slot", "resolve_problem", "solve"} {
		if rootNamed(traced.Trace, phase) == nil {
			t.Fatalf("missing %s root span: %+v", phase, traced.Trace)
		}
	}
	// This instance was compiled by the untraced request above, so the
	// resolve span must report a cache hit.
	if rootNamed(traced.Trace, "resolve_problem").Attrs["cache_hit"] != 1 {
		t.Errorf("resolve_problem not a cache hit: %v", rootNamed(traced.Trace, "resolve_problem").Attrs)
	}
	if rootNamed(traced.Trace, "solve").Children == nil {
		t.Errorf("solve root has no phase children")
	}
	// Root spans are sequential phases of one handler, so their durations
	// sum to within the measured request latency.
	if sum := obs.RootDurationMS(traced.Trace); sum > wallMS {
		t.Errorf("root spans sum to %.3fms, more than the request's %.3fms", sum, wallMS)
	}
	if traced.ElapsedMS > wallMS {
		t.Errorf("elapsed_ms %.3f exceeds the measured %.3fms", traced.ElapsedMS, wallMS)
	}
}

// Traced session requests: create returns the solve subtree, PATCH adds
// the delta_patch span with its mutation count, both echo the trace id.
func TestSessionTraced(t *testing.T) {
	s := New(Config{})
	raw := instanceJSON(t, testInstance(t, 42))

	rec := post(s, "/v1/session", requestBody(t, raw, map[string]any{"trace": true}))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var created sessionResponse
	decodeResponse(t, rec.Body.Bytes(), &created)
	if created.TraceID == "" || created.TraceID != rec.Header().Get("X-Trace-Id") {
		t.Fatalf("create trace id %q vs header %q", created.TraceID, rec.Header().Get("X-Trace-Id"))
	}
	for _, phase := range []string{"decode", "acquire_slot", "resolve_problem", "solve"} {
		if rootNamed(created.Trace, phase) == nil {
			t.Fatalf("create missing %s root span", phase)
		}
	}

	// An empty mutation list is a valid PATCH (pure warm re-solve); its
	// trace still carries the delta_patch span.
	rec = do(s, http.MethodPatch, "/v1/session/"+created.SessionID, []byte(`{"mutations":[],"trace":true}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("patch status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var patched sessionResponse
	decodeResponse(t, rec.Body.Bytes(), &patched)
	if patched.TraceID == "" {
		t.Fatal("patch response missing trace id")
	}
	dp := rootNamed(patched.Trace, "delta_patch")
	if dp == nil {
		t.Fatalf("patch missing delta_patch span: %+v", patched.Trace)
	}
	if dp.Attrs["mutations"] != 0 {
		t.Errorf("delta_patch mutations attr = %d, want 0", dp.Attrs["mutations"])
	}
	if rootNamed(patched.Trace, "solve") == nil {
		t.Fatal("patch missing solve span")
	}
}
