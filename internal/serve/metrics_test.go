package serve

import (
	"bytes"
	"strconv"
	"testing"
	"time"
)

// Bucket boundaries are inclusive upper bounds (Prometheus le
// semantics): a latency exactly on a bound lands in that bound's bucket,
// one just past it in the next, and anything beyond the last bound in
// the overflow bucket.
func TestLatencyHistogramBoundaries(t *testing.T) {
	m := newMetrics()
	record := func(ms float64) {
		m.recordLatency(time.Duration(ms * float64(time.Millisecond)))
	}
	record(0.5)  // below the first bound → bucket 0 (le=1)
	record(1)    // exactly on the first bound → bucket 0
	record(1.5)  // past it → bucket 1 (le=2)
	record(2)    // exactly on the second bound → bucket 1
	record(5000) // exactly on the last bound → last finite bucket
	record(5001) // past every bound → overflow

	snap := m.snapshot(CacheStats{}, false, 0)
	lat := snap.Latency
	want := make([]int64, len(latencyBucketsMS)+1)
	want[0] = 2
	want[1] = 2
	want[len(latencyBucketsMS)-1] = 1 // le=5000
	want[len(latencyBucketsMS)] = 1   // +Inf overflow
	for i := range want {
		if lat.Counts[i] != want[i] {
			t.Errorf("bucket %d count %d, want %d", i, lat.Counts[i], want[i])
		}
	}
	if lat.Count != 6 {
		t.Errorf("count %d, want 6", lat.Count)
	}
}

// The JSON sum/count and the per-bucket counts must reconcile: counts sum
// to Count, and SumMS equals the microsecond-resolution sum of the
// recorded durations.
func TestLatencyHistogramSumReconciliation(t *testing.T) {
	m := newMetrics()
	durations := []time.Duration{
		750 * time.Microsecond,
		3 * time.Millisecond,
		42 * time.Millisecond,
		1200 * time.Millisecond,
		7 * time.Second,
	}
	var wantSumUS int64
	for _, d := range durations {
		m.recordLatency(d)
		wantSumUS += d.Microseconds()
	}
	lat := m.snapshot(CacheStats{}, false, 0).Latency
	var total int64
	for _, c := range lat.Counts {
		total += c
	}
	if total != lat.Count || lat.Count != int64(len(durations)) {
		t.Errorf("bucket counts sum %d, count %d, want %d", total, lat.Count, len(durations))
	}
	if want := float64(wantSumUS) / 1e3; lat.SumMS != want {
		t.Errorf("sum_ms %v, want %v", lat.SumMS, want)
	}
}

// The overflow bucket is pinned through the Prometheus rendering: a
// latency beyond the last bound appears only in the +Inf bucket, and the
// cumulative buckets re-express the JSON counts exactly.
func TestLatencyHistogramOverflowPrometheus(t *testing.T) {
	m := newMetrics()
	m.recordLatency(3 * time.Millisecond)
	m.recordLatency(6 * time.Second) // beyond le=5000ms

	snap := m.snapshot(CacheStats{}, false, 0)
	var buf bytes.Buffer
	writePrometheus(&buf, snap)
	samples := lintPromText(t, buf.String())

	lastLE := strconv.FormatFloat(latencyBucketsMS[len(latencyBucketsMS)-1]/1e3, 'g', -1, 64)
	if got := sampleValue(t, samples, "haste_request_duration_seconds_bucket", "le", lastLE); got != 1 {
		t.Errorf("last finite bucket = %v, want 1 (overflow must not leak in)", got)
	}
	if got := sampleValue(t, samples, "haste_request_duration_seconds_bucket", "le", "+Inf"); got != 2 {
		t.Errorf("+Inf bucket = %v, want 2", got)
	}
	if got := sampleValue(t, samples, "haste_request_duration_seconds_count"); got != 2 {
		t.Errorf("count = %v, want 2", got)
	}
}
