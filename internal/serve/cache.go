package serve

import (
	"container/list"
	"sync"

	"haste/internal/core"
)

// problemCache is the content-addressed compiled-problem cache at the
// heart of the service: canonical instance hash (instio.File.Hash) →
// compiled *core.Problem. A hit skips core.NewProblem entirely — the
// request reuses the compiled cover lists, slot windows and the
// AcquireState/ReleaseState pool of the cached Problem, which is safe
// because a Problem is immutable after compilation (the state pool is the
// only mutable part and is itself concurrency-safe).
//
// Two mechanisms bound the work under concurrency:
//
//   - LRU eviction caps resident compiled problems at max entries.
//     Evicted problems stay valid for requests still holding them (the
//     garbage collector retires them once the last request finishes).
//   - Singleflight compilation: the first request for an absent hash
//     compiles; concurrent requests for the same hash wait on that one
//     compilation instead of stampeding NewProblem ("thundering herd").
//     Waiters count as hits — they skipped a compile.
//
// A second, cheaper layer short-circuits repeated identical bodies: the
// byte memo maps the SHA-256 of the raw (uncanonicalized) instance bytes
// to the canonical hash, so a warm request with a byte-identical instance
// skips JSON-decoding the instance altogether. The memo is only ever a
// shortcut to the canonical key — differently formatted spellings of the
// same instance miss the memo but still hit the problem cache.
type problemCache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used, values are *cacheEntry
	byHash   map[string]*list.Element
	inflight map[string]*compileCall

	memoMax int
	memoLL  *list.List // values are *memoEntry
	memoBy  map[string]*list.Element

	// Counters, guarded by mu. Every get() resolves to exactly one of
	// hits / misses / compileErrors, so for any quiesced workload
	// hits + misses + compileErrors == schedule requests that reached
	// the cache — the reconciliation the concurrency suite asserts.
	hits          int64
	misses        int64
	compileErrors int64
	evictions     int64
	memoHits      int64
}

type cacheEntry struct {
	hash string
	p    *core.Problem
}

type compileCall struct {
	done chan struct{}
	p    *core.Problem
	err  error
}

type memoEntry struct {
	byteHash  string
	canonHash string
}

func newProblemCache(max, memoMax int) *problemCache {
	return &problemCache{
		max:      max,
		ll:       list.New(),
		byHash:   make(map[string]*list.Element),
		inflight: make(map[string]*compileCall),
		memoMax:  memoMax,
		memoLL:   list.New(),
		memoBy:   make(map[string]*list.Element),
	}
}

// CacheStats is a point-in-time snapshot of the cache counters, exposed on
// /metrics and asserted by the tests.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	CompileErrors int64 `json:"compile_errors"`
	Evictions     int64 `json:"evictions"`
	MemoHits      int64 `json:"byte_memo_hits"`
	Entries       int   `json:"entries"`
}

func (c *problemCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		CompileErrors: c.compileErrors,
		Evictions:     c.evictions,
		MemoHits:      c.memoHits,
		Entries:       c.ll.Len(),
	}
}

// lookup returns the cached problem for canonical hash h if it is resident
// or currently compiling (joining the in-flight compile), without the
// ability to compile itself. ok = false means the caller must decode the
// instance and call get with a compile function; nothing is counted in
// that case, so the later get() still records exactly one outcome.
func (c *problemCache) lookup(h string) (*core.Problem, bool, error) {
	c.mu.Lock()
	if el, ok := c.byHash[h]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		p := el.Value.(*cacheEntry).p
		c.mu.Unlock()
		return p, true, nil
	}
	call, ok := c.inflight[h]
	c.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	<-call.done
	c.mu.Lock()
	if call.err != nil {
		c.compileErrors++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	return call.p, true, call.err
}

// get returns the compiled problem for canonical hash h, compiling it at
// most once across concurrent callers. The leader counts as a miss (it
// paid NewProblem); joiners count as hits. Failed compilations are not
// cached — the instance is invalid and fails fast on revalidation.
func (c *problemCache) get(h string, compile func() (*core.Problem, error)) (*core.Problem, bool, error) {
	c.mu.Lock()
	if el, ok := c.byHash[h]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		p := el.Value.(*cacheEntry).p
		c.mu.Unlock()
		return p, true, nil
	}
	if call, ok := c.inflight[h]; ok {
		c.mu.Unlock()
		<-call.done
		c.mu.Lock()
		if call.err != nil {
			c.compileErrors++
		} else {
			c.hits++
		}
		c.mu.Unlock()
		return call.p, true, call.err
	}
	call := &compileCall{done: make(chan struct{})}
	c.inflight[h] = call
	c.mu.Unlock()

	call.p, call.err = compile()

	c.mu.Lock()
	delete(c.inflight, h)
	if call.err != nil {
		c.compileErrors++
	} else {
		c.misses++
		c.insertLocked(h, call.p)
	}
	c.mu.Unlock()
	close(call.done)
	if call.err != nil {
		return nil, false, call.err
	}
	return call.p, false, nil
}

// insertLocked adds a freshly compiled problem and evicts the LRU tail
// beyond the bound. Callers hold mu.
func (c *problemCache) insertLocked(h string, p *core.Problem) {
	c.byHash[h] = c.ll.PushFront(&cacheEntry{hash: h, p: p})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.byHash, ent.hash)
		c.evictions++
	}
}

// memoGet resolves a raw-bytes hash to the canonical hash of the instance
// those bytes decode to, when this exact body has been seen before.
func (c *problemCache) memoGet(byteHash string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.memoBy[byteHash]
	if !ok {
		return "", false
	}
	c.memoLL.MoveToFront(el)
	c.memoHits++
	return el.Value.(*memoEntry).canonHash, true
}

// memoAdd records the byte-hash → canonical-hash mapping (bounded LRU).
func (c *problemCache) memoAdd(byteHash, canonHash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.memoBy[byteHash]; ok {
		c.memoLL.MoveToFront(el)
		return
	}
	c.memoBy[byteHash] = c.memoLL.PushFront(&memoEntry{byteHash: byteHash, canonHash: canonHash})
	for c.memoLL.Len() > c.memoMax {
		tail := c.memoLL.Back()
		ent := tail.Value.(*memoEntry)
		c.memoLL.Remove(tail)
		delete(c.memoBy, ent.byteHash)
	}
}
