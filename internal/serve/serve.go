// Package serve is the resident scheduling service: a long-running HTTP
// JSON API that accepts HASTE instances in the instio wire format and
// schedules them with the offline TabularGreedy, amortizing instance
// compilation across requests through a content-addressed compiled-problem
// cache (cache.go). The one-shot CLIs pay parse + NewProblem + schedule on
// every invocation; the service pays NewProblem once per distinct instance
// and the schedule runs of concurrent requests against the same instance
// share one compilation.
//
// Endpoints:
//
//	POST /v1/schedule — schedule an instance (scheduleRequest → scheduleResponse)
//	GET  /healthz     — liveness/readiness (503 once draining)
//	GET  /metrics     — JSON metrics snapshot (metrics.go)
//
// plus the incremental session API of session.go (POST /v1/session and
// friends), which pins a mutable compiled problem server-side and turns
// task churn into delta patches plus warm-started solves.
//
// Load discipline: a bounded worker pool (Config.MaxConcurrent slots) with
// a bounded wait queue (Config.QueueDepth) schedules at most MaxConcurrent
// requests at once; a request arriving with the queue full is shed
// immediately with 429 and a Retry-After hint instead of being buffered
// without bound. Every request runs under a wall-clock timeout
// (Config.RequestTimeout) that covers queue wait and scheduling; the
// timeout and client disconnects propagate into the greedy loop through
// core.TabularGreedyCtx, so an abandoned request frees its worker slot
// within one greedy stage and leaks no pooled state.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"haste/internal/core"
	"haste/internal/instio"
	"haste/internal/obs"
)

// Config tunes the service. The zero value selects the documented
// defaults.
type Config struct {
	// CacheSize bounds the resident compiled problems (LRU evicted
	// beyond it). Default 64.
	CacheSize int

	// MaxConcurrent is the number of worker slots: requests scheduling
	// at the same time. Default runtime.GOMAXPROCS(0).
	MaxConcurrent int

	// QueueDepth bounds how many admitted requests may wait for a slot;
	// beyond it the service sheds load with 429. Default 64.
	QueueDepth int

	// RequestTimeout is the per-request wall clock covering queue wait
	// and scheduling. Default 30s.
	RequestTimeout time.Duration

	// RetryAfter is the hint sent with 429/503 responses. Default 1s.
	RetryAfter time.Duration

	// MaxBodyBytes caps the request body. Default 8 MiB.
	MaxBodyBytes int64

	// MaxSamples caps the effective Monte-Carlo samples of a request —
	// the explicit samples field, or the 8·Colors default when it is
	// omitted (memory and work on the scheduling path are proportional
	// to it). Default 1024.
	MaxSamples int

	// MaxSlots caps the instance horizon K (the scheduler's tables are
	// proportional to chargers × K × samples, so an instance with a
	// task ending at slot 2^31 must be rejected, not scheduled).
	// Default 8192.
	MaxSlots int

	// MaxSessions bounds the concurrently open incremental sessions
	// (each pins a compiled problem and a warm start in memory); session
	// creation beyond it is refused with 429. Default 64.
	MaxSessions int

	// CoreWorkers is core.Options.Workers for every scheduling run.
	// The default 1 keeps requests on the sequential path — the service
	// gets its parallelism from concurrent requests, and Workers never
	// changes results (bit-identical by the repo's determinism
	// contract).
	CoreWorkers int

	// Logger receives the structured access log (one line per request,
	// with the request's trace id) and the session lifecycle events.
	// Default: discard.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1024
	}
	if c.MaxSlots <= 0 {
		c.MaxSlots = 8192
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.CoreWorkers <= 0 {
		c.CoreWorkers = 1
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Server is the scheduling service. Create with New, mount as an
// http.Handler.
type Server struct {
	cfg      Config
	cache    *problemCache
	met      *metrics
	sem      chan struct{}
	draining atomic.Bool
	mux      *http.ServeMux

	sessMu   sync.Mutex
	sessions map[string]*session
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newProblemCache(cfg.CacheSize, 4*cfg.CacheSize),
		met:      newMetrics(),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		mux:      http.NewServeMux(),
		sessions: make(map[string]*session),
	}
	s.registerSessionRoutes()
	s.mux.HandleFunc("/v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// ServeHTTP implements http.Handler. Every request passes through the
// logging middleware (logging.go): a fresh trace id in the X-Trace-Id
// response header and one structured access-log line on completion.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.serveLogged(w, r)
}

// BeginDrain flips the service into draining: /healthz turns 503 so load
// balancers stop routing here, and new schedule requests are refused with
// 503 while in-flight ones run to completion. Callers then stop the
// http.Server with Shutdown, which waits for the in-flight handlers.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// CacheStats returns the compiled-problem cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// Metrics returns the full metrics snapshot served on /metrics.
func (s *Server) Metrics() MetricsSnapshot {
	return s.met.snapshot(s.cache.stats(), s.draining.Load(), s.SessionCount())
}

// scheduleRequest is the POST /v1/schedule body: the instance in the
// instio wire format plus scheduling options mirroring core.Options.
type scheduleRequest struct {
	// Instance is the instio file document (kept raw so byte-identical
	// warm requests skip decoding it; see problemCache).
	Instance json.RawMessage `json:"instance"`

	Colors  int   `json:"colors,omitempty"`  // core.Options.Colors; default 1
	Samples int   `json:"samples,omitempty"` // core.Options.Samples; default 8·Colors
	Seed    int64 `json:"seed,omitempty"`    // RNG seed; 0 selects the default seed 1

	// PreferStay mirrors core.Options.PreferStay; omitted means true
	// (the paper's default).
	PreferStay *bool `json:"prefer_stay,omitempty"`

	Lazy        bool `json:"lazy,omitempty"`         // core.Options.Lazy
	KernelStats bool `json:"kernel_stats,omitempty"` // include kernel counters in the response

	// Shard mirrors core.Options.Shard: omitted means ShardAuto (shard
	// when the instance decomposes into enough independent components),
	// true forces the shard-and-stitch path, false forces monolithic.
	// Either way results obey the stitching contract, so clients toggling
	// this see identical utilities.
	Shard *bool `json:"shard,omitempty"`

	// Trace asks for the per-phase breakdown of this request: the response
	// carries the obs span forest (decode, slot acquisition, problem
	// resolution, and the core solve subtree) plus the request's trace id.
	// Tracing never changes the schedule — spans bracket phases, not
	// inner loops.
	Trace bool `json:"trace,omitempty"`
}

// scheduleResponse is the success body.
type scheduleResponse struct {
	InstanceHash string            `json:"instance_hash"`
	Cache        string            `json:"cache"` // "hit" or "miss"
	Slots        int               `json:"slots"`
	Schedule     [][]int           `json:"schedule"`
	RUtility     float64           `json:"r_utility"`
	ElapsedMS    float64           `json:"elapsed_ms"`
	Kernel       *core.KernelStats `json:"kernel,omitempty"`

	// Shards is the number of independently scheduled components when the
	// run took the shard-and-stitch path (omitted for monolithic runs).
	Shards int `json:"shards,omitempty"`

	// TraceID and Trace are set when the request asked for tracing: the id
	// matching the X-Trace-Id header and access log, and the recorded
	// phase forest (root span durations sum to at most ElapsedMS).
	TraceID string      `json:"trace_id,omitempty"`
	Trace   []*obs.Node `json:"trace,omitempty"`
}

// errorResponse is the body of every non-2xx response the service writes:
// errors are always well-formed JSON.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// statusClientGone is the nginx-convention code recorded in metrics when
// the client disconnected before the response (never actually written to
// the wire — there is no client left to read it).
const statusClientGone = 499

// healthResponse is the GET /healthz body: liveness plus enough build
// identity to tell which binary is answering.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version,omitempty"`
	Module        string  `json:"module,omitempty"`
	ModuleVersion string  `json:"module_version,omitempty"`
	VCSRevision   string  `json:"vcs_revision,omitempty"`
}

// buildIdentity reads the binary's build info once: module path and
// version, the toolchain, and the VCS revision when the binary was built
// from a checkout.
var buildIdentity = sync.OnceValue(func() healthResponse {
	var h healthResponse
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return h
	}
	h.GoVersion = bi.GoVersion
	h.Module = bi.Main.Path
	h.ModuleVersion = bi.Main.Version
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			h.VCSRevision = kv.Value
		}
	}
	return h
})

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := buildIdentity()
	h.UptimeSeconds = time.Since(s.met.start).Seconds()
	if s.draining.Load() {
		h.Status = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	h.Status = "ok"
	s.writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", prometheusContentType)
		w.WriteHeader(http.StatusOK)
		writePrometheus(w, s.Metrics())
		s.met.recordStatus(http.StatusOK)
		return
	}
	s.writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.writeError(w, http.StatusNotFound, fmt.Sprintf("no such route %s", r.URL.Path))
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	status, err := s.schedule(w, r, t0)
	if err != nil {
		if status == statusClientGone {
			// The connection is gone; record for observability only.
			s.met.recordStatus(status)
		} else {
			s.writeError(w, status, err.Error())
		}
	}
	s.met.recordLatency(time.Since(t0))
}

// schedule runs one request end to end. It returns (0, nil) after writing
// a success response itself, or the error status to write.
func (s *Server) schedule(w http.ResponseWriter, r *http.Request, t0 time.Time) (int, error) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errors.New("use POST")
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		return http.StatusServiceUnavailable, errors.New("draining")
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req scheduleRequest
	tDecode := time.Now()
	if status, err := decodeStrictBody(r.Body, &req); err != nil {
		return status, err
	}
	// The decode finishes before the trace can exist (the trace flag is
	// inside the body), so its span is retro-recorded. A nil tr keeps
	// every span call below a no-op.
	var tr *obs.Trace
	if req.Trace {
		tr = obs.New()
		tr.Span("decode", tDecode, time.Since(tDecode))
	}
	if len(req.Instance) == 0 {
		return http.StatusBadRequest, errors.New("missing \"instance\"")
	}
	if eff := effectiveSamples(req.Colors, req.Samples); eff > s.cfg.MaxSamples {
		return http.StatusBadRequest,
			fmt.Errorf("effective samples %d exceeds the limit %d", eff, s.cfg.MaxSamples)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	asp := tr.Start("acquire_slot")
	release, status, err := s.acquireSlot(ctx, r, w)
	asp.End()
	if err != nil {
		return status, err
	}
	defer release()

	rsp := tr.Start("resolve_problem")
	p, hash, hit, err := s.resolveProblem(req.Instance)
	rsp.Bool("cache_hit", hit).End()
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("invalid instance: %v", err)
	}

	opt := core.Options{
		Trace: tr,
		Colors:      req.Colors,
		Samples:     req.Samples,
		PreferStay:  req.PreferStay == nil || *req.PreferStay,
		Lazy:        req.Lazy,
		Workers:     s.cfg.CoreWorkers,
		KernelStats: req.KernelStats,
	}
	if req.Shard != nil {
		if *req.Shard {
			opt.Shard = core.ShardOn
		} else {
			opt.Shard = core.ShardOff
		}
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	opt.Rng = rand.New(rand.NewSource(seed))

	s.met.scheduled.Add(1)
	res, err := core.TabularGreedyCtx(ctx, p, opt)
	if err != nil {
		if r.Context().Err() != nil {
			return statusClientGone, errors.New("client went away mid-schedule")
		}
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		return http.StatusGatewayTimeout,
			fmt.Errorf("scheduling exceeded the %s request timeout", s.cfg.RequestTimeout)
	}
	s.met.recordKernel(res.Kernel)
	s.met.recordShards(res.Shards)

	resp := scheduleResponse{
		Shards:       res.Shards,
		InstanceHash: hash,
		Cache:        "miss",
		Slots:        res.Schedule.Slots(),
		Schedule:     res.Schedule.Policy,
		RUtility:     res.RUtility,
		ElapsedMS:    float64(time.Since(t0)) / float64(time.Millisecond),
	}
	if hit {
		resp.Cache = "hit"
	}
	if req.KernelStats {
		ks := res.Kernel
		resp.Kernel = &ks
	}
	if tr != nil {
		resp.TraceID = traceIDFrom(r.Context())
		resp.Trace = tr.Tree()
	}
	s.writeJSON(w, http.StatusOK, resp)
	return 0, nil
}

// acquireSlot is the admission control shared by the one-shot and session
// scheduling paths: take a worker slot immediately or a bounded queue
// position, shedding with 429 beyond the queue depth. On success the
// returned release func must be deferred; on failure it returns the error
// status to write (or statusClientGone when there is nobody left to read
// it). ctx must already carry the request timeout.
func (s *Server) acquireSlot(ctx context.Context, r *http.Request, w http.ResponseWriter) (release func(), status int, err error) {
	select {
	case s.sem <- struct{}{}:
	default:
		if s.met.queued.Add(1) > int64(s.cfg.QueueDepth) {
			s.met.queued.Add(-1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			return nil, http.StatusTooManyRequests,
				fmt.Errorf("queue full (%d scheduling, %d queued)", s.cfg.MaxConcurrent, s.cfg.QueueDepth)
		}
		select {
		case s.sem <- struct{}{}:
			s.met.queued.Add(-1)
		case <-ctx.Done():
			s.met.queued.Add(-1)
			if r.Context().Err() != nil {
				return nil, statusClientGone, errors.New("client went away while queued")
			}
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			return nil, http.StatusServiceUnavailable, errors.New("timed out waiting for a worker slot")
		}
	}
	s.met.inFlight.Add(1)
	return func() {
		s.met.inFlight.Add(-1)
		<-s.sem
	}, 0, nil
}

// resolveProblem turns the raw instance bytes into a compiled Problem via
// the two cache layers: the byte memo (identical bodies skip JSON decode)
// and the content-addressed compiled-problem cache (identical canonical
// instances skip NewProblem). hit reports whether NewProblem was skipped.
func (s *Server) resolveProblem(raw json.RawMessage) (p *core.Problem, hash string, hit bool, err error) {
	sum := sha256.Sum256(raw)
	byteHash := string(sum[:])
	if canon, ok := s.cache.memoGet(byteHash); ok {
		if p, found, err := s.cache.lookup(canon); found {
			return p, canon, true, err
		}
		// Compiled problem was evicted since the memo entry was written;
		// fall through to the full decode + compile path.
	}

	var f instio.File
	if err := strictUnmarshal(raw, &f); err != nil {
		return nil, "", false, err
	}
	canon, err := f.Hash()
	if err != nil {
		return nil, "", false, err
	}
	s.cache.memoAdd(byteHash, canon)
	p, hit, err = s.cache.get(canon, func() (*core.Problem, error) {
		in, err := f.ToInstance()
		if err != nil {
			return nil, err
		}
		if k := in.Horizon(); k > s.cfg.MaxSlots {
			return nil, fmt.Errorf("horizon %d slots exceeds the limit %d", k, s.cfg.MaxSlots)
		}
		return core.NewProblem(in)
	})
	if err != nil {
		return nil, "", false, err
	}
	return p, canon, hit, nil
}

// effectiveSamples mirrors core.Options.normalize: the Monte-Carlo sample
// count a request will actually run with — 1 at C ≤ 1, the explicit
// samples field otherwise, defaulting to 8·C.
func effectiveSamples(colors, samples int) int {
	if colors < 1 {
		colors = 1
	}
	if colors > 255 {
		colors = 255
	}
	if colors == 1 {
		return 1
	}
	if samples > 0 {
		return samples
	}
	return 8 * colors
}

// strictUnmarshal decodes with the same strictness as instio.Load:
// unknown fields and trailing data are errors.
func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after instance document")
	}
	return nil
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
	s.met.recordStatus(status)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, errorResponse{Error: msg, Status: status})
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
