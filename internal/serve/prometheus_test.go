package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// ---------------------------------------------------------------------------
// Vendored promtool-style lint: a minimal parser/checker of the text
// exposition format (version 0.0.4), so CI catches a malformed scrape
// without a Prometheus dependency. It enforces the rules `promtool check
// metrics` would: names well-formed, every sample preceded by a TYPE for
// its family, counters suffixed _total, no duplicate samples, histograms
// with a +Inf bucket, non-decreasing cumulative buckets, and _count equal
// to the +Inf bucket.
// ---------------------------------------------------------------------------

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// key is the deduplication identity: name plus sorted label pairs.
func (s promSample) key() string {
	pairs := make([]string, 0, len(s.labels))
	for k, v := range s.labels {
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return s.name + "{" + strings.Join(pairs, ",") + "}"
}

// parsePromText parses an exposition document into samples and the
// declared family types, failing on any syntax error.
func parsePromText(t *testing.T, text string) ([]promSample, map[string]string) {
	t.Helper()
	types := make(map[string]string)
	helps := make(map[string]bool)
	var samples []promSample
	sc := bufio.NewScanner(strings.NewReader(text))
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln, line)
			}
			name := fields[2]
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q", ln, name)
			}
			if fields[1] == "HELP" {
				if helps[name] {
					t.Fatalf("line %d: duplicate HELP for %s", ln, name)
				}
				helps[name] = true
				continue
			}
			typ := fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln, typ)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, name)
			}
			types[name] = typ
			continue
		}
		sample, err := parsePromSample(line)
		if err != nil {
			t.Fatalf("line %d: %v", ln, err)
		}
		samples = append(samples, sample)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

func parsePromSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced braces in %q", line)
		}
		s.name = rest[:i]
		for _, part := range strings.Split(rest[i+1:j], ",") {
			m := promLabelRe.FindStringSubmatch(part)
			if m == nil {
				return s, fmt.Errorf("bad label %q", part)
			}
			s.labels[m[1]] = m[2]
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.name, rest = fields[0], fields[1]
	}
	if !promNameRe.MatchString(s.name) {
		return s, fmt.Errorf("bad metric name %q", s.name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s, nil
}

// familyOf strips the histogram sample suffixes back to the declared
// family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// lintPromText runs the full lint over an exposition document.
func lintPromText(t *testing.T, text string) []promSample {
	t.Helper()
	samples, types := parsePromText(t, text)
	seen := make(map[string]bool)
	byFamily := make(map[string][]promSample)
	for _, s := range samples {
		fam := familyOf(s.name)
		typ, ok := types[fam]
		if !ok {
			// A histogram suffix can also collide with a plain family name.
			typ, ok = types[s.name]
			fam = s.name
		}
		if !ok {
			t.Errorf("sample %s has no TYPE declaration", s.name)
			continue
		}
		if typ == "counter" && !strings.HasSuffix(fam, "_total") {
			t.Errorf("counter %s not suffixed _total", fam)
		}
		if typ == "counter" && s.value < 0 {
			t.Errorf("counter %s is negative: %v", s.key(), s.value)
		}
		if k := s.key(); seen[k] {
			t.Errorf("duplicate sample %s", k)
		} else {
			seen[k] = true
		}
		byFamily[fam] = append(byFamily[fam], s)
	}
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		var buckets []promSample
		var count float64
		hasCount := false
		for _, s := range byFamily[fam] {
			switch s.name {
			case fam + "_bucket":
				buckets = append(buckets, s)
			case fam + "_count":
				count, hasCount = s.value, true
			}
		}
		if len(buckets) == 0 {
			t.Errorf("histogram %s has no buckets", fam)
			continue
		}
		// Buckets must be cumulative in ascending le order, ending at +Inf.
		sort.Slice(buckets, func(i, j int) bool {
			return promLE(t, buckets[i]) < promLE(t, buckets[j])
		})
		last := buckets[len(buckets)-1]
		if !math.IsInf(promLE(t, last), 1) {
			t.Errorf("histogram %s missing the +Inf bucket", fam)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i].value < buckets[i-1].value {
				t.Errorf("histogram %s buckets not cumulative at le=%v", fam, promLE(t, buckets[i]))
			}
		}
		if hasCount && count != last.value {
			t.Errorf("histogram %s: _count %v != +Inf bucket %v", fam, count, last.value)
		}
	}
	return samples
}

func promLE(t *testing.T, s promSample) float64 {
	t.Helper()
	le, ok := s.labels["le"]
	if !ok {
		t.Fatalf("bucket sample %s lacks le", s.key())
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bucket %s: bad le %q", s.name, le)
	}
	return v
}

// sampleValue returns the unique sample with the given name (and optional
// single label pair "k=v"), failing if absent.
func sampleValue(t *testing.T, samples []promSample, name string, label ...string) float64 {
	t.Helper()
	for _, s := range samples {
		if s.name != name {
			continue
		}
		if len(label) == 0 && len(s.labels) == 0 {
			return s.value
		}
		if len(label) == 2 && s.labels[label[0]] == label[1] {
			return s.value
		}
	}
	t.Fatalf("no sample %s %v", name, label)
	return 0
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

// The Prometheus rendering of a snapshot must lint cleanly and reconcile
// exactly — every sample equal to the corresponding JSON field, the
// histogram equal to the cumulative re-expression of the JSON bucket
// counts. Run with -race in CI: the load is generated concurrently with
// scrapes, then the final comparison uses one quiesced snapshot.
func TestPrometheusReconciliation(t *testing.T) {
	s := New(Config{})
	body := requestBody(t, instanceJSON(t, testInstance(t, 31)), map[string]any{"kernel_stats": true})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				post(s, "/v1/schedule", body)
				get(s, "/metrics?format=prometheus")
			}
		}()
	}
	wg.Wait()
	post(s, "/v1/schedule", []byte("{")) // one 400 for the status map

	snap := s.Metrics()
	var buf bytes.Buffer
	writePrometheus(&buf, snap)
	samples := lintPromText(t, buf.String())

	wantScalar := map[string]float64{
		"haste_uptime_seconds":                       snap.UptimeSeconds,
		"haste_requests_total":                       float64(snap.Requests),
		"haste_scheduled_total":                      float64(snap.Scheduled),
		"haste_sharded_runs_total":                   float64(snap.ShardedRuns),
		"haste_shard_components_total":               float64(snap.ShardComps),
		"haste_in_flight":                            float64(snap.InFlight),
		"haste_queued":                               float64(snap.Queued),
		"haste_draining":                             0,
		"haste_cache_hits_total":                     float64(snap.Cache.Hits),
		"haste_cache_misses_total":                   float64(snap.Cache.Misses),
		"haste_cache_compile_errors_total":           float64(snap.Cache.CompileErrors),
		"haste_cache_evictions_total":                float64(snap.Cache.Evictions),
		"haste_cache_byte_memo_hits_total":           float64(snap.Cache.MemoHits),
		"haste_cache_entries":                        float64(snap.Cache.Entries),
		"haste_kernel_calls_total":                   float64(snap.Kernel.Calls),
		"haste_kernel_visited_total":                 float64(snap.Kernel.Visited),
		"haste_kernel_offered_total":                 float64(snap.Kernel.Offered),
		"haste_kernel_pruned_total":                  float64(snap.Kernel.Pruned),
		"haste_sessions_open":                        float64(snap.Sessions.Open),
		"haste_sessions_created_total":               float64(snap.Sessions.Created),
		"haste_sessions_closed_total":                float64(snap.Sessions.Closed),
		"haste_session_mutations_total":              float64(snap.Sessions.Mutations),
		"haste_session_solves_total":                 float64(snap.Sessions.Solves),
		"haste_session_warm_reused_components_total": float64(snap.Sessions.WarmReused),
		"haste_request_duration_seconds_sum":         snap.Latency.SumMS / 1e3,
		"haste_request_duration_seconds_count":       float64(snap.Latency.Count),
	}
	for name, want := range wantScalar {
		if got := sampleValue(t, samples, name); got != want {
			t.Errorf("%s = %v, JSON snapshot says %v", name, got, want)
		}
	}
	for code, n := range snap.ByStatus {
		if got := sampleValue(t, samples, "haste_requests_by_status_total", "code", code); got != float64(n) {
			t.Errorf("requests_by_status{code=%q} = %v, want %d", code, got, n)
		}
	}
	// The histogram buckets are the prefix sums of the JSON counts.
	var cum int64
	for i, ub := range snap.Latency.BucketsMS {
		cum += snap.Latency.Counts[i]
		le := strconv.FormatFloat(ub/1e3, 'g', -1, 64)
		if got := sampleValue(t, samples, "haste_request_duration_seconds_bucket", "le", le); got != float64(cum) {
			t.Errorf("bucket le=%s = %v, want cumulative %d", le, got, cum)
		}
	}
	cum += snap.Latency.Counts[len(snap.Latency.BucketsMS)]
	if got := sampleValue(t, samples, "haste_request_duration_seconds_bucket", "le", "+Inf"); got != float64(cum) {
		t.Errorf("+Inf bucket = %v, want %d", got, cum)
	}
	if cum != snap.Latency.Count {
		t.Errorf("bucket total %d != latency count %d", cum, snap.Latency.Count)
	}
	if snap.Scheduled == 0 || snap.ByStatus["400"] != 1 {
		t.Errorf("load generation did not register: %+v", snap.ByStatus)
	}
}

// Content negotiation on GET /metrics: the query parameter and the Accept
// header both select the exposition format; the default stays JSON.
func TestPrometheusContentNegotiation(t *testing.T) {
	s := New(Config{})
	post(s, "/v1/schedule", requestBody(t, instanceJSON(t, testInstance(t, 32)), nil))

	rec := get(s, "/metrics?format=prometheus")
	if rec.Code != http.StatusOK {
		t.Fatalf("prometheus metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != prometheusContentType {
		t.Fatalf("content type %q", ct)
	}
	lintPromText(t, rec.Body.String())

	// Accept-header negotiation (what a Prometheus scraper sends).
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.9,*/*;q=0.1")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != prometheusContentType {
		t.Fatalf("Accept negotiation gave content type %q", ct)
	}
	lintPromText(t, rec.Body.String())

	// Default and explicit JSON stay JSON.
	for _, path := range []string{"/metrics", "/metrics?format=json"} {
		rec := get(s, path)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s content type %q", path, ct)
		}
		var m MetricsSnapshot
		decodeResponse(t, rec.Body.Bytes(), &m)
	}
}

// The scrape and the JSON document must agree through the HTTP endpoints
// too: latency, cache and kernel families are untouched by metrics reads
// (only schedule paths record latency), and requests_total differs by
// exactly the JSON read itself.
func TestPrometheusMatchesJSONOverHTTP(t *testing.T) {
	s := New(Config{})
	body := requestBody(t, instanceJSON(t, testInstance(t, 33)), nil)
	for i := 0; i < 2; i++ {
		if rec := post(s, "/v1/schedule", body); rec.Code != http.StatusOK {
			t.Fatalf("schedule status %d", rec.Code)
		}
	}
	var m MetricsSnapshot
	decodeResponse(t, get(s, "/metrics").Body.Bytes(), &m)
	samples := lintPromText(t, get(s, "/metrics?format=prometheus").Body.String())

	if got := sampleValue(t, samples, "haste_request_duration_seconds_count"); got != float64(m.Latency.Count) {
		t.Errorf("latency count %v != JSON %d", got, m.Latency.Count)
	}
	if got := sampleValue(t, samples, "haste_scheduled_total"); got != float64(m.Scheduled) {
		t.Errorf("scheduled %v != JSON %d", got, m.Scheduled)
	}
	if got := sampleValue(t, samples, "haste_cache_hits_total"); got != float64(m.Cache.Hits) {
		t.Errorf("cache hits %v != JSON %d", got, m.Cache.Hits)
	}
	if got := sampleValue(t, samples, "haste_requests_total"); got != float64(m.Requests)+1 {
		t.Errorf("requests_total %v, want JSON %d + the JSON read itself", got, m.Requests)
	}
}
