package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"haste/internal/instio"
	"haste/internal/model"
	"haste/internal/workload"
)

// testInstance generates a small deterministic instance.
func testInstance(t testing.TB, seed int64) *model.Instance {
	t.Helper()
	cfg := workload.SmallScale()
	return cfg.Generate(rand.New(rand.NewSource(seed)))
}

// instanceJSON serializes an instance to the instio wire format.
func instanceJSON(t testing.TB, in *model.Instance) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := instio.Save(&buf, in, ""); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requestBody builds a /v1/schedule body around raw instance bytes. The
// instance bytes are spliced in verbatim (json.Marshal would compact a
// RawMessage), so byte-memo tests control the exact wire bytes.
func requestBody(t testing.TB, instance []byte, opts map[string]any) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(`{"instance":`)
	buf.Write(bytes.TrimSpace(instance))
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, err := json.Marshal(opts[k])
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, ",%q:%s", k, v)
	}
	buf.WriteString("}")
	return buf.Bytes()
}

// decodeResponse parses a response body into the given value, failing the
// test on malformed JSON.
func decodeResponse(t testing.TB, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, body)
	}
}

// schedulesEqual compares two policy matrices exactly.
func schedulesEqual(a, b [][]int) error {
	if len(a) != len(b) {
		return fmt.Errorf("charger count %d != %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("charger %d: slot count %d != %d", i, len(a[i]), len(b[i]))
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return fmt.Errorf("charger %d slot %d: policy %d != %d", i, k, a[i][k], b[i][k])
			}
		}
	}
	return nil
}
