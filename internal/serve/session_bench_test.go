package serve

import (
	"math/rand"
	"net/http"
	"testing"

	"haste/internal/instio"
	"haste/internal/model"
	"haste/internal/workload"
)

// The session benchmarks quantify the tentpole claim: keeping a session
// open and PATCHing task churn into it beats re-sending the mutated
// instance to /v1/schedule for a cold recompile + solve. Both benchmarks
// apply the same churn — one task arrives, one departs, the task count
// stays at m — so the ratio isolates what the delta ops and the warm
// start save, not a workload difference. Two shapes:
//
//   - fig4: the paper's §7.1 default (n=50, m=200, C=1). One dense
//     coverage component, so the warm solve saves decode + canonical
//     hash + NewProblem but re-runs the whole greedy.
//   - clustered: FleetScale(200) — 5 isolated clusters at the same task
//     count. A mutation dirties one cluster; the other components are
//     adopted from the incumbent, so the warm solve also skips ~4/5 of
//     the greedy work.
func sessionBenchShapes() []struct {
	name string
	cfg  workload.Config
} {
	return []struct {
		name string
		cfg  workload.Config
	}{
		{"fig4", workload.Default()},
		{"clustered", workload.FleetScale(200)},
	}
}

// benchChurnTask is the arriving task of iteration i, exactly
// representable so mutated instances round-trip the wire bit-for-bit.
func benchChurnTask(in *model.Instance, i int) instio.FileTask {
	c := in.Chargers[i%len(in.Chargers)]
	return instio.FileTask{
		X: c.Pos.X + float64(i%7) - 3, Y: c.Pos.Y + float64(i%5) - 2,
		PhiDeg: 0, Release: i % 4, End: i%4 + 2*in.Params.Tau + 4,
		Energy: 3000, Weight: 1 + float64(i%3),
	}
}

// BenchmarkSessionWarmUpdate measures one PATCH round trip on an open
// session: add a task, remove the previous iteration's task, re-solve
// warm on the in-place patched compiled problem.
func BenchmarkSessionWarmUpdate(b *testing.B) {
	for _, shape := range sessionBenchShapes() {
		b.Run(shape.name, func(b *testing.B) {
			s := New(Config{})
			in := shape.cfg.Generate(rand.New(rand.NewSource(1)))
			resp := createSession(b, s, instanceJSON(b, in), `,"seed":9`)
			id := resp.SessionID

			prevRef := int64(1) // iteration i removes the task added by i-1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body := mustJSON(b, sessionPatchRequest{Mutations: []sessionMutation{
					{Op: "add", Task: taskPtr(benchChurnTask(in, i))},
					{Op: "complete", Ref: prevRef},
				}})
				rec := do(s, http.MethodPatch, "/v1/session/"+id, body)
				if rec.Code != http.StatusOK {
					b.Fatalf("iteration %d: status %d: %s", i, rec.Code, rec.Body.Bytes())
				}
				var pr sessionResponse
				decodeResponse(b, rec.Body.Bytes(), &pr)
				prevRef = pr.Refs[0]
			}
			b.StopTimer()
			if got := s.Metrics().Sessions.Solves; got != int64(b.N)+1 {
				b.Fatalf("solves_total = %d, want %d", got, b.N+1)
			}
		})
	}
}

// BenchmarkSessionColdRecompile is the baseline the session replaces: the
// client applies the same churn to its own instance copy and re-sends the
// whole document to /v1/schedule. CacheSize 1 with per-iteration distinct
// instances forces every iteration through decode + hash + NewProblem +
// solve, exactly what a cacheless client-side mutation pays.
func BenchmarkSessionColdRecompile(b *testing.B) {
	for _, shape := range sessionBenchShapes() {
		b.Run(shape.name, func(b *testing.B) {
			in := shape.cfg.Generate(rand.New(rand.NewSource(1)))
			bodies := make([][]byte, b.N)
			mirror := &model.Instance{Chargers: in.Chargers,
				Tasks:  append([]model.Task(nil), in.Tasks...),
				Params: in.Params, Utility: in.Utility}
			for i := range bodies {
				// Same churn as the warm benchmark: one arrival, one departure.
				mirror.Tasks = append(mirror.Tasks, instio.TaskFromFile(benchChurnTask(in, i), len(mirror.Tasks)))
				mirror.Tasks[0] = mirror.Tasks[len(mirror.Tasks)-1]
				mirror.Tasks[0].ID = 0
				mirror.Tasks = mirror.Tasks[:len(mirror.Tasks)-1]
				bodies[i] = requestBody(b, instanceJSON(b, mirror), map[string]any{"seed": 9, "shard": true})
			}
			s := New(Config{CacheSize: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := post(s, "/v1/schedule", bodies[i])
				if rec.Code != http.StatusOK {
					b.Fatalf("iteration %d: status %d: %s", i, rec.Code, rec.Body.Bytes())
				}
			}
			b.StopTimer()
			if st := s.CacheStats(); st.Hits != 0 {
				b.Fatalf("cold benchmark hit the cache: %+v", st)
			}
		})
	}
}
