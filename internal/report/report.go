// Package report renders experiment results as aligned text tables or CSV
// — the repository's substitute for the paper's plots: every figure is
// regenerated as a printed series whose shape can be compared directly.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; each cell is formatted with %v unless it is a
// float64, which is rendered with 4 significant decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180-ish CSV (fields quoted only when
// needed).
func (t *Table) WriteCSV(w io.Writer) error {
	write := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as GitHub-flavored Markdown (title as a
// heading when present).
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
