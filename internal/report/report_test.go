package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("demo", "x", "utility")
	t.AddRow(30, 0.5)
	t.AddRow(60, 0.75)
	t.AddRow("long-label", "has,comma")
	return t
}

func TestWriteText(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "x", "utility", "0.5000", "0.7500", "long-label"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + separator + 3 rows
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
	// Columns aligned: header "utility" starts at same offset in each row.
	headerIdx := strings.Index(lines[1], "utility")
	if rowIdx := strings.Index(lines[3], "0.5000"); rowIdx != headerIdx {
		t.Errorf("column misaligned: header at %d, row at %d", headerIdx, rowIdx)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d CSV lines, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "x,utility" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "30,0.5000" {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[3], `"has,comma"`) {
		t.Errorf("comma field not quoted: %q", lines[3])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "### demo\n") {
		t.Errorf("missing heading:\n%s", out)
	}
	if !strings.Contains(out, "| x | utility |") {
		t.Errorf("missing header row:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Errorf("missing separator:\n%s", out)
	}
	if !strings.Contains(out, "| 30 | 0.5000 |") {
		t.Errorf("missing data row:\n%s", out)
	}
	// Pipes in cells must be escaped.
	tbl := NewTable("", "a")
	tbl.AddRow("x|y")
	sb.Reset()
	if err := tbl.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `x\|y`) {
		t.Errorf("pipe not escaped: %q", sb.String())
	}
}

func TestCSVEscapeQuotes(t *testing.T) {
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Errorf("csvEscape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("csvEscape(plain) = %q", got)
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := NewTable("", "a")
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "==") {
		t.Error("untitled table printed a title banner")
	}
}
