package geom

import (
	"math"
	"testing"
)

// FuzzNormalizeAngle: the canonical range and congruence invariants must
// hold for every finite input.
func FuzzNormalizeAngle(f *testing.F) {
	for _, seed := range []float64{0, 1, -1, math.Pi, TwoPi, -TwoPi, 1e9, -1e9, 0.5} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, a float64) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e12 {
			t.Skip()
		}
		n := NormalizeAngle(a)
		if n < 0 || n >= TwoPi {
			t.Fatalf("NormalizeAngle(%v) = %v outside [0, 2π)", a, n)
		}
		// Congruent mod 2π: sin/cos must match.
		if math.Abs(math.Sin(n)-math.Sin(a)) > 1e-6 && math.Abs(a) < 1e6 {
			t.Fatalf("NormalizeAngle(%v) = %v not congruent", a, n)
		}
	})
}

// FuzzArcContains: membership must agree with angular distance from the
// arc midpoint, for arcs built via ArcAround.
func FuzzArcContains(f *testing.F) {
	f.Add(0.0, 1.0, 0.5)
	f.Add(6.0, 3.0, 0.1)
	f.Add(1.0, 7.0, 4.0)
	f.Fuzz(func(t *testing.T, mid, span, x float64) {
		if math.IsNaN(mid) || math.IsNaN(span) || math.IsNaN(x) ||
			math.IsInf(mid, 0) || math.IsInf(span, 0) || math.IsInf(x, 0) ||
			math.Abs(mid) > 1e6 || math.Abs(x) > 1e6 || span < 0 || span > 100 {
			t.Skip()
		}
		a := ArcAround(mid, span)
		d := AngDist(x, mid)
		got := a.Contains(x)
		want := d <= span/2
		if got != want && math.Abs(d-span/2) > 1e-6 {
			t.Fatalf("ArcAround(%v,%v).Contains(%v) = %v, AngDist %v vs half-span %v",
				mid, span, x, got, d, span/2)
		}
	})
}

// FuzzSectorContains: the dot-product formulation must agree with the
// azimuth formulation away from boundaries.
func FuzzSectorContains(f *testing.F) {
	f.Add(1.0, 2.0, 0.5, 1.0, 3.0, 4.0)
	f.Fuzz(func(t *testing.T, ox, oy, orient, half, px, py float64) {
		for _, v := range []float64{ox, oy, orient, half, px, py} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		if half < 0 || half > math.Pi {
			t.Skip()
		}
		s := Sector{Apex: Point{ox, oy}, Orientation: orient, HalfAngle: half, Radius: 10}
		p := Point{px, py}
		d := p.Dist(s.Apex)
		if d == 0 || d > 10 {
			t.Skip()
		}
		dev := AngDist(Azimuth(s.Apex, p), orient)
		if math.Abs(dev-half) < 1e-6 {
			t.Skip() // razor edge
		}
		if got, want := s.Contains(p), dev <= half; got != want {
			t.Fatalf("Contains mismatch: sector %+v point %v (dev %v, half %v)", s, p, dev, half)
		}
	})
}
