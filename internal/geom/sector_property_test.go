package geom

import (
	"math"
	"math/rand"
	"testing"
)

// Seeded randomized property tests for the sector and arc primitives the
// charging model is built on. Points are sampled a margin away from the
// sector boundary so the closed-boundary epsilons cannot flake the suite.

const sectorTrials = 4000

func randPoint(rng *rand.Rand, span float64) Point {
	return Point{X: span * (2*rng.Float64() - 1), Y: span * (2*rng.Float64() - 1)}
}

func randSector(rng *rand.Rand) Sector {
	return Sector{
		Apex:        randPoint(rng, 30),
		Orientation: TwoPi * rng.Float64(),
		HalfAngle:   0.05 + (math.Pi-0.1)*rng.Float64(),
		Radius:      1 + 20*rng.Float64(),
	}
}

// TestSectorContainsMatchesPolar: Contains must agree with the polar
// definition — distance within Radius and angular deviation within
// HalfAngle — for points sampled clear of both boundaries.
func TestSectorContainsMatchesPolar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const margin = 0.01
	for trial := 0; trial < sectorTrials; trial++ {
		s := randSector(rng)
		// Sample in polar coordinates around the apex so we control the
		// margin to each boundary exactly.
		d := s.Radius * (0.05 + 1.5*rng.Float64())
		dev := math.Pi * rng.Float64()
		sign := float64(1)
		if rng.Intn(2) == 0 {
			sign = -1
		}
		p := s.Apex.Add(UnitVec(s.Orientation + sign*dev).Scale(d))

		inRadius := d <= s.Radius*(1-margin)
		outRadius := d >= s.Radius*(1+margin)
		inAngle := dev <= s.HalfAngle-margin
		outAngle := dev >= s.HalfAngle+margin
		switch {
		case inRadius && inAngle:
			if !s.Contains(p) {
				t.Fatalf("trial %d: interior point (d=%g dev=%g) not contained in %+v", trial, d, dev, s)
			}
		case outRadius || (outAngle && !outRadius && inRadius):
			if outRadius || outAngle {
				if s.Contains(p) {
					t.Fatalf("trial %d: exterior point (d=%g dev=%g) contained in %+v", trial, d, dev, s)
				}
			}
		}
	}
}

// TestSectorApexContained: the apex satisfies the paper's inequality (0 ≥ 0)
// for every sector.
func TestSectorApexContained(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < sectorTrials; trial++ {
		s := randSector(rng)
		if !s.Contains(s.Apex) {
			t.Fatalf("trial %d: apex not contained in %+v", trial, s)
		}
	}
}

// TestSectorRotationInvariant: rotating the sector orientation and the
// query point jointly about the apex preserves membership.
func TestSectorRotationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const margin = 0.01
	for trial := 0; trial < sectorTrials; trial++ {
		s := randSector(rng)
		d := s.Radius * (0.05 + 1.5*rng.Float64())
		dev := math.Pi * rng.Float64()
		// Stay clear of both boundaries so round-off in the rotation
		// cannot move the point across.
		if math.Abs(d-s.Radius) < margin*s.Radius || math.Abs(dev-s.HalfAngle) < margin {
			continue
		}
		p := s.Apex.Add(UnitVec(s.Orientation + dev).Scale(d))
		before := s.Contains(p)

		a := TwoPi * rng.Float64()
		rs := s
		rs.Orientation = NormalizeAngle(s.Orientation + a)
		v := p.Sub(s.Apex)
		sin, cos := math.Sincos(a)
		rp := s.Apex.Add(Vec{X: v.X*cos - v.Y*sin, Y: v.X*sin + v.Y*cos})
		if after := rs.Contains(rp); after != before {
			t.Fatalf("trial %d: membership flipped %v→%v under rotation by %g", trial, before, after, a)
		}
	}
}

// TestFullDiskSector: HalfAngle ≥ π must behave as a plain disk.
func TestFullDiskSector(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < sectorTrials; trial++ {
		s := randSector(rng)
		s.HalfAngle = math.Pi + 2*rng.Float64()
		p := randPoint(rng, 60)
		want := s.Apex.Dist(p) <= s.Radius
		if got := s.Contains(p); got != want {
			t.Fatalf("trial %d: full-disk Contains=%v, distance check=%v", trial, got, want)
		}
		if !s.ContainsDirection(TwoPi * rng.Float64()) {
			t.Fatalf("trial %d: full disk rejected a direction", trial)
		}
	}
}

// TestArcAroundMembership: ArcAround(mid, span) contains exactly the angles
// within span/2 of mid (sampled with a margin).
func TestArcAroundMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const margin = 1e-6
	for trial := 0; trial < sectorTrials; trial++ {
		mid := TwoPi * rng.Float64()
		span := 0.01 + (TwoPi-0.02)*rng.Float64()
		a := ArcAround(mid, span)
		dev := math.Pi * rng.Float64()
		sign := float64(1)
		if rng.Intn(2) == 0 {
			sign = -1
		}
		x := mid + sign*dev
		switch {
		case dev <= span/2-margin:
			if !a.Contains(x) {
				t.Fatalf("trial %d: %g (dev %g) not in ArcAround(%g, %g)", trial, x, dev, mid, span)
			}
		case dev >= span/2+margin:
			if a.Contains(x) {
				t.Fatalf("trial %d: %g (dev %g) in ArcAround(%g, %g)", trial, x, dev, mid, span)
			}
		}
	}
}

// TestArcOverlapsSymmetricAndConsistent: Overlaps is symmetric, and agrees
// with a dense sampled membership check.
func TestArcOverlapsSymmetricAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < sectorTrials/4; trial++ {
		a := NewArc(TwoPi*rng.Float64(), TwoPi*rng.Float64())
		b := NewArc(TwoPi*rng.Float64(), TwoPi*rng.Float64())
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("trial %d: Overlaps not symmetric for %+v / %+v", trial, a, b)
		}
		// Sampled ground truth: any angle on both arcs.
		sampled := false
		const steps = 720
		for i := 0; i < steps && !sampled; i++ {
			x := TwoPi * float64(i) / steps
			if a.Contains(x) && b.Contains(x) {
				sampled = true
			}
		}
		if sampled && !a.Overlaps(b) {
			t.Fatalf("trial %d: sampled shared angle but Overlaps=false for %+v / %+v", trial, a, b)
		}
		// (The converse can disagree only within the sampling resolution;
		// Overlaps touching on a measure-zero endpoint is still correct.)
		if a.Overlaps(b) && !sampled && a.Width > TwoPi/steps && b.Width > TwoPi/steps {
			// Endpoint-only contact: verify one arc's endpoint lies on the
			// other arc, which sampling at fixed steps can miss.
			if !a.Contains(b.Lo) && !a.Contains(b.Hi()) && !b.Contains(a.Lo) && !b.Contains(a.Hi()) {
				t.Fatalf("trial %d: Overlaps=true but no shared angle found for %+v / %+v", trial, a, b)
			}
		}
	}
}
