package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSectorContainsBasic(t *testing.T) {
	// 60° sector pointing along +x with radius 10.
	s := Sector{Apex: Point{0, 0}, Orientation: 0, HalfAngle: Deg(30), Radius: 10}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 0}, true},   // on bisector
		{Point{0, 0}, true},   // apex
		{Point{10, 0}, true},  // boundary radius
		{Point{11, 0}, false}, // beyond radius
		{Point{5, 5}, false},  // 45° off bisector
		{Point{5 * math.Cos(Deg(30)), 5 * math.Sin(Deg(30))}, true},  // boundary angle
		{Point{5 * math.Cos(Deg(31)), 5 * math.Sin(Deg(31))}, false}, // just outside
		{Point{-5, 0}, false}, // behind
	}
	for _, c := range cases {
		if got := s.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSectorFullDisk(t *testing.T) {
	s := Sector{Apex: Point{1, 1}, Orientation: 2, HalfAngle: math.Pi, Radius: 3}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := rng.Float64() * TwoPi
		r := rng.Float64() * 3
		p := s.Apex.Add(UnitVec(a).Scale(r))
		if !s.Contains(p) {
			t.Fatalf("full-disk sector should contain %v", p)
		}
	}
	if s.Contains(Point{1, 4.5}) {
		t.Error("point beyond radius contained")
	}
}

// Contains must agree with the direct angular-distance formulation.
func TestSectorContainsMatchesAngDist(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		s := Sector{
			Apex:        Point{rng.Float64() * 10, rng.Float64() * 10},
			Orientation: rng.Float64() * TwoPi,
			HalfAngle:   rng.Float64() * math.Pi,
			Radius:      1 + rng.Float64()*10,
		}
		p := Point{rng.Float64() * 20, rng.Float64() * 20}
		d := p.Dist(s.Apex)
		want := d <= s.Radius && AngDist(Azimuth(s.Apex, p), s.Orientation) <= s.HalfAngle+1e-9
		got := s.Contains(p)
		// Skip razor-edge disagreements caused by float comparison of the
		// two formulations exactly at the boundary.
		edge := math.Abs(AngDist(Azimuth(s.Apex, p), s.Orientation)-s.HalfAngle) < 1e-6 ||
			math.Abs(d-s.Radius) < 1e-9
		if got != want && !edge {
			t.Fatalf("Contains mismatch: sector %+v point %v got %v want %v", s, p, got, want)
		}
	}
}

func TestSectorContainsDirection(t *testing.T) {
	s := Sector{Orientation: Deg(90), HalfAngle: Deg(45)}
	for _, c := range []struct {
		a    float64
		want bool
	}{
		{Deg(90), true},
		{Deg(45), true},
		{Deg(135), true},
		{Deg(44), false},
		{Deg(136), false},
		{Deg(270), false},
	} {
		if got := s.ContainsDirection(c.a); got != c.want {
			t.Errorf("ContainsDirection(%v°) = %v, want %v", ToDeg(c.a), got, c.want)
		}
	}
}

func TestArcContains(t *testing.T) {
	a := NewArc(Deg(350), Deg(20)) // wraps through 0
	for _, c := range []struct {
		x    float64
		want bool
	}{
		{Deg(355), true},
		{Deg(0), true},
		{Deg(5), true},
		{Deg(10), true},
		{Deg(350), true},
		{Deg(11), false},
		{Deg(349), false},
		{Deg(180), false},
	} {
		if got := a.Contains(c.x); got != c.want {
			t.Errorf("Arc.Contains(%v°) = %v, want %v", ToDeg(c.x), got, c.want)
		}
	}
}

func TestArcFull(t *testing.T) {
	a := NewArc(1.23, TwoPi+1)
	if !a.Full() {
		t.Fatal("expected full arc")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if !a.Contains(rng.Float64() * TwoPi) {
			t.Fatal("full arc must contain everything")
		}
	}
}

func TestArcAround(t *testing.T) {
	a := ArcAround(Deg(10), Deg(40)) // [350°, 30°]
	if !a.Contains(Deg(355)) || !a.Contains(Deg(25)) || a.Contains(Deg(45)) || a.Contains(Deg(345)) {
		t.Errorf("ArcAround wrong: %+v", a)
	}
	if !almostEq(a.Lo, Deg(350)) {
		t.Errorf("Lo = %v°, want 350°", ToDeg(a.Lo))
	}
	if !almostEq(a.Hi(), Deg(30)) {
		t.Errorf("Hi = %v°, want 30°", ToDeg(a.Hi()))
	}
}

func TestArcOverlaps(t *testing.T) {
	cases := []struct {
		a, b Arc
		want bool
	}{
		{NewArc(0, Deg(30)), NewArc(Deg(20), Deg(30)), true},
		{NewArc(0, Deg(30)), NewArc(Deg(40), Deg(30)), false},
		{NewArc(Deg(350), Deg(20)), NewArc(Deg(5), Deg(10)), true},
		{NewArc(Deg(350), Deg(20)), NewArc(Deg(20), Deg(10)), false},
		{NewArc(0, TwoPi), NewArc(Deg(123), Deg(1)), true},
		{NewArc(0, Deg(30)), NewArc(Deg(30), Deg(30)), true}, // touch at endpoint (closed)
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%+v, %+v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("Overlaps symmetric (%+v, %+v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

// Randomized: Arc.Contains must agree with AngDist-based membership for
// arcs built by ArcAround.
func TestArcContainsMatchesAngDist(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		mid := rng.Float64() * TwoPi
		span := rng.Float64() * TwoPi
		a := ArcAround(mid, span)
		x := rng.Float64() * TwoPi
		want := AngDist(x, mid) <= span/2+1e-9
		got := a.Contains(x)
		if got != want && math.Abs(AngDist(x, mid)-span/2) > 1e-6 {
			t.Fatalf("mismatch: mid=%v span=%v x=%v got=%v want=%v", mid, span, x, got, want)
		}
	}
}
