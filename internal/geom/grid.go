package geom

import (
	"math"
	"slices"
)

// GridIndex is a uniform spatial hash over a fixed set of points, built
// once and queried many times. It exists for the strictly local charging
// model: P_r = 0 beyond the radius D, so "which tasks can charger c
// possibly charge" only ever needs the points within distance D of c.
// The index buckets points into square cells of side ≥ D and answers
// that question from the 3×3 cell neighborhood of the query point — a
// superset guarantee, never a filter: every point within Reach() of the
// query is returned (plus nearby misses the caller weeds out with the
// exact predicate). Candidate sets are therefore exactly as precise as
// the caller's own containment test, and the index cannot introduce
// false negatives; internal/geom's grid property tests pin this against
// the brute-force all-pairs scan, boundary-of-cell points included.
type GridIndex struct {
	minX, minY float64
	cell       float64 // cell side, ≥ the reach requested at build time
	cols, rows int
	start      []int32 // CSR offsets into items, len cols*rows+1
	items      []int32 // point indices grouped by cell, ascending per cell
}

// maxCellsFactor bounds the cell count at roughly this multiple of the
// point count: pathological bounding boxes (two points a kilometer apart
// with a 4 m reach) would otherwise allocate offsets for millions of
// empty cells. Growing the cell side keeps the 3×3 superset guarantee —
// candidates get looser, never wrong.
const maxCellsFactor = 4

// NewGridIndex buckets pts into cells of side at least reach (> 0). The
// point set is captured by index; the points themselves are not stored.
func NewGridIndex(pts []Point, reach float64) *GridIndex {
	g := &GridIndex{cell: reach}
	if len(pts) == 0 {
		return g
	}
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	width, height := maxX-minX, maxY-minY
	if !isFinite(width) || !isFinite(height) {
		// Non-finite coordinates: collapse to one cell so every query
		// sees every point — trivially a superset, and nothing here can
		// overflow. Defense in depth only: model.Instance.Validate
		// rejects NaN/±Inf positions before any index is built, so
		// validated instances never reach this branch.
		width, height = 0, 0
		g.cell = math.Inf(1)
	}
	budget := maxCellsFactor*len(pts) + 16
	for {
		cw := math.Floor(width/g.cell) + 1
		ch := math.Floor(height/g.cell) + 1
		if cw*ch <= float64(budget) {
			g.cols, g.rows = int(cw), int(ch)
			break
		}
		g.cell *= 2
	}
	// Counting sort into CSR: a pass of counts, prefix sums, then a
	// placement pass. Placing in point order keeps every cell's indices
	// ascending.
	g.start = make([]int32, g.cols*g.rows+1)
	for _, p := range pts {
		g.start[g.cellOf(p)+1]++
	}
	for c := 1; c < len(g.start); c++ {
		g.start[c] += g.start[c-1]
	}
	g.items = make([]int32, len(pts))
	fill := make([]int32, g.cols*g.rows)
	for idx, p := range pts {
		c := g.cellOf(p)
		g.items[g.start[c]+fill[c]] = int32(idx)
		fill[c]++
	}
	return g
}

// Reach returns the distance the superset guarantee covers: every
// indexed point within Reach() of a query point is among its candidates.
// It equals the reach requested at construction unless the cell budget
// forced larger cells (then it is larger, which only widens candidates).
func (g *GridIndex) Reach() float64 { return g.cell }

// cellOf maps an indexed point to its cell index. Coordinates are
// clamped in float space before the int conversion, so boundary points,
// rounding on the max edge and non-finite values all land on a valid
// cell instead of overflowing the conversion.
func (g *GridIndex) cellOf(p Point) int {
	cx := clampIdx((p.X-g.minX)/g.cell, g.cols)
	cy := clampIdx((p.Y-g.minY)/g.cell, g.rows)
	return cy*g.cols + cx
}

// clampIdx converts a float cell coordinate to an index in [0, n-1].
// NaN maps to 0.
func clampIdx(f float64, n int) int {
	if !(f > 0) {
		return 0
	}
	if f >= float64(n) {
		return n - 1
	}
	return int(f)
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Candidates appends to buf the indices of every point that could lie
// within Reach() of q — the 3×3 cell neighborhood of q's cell — and
// returns the result sorted ascending. The guarantee is one-sided: all
// points within Reach() of q are present; points further away may be
// too. Callers reuse buf across queries (pass buf[:0]).
func (g *GridIndex) Candidates(q Point, buf []int32) []int32 {
	if len(g.items) == 0 {
		return buf[:0]
	}
	out := buf[:0]
	// A point within g.cell of q has a cell coordinate within ±1 of q's,
	// including for query points outside the bounding box (where the
	// floor can be negative or past the last column — the clamped range
	// below still covers every cell a reachable point can occupy).
	fx := math.Floor((q.X - g.minX) / g.cell)
	fy := math.Floor((q.Y - g.minY) / g.cell)
	loX, hiX := clampRange(fx, g.cols)
	loY, hiY := clampRange(fy, g.rows)
	for cy := loY; cy <= hiY; cy++ {
		for cx := loX; cx <= hiX; cx++ {
			c := cy*g.cols + cx
			out = append(out, g.items[g.start[c]:g.start[c+1]]...)
		}
	}
	// Cells are visited row-major, so the concatenation is sorted per
	// cell but not globally; callers depend on ascending candidate order
	// (it is what keeps downstream compiled rows in task order).
	slices.Sort(out)
	return out
}

// clampRange intersects [f-1, f+1] (as integer cell coordinates) with
// [0, n-1], returning an empty range (lo > hi) when they are disjoint.
// All comparisons run in float space first so a far-away (or NaN) query
// cannot overflow the int conversion; NaN yields the full range, which
// is a harmless superset.
func clampRange(f float64, n int) (lo, hi int) {
	if f+1 < 0 || f-1 > float64(n-1) {
		return 0, -1
	}
	lo, hi = 0, n-1
	if f-1 > 0 {
		lo = int(f - 1)
	}
	if f+1 < float64(n-1) {
		hi = int(f + 1)
	}
	return lo, hi
}
