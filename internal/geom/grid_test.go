package geom_test

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/geom"
	"haste/internal/model"
	"haste/internal/workload"
)

// bruteWithin returns the indices of pts within dist of q, ascending.
func bruteWithin(pts []geom.Point, q geom.Point, dist float64) []int32 {
	var out []int32
	for j, p := range pts {
		if q.Dist(p) <= dist {
			out = append(out, int32(j))
		}
	}
	return out
}

// assertSuperset fails unless every index in want appears in got (both
// ascending).
func assertSuperset(t *testing.T, got []int32, want []int32, ctx string) {
	t.Helper()
	set := make(map[int32]bool, len(got))
	for idx, g := range got {
		if idx > 0 && got[idx-1] >= g {
			t.Fatalf("%s: candidates not strictly ascending: %v", ctx, got)
		}
		set[g] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Fatalf("%s: point %d within reach missing from candidates %v", ctx, w, got)
		}
	}
}

// TestGridCandidatesSuperset: the one-sided guarantee on random geometry —
// every point within Reach() of a query is among its candidates, for
// queries inside, at the edge of, and far outside the indexed bounding
// box.
func TestGridCandidatesSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(80)
		reach := 0.5 + 5*rng.Float64()
		pts := make([]geom.Point, n)
		for j := range pts {
			pts[j] = geom.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60}
		}
		g := geom.NewGridIndex(pts, reach)
		if g.Reach() < reach {
			t.Fatalf("trial %d: Reach %g shrank below requested %g", trial, g.Reach(), reach)
		}
		var buf []int32
		for q := 0; q < 40; q++ {
			query := geom.Point{X: rng.Float64()*140 - 40, Y: rng.Float64()*140 - 40}
			buf = g.Candidates(query, buf[:0])
			assertSuperset(t, buf, bruteWithin(pts, query, g.Reach()), "random query")
		}
		// Every indexed point queries itself and its own neighborhood.
		for j := range pts {
			buf = g.Candidates(pts[j], buf[:0])
			assertSuperset(t, buf, bruteWithin(pts, pts[j], g.Reach()), "self query")
		}
	}
}

// TestGridChargeablePairsExact: end to end against the model predicate —
// grid candidates filtered by Params.Chargeable reproduce exactly the
// brute-force all-pairs chargeable relation, on the paper's workload and
// under random rotations and translations of the whole field. Rotating or
// shifting the frame moves every point across different cell boundaries,
// so this doubles as the rotation/translation-invariance property: the
// filtered pair set must come out identical in every frame.
func TestGridChargeablePairsExact(t *testing.T) {
	base := workload.Default().Generate(rand.New(rand.NewSource(7)))
	rng := rand.New(rand.NewSource(8))
	for frame := 0; frame < 12; frame++ {
		in := cloneInstance(base)
		if frame > 0 {
			theta := rng.Float64() * 2 * math.Pi
			dx, dy := rng.Float64()*1e3-500, rng.Float64()*1e3-500
			transform(in, theta, dx, dy)
		}
		pts := make([]geom.Point, len(in.Tasks))
		for j := range in.Tasks {
			pts[j] = in.Tasks[j].Pos
		}
		g := geom.NewGridIndex(pts, in.Params.Radius)
		var buf []int32
		for i, c := range in.Chargers {
			got := map[int]bool{}
			buf = g.Candidates(c.Pos, buf[:0])
			for _, j := range buf {
				if in.Params.Chargeable(c, in.Tasks[j]) {
					got[int(j)] = true
				}
			}
			for j, tk := range in.Tasks {
				want := in.Params.Chargeable(c, tk)
				if want && !got[j] {
					t.Fatalf("frame %d: chargeable pair (%d,%d) lost by grid", frame, i, j)
				}
				if !want && got[j] {
					t.Fatalf("frame %d: non-chargeable pair (%d,%d) survived the filter", frame, i, j)
				}
			}
		}
	}
}

func cloneInstance(in *model.Instance) *model.Instance {
	out := *in
	out.Chargers = append([]model.Charger(nil), in.Chargers...)
	out.Tasks = append([]model.Task(nil), in.Tasks...)
	return &out
}

// transform rotates every position by theta about the origin, rotates the
// charger orientations with it, then translates by (dx, dy) — an
// isometry, so the chargeable relation is preserved up to floating-point
// re-rounding of the rotated coordinates (which the exact predicate on
// both sides of the comparison sees identically).
func transform(in *model.Instance, theta, dx, dy float64) {
	sin, cos := math.Sincos(theta)
	rot := func(p geom.Point) geom.Point {
		return geom.Point{X: p.X*cos - p.Y*sin + dx, Y: p.X*sin + p.Y*cos + dy}
	}
	for i := range in.Chargers {
		in.Chargers[i].Pos = rot(in.Chargers[i].Pos)
	}
	for j := range in.Tasks {
		in.Tasks[j].Pos = rot(in.Tasks[j].Pos)
	}
}

// TestGridTranslationInvariantOnLattice: on 1/64-dyadic coordinates
// translated by dyadic offsets, float subtraction is exact, so the
// candidate sets must be exactly identical in the translated frame — not
// merely supersets.
func TestGridTranslationInvariantOnLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const grain = 1.0 / 64
	pts := make([]geom.Point, 60)
	for j := range pts {
		pts[j] = geom.Point{X: float64(rng.Intn(4096)) * grain, Y: float64(rng.Intn(4096)) * grain}
	}
	reach := 2.0
	g := geom.NewGridIndex(pts, reach)
	for _, off := range []geom.Point{{X: 128, Y: -256}, {X: 4096 * grain, Y: 17}, {X: -33.5, Y: 0.25}} {
		moved := make([]geom.Point, len(pts))
		for j, p := range pts {
			moved[j] = geom.Point{X: p.X + off.X, Y: p.Y + off.Y}
		}
		gm := geom.NewGridIndex(moved, reach)
		var a, b []int32
		for q := 0; q < 40; q++ {
			query := geom.Point{X: float64(rng.Intn(5000)-400) * grain, Y: float64(rng.Intn(5000)-400) * grain}
			a = g.Candidates(query, a[:0])
			b = gm.Candidates(geom.Point{X: query.X + off.X, Y: query.Y + off.Y}, b[:0])
			if len(a) != len(b) {
				t.Fatalf("offset %+v: candidate sets differ in size: %d vs %d", off, len(a), len(b))
			}
			for idx := range a {
				if a[idx] != b[idx] {
					t.Fatalf("offset %+v: candidate sets differ: %v vs %v", off, a, b)
				}
			}
		}
	}
}

// TestGridBoundaryOfCell: adversarial geometry — points sitting exactly
// on cell boundaries (integer multiples of the cell side) and queries
// exactly reach away must still satisfy the superset guarantee in every
// direction.
func TestGridBoundaryOfCell(t *testing.T) {
	reach := 4.0
	var pts []geom.Point
	for x := 0; x <= 6; x++ {
		for y := 0; y <= 6; y++ {
			pts = append(pts, geom.Point{X: float64(x) * reach, Y: float64(y) * reach})
		}
	}
	g := geom.NewGridIndex(pts, reach)
	var buf []int32
	for _, p := range pts {
		for _, d := range []geom.Point{{X: reach}, {X: -reach}, {Y: reach}, {Y: -reach},
			{X: reach / 2, Y: reach / 2}, {X: -reach, Y: -reach}} {
			q := geom.Point{X: p.X + d.X, Y: p.Y + d.Y}
			buf = g.Candidates(q, buf[:0])
			assertSuperset(t, buf, bruteWithin(pts, q, g.Reach()), "boundary query")
		}
	}
}

// TestGridDegenerate: empty input, a single point, coincident points, a
// pathological bounding box that trips the cell budget, and non-finite
// coordinates all stay within the superset contract without panicking.
func TestGridDegenerate(t *testing.T) {
	if got := geom.NewGridIndex(nil, 3).Candidates(geom.Point{}, nil); len(got) != 0 {
		t.Fatalf("empty index returned candidates %v", got)
	}

	one := []geom.Point{{X: 5, Y: 5}}
	g := geom.NewGridIndex(one, 3)
	assertSuperset(t, g.Candidates(geom.Point{X: 6, Y: 6}, nil), []int32{0}, "single point")

	same := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	g = geom.NewGridIndex(same, 0.5)
	assertSuperset(t, g.Candidates(geom.Point{X: 1, Y: 1}, nil), []int32{0, 1, 2}, "coincident points")

	// Two points a kilometer apart with tiny reach: the cell budget must
	// grow cells rather than allocate a million of them, and Reach()
	// reports the growth.
	far := []geom.Point{{X: 0, Y: 0}, {X: 1e6, Y: 1e6}}
	g = geom.NewGridIndex(far, 1e-3)
	if g.Reach() < 1e-3 {
		t.Fatalf("budgeted grid shrank reach to %g", g.Reach())
	}
	assertSuperset(t, g.Candidates(geom.Point{X: 0, Y: 0}, nil), []int32{0}, "far pair")

	// Non-finite coordinates collapse to a single cell: every query sees
	// every point.
	bad := []geom.Point{{X: math.NaN(), Y: 0}, {X: 1, Y: 2}, {X: math.Inf(1), Y: 3}}
	g = geom.NewGridIndex(bad, 2)
	got := g.Candidates(geom.Point{X: 1, Y: 2}, nil)
	if len(got) != len(bad) {
		t.Fatalf("non-finite index must return all points, got %v", got)
	}
	if got = g.Candidates(geom.Point{X: math.NaN(), Y: math.NaN()}, nil); len(got) != len(bad) {
		t.Fatalf("NaN query on collapsed index must return all points, got %v", got)
	}
}
