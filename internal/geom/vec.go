// Package geom provides the 2D geometric substrate for the HASTE
// directional wireless charging model: points and vectors, angle
// normalization, azimuths, circular (angular) intervals, and sector
// containment tests.
//
// All angles are in radians. Normalized angles live in [0, 2π). The
// directional charging model of the paper is expressed with dot products
// (closed boundary conditions); this package mirrors that convention so
// that points exactly on a sector boundary count as covered.
package geom

import "math"

// TwoPi is the full circle in radians.
const TwoPi = 2 * math.Pi

// Point is a location in the 2D plane Ω.
type Point struct {
	X, Y float64
}

// Vec is a 2D displacement vector.
type Vec struct {
	X, Y float64
}

// Sub returns the vector from q to p, i.e. p − q.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Add translates the point by v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Dist returns the Euclidean distance ‖pq‖.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length ‖v‖.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// UnitVec returns the unit vector r_θ = (cos θ, sin θ).
func UnitVec(theta float64) Vec {
	return Vec{math.Cos(theta), math.Sin(theta)}
}

// Angle returns the direction of v in [0, 2π). The zero vector maps to 0.
func (v Vec) Angle() float64 {
	if v.X == 0 && v.Y == 0 {
		return 0
	}
	return NormalizeAngle(math.Atan2(v.Y, v.X))
}

// NormalizeAngle maps any finite angle to the canonical range [0, 2π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, TwoPi)
	if a < 0 {
		a += TwoPi
	}
	// math.Mod can return exactly TwoPi-ε accumulated to TwoPi after the
	// correction above only through floating error; clamp defensively.
	if a >= TwoPi {
		a = 0
	}
	return a
}

// Azimuth returns the direction of the ray from `from` to `to` in [0, 2π).
// Coincident points yield 0.
func Azimuth(from, to Point) float64 {
	return to.Sub(from).Angle()
}

// AngDist returns the absolute circular distance between angles a and b,
// a value in [0, π].
func AngDist(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	if d > math.Pi {
		d = TwoPi - d
	}
	return d
}

// Deg converts degrees to radians.
func Deg(d float64) float64 { return d * math.Pi / 180 }

// ToDeg converts radians to degrees.
func ToDeg(r float64) float64 { return r * 180 / math.Pi }
