package geom

import "math"

// Sector is a circular sector (pie slice): the set of points within
// distance Radius of Apex whose direction from Apex deviates from
// Orientation by at most HalfAngle. Boundaries are closed, matching the
// paper's dot-product formulation
//
//	s⃗o · r⃗_θ − ‖s⃗o‖·cos(A/2) ≥ 0.
//
// A HalfAngle of π or more makes the sector a full disk.
type Sector struct {
	Apex        Point
	Orientation float64 // direction of the bisector, radians
	HalfAngle   float64 // A/2, radians, in [0, π]
	Radius      float64
}

// Contains reports whether p lies inside the sector (closed boundaries).
// The apex itself is contained: for p = Apex the paper's inequality reads
// 0 ≥ 0.
func (s Sector) Contains(p Point) bool {
	v := p.Sub(s.Apex)
	d := v.Norm()
	if d > s.Radius {
		return false
	}
	if s.HalfAngle >= math.Pi {
		return true
	}
	// v · r_θ ≥ ‖v‖ cos(A/2). For d == 0 both sides are 0.
	return v.Dot(UnitVec(s.Orientation)) >= d*math.Cos(s.HalfAngle)-1e-12
}

// ContainsDirection reports whether a ray leaving the apex at angle a lies
// within the sector's angular span (ignores Radius).
func (s Sector) ContainsDirection(a float64) bool {
	if s.HalfAngle >= math.Pi {
		return true
	}
	return AngDist(a, s.Orientation) <= s.HalfAngle+1e-12
}

// Arc is a closed circular interval of angles: all a with
// AngDist-style circular membership starting at Lo and spanning Width
// counterclockwise. Width is clamped to [0, 2π]; Width == 2π is the full
// circle.
type Arc struct {
	Lo    float64 // normalized start angle in [0, 2π)
	Width float64 // span in [0, 2π]
}

// NewArc builds a normalized arc starting at lo spanning width
// counterclockwise.
func NewArc(lo, width float64) Arc {
	if width >= TwoPi {
		return Arc{0, TwoPi}
	}
	if width < 0 {
		width = 0
	}
	return Arc{NormalizeAngle(lo), width}
}

// ArcAround builds the arc centered at mid with total angular width span.
func ArcAround(mid, span float64) Arc {
	if span >= TwoPi {
		return Arc{0, TwoPi}
	}
	return NewArc(mid-span/2, span)
}

// Full reports whether the arc is the whole circle.
func (a Arc) Full() bool { return a.Width >= TwoPi }

// Hi returns the (normalized) end angle of the arc.
func (a Arc) Hi() float64 { return NormalizeAngle(a.Lo + a.Width) }

// Contains reports whether angle x lies on the closed arc.
func (a Arc) Contains(x float64) bool {
	if a.Full() {
		return true
	}
	d := NormalizeAngle(NormalizeAngle(x) - a.Lo)
	return d <= a.Width+1e-12
}

// Overlaps reports whether two closed arcs share at least one angle.
func (a Arc) Overlaps(b Arc) bool {
	if a.Full() || b.Full() {
		return true
	}
	return a.Contains(b.Lo) || b.Contains(a.Lo)
}
