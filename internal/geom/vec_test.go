package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{TwoPi, 0},
		{-TwoPi, 0},
		{math.Pi, math.Pi},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * TwoPi, 0},
		{TwoPi + 0.5, 0.5},
		{-0.25, TwoPi - 0.25},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEq(got, c.want) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleRangeProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		n := NormalizeAngle(a)
		return n >= 0 && n < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeAngleIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := (rng.Float64() - 0.5) * 100
		n := NormalizeAngle(a)
		if !almostEq(NormalizeAngle(n), n) {
			t.Fatalf("NormalizeAngle not idempotent at %v", a)
		}
	}
}

func TestAzimuth(t *testing.T) {
	o := Point{0, 0}
	cases := []struct {
		to   Point
		want float64
	}{
		{Point{1, 0}, 0},
		{Point{0, 1}, math.Pi / 2},
		{Point{-1, 0}, math.Pi},
		{Point{0, -1}, 3 * math.Pi / 2},
		{Point{1, 1}, math.Pi / 4},
		{Point{0, 0}, 0}, // coincident
	}
	for _, c := range cases {
		if got := Azimuth(o, c.to); !almostEq(got, c.want) {
			t.Errorf("Azimuth(0,%v) = %v, want %v", c.to, got, c.want)
		}
	}
}

func TestAngDist(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, math.Pi, math.Pi},
		{0.1, TwoPi - 0.1, 0.2},
		{3, 3 + math.Pi, math.Pi},
		{-0.1, 0.1, 0.2},
	}
	for _, c := range cases {
		if got := AngDist(c.a, c.b); !almostEq(got, c.want) {
			t.Errorf("AngDist(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngDistSymmetricProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		d1, d2 := AngDist(a, b), AngDist(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := rng.Float64() * TwoPi
		v := UnitVec(a)
		if !almostEq(v.Norm(), 1) {
			t.Fatalf("UnitVec(%v) has norm %v", a, v.Norm())
		}
		if !almostEq(AngDist(v.Angle(), a), 0) {
			t.Fatalf("UnitVec(%v).Angle() = %v", a, v.Angle())
		}
	}
}

func TestVecOps(t *testing.T) {
	p, q := Point{3, 4}, Point{0, 0}
	if d := p.Dist(q); !almostEq(d, 5) {
		t.Errorf("Dist = %v, want 5", d)
	}
	v := p.Sub(q)
	if v != (Vec{3, 4}) {
		t.Errorf("Sub = %v", v)
	}
	if got := q.Add(v); got != p {
		t.Errorf("Add = %v", got)
	}
	if got := v.Scale(2); got != (Vec{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(Vec{1, 1}); !almostEq(got, 7) {
		t.Errorf("Dot = %v", got)
	}
}

func TestDegRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 30, 60, 90, 180, 270, 360} {
		if got := ToDeg(Deg(d)); !almostEq(got, d) {
			t.Errorf("ToDeg(Deg(%v)) = %v", d, got)
		}
	}
	if !almostEq(Deg(180), math.Pi) {
		t.Errorf("Deg(180) = %v", Deg(180))
	}
}
