package dominant

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"haste/internal/geom"
	"haste/internal/model"
)

// ringInstance places one charger at the origin and tasks on a circle of
// radius 5 at the given azimuths (degrees), each facing back at the
// charger so every task is chargeable.
func ringInstance(chargeAngleDeg float64, azimuthsDeg ...float64) *model.Instance {
	in := &model.Instance{
		Chargers: []model.Charger{{ID: 0, Pos: geom.Point{X: 0, Y: 0}}},
		Params: model.Params{
			Alpha: 100, Beta: 1, Radius: 10,
			ChargeAngle:  geom.Deg(chargeAngleDeg),
			ReceiveAngle: geom.TwoPi,
			SlotSeconds:  60, Rho: 0, Tau: 0,
		},
	}
	for j, az := range azimuthsDeg {
		a := geom.Deg(az)
		pos := geom.Point{X: 5 * math.Cos(a), Y: 5 * math.Sin(a)}
		in.Tasks = append(in.Tasks, model.Task{
			ID: j, Pos: pos, Phi: geom.NormalizeAngle(a + math.Pi),
			Release: 0, End: 10, Energy: 100, Weight: 1,
		})
	}
	return in
}

func coverSets(ps []Policy) [][]int {
	var out [][]int
	for _, p := range ps {
		if !p.Idle {
			out = append(out, p.Covers)
		}
	}
	sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i]) < fmt.Sprint(out[j]) })
	return out
}

// A toy example in the spirit of Fig. 2: six tasks around one charger with
// a 90° charging angle; the dominant sets are known by hand.
func TestExtractToyExample(t *testing.T) {
	in := ringInstance(90, 0, 30, 80, 140, 200, 330)
	got := coverSets(Extract(in, 0))
	want := [][]int{{0, 1, 2}, {0, 1, 5}, {2, 3}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dominant sets = %v, want %v", got, want)
	}
}

func TestExtractIdleWhenNoTasks(t *testing.T) {
	in := ringInstance(90)
	ps := Extract(in, 0)
	if len(ps) != 1 || !ps[0].Idle {
		t.Fatalf("expected single idle policy, got %v", ps)
	}
}

func TestExtractUnreachableTasks(t *testing.T) {
	in := ringInstance(90, 0, 90)
	// Push both tasks out of range.
	for j := range in.Tasks {
		in.Tasks[j].Pos = geom.Point{X: 100 + float64(j), Y: 0}
	}
	ps := Extract(in, 0)
	if len(ps) != 1 || !ps[0].Idle {
		t.Fatalf("expected idle policy for unreachable tasks, got %v", ps)
	}
}

func TestExtractFullCircleCharger(t *testing.T) {
	in := ringInstance(360, 0, 45, 170, 260, 359)
	ps := Extract(in, 0)
	if len(ps) != 1 {
		t.Fatalf("A_s = 2π should give one dominant set, got %v", ps)
	}
	if !reflect.DeepEqual(ps[0].Covers, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("full-circle covers = %v", ps[0].Covers)
	}
}

func TestExtractSingleTask(t *testing.T) {
	in := ringInstance(60, 123)
	ps := Extract(in, 0)
	if len(ps) != 1 || len(ps[0].Covers) != 1 || ps[0].Covers[0] != 0 {
		t.Fatalf("single task: %v", ps)
	}
	// Representative orientation must actually cover the task.
	if !in.Params.Covers(in.Chargers[0], ps[0].Orientation, in.Tasks[0]) {
		t.Fatal("representative orientation does not cover the task")
	}
}

func TestExtractCoincidentTask(t *testing.T) {
	in := ringInstance(60, 0)
	in.Tasks[0].Pos = in.Chargers[0].Pos // device sits on the charger
	ps := Extract(in, 0)
	if len(ps) != 1 || !reflect.DeepEqual(ps[0].Covers, []int{0}) {
		t.Fatalf("coincident task: %v", ps)
	}
}

// Each policy's representative orientation must cover exactly its set.
func TestExtractOrientationsAttainSets(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		in := randomRing(rng)
		for _, p := range Extract(in, 0) {
			if p.Idle {
				continue
			}
			covered := coveredAt(in, p.Orientation)
			if !reflect.DeepEqual(covered, p.Covers) {
				t.Fatalf("trial %d: orientation %v covers %v, policy says %v\n(tasks %v)",
					trial, p.Orientation, covered, p.Covers, in.Tasks)
			}
		}
	}
}

// No returned set may be a strict subset of another, and every chargeable
// task must appear in at least one dominant set.
func TestExtractMaximalityAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		in := randomRing(rng)
		ps := Extract(in, 0)
		sets := coverSets(ps)
		for i := range sets {
			for j := range sets {
				if i != j && strictSubset(sets[i], sets[j]) {
					t.Fatalf("trial %d: %v ⊂ %v both returned", trial, sets[i], sets[j])
				}
			}
		}
		present := map[int]bool{}
		for _, s := range sets {
			for _, id := range s {
				present[id] = true
			}
		}
		for _, tk := range in.Tasks {
			if in.Params.Chargeable(in.Chargers[0], tk) && !present[tk.ID] {
				t.Fatalf("trial %d: chargeable task %d missing from all dominant sets", trial, tk.ID)
			}
		}
	}
}

// Extract must agree with an exhaustive fine-grained rotation scan.
func TestExtractMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		in := randomRing(rng)
		got := coverSets(Extract(in, 0))
		want := bruteForceDominant(in)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Extract = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestExtractSubsetRestricts(t *testing.T) {
	in := ringInstance(90, 0, 30, 80, 140, 200, 330)
	ps := ExtractSubset(in, 0, []int{2, 3})
	got := coverSets(ps)
	want := [][]int{{2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subset extraction = %v, want %v", got, want)
	}
}

func TestStrictSubset(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 2}, false},
		{[]int{1, 3}, []int{1, 2}, false},
		{nil, []int{1}, true},
		{nil, nil, false},
		{[]int{1, 2, 3}, []int{1, 2}, false},
	}
	for _, c := range cases {
		if got := strictSubset(c.a, c.b); got != c.want {
			t.Errorf("strictSubset(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// --- helpers ---

func randomRing(rng *rand.Rand) *model.Instance {
	n := 1 + rng.Intn(10)
	az := make([]float64, n)
	for i := range az {
		az[i] = rng.Float64() * 360
	}
	angle := 20 + rng.Float64()*160
	return ringInstance(angle, az...)
}

func coveredAt(in *model.Instance, theta float64) []int {
	var out []int
	for _, tk := range in.Tasks {
		if in.Params.Covers(in.Chargers[0], theta, tk) {
			out = append(out, tk.ID)
		}
	}
	return out
}

// bruteForceDominant scans orientations densely (every arc endpoint plus a
// fine grid) and filters maximal covered sets.
func bruteForceDominant(in *model.Instance) [][]int {
	seen := map[string][]int{}
	add := func(theta float64) {
		c := coveredAt(in, theta)
		if len(c) > 0 {
			seen[fmt.Sprint(c)] = c
		}
	}
	for d := 0.0; d < 360; d += 0.05 {
		add(geom.Deg(d))
	}
	for _, tk := range in.Tasks {
		a := geom.Azimuth(in.Chargers[0].Pos, tk.Pos)
		for _, off := range []float64{-in.Params.ChargeAngle / 2, in.Params.ChargeAngle / 2} {
			add(geom.NormalizeAngle(a + off))
		}
	}
	var all [][]int
	for _, s := range seen {
		all = append(all, s)
	}
	var out [][]int
	for i, a := range all {
		maximal := true
		for j, b := range all {
			if i != j && strictSubset(a, b) {
				maximal = false
			}
		}
		if maximal {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i]) < fmt.Sprint(out[j]) })
	return out
}
