package dominant

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"haste/internal/model"
)

// The paper sets Γ_{i,k} = Γ_i (dominant sets extracted once over all
// tasks) and handles per-slot activity in the objective. This loses
// nothing: for every slot k, the maximal *active* coverable sets derived
// from the global dominant sets coincide with the dominant sets extracted
// over only the slot's active tasks. This test certifies that equivalence
// on random instances — the justification for the Γ_{i,k} = Γ_i design
// choice (see DESIGN.md §3 and BenchmarkAblationDominantPerSlot).
func TestGlobalVsPerSlotDominantEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 100; trial++ {
		in := randomWindowedRing(rng)
		global := Extract(in, 0)
		maxK := 0
		for _, tk := range in.Tasks {
			if tk.End > maxK {
				maxK = tk.End
			}
		}
		for k := 0; k < maxK; k++ {
			var active []int
			for _, tk := range in.Tasks {
				if tk.ActiveAt(k) {
					active = append(active, tk.ID)
				}
			}
			perSlot := maximalFamilies(coverFamilies(ExtractSubset(in, 0, active), nil))
			fromGlobal := maximalFamilies(coverFamilies(global, activeFilter(in, k)))
			if !reflect.DeepEqual(perSlot, fromGlobal) {
				t.Fatalf("trial %d slot %d: per-slot %v != global∩active %v",
					trial, k, perSlot, fromGlobal)
			}
		}
	}
}

// coverFamilies extracts cover sets, optionally filtered, dropping empties.
func coverFamilies(ps []Policy, keep func(int) bool) [][]int {
	var out [][]int
	for _, p := range ps {
		if p.Idle {
			continue
		}
		var s []int
		for _, id := range p.Covers {
			if keep == nil || keep(id) {
				s = append(s, id)
			}
		}
		if len(s) > 0 {
			out = append(out, s)
		}
	}
	return out
}

func activeFilter(in *model.Instance, k int) func(int) bool {
	return func(id int) bool { return in.Tasks[id].ActiveAt(k) }
}

// maximalFamilies dedups and keeps only inclusion-maximal sets, sorted.
func maximalFamilies(fams [][]int) [][]int {
	seen := map[string][]int{}
	for _, f := range fams {
		s := append([]int(nil), f...)
		sort.Ints(s)
		seen[fmt.Sprint(s)] = s
	}
	var all [][]int
	for _, s := range seen {
		all = append(all, s)
	}
	var out [][]int
	for i, a := range all {
		maximal := true
		for j, b := range all {
			if i != j && strictSubset(a, b) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i]) < fmt.Sprint(out[j]) })
	return out
}

// randomWindowedRing is randomRing with task windows.
func randomWindowedRing(rng *rand.Rand) *model.Instance {
	n := 1 + rng.Intn(8)
	az := make([]float64, n)
	for i := range az {
		az[i] = rng.Float64() * 360
	}
	in := ringInstance(20+rng.Float64()*160, az...)
	for j := range in.Tasks {
		rel := rng.Intn(4)
		in.Tasks[j].Release = rel
		in.Tasks[j].End = rel + 1 + rng.Intn(5)
	}
	return in
}
