// Package dominant implements Algorithm 1 of the paper: extraction of the
// dominant task sets of a directional charger.
//
// A set of tasks covered by charger s_i under some orientation is
// *dominant* if no other orientation covers a strict superset
// (Definition 4.1). Because the charger-side coverage condition for task j
// depends only on the azimuth a_j of the device from the charger, the set
// of orientations covering j is the circular arc of width A_s centered at
// a_j. Dominant task sets are therefore the maximal sets of tasks whose
// covering arcs share a common orientation, and the paper's rotational
// sweep reduces to an endpoint sweep over those arcs: every maximal set is
// attained at some arc start angle (rotating past a start angle is the only
// way a new task can enter the covered set).
package dominant

import (
	"fmt"
	"sort"

	"haste/internal/geom"
	"haste/internal/model"
)

// arcTask pairs a chargeable task with the circular arc of charger
// orientations that cover it.
type arcTask struct {
	id  int
	arc geom.Arc
}

// Policy is one candidate scheduling policy Θ_i^p for a charger: an
// orientation together with the dominant task set it covers. Covers holds
// task IDs in ascending order. An empty Covers with Idle set represents the
// "do nothing" policy used for chargers that cannot reach any task.
type Policy struct {
	Orientation float64 // a representative orientation attaining the set
	Covers      []int   // task IDs covered, ascending
	Idle        bool    // true for the trivial no-coverage policy
}

// String renders the policy compactly for logs and test failures.
func (p Policy) String() string {
	if p.Idle {
		return "idle"
	}
	return fmt.Sprintf("θ=%.1f°→%v", geom.ToDeg(p.Orientation), p.Covers)
}

// Extract returns the dominant task sets of charger i over all tasks of
// the instance, as Algorithm 1 does. The result is sorted by orientation.
// A charger with no chargeable task gets a single Idle policy so that the
// partition Θ_{i,k} is never empty (the matroid constraint selects exactly
// one policy per charger per slot).
func Extract(in *model.Instance, chargerID int) []Policy {
	ids := make([]int, 0, len(in.Tasks))
	for _, t := range in.Tasks {
		ids = append(ids, t.ID)
	}
	return ExtractSubset(in, chargerID, ids)
}

// ExtractAll runs Extract for every charger: Γ_i for i ∈ [n]. The
// all-tasks candidate slice is built once and shared across chargers
// (ExtractSubset only reads it), instead of regrown per charger.
func ExtractAll(in *model.Instance) [][]Policy {
	ids := make([]int, len(in.Tasks))
	for j := range ids {
		ids[j] = j
	}
	out := make([][]Policy, len(in.Chargers))
	for i := range in.Chargers {
		out[i] = ExtractSubset(in, i, ids)
	}
	return out
}

// ExtractSubset extracts dominant task sets considering only the tasks
// whose IDs appear in taskIDs. The online algorithm uses this to build
// policies over the tasks a charger has observed so far, and the per-slot
// ablation uses it with the tasks active in one slot.
func ExtractSubset(in *model.Instance, chargerID int, taskIDs []int) []Policy {
	c := in.Chargers[chargerID]
	p := in.Params

	// T_i: chargeable tasks among the candidates (Algorithm 1, line 1).
	var arcs []arcTask
	for _, id := range taskIDs {
		t := in.Tasks[id]
		if !p.Chargeable(c, t) {
			continue
		}
		var a geom.Arc
		if c.Pos.Dist(t.Pos) == 0 {
			a = geom.NewArc(0, geom.TwoPi) // coincident: covered by any orientation
		} else {
			a = geom.ArcAround(geom.Azimuth(c.Pos, t.Pos), p.ChargeAngle)
		}
		arcs = append(arcs, arcTask{t.ID, a})
	}
	if len(arcs) == 0 {
		return []Policy{{Idle: true}}
	}

	// Candidate orientations: every arc start angle. The covered set is
	// piecewise constant in θ and can only grow when θ crosses a start
	// angle, so each inclusion-maximal set is attained at one of them.
	// Full-circle arcs contribute no events; if all arcs are full, any
	// orientation works.
	var candidates []float64
	for _, a := range arcs {
		if !a.arc.Full() {
			candidates = append(candidates, a.arc.Lo)
		}
	}
	if len(candidates) == 0 {
		candidates = []float64{0}
	}

	seen := make(map[string]Policy)
	for _, theta := range candidates {
		var covers []int
		for _, a := range arcs {
			if a.arc.Contains(theta) {
				covers = append(covers, a.id)
			}
		}
		sort.Ints(covers)
		key := setKey(covers)
		if _, ok := seen[key]; !ok {
			seen[key] = Policy{Orientation: centerOrientation(theta, covers, arcs), Covers: covers}
		}
	}

	// Keep only maximal sets (Definition 4.1).
	all := make([]Policy, 0, len(seen))
	for _, pol := range seen {
		all = append(all, pol)
	}
	var out []Policy
	for i, a := range all {
		maximal := true
		for j, b := range all {
			if i != j && strictSubset(a.Covers, b.Covers) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Orientation != out[j].Orientation {
			return out[i].Orientation < out[j].Orientation
		}
		return setKey(out[i].Covers) < setKey(out[j].Covers)
	})
	return out
}

// centerOrientation recenters a feasible orientation inside the
// intersection of the covering arcs of the covered set, to keep the
// representative orientation away from razor-edge boundaries. theta must
// already cover every task in covers.
func centerOrientation(theta float64, covers []int, arcs []arcTask) float64 {
	inSet := make(map[int]bool, len(covers))
	for _, id := range covers {
		inSet[id] = true
	}
	fwd, bwd := geom.TwoPi, geom.TwoPi
	for _, a := range arcs {
		if !inSet[a.id] || a.arc.Full() {
			continue
		}
		f := geom.NormalizeAngle(a.arc.Lo + a.arc.Width - theta) // slack counterclockwise
		b := geom.NormalizeAngle(theta - a.arc.Lo)               // slack clockwise
		if f < fwd {
			fwd = f
		}
		if b < bwd {
			bwd = b
		}
	}
	if fwd >= geom.TwoPi && bwd >= geom.TwoPi {
		return theta
	}
	return geom.NormalizeAngle(theta + (fwd-bwd)/2)
}

// strictSubset reports whether sorted slice a ⊂ b strictly.
func strictSubset(a, b []int) bool {
	if len(a) >= len(b) {
		return false
	}
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// setKey builds a canonical map key for a sorted ID set.
func setKey(ids []int) string {
	return fmt.Sprint(ids)
}
