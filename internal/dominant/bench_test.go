package dominant_test

import (
	"math/rand"
	"testing"

	"haste/internal/dominant"
	"haste/internal/workload"
)

// BenchmarkExtractAll measures full dominant-set extraction (Algorithm 1
// over every charger) on the paper-scale workload. ReportAllocs guards
// the candidate-buffer reuse: ExtractAll builds the all-tasks ID slice
// once and shares it across chargers instead of regrowing a fresh slice
// per charger (the before/after numbers live in BENCH_core.json's
// "compile" section).
func BenchmarkExtractAll(b *testing.B) {
	in := workload.Default().Generate(rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dominant.ExtractAll(in)
	}
}
