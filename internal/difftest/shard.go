package difftest

import (
	"fmt"

	"haste/internal/core"
)

// This file is the sharded-vs-monolithic differential sweep: the proof
// obligation of the shard-and-stitch decomposition (core/shard.go). For
// every case the monolithic Workers=1 run is the reference, and a
// ShardOn run of every execution variant must reproduce it under the
// stitching contract:
//
//   - single-component (Connected) cases: bit-identical schedules and
//     exactly equal utilities — CompareResults, the same bar the worker
//     and kernel variants are held to;
//   - multi-component cases: exactly equal utilities, cell-for-cell
//     identical assignments, and -1 exactly on the padding cells past a
//     component's own horizon (where every monolithic assignment has
//     marginal gain exactly +0.0) — CompareSharded.

// ShardSweep is the seeded grid of the sharded sweep: clustered
// multi-component shapes crossing cluster count, color count and sample
// count (including an uneven cluster that leaves some chargers with no
// tasks), plus fully connected single-component shapes where the sharded
// run must be bit-identical.
func ShardSweep() []Case {
	return []Case{
		{Name: "clusters-4-c1", Chargers: 8, Tasks: 24, Clusters: 4, Duration: [2]int{4, 10}, Releases: 5, Colors: 1, Seed: 201},
		{Name: "clusters-4-c3", Chargers: 8, Tasks: 24, Clusters: 4, Duration: [2]int{4, 10}, Releases: 5, Colors: 3, Samples: 9, Seed: 202},
		{Name: "clusters-7-uneven", Chargers: 10, Tasks: 32, Clusters: 7, Duration: [2]int{2, 8}, Releases: 4, Colors: 2, Seed: 203},
		{Name: "clusters-2-c4", Chargers: 6, Tasks: 18, Clusters: 2, Duration: [2]int{3, 9}, Releases: 6, Colors: 4, Seed: 204},
		{Name: "clusters-5-long", Chargers: 10, Tasks: 25, Clusters: 5, Duration: [2]int{10, 30}, Releases: 15, Colors: 2, Samples: 6, Seed: 205},
		{Name: "connected-c1", Chargers: 5, Tasks: 15, Connected: true, Duration: [2]int{3, 9}, Releases: 4, Colors: 1, Seed: 206},
		{Name: "connected-c3", Chargers: 5, Tasks: 15, Connected: true, Duration: [2]int{3, 9}, Releases: 4, Colors: 3, Seed: 207},
	}
}

// RunSharded executes the monolithic Workers=1 reference and a ShardOn
// run of every variant on the case, holding each to the stitching
// contract. It also verifies the case has the component structure its
// shape promises (a Connected case must really be one component; a
// Clusters case must really decompose), so a drifting workload generator
// cannot silently turn the sweep vacuous.
func RunSharded(c Case, variants []Variant) error {
	p, err := c.Problem()
	if err != nil {
		return err
	}
	monoOpt := c.Options(1, false)
	monoOpt.Shard = core.ShardOff
	mono := core.TabularGreedy(p, monoOpt)

	connected := len(p.Components()) == 1
	if c.Connected && !connected {
		return fmt.Errorf("case %s: expected a fully connected instance, got %d components", c.Name, len(p.Components()))
	}
	// A clustered case must genuinely decompose: every cluster is isolated
	// (≥ Clusters components overall) and at least two components must be
	// schedulable, or the sweep would be comparing monolithic to
	// monolithic. (A cluster can legitimately end up unschedulable when
	// none of its tasks' receive sectors contain one of its chargers.)
	if c.Clusters > 1 {
		if len(p.Components()) < c.Clusters {
			return fmt.Errorf("case %s: expected ≥ %d components, got %d", c.Name, c.Clusters, len(p.Components()))
		}
		if p.SchedulableComponents() < 2 {
			return fmt.Errorf("case %s: only %d schedulable components — sweep would be vacuous", c.Name, p.SchedulableComponents())
		}
	}

	for _, v := range variants {
		// Fresh Problem per variant: component sub-Problems inherit the
		// parent's kernel choice when they are first compiled, so the
		// Generic axis must flip the kernel before any sharded run.
		pv, err := c.Problem()
		if err != nil {
			return err
		}
		pv.SetFlatKernel(!v.Generic)
		opt := c.OptionsFor(v)
		opt.Shard = core.ShardOn
		got := core.TabularGreedy(pv, opt)
		if got.Shards != p.SchedulableComponents() {
			return fmt.Errorf("case %s, variant %s: Shards = %d, want %d", c.Name, v.Name, got.Shards, p.SchedulableComponents())
		}
		if connected {
			if err := CompareResults(mono, got); err != nil {
				return fmt.Errorf("case %s, variant %s (connected): %w", c.Name, v.Name, err)
			}
		} else if err := CompareSharded(p, mono, got); err != nil {
			return fmt.Errorf("case %s, variant %s: %w", c.Name, v.Name, err)
		}
	}
	return nil
}

// CompareSharded checks the stitching contract of a sharded result
// against the monolithic reference on the same problem: exactly equal
// total utility; every assigned cell identical to the reference; -1
// exactly where the charger's component horizon has passed (or the
// charger has no schedulable component at all).
func CompareSharded(p *core.Problem, mono, got core.Result) error {
	if got.RUtility != mono.RUtility {
		return fmt.Errorf("RUtility %v != monolithic %v", got.RUtility, mono.RUtility)
	}
	n := len(mono.Schedule.Policy)
	if len(got.Schedule.Policy) != n {
		return fmt.Errorf("charger count %d != %d", len(got.Schedule.Policy), n)
	}
	// horizon[i]: the slot count the charger's component spans (0 when its
	// component has no tasks) — below it the sharded run must agree with
	// the reference, at or above it the cell must be the -1 padding. This
	// is the same per-charger horizon sim.Execute clips switch counting at.
	horizon := p.AssignedHorizons()
	for i := 0; i < n; i++ {
		ref, row := mono.Schedule.Policy[i], got.Schedule.Policy[i]
		if len(row) != len(ref) {
			return fmt.Errorf("charger %d: slot count %d != %d", i, len(row), len(ref))
		}
		for k := range row {
			switch {
			case k < horizon[i]:
				if row[k] < 0 {
					return fmt.Errorf("charger %d slot %d: unassigned inside its component horizon %d", i, k, horizon[i])
				}
				if row[k] != ref[k] {
					return fmt.Errorf("policy diverges at charger %d slot %d: %d != %d", i, k, row[k], ref[k])
				}
			default:
				if row[k] != -1 {
					return fmt.Errorf("charger %d slot %d: expected padding -1 past horizon %d, got %d", i, k, horizon[i], row[k])
				}
			}
		}
	}
	return nil
}
