package difftest

import (
	"testing"

	"haste/internal/online"
)

// TestDriverSweep is the headline cross-driver differential suite: every
// seeded scenario (failure-free plus all four failure modes and the
// combined storm, reliability layer off and on) runs on the sequential
// in-memory engine, the goroutine-per-charger engine and the loopback TCP
// engine, and the three executions must produce bit-identical committed
// schedules, utilities and switch counts, reflect.DeepEqual Stats, and
// exactly reconciled message balances. CI runs it under the race detector.
func TestDriverSweep(t *testing.T) {
	scenarios := DriverSweep()
	if testing.Short() {
		scenarios = scenarios[:4] // clean and drop, reliability off/on
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if err := RunDriverScenario(sc); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDriverSweepCoversTheRequiredAxes pins the sweep's shape so a future
// edit cannot silently drop a failure mode or the reliability axis.
func TestDriverSweepCoversTheRequiredAxes(t *testing.T) {
	scenarios := DriverSweep()
	if len(scenarios) != 12 {
		t.Fatalf("sweep has %d scenarios, want 12 (6 failure modes x reliability on/off)", len(scenarios))
	}
	var reliable, faulty int
	modes := map[string]bool{}
	for _, sc := range scenarios {
		modes[sc.Name] = true
		if sc.Opt.Reliable {
			reliable++
		}
		if sc.Opt.DropRate > 0 || sc.Opt.DupRate > 0 || sc.Opt.DelayRate > 0 || sc.Opt.CrashRate > 0 {
			faulty++
		}
	}
	if reliable != len(scenarios)/2 {
		t.Errorf("reliability axis unbalanced: %d of %d scenarios reliable", reliable, len(scenarios))
	}
	if faulty != 10 {
		t.Errorf("failure axis wrong: %d faulty scenarios, want 10", faulty)
	}
	for _, name := range []string{"clean", "drop+rel", "dup", "delay+rel", "crash", "storm+rel"} {
		if !modes[name] {
			t.Errorf("sweep is missing scenario %q", name)
		}
	}
}

// TestCheckMessageBalanceRejectsImbalance guards the guard: a Stats whose
// counters do not reconcile must be reported, or the sweep's balance check
// is vacuous.
func TestCheckMessageBalanceRejectsImbalance(t *testing.T) {
	p, err := ChaosProblem(603)
	if err != nil {
		t.Fatal(err)
	}
	res, err := online.Run(p, online.Options{Seed: 603, DropRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats.Net
	if err := CheckMessageBalance(s); err != nil {
		t.Fatalf("real run does not reconcile: %v", err)
	}
	s.Dropped++
	if CheckMessageBalance(s) == nil {
		t.Fatal("tampered stats passed the balance check")
	}
}
