package difftest

import (
	"fmt"
	"math/rand"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
)

// This file is the mutation-walk sweep: the proof obligation of the
// incremental-scheduling layer (core/incremental.go, core/warm.go). A walk
// drives a long random sequence of AddTask/RemoveTask delta operations
// through compiled clones and, step by step, holds them to two contracts:
//
//   - Compile identity: the patched Problem is structurally identical —
//     instance, sparse rows, compiled cover lists, policy windows, K — to
//     NewProblem of the mutated instance (CompareProblems).
//   - Solve identity: a warm-started sharded solve on the long-lived
//     mutated clone, under every execution variant (worker counts, lazy
//     selector, generic kernel), is bit-identical to a cold Workers=1
//     solve of a freshly compiled problem — schedules cell for cell,
//     utilities exactly equal.
//
// Each variant carries its own clone and its own warm chain across the
// whole walk, so incumbent reuse is exercised against an ever-mutating
// decomposition, not just a single mutation.

// MutationVariants is the execution-strategy grid of the mutation walk:
// the generic/flat kernel axis crossed with worker counts and the lazy
// selector. Stats stays off — kernel-stats collection is part of the
// warm-start fingerprint, so mixing it into one chain would just disable
// reuse rather than test anything.
func MutationVariants() []Variant {
	return []Variant{
		{Name: "workers=1", Workers: 1},
		{Name: "workers=2", Workers: 2},
		{Name: "workers=default", Workers: 0},
		{Name: "lazy", Workers: 1, Lazy: true},
		{Name: "generic", Workers: 1, Generic: true},
		{Name: "generic/workers=2", Workers: 2, Generic: true},
	}
}

// MutationSweep is the seeded case grid of the mutation walk: clustered
// shapes whose decomposition keeps shifting as tasks come and go (the
// interesting regime for component adoption and warm reuse), plus a
// connected single-component shape where every mutation dirties the one
// component and reuse must simply never fire incorrectly.
func MutationSweep() []Case {
	return []Case{
		{Name: "walk-clusters-4-c1", Chargers: 8, Tasks: 22, Clusters: 4, Duration: [2]int{4, 10}, Releases: 5, Colors: 1, Seed: 301},
		{Name: "walk-clusters-5-c3", Chargers: 10, Tasks: 26, Clusters: 5, Duration: [2]int{3, 9}, Releases: 5, Colors: 3, Samples: 6, Seed: 302},
		{Name: "walk-connected-c2", Chargers: 5, Tasks: 14, Connected: true, Duration: [2]int{3, 8}, Releases: 4, Colors: 2, Seed: 303},
	}
}

// CompareProblems returns a descriptive error for the first structural
// divergence between two compiled problems — task tables, per-charger
// sparse rows, dominant policy counts, compiled cover lists, policy
// windows, or the horizon — or nil when the compiled surfaces every
// scheduler reads are identical.
func CompareProblems(got, want *core.Problem) error {
	if got.K != want.K {
		return fmt.Errorf("K = %d, want %d", got.K, want.K)
	}
	if len(got.In.Tasks) != len(want.In.Tasks) {
		return fmt.Errorf("task count %d, want %d", len(got.In.Tasks), len(want.In.Tasks))
	}
	for j := range want.In.Tasks {
		if got.In.Tasks[j] != want.In.Tasks[j] {
			return fmt.Errorf("task %d = %+v, want %+v", j, got.In.Tasks[j], want.In.Tasks[j])
		}
	}
	for i := range want.In.Chargers {
		gr, wr := got.ChargerRow(i), want.ChargerRow(i)
		if len(gr) != len(wr) {
			return fmt.Errorf("charger %d row length %d, want %d", i, len(gr), len(wr))
		}
		for x := range wr {
			if gr[x] != wr[x] {
				return fmt.Errorf("charger %d row entry %d = %+v, want %+v", i, x, gr[x], wr[x])
			}
		}
		if len(got.Gamma[i]) != len(want.Gamma[i]) {
			return fmt.Errorf("charger %d has %d policies, want %d", i, len(got.Gamma[i]), len(want.Gamma[i]))
		}
		for pol := range want.Gamma[i] {
			gc, wc := got.CompiledCovers(i, pol), want.CompiledCovers(i, pol)
			if len(gc) != len(wc) {
				return fmt.Errorf("charger %d policy %d compiled length %d, want %d", i, pol, len(gc), len(wc))
			}
			for x := range wc {
				if gc[x] != wc[x] {
					return fmt.Errorf("charger %d policy %d entry %d = %+v, want %+v", i, pol, x, gc[x], wc[x])
				}
			}
			glo, ghi := got.PolicyWindow(i, pol)
			wlo, whi := want.PolicyWindow(i, pol)
			if glo != wlo || ghi != whi {
				return fmt.Errorf("charger %d policy %d window [%d,%d), want [%d,%d)", i, pol, glo, ghi, wlo, whi)
			}
		}
	}
	return nil
}

// walkTask draws a valid task near a random charger, so mutations land
// inside (and keep reshaping) the coverage components.
func walkTask(in *model.Instance, rng *rand.Rand) model.Task {
	c := in.Chargers[rng.Intn(len(in.Chargers))]
	r := in.Params.Radius
	rel := rng.Intn(6)
	dur := 2*in.Params.Tau + 2 + rng.Intn(7)
	return model.Task{
		Pos: geom.Point{
			X: c.Pos.X + (rng.Float64()*2-1)*1.4*r,
			Y: c.Pos.Y + (rng.Float64()*2-1)*1.4*r,
		},
		Phi:     rng.Float64() * geom.TwoPi,
		Release: rel,
		End:     rel + dur,
		Energy:  1e3 + rng.Float64()*5e3,
		Weight:  rng.Float64() * 3,
	}
}

// chain is one variant's long-lived state across a walk: its mutated
// clone and the warm start of its previous solve.
type chain struct {
	v    Variant
	p    *core.Problem
	warm *core.WarmStart
}

// RunMutationWalk drives a steps-long random add/remove walk through the
// delta operations under every variant, holding each step to the compile-
// and solve-identity contracts. solveEvery controls how often the (much
// more expensive) solve comparison runs; the structural comparison runs
// on every step. It returns the number of component adoptions the warm
// chains made in total, so callers can reject a vacuous sweep.
func RunMutationWalk(c Case, variants []Variant, steps, solveEvery int) (reused int, err error) {
	base, err := c.Problem()
	if err != nil {
		return 0, err
	}
	mirror := &model.Instance{
		Chargers: base.In.Chargers,
		Tasks:    append([]model.Task(nil), base.In.Tasks...),
		Params:   base.In.Params,
		Utility:  base.In.Utility,
	}
	chains := make([]chain, len(variants))
	for ci, v := range variants {
		cp := base.CloneCompiled()
		cp.SetFlatKernel(!v.Generic)
		chains[ci] = chain{v: v, p: cp}
	}

	rng := rand.New(rand.NewSource(c.Seed * 31))
	for step := 0; step < steps; step++ {
		// One mutation, mirrored into every chain and the plain instance.
		add := rng.Intn(2) == 0 || len(mirror.Tasks) < 5
		var task model.Task
		var removeID int
		if add {
			task = walkTask(mirror, rng)
			task.ID = len(mirror.Tasks)
			mirror.Tasks = append(mirror.Tasks, task)
		} else {
			removeID = rng.Intn(len(mirror.Tasks))
			last := len(mirror.Tasks) - 1
			mirror.Tasks[removeID] = mirror.Tasks[last]
			mirror.Tasks[removeID].ID = removeID
			mirror.Tasks = mirror.Tasks[:last]
		}
		for ci := range chains {
			ch := &chains[ci]
			var dirty []int
			var derr error
			if add {
				dirty, derr = ch.p.AddTask(task)
			} else {
				dirty, derr = ch.p.RemoveTask(removeID)
			}
			if derr != nil {
				return reused, fmt.Errorf("case %s, variant %s, step %d: %w", c.Name, ch.v.Name, step, derr)
			}
			if ch.warm != nil {
				ch.warm.MarkDirty(dirty)
			}
		}

		// Compile identity: the patched problem against a fresh compile.
		fresh, ferr := core.NewProblem(&model.Instance{
			Chargers: mirror.Chargers,
			Tasks:    append([]model.Task(nil), mirror.Tasks...),
			Params:   mirror.Params,
			Utility:  mirror.Utility,
		})
		if ferr != nil {
			return reused, fmt.Errorf("case %s, step %d: fresh compile: %w", c.Name, step, ferr)
		}
		if cerr := CompareProblems(chains[0].p, fresh); cerr != nil {
			return reused, fmt.Errorf("case %s, step %d: patched problem diverges from fresh compile: %w", c.Name, step, cerr)
		}

		if (step+1)%solveEvery != 0 {
			continue
		}
		// Solve identity: cold Workers=1 reference on the fresh compile vs
		// every chain's warm solve on its long-lived clone.
		refOpt := c.Options(1, false)
		refOpt.Shard = core.ShardOn
		ref := core.TabularGreedy(fresh, refOpt)
		for ci := range chains {
			ch := &chains[ci]
			opt := c.OptionsFor(ch.v)
			opt.Shard = core.ShardOn
			opt.Incumbent = ch.warm
			opt.CollectWarm = true
			got := core.TabularGreedy(ch.p, opt)
			if cerr := CompareResults(ref, got); cerr != nil {
				return reused, fmt.Errorf("case %s, variant %s, step %d: warm solve diverges: %w", c.Name, ch.v.Name, step, cerr)
			}
			if got.Warm == nil {
				return reused, fmt.Errorf("case %s, variant %s, step %d: CollectWarm returned no WarmStart", c.Name, ch.v.Name, step)
			}
			ch.warm = got.Warm
			reused += got.WarmReused
		}
	}
	return reused, nil
}
