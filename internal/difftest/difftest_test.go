package difftest

import (
	"strings"
	"testing"

	"haste/internal/core"
)

func TestSweepCoversTheRequiredAxes(t *testing.T) {
	cases := Sweep()
	if len(cases) < 8 {
		t.Fatalf("sweep has %d cases, want a real grid", len(cases))
	}
	names := map[string]bool{}
	colors := map[int]bool{}
	for _, c := range cases {
		if names[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		colors[c.Colors] = true
		if c.Chargers < 1 || c.Tasks < 1 || c.Seed == 0 {
			t.Errorf("case %s underspecified: %+v", c.Name, c)
		}
	}
	for _, want := range []int{1, 2, 4} {
		if !colors[want] {
			t.Errorf("sweep never exercises C=%d", want)
		}
	}
}

func TestCaseProblemIsSeededDeterministically(t *testing.T) {
	c := Sweep()[0]
	p1, err := c.Problem()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.In.Tasks) != len(p2.In.Tasks) || p1.K != p2.K {
		t.Fatalf("same case generated different instances: K %d vs %d", p1.K, p2.K)
	}
	for j := range p1.In.Tasks {
		if p1.In.Tasks[j] != p2.In.Tasks[j] {
			t.Fatalf("task %d differs between generations", j)
		}
	}
}

func TestCompareResultsReportsTheDivergentCell(t *testing.T) {
	a := core.Result{Schedule: core.NewSchedule(2, 3)}
	b := core.Result{Schedule: core.NewSchedule(2, 3)}
	b.Schedule.Policy[1][2] = 5
	err := CompareResults(a, b)
	if err == nil {
		t.Fatal("divergence not reported")
	}
	if !strings.Contains(err.Error(), "charger 1 slot 2") {
		t.Errorf("error does not name the cell: %v", err)
	}

	b = core.Result{Schedule: core.NewSchedule(2, 3), RUtility: 1}
	if err := CompareResults(a, b); err == nil || !strings.Contains(err.Error(), "RUtility") {
		t.Errorf("utility divergence not reported: %v", err)
	}

	if err := CompareResults(a, core.Result{Schedule: core.NewSchedule(3, 3)}); err == nil {
		t.Error("shape mismatch not reported")
	}
}

func TestRunPassesOnTheFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep runs in internal/core's differential suite")
	}
	for _, c := range Sweep()[:3] {
		if err := Run(c, Variants()); err != nil {
			t.Error(err)
		}
	}
}

func TestVariantsCoverTheKernelAxes(t *testing.T) {
	var generic, gated, stats, pooled, lazy bool
	for _, v := range Variants() {
		generic = generic || v.Generic
		gated = gated || v.Threshold >= core.DefaultParallelThreshold
		stats = stats || v.Stats
		pooled = pooled || (v.Workers > 1 && v.Threshold == 0 && !v.Generic)
		lazy = lazy || v.Lazy
	}
	for name, ok := range map[string]bool{
		"generic kernel": generic, "threshold gating": gated,
		"instrumented scan": stats, "forced pool": pooled, "lazy": lazy,
	} {
		if !ok {
			t.Errorf("variant set never exercises %s", name)
		}
	}
}

func TestKernelSweepAgreement(t *testing.T) {
	for _, c := range Sweep() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			p, err := c.Problem()
			if err != nil {
				t.Fatal(err)
			}
			if err := KernelSweep(p, c.Seed, 400); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestKernelSweepRequiresTheDefaultUtility(t *testing.T) {
	c := Sweep()[0]
	p, err := c.Problem()
	if err != nil {
		t.Fatal(err)
	}
	p.SetFlatKernel(false)
	defer p.SetFlatKernel(true)
	if p.FlatKernel() {
		t.Fatal("SetFlatKernel(false) did not disable the flat kernel")
	}
	if err := KernelSweep(p, 1, 1); err == nil {
		t.Error("sweep should refuse to run without the flat kernel")
	}
}
