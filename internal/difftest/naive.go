package difftest

import (
	"fmt"
	"math/rand"

	"haste/internal/core"
)

// NaiveState is an independent transcription of the pre-compilation
// evaluation kernel — the EnergyState loops exactly as they stood before
// the flat kernel existed, written against the public Problem API
// (Gamma covers, SlotEnergy, the Utility interface). It is the third
// implementation in the kernel agreement sweep: flat kernel, generic
// fallback and this naive scan must agree to the last bit on every
// operation, which pins both current kernels to the historical semantics
// rather than merely to each other.
type NaiveState struct {
	p      *core.Problem
	energy []float64
	total  float64
}

// NewNaiveState returns the empty naive state.
func NewNaiveState(p *core.Problem) *NaiveState {
	return &NaiveState{p: p, energy: make([]float64, len(p.In.Tasks))}
}

// Total returns Σ_j w_j·U(e_j) as accumulated by ApplyScaled calls.
func (ns *NaiveState) Total() float64 { return ns.total }

// Energy returns task j's accumulated energy.
func (ns *NaiveState) Energy(j int) float64 { return ns.energy[j] }

// Marginal is the pre-PR EnergyState.Marginal, verbatim.
func (ns *NaiveState) Marginal(i, k, pol int) float64 {
	u := ns.p.In.U()
	var gain float64
	for _, j := range ns.p.Gamma[i][pol].Covers {
		t := &ns.p.In.Tasks[j]
		if !t.ActiveAt(k) {
			continue
		}
		de := ns.p.SlotEnergy(i, j)
		if de == 0 {
			continue
		}
		gain += t.Weight * (u.Of(ns.energy[j]+de, t.Energy) - u.Of(ns.energy[j], t.Energy))
	}
	return gain
}

// MarginalUpper is the pre-PR EnergyState.MarginalUpper, verbatim.
func (ns *NaiveState) MarginalUpper(i, k, pol int) (gain, upper float64) {
	u := ns.p.In.U()
	for _, j := range ns.p.Gamma[i][pol].Covers {
		t := &ns.p.In.Tasks[j]
		de := ns.p.SlotEnergy(i, j)
		if de == 0 {
			continue
		}
		d := t.Weight * (u.Of(ns.energy[j]+de, t.Energy) - u.Of(ns.energy[j], t.Energy))
		upper += d
		if t.ActiveAt(k) {
			gain += d
		}
	}
	return gain, upper
}

// MarginalScaled is the pre-PR EnergyState.MarginalScaled, verbatim.
func (ns *NaiveState) MarginalScaled(i, k, pol int, frac float64) float64 {
	u := ns.p.In.U()
	var gain float64
	for _, j := range ns.p.Gamma[i][pol].Covers {
		t := &ns.p.In.Tasks[j]
		if !t.ActiveAt(k) {
			continue
		}
		de := ns.p.SlotEnergy(i, j) * frac
		if de == 0 {
			continue
		}
		gain += t.Weight * (u.Of(ns.energy[j]+de, t.Energy) - u.Of(ns.energy[j], t.Energy))
	}
	return gain
}

// ApplyScaled is the pre-PR EnergyState.ApplyScaled, verbatim.
func (ns *NaiveState) ApplyScaled(i, k, pol int, frac float64) float64 {
	u := ns.p.In.U()
	var gain float64
	for _, j := range ns.p.Gamma[i][pol].Covers {
		t := &ns.p.In.Tasks[j]
		if !t.ActiveAt(k) {
			continue
		}
		de := ns.p.SlotEnergy(i, j) * frac
		if de == 0 {
			continue
		}
		gain += t.Weight * (u.Of(ns.energy[j]+de, t.Energy) - u.Of(ns.energy[j], t.Energy))
		ns.energy[j] += de
	}
	ns.total += gain
	return gain
}

// Restore is the pre-PR EnergyState.Restore, verbatim.
func (ns *NaiveState) Restore(ids []int, vals []float64, total float64) {
	for idx, j := range ids {
		ns.energy[j] = vals[idx]
	}
	ns.total = total
}

// kernelOps is the operation surface the agreement sweep compares. Both
// core.EnergyState and NaiveState satisfy it.
type kernelOps interface {
	Marginal(i, k, pol int) float64
	MarginalUpper(i, k, pol int) (gain, upper float64)
	MarginalScaled(i, k, pol int, frac float64) float64
	ApplyScaled(i, k, pol int, frac float64) float64
	Restore(ids []int, vals []float64, total float64)
	Total() float64
	Energy(j int) float64
}

// KernelSweep drives the flat kernel, the generic interface-dispatch
// fallback and the naive pre-PR scan through the same seeded random walk
// of kernel operations — Marginal, MarginalUpper, MarginalScaled,
// ApplyScaled and snapshot/Restore cycles (including restores that
// un-saturate tasks) — and returns an error on the first bitwise
// disagreement in a returned gain or bound, a per-task energy, or the
// running total. Applies repeat on random partitions, so tasks cross
// their requirement during the walk and the flat kernel's saturation
// pruning and utility cache are live for the later operations.
func KernelSweep(p *core.Problem, seed int64, steps int) error {
	if !p.FlatKernel() {
		return fmt.Errorf("kernel sweep: flat kernel unavailable for this instance")
	}
	rng := rand.New(rand.NewSource(seed))
	flat := core.NewEnergyState(p)
	gen := core.NewEnergyState(p)
	naive := NewNaiveState(p)

	// each runs the same operation on all three states; the generic state
	// always executes with the flat kernel switched off.
	each := func(fn func(st kernelOps) float64) (a, b, c float64) {
		a = fn(flat)
		p.SetFlatKernel(false)
		b = fn(gen)
		p.SetFlatKernel(true)
		c = fn(naive)
		return a, b, c
	}
	check := func(what string, a, b, c float64) error {
		if a != b || a != c {
			return fmt.Errorf("%s: flat=%v generic=%v naive=%v", what, a, b, c)
		}
		return nil
	}
	stateEq := func() error {
		if err := check("total", flat.Total(), gen.Total(), naive.Total()); err != nil {
			return err
		}
		for j := range p.In.Tasks {
			if err := check(fmt.Sprintf("energy[%d]", j), flat.Energy(j), gen.Energy(j), naive.Energy(j)); err != nil {
				return err
			}
		}
		return nil
	}

	n := len(p.Gamma)
	var snapIDs []int
	var snapVals []float64
	var snapTotal [3]float64
	haveSnap := false

	for step := 0; step < steps; step++ {
		i := rng.Intn(n)
		if len(p.Gamma[i]) == 0 {
			continue
		}
		pol := rng.Intn(len(p.Gamma[i]))
		k := rng.Intn(p.K + 1) // may land one past the horizon: never active
		frac := float64(rng.Intn(5)) / 4.0
		var name string
		var err error
		switch op := rng.Intn(10); {
		case op < 2:
			name = fmt.Sprintf("Marginal(i=%d,k=%d,pol=%d)", i, k, pol)
			a, b, c := each(func(st kernelOps) float64 { return st.Marginal(i, k, pol) })
			err = check(name, a, b, c)
		case op < 4:
			name = fmt.Sprintf("MarginalUpper(i=%d,k=%d,pol=%d)", i, k, pol)
			var ups [3]float64
			idx := 0
			a, b, c := each(func(st kernelOps) float64 {
				g, u := st.MarginalUpper(i, k, pol)
				ups[idx] = u
				idx++
				return g
			})
			if err = check(name+" gain", a, b, c); err == nil {
				err = check(name+" upper", ups[0], ups[1], ups[2])
			}
		case op < 5:
			name = fmt.Sprintf("MarginalScaled(i=%d,k=%d,pol=%d,frac=%v)", i, k, pol, frac)
			a, b, c := each(func(st kernelOps) float64 { return st.MarginalScaled(i, k, pol, frac) })
			err = check(name, a, b, c)
		case op < 9 || !haveSnap:
			if op >= 9 {
				k = rng.Intn(p.K) // bias the fallback apply into the horizon
			}
			name = fmt.Sprintf("ApplyScaled(i=%d,k=%d,pol=%d,frac=%v)", i, k, pol, frac)
			a, b, c := each(func(st kernelOps) float64 { return st.ApplyScaled(i, k, pol, frac) })
			err = check(name, a, b, c)
			if err == nil && rng.Intn(3) == 0 {
				// Snapshot the touched tasks for a later Restore; rewinding
				// past a saturation crossing exercises un-pruning.
				snapIDs = snapIDs[:0]
				snapVals = snapVals[:0]
				for _, j := range p.Gamma[i][pol].Covers {
					snapIDs = append(snapIDs, j)
					snapVals = append(snapVals, flat.Energy(j))
				}
				snapTotal = [3]float64{flat.Total(), gen.Total(), naive.Total()}
				haveSnap = true
			}
		default:
			name = "Restore"
			totals := snapTotal
			idx := 0
			each(func(st kernelOps) float64 {
				st.Restore(snapIDs, snapVals, totals[idx])
				idx++
				return 0
			})
			haveSnap = false
		}
		if err == nil {
			err = stateEq()
		}
		if err != nil {
			return fmt.Errorf("kernel sweep seed %d step %d %s: %w", seed, step, name, err)
		}
	}
	return nil
}
