// Package difftest is the differential-testing harness that pins every
// execution strategy of the centralized offline scheduler to the
// sequential reference. Determinism is a repo invariant (DESIGN.md §3):
// TabularGreedy with any worker count, and the lazy stale-bound selector,
// must produce byte-identical Schedule.Policy tables and equal utilities
// on the same seeded input. The harness provides the seeded workload sweep
// (varying n, m, horizon, C and N), runs a set of named variants against
// the Workers=1 reference and reports the first divergent cell — both
// internal/core's differential tests and the -race CI job drive it.
package difftest

import (
	"fmt"
	"math/rand"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/workload"
)

// Case is one seeded workload of the differential sweep together with the
// algorithm parameters under test.
type Case struct {
	Name     string
	Chargers int // n
	Tasks    int // m
	Duration [2]int
	Releases int // max release slot (controls the horizon K)
	Colors   int // C
	Samples  int // N (0 = the algorithm default 8·C)
	Seed     int64

	// Clusters > 0 switches the workload to clustered placement with that
	// many isolated clusters (radius 6 discs, charging radius 8), so the
	// instance decomposes into at least Clusters components — the
	// multi-component shapes of the sharded sweep (shard.go).
	Clusters int

	// Connected inflates the charging radius past the field diagonal and
	// opens the receive sector to the full circle, making every
	// charger–task pair chargeable: the instance is one single connected
	// component, the shape where a sharded run must be bit-identical to
	// the monolithic one.
	Connected bool
}

// Config returns the workload configuration of the case (paper defaults
// with the case's scale knobs applied).
func (c Case) Config() workload.Config {
	cfg := workload.Default()
	cfg.NumChargers = c.Chargers
	cfg.NumTasks = c.Tasks
	cfg.DurationMin, cfg.DurationMax = c.Duration[0], c.Duration[1]
	cfg.ReleaseMax = c.Releases
	cfg.EnergyMin, cfg.EnergyMax = 1e3, 6e3
	if c.Clusters > 0 {
		cfg.Placement = workload.Clustered
		cfg.NumClusters = c.Clusters
		cfg.Params.Radius = 8
		cfg.ClusterRadius = 6
	}
	if c.Connected {
		cfg.Params.Radius = 2 * cfg.FieldSide // beyond the field diagonal
		cfg.Params.ReceiveAngle = geom.TwoPi  // devices receive from anywhere
	}
	return cfg
}

// Problem generates the case's seeded instance and wraps it as a Problem.
func (c Case) Problem() (*core.Problem, error) {
	in := c.Config().Generate(rand.New(rand.NewSource(c.Seed)))
	p, err := core.NewProblem(in)
	if err != nil {
		return nil, fmt.Errorf("difftest: case %s: %w", c.Name, err)
	}
	return p, nil
}

// Options assembles the case's scheduler options for one variant. Each run
// gets a fresh deterministic Rng from the case seed so color sampling is
// identical across variants. ParallelThreshold is forced to 1 so that any
// Workers > 1 run actually exercises the pooled fan-out — the sweep's
// cases are far below the production cutoff, which would otherwise gate
// every step onto the sequential path and silently stop testing the
// parallel machinery.
func (c Case) Options(workers int, lazy bool) core.Options {
	o := core.Options{
		Colors:     c.Colors,
		Samples:    c.Samples,
		PreferStay: true,
		Rng:        rand.New(rand.NewSource(c.Seed)),
		Workers:    workers,
		Lazy:       lazy,
	}
	o.ParallelThreshold = 1
	return o
}

// OptionsFor assembles the case's scheduler options for a Variant,
// including its threshold and instrumentation axes (the kernel axis is
// applied by Run, since it is a Problem-level switch).
func (c Case) OptionsFor(v Variant) core.Options {
	o := c.Options(v.Workers, v.Lazy)
	if v.Threshold != 0 {
		o.ParallelThreshold = v.Threshold
	}
	o.KernelStats = v.Stats
	return o
}

// Sweep is the seeded grid the differential suite runs: it crosses network
// scale (n, m), horizon length, color count C and Monte-Carlo sample count
// N, including the degenerate single-charger and single-slot shapes where
// tie-breaking and empty affected-sample sets bite hardest.
func Sweep() []Case {
	return []Case{
		{Name: "tiny-c1", Chargers: 2, Tasks: 6, Duration: [2]int{2, 6}, Releases: 3, Colors: 1, Seed: 101},
		{Name: "one-charger-c1", Chargers: 1, Tasks: 10, Duration: [2]int{3, 9}, Releases: 4, Colors: 1, Seed: 102},
		{Name: "one-slot-c2", Chargers: 6, Tasks: 12, Duration: [2]int{1, 1}, Releases: 0, Colors: 2, Samples: 6, Seed: 103},
		{Name: "small-c1", Chargers: 5, Tasks: 20, Duration: [2]int{4, 12}, Releases: 6, Colors: 1, Seed: 104},
		{Name: "small-c2", Chargers: 5, Tasks: 20, Duration: [2]int{4, 12}, Releases: 6, Colors: 2, Seed: 105},
		{Name: "small-c4", Chargers: 5, Tasks: 20, Duration: [2]int{4, 12}, Releases: 6, Colors: 4, Seed: 106},
		{Name: "mid-c1", Chargers: 10, Tasks: 40, Duration: [2]int{5, 16}, Releases: 8, Colors: 1, Seed: 107},
		{Name: "mid-c4", Chargers: 10, Tasks: 40, Duration: [2]int{5, 16}, Releases: 8, Colors: 4, Seed: 108},
		{Name: "mid-c8-n24", Chargers: 8, Tasks: 30, Duration: [2]int{4, 10}, Releases: 5, Colors: 8, Samples: 24, Seed: 109},
		{Name: "sparse-colors", Chargers: 6, Tasks: 24, Duration: [2]int{3, 8}, Releases: 4, Colors: 5, Samples: 3, Seed: 110},
		{Name: "long-horizon-c2", Chargers: 4, Tasks: 16, Duration: [2]int{20, 60}, Releases: 30, Colors: 2, Samples: 8, Seed: 111},
	}
}

// Variant names one execution strategy compared against the reference.
type Variant struct {
	Name    string
	Workers int
	Lazy    bool

	// Threshold overrides Options.ParallelThreshold (0 keeps the
	// harness's forced 1; use core.DefaultParallelThreshold to test the
	// production gating, under which small-case steps fall back to the
	// sequential scan).
	Threshold int

	// Generic routes the run through the interface-dispatch fallback
	// kernel (Problem.SetFlatKernel(false)) — the pre-compilation
	// reference semantics. Comparing it against the flat-kernel reference
	// run is the old-vs-new kernel sweep.
	Generic bool

	// Stats enables Options.KernelStats, which selects the instrumented
	// per-state scan instead of the batched one.
	Stats bool
}

// Variants is the strategy set the acceptance criteria require: worker
// counts {2, 8} with the pool forced on, the GOMAXPROCS default, the
// production threshold gating, the lazy selector, the instrumented scan,
// and the generic (pre-compilation) kernel both sequential and fanned.
func Variants() []Variant {
	return []Variant{
		{Name: "workers=2", Workers: 2},
		{Name: "workers=8", Workers: 8},
		{Name: "workers=default", Workers: 0},
		{Name: "workers=2/gated", Workers: 2, Threshold: core.DefaultParallelThreshold},
		{Name: "lazy", Workers: 1, Lazy: true},
		{Name: "stats", Workers: 1, Stats: true},
		{Name: "generic", Workers: 1, Generic: true},
		{Name: "generic/workers=2", Workers: 2, Generic: true},
		{Name: "generic/lazy", Workers: 1, Lazy: true, Generic: true},
	}
}

// CompareResults returns a descriptive error for the first cell where two
// results diverge, or nil when the schedules are byte-identical and the
// utilities exactly equal.
func CompareResults(ref, got core.Result) error {
	if len(ref.Schedule.Policy) != len(got.Schedule.Policy) {
		return fmt.Errorf("charger count %d != %d", len(got.Schedule.Policy), len(ref.Schedule.Policy))
	}
	for i := range ref.Schedule.Policy {
		if len(ref.Schedule.Policy[i]) != len(got.Schedule.Policy[i]) {
			return fmt.Errorf("charger %d: slot count %d != %d", i, len(got.Schedule.Policy[i]), len(ref.Schedule.Policy[i]))
		}
		for k := range ref.Schedule.Policy[i] {
			if ref.Schedule.Policy[i][k] != got.Schedule.Policy[i][k] {
				return fmt.Errorf("policy diverges at charger %d slot %d: %d != %d",
					i, k, got.Schedule.Policy[i][k], ref.Schedule.Policy[i][k])
			}
		}
	}
	if ref.RUtility != got.RUtility {
		return fmt.Errorf("RUtility %v != reference %v (schedules identical)", got.RUtility, ref.RUtility)
	}
	return nil
}

// Run executes the sequential flat-kernel reference and every variant on
// the case and returns an error naming the first divergence.
func Run(c Case, variants []Variant) error {
	p, err := c.Problem()
	if err != nil {
		return err
	}
	ref := core.TabularGreedy(p, c.Options(1, false))
	for _, v := range variants {
		p.SetFlatKernel(!v.Generic)
		got := core.TabularGreedy(p, c.OptionsFor(v))
		p.SetFlatKernel(true)
		if err := CompareResults(ref, got); err != nil {
			return fmt.Errorf("case %s, variant %s: %w", c.Name, v.Name, err)
		}
	}
	return nil
}
