// Cross-driver differential suite: the online negotiation must be
// substrate-invariant. Every seeded scenario of DriverSweep — failure-free
// and all four injected failure modes, reliability layer on and off — is
// run on the sequential in-memory engine (the reference), the
// goroutine-per-charger in-memory engine, and the loopback TCP engine
// (package transport), and the three executions must agree bit for bit:
// identical committed orientation timelines, utilities and switch counts,
// reflect.DeepEqual Stats, and a message balance that reconciles exactly,
//
//	Messages == Attempted - Dropped - CrashLost - Expired + Duplicated.
//
// Anti-vacuity guards reject a sweep where an enabled failure mode never
// fired: a drop scenario whose RNG happened to drop nothing would pass
// trivially while testing nothing, so such a scenario is an error, not a
// pass — the seeds are pinned to keep every mode live.
package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/netsim"
	"haste/internal/online"
	"haste/internal/transport"
	"haste/internal/workload"
)

// ChaosProblem is the pinned chaos workload of the failure sweeps (dense
// enough that lost UPD commits actually cost utility): 20 chargers and 30
// tasks on a 12 m field with a 150° receive sector. The online package's
// chaos tests and the transport package's socket chaos sweep use the same
// seeds (603, 614, 622) on it.
func ChaosProblem(seed int64) (*core.Problem, error) {
	cfg := workload.SmallScale()
	cfg.NumChargers = 20
	cfg.NumTasks = 30
	cfg.FieldSide = 12
	cfg.ReleaseMax = 4
	cfg.DurationMin, cfg.DurationMax = 2, 6
	cfg.Params.ReceiveAngle = geom.Deg(150)
	in := cfg.Generate(rand.New(rand.NewSource(seed)))
	p, err := core.NewProblem(in)
	if err != nil {
		return nil, fmt.Errorf("difftest: chaos problem seed %d: %w", seed, err)
	}
	return p, nil
}

// DriverScenario is one seeded cell of the cross-driver sweep: a failure
// mode (or none) and a reliability setting, run identically on every
// driver.
type DriverScenario struct {
	Name string
	Seed int64
	// Opt carries the failure-injection knobs and Reliable; the harness
	// fills Seed and the per-driver fields (Parallel, Driver).
	Opt online.Options
}

// DriverSweep returns every seeded scenario of the cross-driver
// differential suite: failure-free, each single failure mode at the
// chaos-test rates, and the combined storm — each with the reliability
// layer off and on. The seed is pinned per failure mode so the
// anti-vacuity guards hold (every enabled mode fires at least once).
func DriverSweep() []DriverScenario {
	modes := []struct {
		name string
		opt  online.Options
	}{
		{"clean", online.Options{}},
		{"drop", online.Options{DropRate: 0.1}},
		{"dup", online.Options{DupRate: 0.2}},
		{"delay", online.Options{DelayRate: 0.3}},
		{"crash", online.Options{CrashRate: 0.03}},
		{"storm", online.Options{DropRate: 0.2, DupRate: 0.1, DelayRate: 0.2, CrashRate: 0.02}},
	}
	var out []DriverScenario
	for _, m := range modes {
		for _, reliable := range []bool{false, true} {
			sc := DriverScenario{Name: m.name, Seed: 603, Opt: m.opt}
			sc.Opt.Reliable = reliable
			if reliable {
				sc.Name += "+rel"
			}
			out = append(out, sc)
		}
	}
	return out
}

// DriverVariant is one non-reference execution substrate compared against
// the sequential in-memory engine.
type DriverVariant struct {
	Name  string
	Apply func(*online.Options)
}

// DriverVariants returns the substrates under test: the in-memory
// goroutine-per-charger stepping fan and the loopback TCP engine.
func DriverVariants() []DriverVariant {
	return []DriverVariant{
		{Name: "mem-parallel", Apply: func(o *online.Options) { o.Parallel = true }},
		{Name: "tcp", Apply: func(o *online.Options) { o.Driver = transport.Factory }},
	}
}

// CheckMessageBalance verifies the netsim accounting identity that every
// driver must preserve exactly.
func CheckMessageBalance(s netsim.Stats) error {
	want := s.Attempted - s.Dropped - s.CrashLost - s.Expired + s.Duplicated
	if s.Messages != want {
		return fmt.Errorf("message balance broken: Messages %d != Attempted %d - Dropped %d - CrashLost %d - Expired %d + Duplicated %d = %d",
			s.Messages, s.Attempted, s.Dropped, s.CrashLost, s.Expired, s.Duplicated, want)
	}
	return nil
}

// checkVacuity rejects a scenario whose enabled failure modes never fired
// — a sweep cell that injects nothing proves nothing.
func checkVacuity(opt online.Options, s netsim.Stats) error {
	if s.Attempted == 0 {
		return fmt.Errorf("vacuous scenario: no send was ever attempted")
	}
	if opt.DropRate > 0 && s.Dropped == 0 {
		return fmt.Errorf("vacuous scenario: DropRate %v enabled but nothing dropped", opt.DropRate)
	}
	if opt.DupRate > 0 && s.Duplicated == 0 {
		return fmt.Errorf("vacuous scenario: DupRate %v enabled but nothing duplicated", opt.DupRate)
	}
	if opt.DelayRate > 0 && s.Delayed == 0 {
		return fmt.Errorf("vacuous scenario: DelayRate %v enabled but nothing delayed", opt.DelayRate)
	}
	if opt.CrashRate > 0 && s.Crashes == 0 {
		return fmt.Errorf("vacuous scenario: CrashRate %v enabled but nothing crashed", opt.CrashRate)
	}
	return nil
}

// CompareOnlineResults returns a descriptive error for the first place two
// online runs diverge: the committed orientation timelines (NaN-tolerant
// bitwise compare — NaN means "keep previous orientation" and must appear
// in the same cells), the physical utility and switch count, and the full
// Stats including the per-negotiation breakdown.
func CompareOnlineResults(ref, got online.Result) error {
	if len(ref.Orientations) != len(got.Orientations) {
		return fmt.Errorf("charger count %d != %d", len(got.Orientations), len(ref.Orientations))
	}
	for i := range ref.Orientations {
		if len(ref.Orientations[i]) != len(got.Orientations[i]) {
			return fmt.Errorf("charger %d: slot count %d != %d", i, len(got.Orientations[i]), len(ref.Orientations[i]))
		}
		for k := range ref.Orientations[i] {
			rv, gv := ref.Orientations[i][k], got.Orientations[i][k]
			if math.IsNaN(rv) != math.IsNaN(gv) || (!math.IsNaN(rv) && rv != gv) {
				return fmt.Errorf("schedule diverges at charger %d slot %d: %v != %v", i, k, gv, rv)
			}
		}
	}
	if ref.Outcome.Utility != got.Outcome.Utility {
		return fmt.Errorf("utility %v != reference %v (schedules identical)", got.Outcome.Utility, ref.Outcome.Utility)
	}
	if ref.Outcome.Switches != got.Outcome.Switches {
		return fmt.Errorf("switch count %d != reference %d", got.Outcome.Switches, ref.Outcome.Switches)
	}
	if !reflect.DeepEqual(ref.Stats, got.Stats) {
		if ref.Stats.Net != got.Stats.Net {
			return fmt.Errorf("network stats diverge: %+v != reference %+v", got.Stats.Net, ref.Stats.Net)
		}
		return fmt.Errorf("stats diverge: %+v != reference %+v", got.Stats, ref.Stats)
	}
	return nil
}

// RunDriverScenario executes one sweep cell on the reference substrate and
// every variant, checking equivalence, the exact message balance on each
// run, and the anti-vacuity guards. It returns the first divergence.
func RunDriverScenario(sc DriverScenario) error {
	p, err := ChaosProblem(sc.Seed)
	if err != nil {
		return err
	}
	opt := sc.Opt
	opt.Seed = sc.Seed
	ref, err := online.Run(p, opt)
	if err != nil {
		return fmt.Errorf("scenario %s: reference run: %w", sc.Name, err)
	}
	if err := CheckMessageBalance(ref.Stats.Net); err != nil {
		return fmt.Errorf("scenario %s: reference: %w", sc.Name, err)
	}
	if err := checkVacuity(opt, ref.Stats.Net); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	for _, v := range DriverVariants() {
		o := opt
		v.Apply(&o)
		got, err := online.Run(p, o)
		if err != nil {
			return fmt.Errorf("scenario %s, driver %s: %w", sc.Name, v.Name, err)
		}
		if err := CheckMessageBalance(got.Stats.Net); err != nil {
			return fmt.Errorf("scenario %s, driver %s: %w", sc.Name, v.Name, err)
		}
		if err := CompareOnlineResults(ref, got); err != nil {
			return fmt.Errorf("scenario %s, driver %s: %w", sc.Name, v.Name, err)
		}
	}
	return nil
}
