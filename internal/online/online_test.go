package online

import (
	"math"
	"math/bits"
	"math/rand"
	"reflect"
	"testing"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
	"haste/internal/opt"
	"haste/internal/sim"
	"haste/internal/workload"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func mustProblem(t *testing.T, in *model.Instance) *core.Problem {
	t.Helper()
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

// mustRun runs the online scenario on the default in-memory substrate,
// where Run cannot fail — any error is a test bug.
func mustRun(t testing.TB, p *core.Problem, opt Options) Result {
	t.Helper()
	res, err := Run(p, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func singleTaskInstance() *model.Instance {
	return &model.Instance{
		Chargers: []model.Charger{{ID: 0, Pos: geom.Point{X: 0, Y: 0}}},
		Tasks: []model.Task{{
			ID: 0, Pos: geom.Point{X: 10, Y: 0}, Phi: math.Pi,
			Release: 2, End: 8, Energy: 1e6, Weight: 1,
		}},
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(60),
			SlotSeconds: 60, Rho: 1.0 / 12, Tau: 1,
		},
	}
}

// One charger, one task released at slot 2 with τ = 1: the charger can
// orient no earlier than slot 3 and pays one switching delay. Five covered
// slots: 240·(1−1/12) + 4·240 = 1180 J.
func TestRunSingleTaskTiming(t *testing.T) {
	p := mustProblem(t, singleTaskInstance())
	res := mustRun(t, p, Options{Seed: 1})
	if res.Outcome.Switches != 1 {
		t.Errorf("switches = %d, want 1", res.Outcome.Switches)
	}
	if !almostEq(res.Outcome.Energy[0], 1180) {
		t.Errorf("energy = %v, want 1180", res.Outcome.Energy[0])
	}
	// Slots before release+τ must carry no command.
	for k := 0; k < 3; k++ {
		if !math.IsNaN(res.Orientations[0][k]) {
			t.Errorf("slot %d has command %v, want none", k, res.Orientations[0][k])
		}
	}
	if math.IsNaN(res.Orientations[0][3]) {
		t.Error("slot 3 should carry the first command")
	}
	// An isolated charger negotiates without sending any messages.
	if res.Stats.TotalMessages() != 0 {
		t.Errorf("messages = %d, want 0 for isolated charger", res.Stats.TotalMessages())
	}
}

func onlineWorkload(seed int64) *model.Instance {
	cfg := workload.SmallScale()
	cfg.NumChargers = 6
	cfg.NumTasks = 12
	cfg.FieldSide = 15
	cfg.ReleaseMax = 4
	cfg.DurationMin, cfg.DurationMax = 2, 6
	cfg.Params.ReceiveAngle = geom.Deg(120)
	return cfg.Generate(rand.New(rand.NewSource(seed)))
}

func TestRunDeterministicAndParallelAgrees(t *testing.T) {
	in := onlineWorkload(111)
	p := mustProblem(t, in)
	a := mustRun(t, p, Options{Seed: 7})
	b := mustRun(t, p, Options{Seed: 7})
	c := mustRun(t, p, Options{Seed: 7, Parallel: true})
	if !almostEq(a.Outcome.Utility, b.Outcome.Utility) {
		t.Fatalf("same seed diverged: %v vs %v", a.Outcome.Utility, b.Outcome.Utility)
	}
	if !reflect.DeepEqual(a.Stats, c.Stats) {
		t.Fatalf("parallel stats differ: %+v vs %+v", a.Stats, c.Stats)
	}
	for i := range a.Orientations {
		for k := range a.Orientations[i] {
			av, cv := a.Orientations[i][k], c.Orientations[i][k]
			if (math.IsNaN(av) != math.IsNaN(cv)) || (!math.IsNaN(av) && av != cv) {
				t.Fatalf("parallel plan differs at (%d,%d): %v vs %v", i, k, av, cv)
			}
		}
	}
}

func TestRunProducesMessagesWhenNeighborsExist(t *testing.T) {
	in := onlineWorkload(112)
	p := mustProblem(t, in)
	// Verify the workload actually has neighboring chargers.
	hasNeighbors := false
	for _, ns := range in.Neighbors() {
		if len(ns) > 0 {
			hasNeighbors = true
		}
	}
	if !hasNeighbors {
		t.Skip("workload has no neighboring chargers")
	}
	res := mustRun(t, p, Options{Seed: 3})
	if res.Stats.TotalMessages() == 0 {
		t.Error("no control messages despite neighboring chargers")
	}
	if res.Stats.TotalRounds() == 0 {
		t.Error("no negotiation rounds recorded")
	}
	if res.Outcome.Utility <= 0 || res.Outcome.Utility > 1+1e-9 {
		t.Errorf("utility out of range: %v", res.Outcome.Utility)
	}
}

// Theorem 6.1: the online algorithm is ½(1−ρ)(1−1/e)-competitive against
// the offline optimum. Verify against the exact HASTE-R optimum (an upper
// bound on the HASTE optimum) on small instances.
func TestRunMeetsCompetitiveBound(t *testing.T) {
	bound := 0.5 * (1 - 1.0/12) * (1 - 1/math.E)
	for seed := int64(0); seed < 6; seed++ {
		cfg := workload.SmallScale()
		cfg.NumChargers, cfg.NumTasks = 3, 6
		cfg.FieldSide = 8
		cfg.ReleaseMax = 2
		cfg.DurationMin, cfg.DurationMax = 2, 4
		in := cfg.Generate(rand.New(rand.NewSource(200 + seed)))
		p := mustProblem(t, in)
		res := mustRun(t, p, Options{Seed: seed})
		sol, err := opt.Solve(p, opt.Options{MaxNodes: 20_000_000})
		if err != nil {
			t.Skipf("seed %d: OPT too large: %v", seed, err)
		}
		if sol.Utility == 0 {
			continue
		}
		if ratio := res.Outcome.Utility / sol.Utility; ratio < bound {
			t.Errorf("seed %d: competitive ratio %v below bound %v", seed, ratio, bound)
		}
	}
}

// The offline algorithm knows the future; on aggregate it must not lose to
// the online algorithm on the same workloads.
func TestOfflineBeatsOnlineOnAggregate(t *testing.T) {
	var offSum, onSum float64
	for seed := int64(0); seed < 10; seed++ {
		in := onlineWorkload(300 + seed)
		p := mustProblem(t, in)
		off := core.TabularGreedy(p, core.DefaultOptions(1))
		offSum += sim.Execute(p, off.Schedule).Utility
		onSum += mustRun(t, p, Options{Seed: seed}).Outcome.Utility
	}
	if offSum < onSum-1e-6 {
		t.Errorf("offline aggregate %v below online %v", offSum, onSum)
	}
	if onSum < 0.5*offSum {
		t.Errorf("online aggregate %v implausibly far below offline %v", onSum, offSum)
	}
}

func TestRunWithColors(t *testing.T) {
	in := onlineWorkload(113)
	p := mustProblem(t, in)
	res := mustRun(t, p, Options{Seed: 4, Colors: 4})
	if res.Outcome.Utility <= 0 {
		t.Errorf("C=4 utility = %v", res.Outcome.Utility)
	}
	res1 := mustRun(t, p, Options{Seed: 4, Colors: 1})
	if res.Outcome.Utility < 0.7*res1.Outcome.Utility {
		t.Errorf("C=4 utility %v collapsed versus C=1 %v", res.Outcome.Utility, res1.Outcome.Utility)
	}
}

// Pinned multi-color golden: the experiments golden suite only exercises
// the online path with Colors = 1, so a change to colorAt's sample→color
// mapping (e.g. a revert to the biased `hash % C`) would slip past it.
// This pins the exact seeded outcome for a non-power-of-two color count;
// regenerate the constants deliberately if the mapping ever changes again.
func TestRunMultiColorGolden(t *testing.T) {
	in := onlineWorkload(113)
	p := mustProblem(t, in)
	res := mustRun(t, p, Options{Seed: 4, Colors: 3})
	const wantUtility = 0.6153407608729332
	if res.Outcome.Utility != wantUtility {
		t.Errorf("C=3 utility = %v, want pinned %v", res.Outcome.Utility, wantUtility)
	}
	if res.Outcome.Switches != 11 {
		t.Errorf("C=3 switches = %d, want pinned 11", res.Outcome.Switches)
	}
	if got := res.Stats.TotalMessages(); got != 496 {
		t.Errorf("C=3 messages = %d, want pinned 496", got)
	}
	if got := res.Stats.TotalRounds(); got != 175 {
		t.Errorf("C=3 rounds = %d, want pinned 175", got)
	}
}

// Failure injection: the protocol must terminate and still produce a
// usable plan under heavy message loss.
func TestRunUnderMessageLoss(t *testing.T) {
	in := onlineWorkload(114)
	p := mustProblem(t, in)
	clean := mustRun(t, p, Options{Seed: 5})
	lossy := mustRun(t, p, Options{Seed: 5, DropRate: 0.3, DupRate: 0.1})
	if lossy.Outcome.Utility <= 0 || lossy.Outcome.Utility > 1+1e-9 {
		t.Fatalf("lossy utility out of range: %v", lossy.Outcome.Utility)
	}
	if lossy.Outcome.Utility < 0.5*clean.Outcome.Utility {
		t.Errorf("lossy run %v collapsed versus clean %v", lossy.Outcome.Utility, clean.Outcome.Utility)
	}
	if lossy.Stats.Net.Dropped == 0 {
		t.Error("expected dropped messages to be accounted")
	}
}

// Satellite regression: a lone bidder with no neighbors still bids,
// commits and burns rounds — those sessions used to vanish from
// NegotiationStats because no message was ever delivered, leaving the
// Fig. 16 totals short of Stats.Net.
func TestLoneBidderSessionsCounted(t *testing.T) {
	p := mustProblem(t, singleTaskInstance())
	res := mustRun(t, p, Options{Seed: 1})
	var sessions int
	for _, n := range res.Stats.Negotiations {
		sessions += n.Sessions
	}
	if sessions == 0 {
		t.Error("isolated charger's sessions not counted")
	}
	if res.Stats.TotalRounds() == 0 {
		t.Error("isolated charger's rounds not counted")
	}
	if res.Stats.TotalMessages() != 0 {
		t.Errorf("messages = %d, want 0 for isolated charger", res.Stats.TotalMessages())
	}
	if got, want := res.Stats.TotalRounds(), res.Stats.Net.Rounds; got != want {
		t.Errorf("per-negotiation rounds %d != network rounds %d", got, want)
	}
}

// Satellite regression: negotiate used to swallow ErrNoQuiescence — the
// session's traffic landed in Stats.Net but not in the per-negotiation
// totals, and the degradation was invisible. Force non-quiescence with a
// tiny MaxRounds and check both the surfaced counter and the exact
// reconciliation.
func TestNonQuiescentSessionsAccounted(t *testing.T) {
	in := onlineWorkload(112)
	p := mustProblem(t, in)
	res := mustRun(t, p, Options{Seed: 3, MaxRounds: 3})
	if res.Stats.NonQuiescentSessions == 0 {
		t.Fatal("MaxRounds=3 tripped no session; scenario does not exercise the path")
	}
	if got, want := res.Stats.TotalMessages(), res.Stats.Net.Messages; got != want {
		t.Errorf("per-negotiation messages %d != network messages %d", got, want)
	}
	if got, want := res.Stats.TotalRounds(), res.Stats.Net.Rounds; got != want {
		t.Errorf("per-negotiation rounds %d != network rounds %d", got, want)
	}
}

// Satellite regression: colorAt used x % colors, whose modulo bias
// over-weights the first 2^64 mod C residues for non-power-of-two C. Pin
// the unbiased multiply-shift mapping and its uniformity for such C.
func TestColorAtLemireReduction(t *testing.T) {
	// The mapping must be the Lemire reduction of the splitmix64 hash
	// (reimplemented here so a revert to `hash % colors` fails the test).
	lemire := func(seed int64, s, i, k, colors int) int {
		x := uint64(seed) ^ uint64(s)*0x9e3779b97f4a7c15 ^ uint64(i)*0xbf58476d1ce4e5b9 ^ uint64(k)*0x94d049bb133111eb
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		hi, _ := bits.Mul64(x, uint64(colors))
		return int(hi)
	}
	for _, colors := range []int{2, 3, 5, 6, 7} {
		counts := make([]int, colors)
		n := 0
		for s := 0; s < 3; s++ {
			for i := 0; i < 12; i++ {
				for k := 0; k < 40; k++ {
					c := colorAt(99, s, i, k, colors)
					if c < 0 || c >= colors {
						t.Fatalf("colorAt out of range: %d (C=%d)", c, colors)
					}
					if want := lemire(99, s, i, k, colors); c != want {
						t.Fatalf("colorAt(99,%d,%d,%d,%d) = %d, want Lemire reduction %d", s, i, k, colors, c, want)
					}
					counts[c]++
					n++
				}
			}
		}
		for c, cnt := range counts {
			frac := float64(cnt) / float64(n)
			want := 1.0 / float64(colors)
			if frac < want*0.6 || frac > want*1.4 {
				t.Errorf("C=%d color %d frequency %v far from uniform %v", colors, c, frac, want)
			}
		}
	}
}

func TestColorAt(t *testing.T) {
	// Deterministic, in range, and reasonably uniform.
	counts := make([]int, 4)
	for s := 0; s < 4; s++ {
		for i := 0; i < 10; i++ {
			for k := 0; k < 50; k++ {
				c := colorAt(42, s, i, k, 4)
				if c < 0 || c >= 4 {
					t.Fatalf("color %d out of range", c)
				}
				if c != colorAt(42, s, i, k, 4) {
					t.Fatal("colorAt not deterministic")
				}
				counts[c]++
			}
		}
	}
	total := 4 * 10 * 50
	for c, cnt := range counts {
		frac := float64(cnt) / float64(total)
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("color %d frequency %v far from uniform", c, frac)
		}
	}
	if colorAt(42, 3, 1, 2, 1) != 0 {
		t.Error("single color must map to 0")
	}
}

func TestKnownNeighborsLocality(t *testing.T) {
	// Two far-apart clusters must not become neighbors.
	in := &model.Instance{
		Chargers: []model.Charger{
			{ID: 0, Pos: geom.Point{X: 0, Y: 0}},
			{ID: 1, Pos: geom.Point{X: 4, Y: 0}},
			{ID: 2, Pos: geom.Point{X: 100, Y: 0}},
			{ID: 3, Pos: geom.Point{X: 104, Y: 0}},
		},
		Tasks: []model.Task{
			{ID: 0, Pos: geom.Point{X: 2, Y: 0}, Phi: 0, Release: 0, End: 4, Energy: 100, Weight: 0.5},
			{ID: 1, Pos: geom.Point{X: 102, Y: 0}, Phi: 0, Release: 0, End: 4, Energy: 100, Weight: 0.5},
		},
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.TwoPi,
			SlotSeconds: 60, Rho: 0, Tau: 0,
		},
	}
	p := mustProblem(t, in)
	nb := knownNeighbors(p, []int{0, 1})
	want := [][]int{{1}, {0}, {3}, {2}}
	if !reflect.DeepEqual(nb, want) {
		t.Fatalf("neighbors = %v, want %v", nb, want)
	}
	// With only task 0 known, the right cluster has no neighbors yet.
	nb = knownNeighbors(p, []int{0})
	if len(nb[2]) != 0 || len(nb[3]) != 0 {
		t.Fatalf("right cluster should be isolated: %v", nb)
	}
}
