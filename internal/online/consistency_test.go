package online

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/workload"
)

// White-box distributed-consistency tests: after a full negotiation, every
// agent's local energy view must agree with its neighbors' on shared tasks
// and with an independent global recomputation of all committed tuples —
// the property that makes the local marginal ΔF_i equal to the global one
// (the key step in the proof of Theorem 6.1).

func negotiatedAgents(t *testing.T, seed int64, colors int) (*core.Problem, negotiation) {
	t.Helper()
	cfg := workload.SmallScale()
	cfg.NumChargers, cfg.NumTasks = 6, 14
	cfg.FieldSide = 14
	cfg.ReleaseMax = 0 // single negotiation covering everything
	cfg.Params.Tau = 0
	cfg.Params.ReceiveAngle = geom.Deg(150)
	in := cfg.Generate(rand.New(rand.NewSource(seed)))
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	known := make([]int, len(in.Tasks))
	for j := range known {
		known[j] = j
	}
	orient := make([][]float64, len(in.Chargers))
	for i := range orient {
		orient[i] = make([]float64, p.K)
		for k := range orient[i] {
			orient[i][k] = math.NaN()
		}
	}
	opt := Options{Colors: colors, Seed: seed}.normalize()
	neg, err := negotiate(p, opt, known, orient, 0, 0, p.K)
	if err != nil {
		t.Fatalf("negotiate: %v", err)
	}
	return p, neg
}

func TestNeighborEnergyViewsAgree(t *testing.T) {
	for _, colors := range []int{1, 3} {
		p, neg := negotiatedAgents(t, 17, colors)
		neighbors := knownNeighbors(p, allIDs(p))
		for i, a := range neg.agents {
			for _, nb := range neighbors[i] {
				b := neg.agents[nb]
				for s := 0; s < a.samples && s < b.samples; s++ {
					for j := range p.In.Tasks {
						// Shared task: both can charge it.
						if p.SlotEnergy(i, j) == 0 || p.SlotEnergy(nb, j) == 0 {
							continue
						}
						if math.Abs(a.energy[s][j]-b.energy[s][j]) > 1e-9 {
							t.Fatalf("C=%d: agents %d and %d disagree on task %d sample %d: %v vs %v",
								colors, i, nb, j, s, a.energy[s][j], b.energy[s][j])
						}
					}
				}
			}
		}
	}
}

// Each agent's energy view must equal the global recomputation of every
// committed (charger, slot, color) tuple, restricted to the tasks the
// agent can observe (its own chargeable tasks).
func TestAgentViewsMatchGlobalRecomputation(t *testing.T) {
	for _, colors := range []int{1, 2} {
		p, neg := negotiatedAgents(t, 23, colors)
		opt := Options{Colors: colors, Seed: 17}.normalize()
		_ = opt
		samples := neg.agents[0].samples

		// Global truth: accumulate every agent's committed tuples.
		truth := make([][]float64, samples)
		for s := range truth {
			truth[s] = make([]float64, len(p.In.Tasks))
		}
		for i, a := range neg.agents {
			for k, row := range a.q {
				for c, pol := range row {
					if pol < 0 {
						continue
					}
					for s := 0; s < samples; s++ {
						if colorAt(a.seed, s, i, k, a.colors) != c {
							continue
						}
						for _, j := range a.policies[pol].Covers {
							if p.In.Tasks[j].ActiveAt(k) {
								truth[s][j] += p.SlotEnergy(i, j)
							}
						}
					}
				}
			}
		}
		for i, a := range neg.agents {
			for s := 0; s < samples; s++ {
				for j := range p.In.Tasks {
					if p.SlotEnergy(i, j) == 0 {
						continue // agent cannot observe this task
					}
					if math.Abs(a.energy[s][j]-truth[s][j]) > 1e-9 {
						t.Fatalf("C=%d: agent %d task %d sample %d: local %v != global %v",
							colors, i, j, s, a.energy[s][j], truth[s][j])
					}
				}
			}
		}
	}
}

// The matroid constraint at the distributed level: each agent commits at
// most one policy per (slot, color).
func TestAgentsRespectPartitionMatroid(t *testing.T) {
	p, neg := negotiatedAgents(t, 31, 3)
	for i, a := range neg.agents {
		for k, row := range a.q {
			if k < 0 || k >= p.K {
				t.Fatalf("agent %d committed out-of-horizon slot %d", i, k)
			}
			if len(row) != a.colors {
				t.Fatalf("agent %d slot %d has %d color entries", i, k, len(row))
			}
			for _, pol := range row {
				if pol >= len(a.policies) {
					t.Fatalf("agent %d references unknown policy %d", i, pol)
				}
			}
		}
	}
}

func allIDs(p *core.Problem) []int {
	ids := make([]int, len(p.In.Tasks))
	for j := range ids {
		ids[j] = j
	}
	return ids
}
