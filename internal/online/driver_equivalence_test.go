package online

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/workload"
)

// TestDriverEquivalenceSeededTopologies is the netsim driver-equivalence
// check at the full protocol level: on three seeded topologies the
// goroutine-per-charger negotiation and the sequential one must produce
// identical schedules (orientation timelines), message counts and round
// counts. CI runs this suite under the race detector — the whole point is
// catching an unsynchronized write in the parallel driver or the agents.
func TestDriverEquivalenceSeededTopologies(t *testing.T) {
	for _, seed := range []int64{301, 302, 303} {
		cfg := workload.SmallScale()
		cfg.NumChargers = 7
		cfg.NumTasks = 14
		cfg.FieldSide = 14
		cfg.ReleaseMax = 3
		cfg.DurationMin, cfg.DurationMax = 2, 5
		in := cfg.Generate(rand.New(rand.NewSource(seed)))
		p, err := core.NewProblem(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seq := mustRun(t, p, Options{Seed: seed})
		par := mustRun(t, p, Options{Seed: seed, Parallel: true})

		for i := range seq.Orientations {
			for k := range seq.Orientations[i] {
				sv, pv := seq.Orientations[i][k], par.Orientations[i][k]
				if math.IsNaN(sv) != math.IsNaN(pv) || (!math.IsNaN(sv) && sv != pv) {
					t.Fatalf("seed %d: schedule diverges at charger %d slot %d: %v vs %v",
						seed, i, k, sv, pv)
				}
			}
		}
		if seq.Outcome.Utility != par.Outcome.Utility {
			t.Errorf("seed %d: utility diverges: %v vs %v", seed, seq.Outcome.Utility, par.Outcome.Utility)
		}
		if s, p := seq.Stats.TotalMessages(), par.Stats.TotalMessages(); s != p {
			t.Errorf("seed %d: message counts diverge: %d vs %d", seed, s, p)
		}
		if s, p := seq.Stats.TotalRounds(), par.Stats.TotalRounds(); s != p {
			t.Errorf("seed %d: round counts diverge: %d vs %d", seed, s, p)
		}
		if seq.Stats.Net != par.Stats.Net {
			t.Errorf("seed %d: network totals diverge: %+v vs %+v", seed, seq.Stats.Net, par.Stats.Net)
		}
	}
}
