package online

import (
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/workload"
)

// Seeded chaos-sweep harness: drive the full online stack through a grid
// of failure modes and rates and assert the three robustness invariants
// of the negotiation protocol (see DESIGN.md §3 and EXPERIMENTS.md):
//
//  1. every run terminates and yields a utility in [0, 1];
//  2. on the pinned scenarios no faulty run beats the failure-free run
//     (failures can only destroy information, and the seeds are chosen
//     so greedy tie-break luck does not mask that);
//  3. the per-negotiation stats reconcile exactly with the network-level
//     totals at every failure rate — the Fig. 16 quantities stay honest
//     under degradation.
//
// The reliability recovery claim (drop-rate 10% back to ≥ 99% of
// failure-free) is pinned separately in TestReliabilityRecoversUtility.

// chaosWorkload is denser than onlineWorkload — enough charger contention
// that lost UPD commits actually cost utility.
func chaosWorkload(seed int64) *core.Problem {
	cfg := workload.SmallScale()
	cfg.NumChargers = 20
	cfg.NumTasks = 30
	cfg.FieldSide = 12
	cfg.ReleaseMax = 4
	cfg.DurationMin, cfg.DurationMax = 2, 6
	cfg.Params.ReceiveAngle = geom.Deg(150)
	in := cfg.Generate(rand.New(rand.NewSource(seed)))
	p, err := core.NewProblem(in)
	if err != nil {
		panic(err)
	}
	return p
}

// chaosSeeds are pinned: each one degrades at 10% drop without the
// reliability layer and satisfies the never-exceeds-failure-free
// invariant across the whole failure grid (verified when they were
// chosen; the tests below keep them honest).
var chaosSeeds = []int64{603, 614, 622}

// chaosGrid is the failure-mode grid of the sweep.
func chaosGrid(short bool) []Options {
	if short {
		return []Options{
			{DropRate: 0.1},
			{DelayRate: 0.3},
			{CrashRate: 0.03},
			{DropRate: 0.2, DupRate: 0.1, DelayRate: 0.2, CrashRate: 0.02},
		}
	}
	return []Options{
		{DropRate: 0.05},
		{DropRate: 0.1},
		{DropRate: 0.3},
		{DupRate: 0.2},
		{DelayRate: 0.3},
		{CrashRate: 0.03},
		{DropRate: 0.2, DupRate: 0.1, DelayRate: 0.2, CrashRate: 0.02},
	}
}

func reconcileStats(t *testing.T, label string, s Stats) {
	t.Helper()
	if got, want := s.TotalMessages(), s.Net.Messages; got != want {
		t.Errorf("%s: per-negotiation messages %d != network messages %d", label, got, want)
	}
	if got, want := s.TotalRounds(), s.Net.Rounds; got != want {
		t.Errorf("%s: per-negotiation rounds %d != network rounds %d", label, got, want)
	}
}

func TestChaosSweepInvariants(t *testing.T) {
	seeds := chaosSeeds
	if testing.Short() {
		seeds = chaosSeeds[:1]
	}
	for _, seed := range seeds {
		p := chaosWorkload(seed)
		clean := mustRun(t, p, Options{Seed: seed})
		reconcileStats(t, "failure-free", clean.Stats)
		for _, o := range chaosGrid(testing.Short()) {
			for _, reliable := range []bool{false, true} {
				o := o
				o.Seed = seed
				o.Reliable = reliable
				res := mustRun(t, p, o) // invariant 1: must terminate
				label := "chaos"
				if reliable {
					label = "chaos+reliable"
				}
				u := res.Outcome.Utility
				if u < 0 || u > 1+1e-9 {
					t.Errorf("%s seed=%d %+v: utility %v out of range", label, seed, o, u)
				}
				// Invariant 2: failures never beat the failure-free run.
				if u > clean.Outcome.Utility+1e-9 {
					t.Errorf("%s seed=%d %+v: utility %v exceeds failure-free %v",
						label, seed, o, u, clean.Outcome.Utility)
				}
				// Invariant 3: stats accounting stays exact.
				reconcileStats(t, label, res.Stats)
				if o.DropRate == 0 && res.Stats.Net.Dropped != 0 {
					t.Errorf("%s seed=%d: drops fired with DropRate=0", label, seed)
				}
				if !reliable && res.Stats.Retransmits != 0 {
					t.Errorf("%s seed=%d: retransmits without the reliability layer", label, seed)
				}
			}
		}
	}
}

// TestReliabilityRecoversUtility pins the recovery claim from
// EXPERIMENTS.md: at 10% drop rate the no-reliability baseline loses
// utility on every pinned scenario, the reliability layer is strictly
// better on aggregate, and it recovers to at least 99% of failure-free
// per scenario.
func TestReliabilityRecoversUtility(t *testing.T) {
	var cleanSum, lossySum, relSum float64
	for _, seed := range chaosSeeds {
		p := chaosWorkload(seed)
		clean := mustRun(t, p, Options{Seed: seed}).Outcome.Utility
		lossy := mustRun(t, p, Options{Seed: seed, DropRate: 0.1}).Outcome.Utility
		rel := mustRun(t, p, Options{Seed: seed, DropRate: 0.1, Reliable: true}).Outcome.Utility
		cleanSum += clean
		lossySum += lossy
		relSum += rel
		if rel < 0.99*clean {
			t.Errorf("seed=%d: reliable utility %v below 99%% of failure-free %v", seed, rel, clean)
		}
	}
	if lossySum >= cleanSum {
		t.Errorf("scenarios degenerate: baseline at 10%% drop (%v) does not degrade vs failure-free (%v)",
			lossySum, cleanSum)
	}
	if relSum <= lossySum {
		t.Errorf("reliability layer did not improve on the baseline at 10%% drop: %v vs %v", relSum, lossySum)
	}
}

// With zero failure rates the reliability layer must commit exactly the
// same tuples as the base protocol: same schedule, same utility — the
// only difference is the ack traffic.
func TestReliableFailureFreeMatchesBaseline(t *testing.T) {
	for _, seed := range []int64{603, 111} {
		var p *core.Problem
		if seed == 603 {
			p = chaosWorkload(seed)
		} else {
			p = mustProblemChaos(t, seed)
		}
		base := mustRun(t, p, Options{Seed: seed})
		rel := mustRun(t, p, Options{Seed: seed, Reliable: true})
		if base.Outcome.Utility != rel.Outcome.Utility {
			t.Errorf("seed=%d: reliable failure-free utility %v != baseline %v",
				seed, rel.Outcome.Utility, base.Outcome.Utility)
		}
		for i := range base.Orientations {
			for k := range base.Orientations[i] {
				bv, rv := base.Orientations[i][k], rel.Orientations[i][k]
				if (bv != rv) && !(bv != bv && rv != rv) { // NaN-tolerant compare
					t.Fatalf("seed=%d: schedule diverges at charger %d slot %d: %v vs %v", seed, i, k, bv, rv)
				}
			}
		}
		if rel.Stats.UnackedCommits != 0 {
			t.Errorf("seed=%d: unacked commits on a lossless network: %d", seed, rel.Stats.UnackedCommits)
		}
		if rel.Stats.Net.Messages <= base.Stats.Net.Messages {
			t.Errorf("seed=%d: expected ack traffic on top of baseline (%d <= %d)",
				seed, rel.Stats.Net.Messages, base.Stats.Net.Messages)
		}
	}
}

func mustProblemChaos(t *testing.T, seed int64) *core.Problem {
	t.Helper()
	return mustProblem(t, onlineWorkload(seed))
}

// TestChaosDriverEquivalence extends the driver-equivalence contract to
// every failure mode: injection draws happen outside the stepping fan, so
// the goroutine-per-charger driver must match the sequential one bit for
// bit — schedules and every counter — under chaos too. CI runs this under
// the race detector.
func TestChaosDriverEquivalence(t *testing.T) {
	seed := chaosSeeds[0]
	p := chaosWorkload(seed)
	grid := chaosGrid(true)
	for gi, o := range grid {
		for _, reliable := range []bool{false, true} {
			o := o
			o.Seed = seed
			o.Reliable = reliable
			seq := mustRun(t, p, o)
			o.Parallel = true
			par := mustRun(t, p, o)
			if seq.Outcome.Utility != par.Outcome.Utility {
				t.Errorf("grid[%d] reliable=%v: utility diverges: %v vs %v",
					gi, reliable, seq.Outcome.Utility, par.Outcome.Utility)
			}
			if seq.Stats.Net != par.Stats.Net {
				t.Errorf("grid[%d] reliable=%v: network stats diverge: %+v vs %+v",
					gi, reliable, seq.Stats.Net, par.Stats.Net)
			}
			if seq.Stats.NonQuiescentSessions != par.Stats.NonQuiescentSessions ||
				seq.Stats.UnackedCommits != par.Stats.UnackedCommits ||
				seq.Stats.Retransmits != par.Stats.Retransmits {
				t.Errorf("grid[%d] reliable=%v: degradation stats diverge: %+v vs %+v",
					gi, reliable, seq.Stats, par.Stats)
			}
			for i := range seq.Orientations {
				for k := range seq.Orientations[i] {
					sv, pv := seq.Orientations[i][k], par.Orientations[i][k]
					if (sv != pv) && !(sv != sv && pv != pv) {
						t.Fatalf("grid[%d] reliable=%v: schedule diverges at charger %d slot %d: %v vs %v",
							gi, reliable, i, k, sv, pv)
					}
				}
			}
		}
	}
}
