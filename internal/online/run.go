package online

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"haste/internal/core"
	"haste/internal/netsim"
	"haste/internal/sim"
)

// Options configures a distributed online run.
type Options struct {
	// Colors is the TabularGreedy control parameter C (default 1).
	Colors int
	// Samples is the number of Monte-Carlo color vectors when Colors > 1
	// (default 8·Colors, forced to 1 when Colors == 1).
	Samples int
	// Seed drives the shared color hash and the final per-agent color
	// sampling; runs with equal seeds are identical.
	Seed int64
	// Parallel runs every negotiation round with one goroutine per
	// charger (results are identical to the sequential driver). It only
	// selects between the in-memory engine's two stepping fans; a socket
	// Driver is inherently concurrent and ignores it.
	Parallel bool
	// DropRate / DupRate inject message loss and duplication into the
	// negotiation (see package netsim). The protocol degrades gracefully:
	// sessions still terminate, utility may drop.
	DropRate, DupRate float64
	// DelayRate / CrashRate inject bounded message delay (with reordering)
	// and node crash/restart outages (see package netsim).
	DelayRate, CrashRate float64
	// Driver, when non-nil, builds the execution substrate carrying each
	// negotiation's control messages — e.g. transport.Factory for
	// loopback-TCP sockets. Nil selects the in-memory netsim engine. The
	// protocol's behaviour is substrate-invariant: every driver must
	// commit bit-identical schedules with exactly reconciled Stats
	// (difftest.DriverSweep is the enforcement).
	Driver netsim.Factory
	// Reliable turns on the commit-reliability layer: sequence-numbered
	// UPDs, per-neighbor acks, and a bounded-retransmit session epilogue,
	// so a lost commit is re-announced instead of silently diverging the
	// neighbors' energy views. Failure-free runs commit the same tuples
	// with or without it; the acks and retransmissions cost messages.
	Reliable bool
	// RetryBudget caps per-commit retransmissions (default 6 when
	// Reliable).
	RetryBudget int
	// MaxRounds caps each negotiation session's rounds (default: the
	// netsim default). A session that hits the cap is recorded in
	// Stats.NonQuiescentSessions; mainly a chaos-testing knob.
	MaxRounds int
}

func (o Options) normalize() Options {
	if o.Colors < 1 {
		o.Colors = 1
	}
	if o.Colors == 1 {
		o.Samples = 1
	} else if o.Samples <= 0 {
		o.Samples = 8 * o.Colors
	}
	if o.Reliable && o.RetryBudget <= 0 {
		o.RetryBudget = 6
	}
	return o
}

// failureInjection reports whether any netsim failure mode is requested.
func (o Options) failureInjection() bool {
	return o.DropRate > 0 || o.DupRate > 0 || o.DelayRate > 0 || o.CrashRate > 0
}

// NegotiationStats describes one arrival-triggered renegotiation.
type NegotiationStats struct {
	Slot     int   // arrival slot that triggered it
	NewTasks int   // tasks that arrived
	Sessions int   // (slot, color) sessions that went past the quiescent round
	Messages int64 // control messages delivered
	Rounds   int   // negotiation rounds across executed sessions
}

// Stats aggregates a full run (the Fig. 16 quantities). The per-session
// totals reconcile exactly with the network-level ones: TotalMessages()
// == Net.Messages and TotalRounds() == Net.Rounds.
type Stats struct {
	Negotiations []NegotiationStats
	Net          netsim.Stats // network-level totals including failure injection

	// Degradation accounting under failure injection.
	NonQuiescentSessions int   // sessions that hit MaxRounds without quiescing
	UnackedCommits       int   // committed tuples some neighbor never acked (Reliable only)
	Retransmits          int64 // UPD re-broadcasts by the reliability layer
}

// TotalMessages sums control messages over all negotiations.
func (s Stats) TotalMessages() int64 {
	var t int64
	for _, n := range s.Negotiations {
		t += n.Messages
	}
	return t
}

// TotalRounds sums negotiation rounds over all negotiations.
func (s Stats) TotalRounds() int {
	t := 0
	for _, n := range s.Negotiations {
		t += n.Rounds
	}
	return t
}

// Result of a distributed online run.
type Result struct {
	// Orientations is the stitched orientation timeline the chargers
	// actually executed (NaN = no command, keep previous orientation).
	Orientations [][]float64
	// Outcome is the physical, switching-delay-aware result.
	Outcome sim.Outcome
	// Stats reports the communication cost.
	Stats Stats
}

// Run simulates the whole online scenario on problem p: tasks become
// known at their release slots; each arrival batch triggers a distributed
// renegotiation of all orientations from τ slots in the future; the
// resulting plan is executed physically with switching delays. See the
// package comment for the protocol.
//
// With the default in-memory substrate Run cannot fail; a non-nil error
// reports a broken Options.Driver substrate (listen/dial failure, a link
// dying mid-session, coordinator cancellation) — injected message loss is
// never an error, it is degradation accounted in Stats.
func Run(p *core.Problem, opt Options) (Result, error) {
	opt = opt.normalize()
	in := p.In
	n := len(in.Chargers)
	tau := in.Params.Tau
	K := p.K

	orient := make([][]float64, n)
	for i := range orient {
		orient[i] = make([]float64, K)
		for k := range orient[i] {
			orient[i][k] = math.NaN()
		}
	}

	// Group arrivals by release slot.
	arrivals := map[int][]int{}
	for _, t := range in.Tasks {
		arrivals[t.Release] = append(arrivals[t.Release], t.ID)
	}
	slots := make([]int, 0, len(arrivals))
	for s := range arrivals {
		slots = append(slots, s)
	}
	sort.Ints(slots)

	var stats Stats
	var known []int
	for _, t := range slots {
		known = append(known, arrivals[t]...)
		sort.Ints(known)

		lockUntil := t + tau
		if lockUntil > K {
			lockUntil = K
		}
		maxEnd := 0
		for _, j := range known {
			if in.Tasks[j].End > maxEnd {
				maxEnd = in.Tasks[j].End
			}
		}
		if maxEnd <= lockUntil {
			stats.Negotiations = append(stats.Negotiations, NegotiationStats{
				Slot: t, NewTasks: len(arrivals[t]),
			})
			continue
		}

		neg, err := negotiate(p, opt, known, orient, t, lockUntil, maxEnd)
		if err != nil {
			return Result{}, fmt.Errorf("online: negotiation at slot %d: %w", t, err)
		}
		neg.Slot = t
		neg.NewTasks = len(arrivals[t])
		stats.Negotiations = append(stats.Negotiations, neg.NegotiationStats)
		stats.Net.Add(neg.net)
		stats.NonQuiescentSessions += neg.nonQuiescent
		stats.UnackedCommits += neg.unackedCommits
		stats.Retransmits += neg.retransmits

		// Install the new plan over the renegotiated horizon.
		for i := 0; i < n; i++ {
			copy(orient[i][lockUntil:maxEnd], neg.plans[i])
		}
	}

	return Result{
		Orientations: orient,
		Outcome:      sim.ExecuteOrientations(p, orient),
		Stats:        stats,
	}, nil
}

// negotiation is the outcome of one arrival-triggered renegotiation.
type negotiation struct {
	NegotiationStats
	net            netsim.Stats
	nonQuiescent   int   // sessions that hit MaxRounds
	unackedCommits int   // commits whose ack ledger was non-empty at session end
	retransmits    int64 // reliability-layer UPD re-broadcasts
	plans          [][]float64 // per charger, orientation commands for [lockUntil, maxEnd)
	agents         []*agent    // retained for white-box consistency tests
}

// negotiate runs the full Algorithm 3 loop (slots outer, colors inner)
// over the network of agents and returns their sampled plans. The
// substrate (in-memory engine or a real-socket driver from opt.Driver) is
// built once per negotiation and torn down before returning; only
// substrate failures are errors — non-quiescence is degradation.
func negotiate(p *core.Problem, opt Options, known []int, orient [][]float64, now, lockUntil, maxEnd int) (negotiation, error) {
	in := p.In
	n := len(in.Chargers)

	baseline := perceivedEnergies(p, orient, known, lockUntil)
	neighbors := knownNeighbors(p, known)
	agents := make([]*agent, n)
	nodes := make([]netsim.Node, n)
	for i := 0; i < n; i++ {
		agents[i] = newAgent(i, p, opt, known, baseline, neighbors[i])
		nodes[i] = agents[i]
	}

	nopt := netsim.Options{
		Parallel:  opt.Parallel,
		DropRate:  opt.DropRate,
		DupRate:   opt.DupRate,
		DelayRate: opt.DelayRate,
		CrashRate: opt.CrashRate,
		MaxRounds: opt.MaxRounds,
	}
	if opt.failureInjection() {
		nopt.Rng = rand.New(rand.NewSource(opt.Seed ^ int64(now)<<20))
	}
	factory := opt.Driver
	if factory == nil {
		factory = netsim.MemFactory
	}
	driver, err := factory(neighbors, nopt)
	if err != nil {
		return negotiation{}, fmt.Errorf("building driver: %w", err)
	}
	defer driver.Close()

	var out negotiation
	for k := lockUntil; k < maxEnd; k++ {
		for c := 0; c < opt.Colors; c++ {
			anyBid := false
			for _, a := range agents {
				a.startSession(k, c)
				if a.myBid > 1e-15 {
					anyBid = true
				}
			}
			if !anyBid {
				// Nobody has anything to gain at this (slot, color):
				// the session would be a single silent round.
				continue
			}
			st, err := driver.Run(nodes)
			out.net.Add(st)
			if err != nil {
				if !errors.Is(err, netsim.ErrNoQuiescence) {
					// The substrate itself failed (a link died, the
					// coordinator was cancelled): the session outcome is
					// undefined, abort the negotiation.
					return out, fmt.Errorf("session (slot %d, color %d): %w", k, c, err)
				}
				// MaxRounds tripped (only possible under extreme failure
				// injection); keep whatever was committed so far, but
				// account for the degradation instead of hiding it.
				out.nonQuiescent++
			}
			// Account every session the engine actually ran, so the
			// per-negotiation totals reconcile exactly with Stats.Net.
			// Sessions counts those that went past the single quiescent
			// round: a lone bidder with no neighbors still bids, commits
			// and burns rounds, so gating on delivered messages would
			// undercount (only a fully crash-silenced session stays at
			// one round).
			out.Messages += st.Messages
			out.Rounds += st.Rounds
			if st.Rounds > 1 {
				out.Sessions++
			}
			for _, a := range agents {
				if a.unackedCount() > 0 {
					out.unackedCommits++
				}
			}
		}
	}

	for _, a := range agents {
		out.retransmits += a.retransmits
	}
	out.agents = agents
	out.plans = make([][]float64, n)
	for i, a := range agents {
		rng := rand.New(rand.NewSource(opt.Seed ^ int64(now)<<24 ^ int64(i)<<8))
		out.plans[i] = a.finalPlan(lockUntil, maxEnd, rng)
	}
	return out, nil
}

// perceivedEnergies computes, with relaxed (full-slot) accounting, the
// energy each known task has harvested from the committed orientation
// timeline during slots [0, upTo) — the baseline every agent starts its
// local view from. Unknown tasks stay at zero: no agent can plan around
// energy it does not know was delivered.
func perceivedEnergies(p *core.Problem, orient [][]float64, known []int, upTo int) []float64 {
	in := p.In
	e := make([]float64, len(in.Tasks))
	if upTo > p.K {
		upTo = p.K
	}
	isKnown := make([]bool, len(in.Tasks))
	for _, j := range known {
		isKnown[j] = true
	}
	for i := range in.Chargers {
		// Only this charger's chargeable known tasks can ever receive
		// energy from it — read off the sparse charger row instead of
		// scanning every task.
		var reach []core.CoverEntry
		for _, ent := range p.ChargerRow(i) {
			if ent.De > 0 && isKnown[ent.Task] {
				reach = append(reach, ent)
			}
		}
		if len(reach) == 0 {
			continue
		}
		cur := math.NaN()
		for k := 0; k < upTo; k++ {
			if k < len(orient[i]) && !math.IsNaN(orient[i][k]) {
				cur = orient[i][k]
			}
			if math.IsNaN(cur) {
				continue
			}
			for _, ent := range reach {
				j := int(ent.Task)
				if in.Tasks[j].ActiveAt(k) && in.Params.Covers(in.Chargers[i], cur, in.Tasks[j]) {
					e[j] += ent.De
				}
			}
		}
	}
	return e
}

// knownNeighbors builds the neighbor relation over known tasks only: two
// chargers are neighbors iff they share a known chargeable task.
func knownNeighbors(p *core.Problem, known []int) [][]int {
	in := p.In
	n := len(in.Chargers)
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	// Invert the sparse rows once: coversByTask[j] lists the chargers that
	// can deliver energy to task j (ascending, since chargers are walked in
	// order). This replaces an all-chargers column scan per known task.
	coversByTask := make([][]int, len(in.Tasks))
	for i := 0; i < n; i++ {
		for _, ent := range p.ChargerRow(i) {
			if ent.De > 0 {
				coversByTask[ent.Task] = append(coversByTask[ent.Task], i)
			}
		}
	}
	for _, j := range known {
		covers := coversByTask[j]
		for _, a := range covers {
			for _, b := range covers {
				if a != b {
					adj[a][b] = true
				}
			}
		}
	}
	out := make([][]int, n)
	for i, m := range adj {
		for b := range m {
			out[i] = append(out[i], b)
		}
		sort.Ints(out[i])
	}
	return out
}
