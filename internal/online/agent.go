// Package online implements Algorithm 3: the distributed online algorithm
// for HASTE. Each wireless charger runs an agent that, whenever new
// charging tasks arrive, renegotiates its future orientations with its
// neighbors (chargers sharing at least one known chargeable task) through
// the control-message protocol of the paper:
//
//	msg(ID, TIM, COL, CMD, ΔF_i^{k*}(Q_i), e_i^{k*})
//
// For every future time slot k and color c, agents repeatedly broadcast
// their best marginal gain ΔF; the agent whose bid beats every competing
// neighbor (ties broken by charger ID, as in the paper) commits the
// corresponding dominant-set policy as an S-C tuple, announces it with an
// UPD message, and its neighbors fold the committed contribution into
// their local energy views and rebid. The negotiation for one (k,c) pair
// ends when nobody has a positive marginal left. Afterwards every agent
// samples one color per slot to obtain its scheduling policy X_i, exactly
// as the centralized TabularGreedy does per partition.
//
// Agents only ever use local knowledge: tasks they have seen arrive, their
// own dominant sets over those tasks, and the policies their neighbors
// announced. The rescheduling delay τ is honored by the driver in run.go —
// a negotiation triggered at slot t can only change orientations from slot
// t+τ on.
//
// # Reliability layer
//
// The competitive-ratio argument assumes every committed S-C tuple reaches
// every neighbor; a dropped UPD permanently diverges the loser's energy
// view. With Options.Reliable, UPD commits become reliable within a
// session: every UPD carries a per-agent sequence number, receivers
// acknowledge every receipt (re-acking retransmissions, since the ack
// itself can be lost), and a committed agent re-broadcasts its final tuple
// every round until all neighbors have acked or a retry budget is
// exhausted. Applying a commit is idempotent
// (deduplicated per session by sender), so retransmissions and duplicated
// deliveries never double-count energy. On a failure-free network the
// reliable protocol commits exactly the same tuples as the base protocol;
// the only extra traffic is the acks.
package online

import (
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"haste/internal/core"
	"haste/internal/dominant"
	"haste/internal/netsim"
)

// The four control-message types below are the complete wire vocabulary of
// the protocol. They are exported so the socket substrate (package
// transport) can hand-encode them into its deterministic binary framing;
// every field must round-trip exactly (floats bit-for-bit) for the
// cross-driver equivalence guarantee to hold.

// BidMsg is the CMD=NULL control message: the sender's best marginal for
// the session's (slot, color) pair.
type BidMsg struct {
	Slot, Color int
	Delta       float64
}

// UpdMsg is the CMD=UPD control message: the sender committed the policy
// covering these task IDs for the session's (slot, color) pair. Seq is the
// sender's commit sequence number, strictly increasing across its commits,
// so receivers and acks can identify a commit uniquely.
type UpdMsg struct {
	Slot, Color int
	Seq         uint32
	Covers      []int
}

// AckMsg acknowledges receipt of charger To's UPD with sequence Seq. Acks
// are broadcast (the substrate has no unicast); everyone but To ignores it.
type AckMsg struct {
	Slot, Color int
	To          int
	Seq         uint32
}

// RelMsg is the composite payload used when the reliability layer is on:
// one broadcast per round may carry a bid or an UPD plus any acks owed for
// UPDs received this round.
type RelMsg struct {
	Bid  *BidMsg
	Upd  *UpdMsg
	Acks []AckMsg
}

// agentPhase tracks the bid/decide alternation within a session.
type agentPhase int

const (
	phaseBid agentPhase = iota
	phaseDecide
)

// agent is one charger's negotiation state across a whole renegotiation
// (all sessions of all future slots and colors).
type agent struct {
	id      int
	p       *core.Problem
	colors  int
	samples int
	seed    int64

	// Reliability layer configuration (Options.Reliable).
	reliable    bool
	retryBudget int
	neighbors   []int // session-topology neighbors, for the ack ledger

	policies []dominant.Policy // Γ_i over the tasks this agent knows
	known    []bool            // known[j]: task j has arrived (agent may plan for it)

	// energy[s][j]: sample s's view of task j's accumulated energy, built
	// from this agent's own commitments and neighbors' UPD messages plus
	// the locked-prefix baseline. Only tasks in T_i are ever read.
	energy [][]float64

	// q[k][c]: committed policy index into policies, -1 if none.
	q map[int][]int

	// Per-session state.
	sessionSlot  int
	sessionColor int
	phase        agentPhase
	fixed        bool
	passed       bool
	myBid        float64
	myPol        int

	// Reliability per-session state.
	applied     map[int]uint32 // sender → seq of the commit already folded in
	unacked     map[int]bool   // neighbors that have not acked my commit yet
	retriesLeft int            // retransmissions left for my commit
	myUpd       *UpdMsg        // my committed tuple, retained for retransmits

	// Reliability accounting across the whole renegotiation.
	updSeq      uint32 // sequence number of my last commit
	retransmits int64  // UPD re-broadcasts sent

	// sessionCovers[pol] lists (task, per-slot energy) for the tasks of
	// policy pol that are active in the session slot — precomputed once
	// per session so the per-round rebids only walk live tasks.
	sessionCovers [][]taskEnergy
	// sessionSamples lists the samples whose color for (id, slot) equals
	// the session color.
	sessionSamples []int
}

// taskEnergy pairs a task ID with the energy it harvests from this agent
// per fully covered slot.
type taskEnergy struct {
	task int
	de   float64
}

// newAgent builds an agent with the given locked-prefix baseline energies
// (shared across samples: the locked past does not depend on colors).
// neighbors is the agent's row of the session topology, used by the
// reliability layer's ack ledger.
func newAgent(id int, p *core.Problem, opt Options, knownIDs []int, baseline []float64, neighbors []int) *agent {
	a := &agent{
		id:          id,
		p:           p,
		colors:      opt.Colors,
		samples:     opt.Samples,
		seed:        opt.Seed,
		reliable:    opt.Reliable,
		retryBudget: opt.RetryBudget,
		neighbors:   neighbors,
		known:       make([]bool, len(p.In.Tasks)),
		q:           make(map[int][]int),
	}
	for _, j := range knownIDs {
		a.known[j] = true
	}
	a.policies = dominant.ExtractSubset(p.In, id, knownIDs)
	a.energy = make([][]float64, a.samples)
	for s := range a.energy {
		a.energy[s] = append([]float64(nil), baseline...)
	}
	return a
}

// startSession arms the agent for the (slot, color) negotiation.
func (a *agent) startSession(slot, color int) {
	a.sessionSlot = slot
	a.sessionColor = color
	a.phase = phaseBid
	a.fixed = false
	a.passed = false
	a.applied = nil
	a.unacked = nil
	a.retriesLeft = 0
	a.myUpd = nil

	if cap(a.sessionCovers) < len(a.policies) {
		a.sessionCovers = make([][]taskEnergy, len(a.policies))
	}
	a.sessionCovers = a.sessionCovers[:len(a.policies)]
	// Every cover is chargeable by this agent and therefore present in its
	// sparse row; both lists are ascending, so a two-pointer merge replaces
	// a binary search per cover.
	row := a.p.ChargerRow(a.id)
	for pol := range a.policies {
		a.sessionCovers[pol] = a.sessionCovers[pol][:0]
		if a.policies[pol].Idle {
			continue
		}
		r := 0
		for _, j := range a.policies[pol].Covers {
			for r < len(row) && int(row[r].Task) < j {
				r++
			}
			if r == len(row) {
				break
			}
			if int(row[r].Task) != j {
				continue
			}
			t := &a.p.In.Tasks[j]
			if de := row[r].De; de > 0 && t.ActiveAt(slot) {
				a.sessionCovers[pol] = append(a.sessionCovers[pol], taskEnergy{j, de})
			}
		}
	}
	a.sessionSamples = a.sessionSamples[:0]
	for s := 0; s < a.samples; s++ {
		if colorAt(a.seed, s, a.id, slot, a.colors) == color {
			a.sessionSamples = append(a.sessionSamples, s)
		}
	}
	a.recompute()
}

// recompute refreshes the agent's best policy and marginal bid for the
// current session from its local energy view.
func (a *agent) recompute() {
	a.myPol, a.myBid = -1, 0
	for pol := range a.policies {
		if a.policies[pol].Idle {
			continue
		}
		gain := a.policyGain(pol)
		if gain > a.myBid {
			a.myBid, a.myPol = gain, pol
		}
	}
}

// policyGain sums the policy's marginal utility over the samples whose
// color for this agent's (slot) partition matches the session color.
func (a *agent) policyGain(pol int) float64 {
	var gain float64
	for _, s := range a.sessionSamples {
		energy := a.energy[s]
		for _, te := range a.sessionCovers[pol] {
			// WeightedDelta inlines the default linear-bounded utility
			// (bit-identical to the interface expression) when the flat
			// kernel is active, and falls back to it otherwise.
			gain += a.p.WeightedDelta(te.task, energy[te.task], te.de)
		}
	}
	return gain
}

// applyCommit folds a committed policy (by charger `from`, covering
// `covers`) into the matching samples of the local energy view.
func (a *agent) applyCommit(from int, covers []int, slot, color int) {
	k := slot
	for s := 0; s < a.samples; s++ {
		if colorAt(a.seed, s, from, k, a.colors) != color {
			continue
		}
		for _, j := range covers {
			t := &a.p.In.Tasks[j]
			if t.ActiveAt(k) {
				a.energy[s][j] += a.p.SlotEnergy(from, j)
			}
		}
	}
}

// Step implements netsim.Node for the current session.
func (a *agent) Step(inbox []netsim.Message) (netsim.Payload, bool) {
	if a.reliable {
		return a.stepReliable(inbox)
	}
	return a.stepBasic(inbox)
}

// stepBasic is the paper's best-effort protocol: a lost UPD silently
// diverges the loser's energy view.
func (a *agent) stepBasic(inbox []netsim.Message) (netsim.Payload, bool) {
	switch a.phase {
	case phaseBid:
		// Fold in UPDs from last round's winners, then rebid. Each
		// sender's commit is applied at most once per session, which
		// makes duplicated and delay-reordered deliveries idempotent.
		for _, m := range inbox {
			upd, ok := m.Payload.(UpdMsg)
			if !ok || upd.Slot != a.sessionSlot || upd.Color != a.sessionColor {
				continue
			}
			if _, done := a.applied[m.From]; done {
				continue
			}
			if a.applied == nil {
				a.applied = make(map[int]uint32)
			}
			a.applied[m.From] = upd.Seq
			a.applyCommit(m.From, upd.Covers, upd.Slot, upd.Color)
		}
		if a.fixed || a.passed {
			return nil, true
		}
		a.recompute()
		if a.myBid <= 1e-15 {
			a.passed = true
			return nil, true
		}
		a.phase = phaseDecide
		return BidMsg{Slot: a.sessionSlot, Color: a.sessionColor, Delta: a.myBid}, false

	case phaseDecide:
		a.phase = phaseBid
		if a.fixed || a.passed {
			return nil, true
		}
		// The paper's rule: commit iff our ΔF beats every competing
		// neighbor's, breaking exact ties by charger ID.
		for _, m := range inbox {
			bid, ok := m.Payload.(BidMsg)
			if !ok || bid.Slot != a.sessionSlot || bid.Color != a.sessionColor {
				continue
			}
			if bid.Delta > a.myBid || (bid.Delta == a.myBid && m.From < a.id) {
				return nil, false // lost this round; rebid next round
			}
		}
		a.fixed = true
		a.commitOwn()
		a.updSeq++
		return UpdMsg{Slot: a.sessionSlot, Color: a.sessionColor, Seq: a.updSeq, Covers: a.policies[a.myPol].Covers}, true
	}
	return nil, true
}

// stepReliable is the ack/retransmit variant: identical negotiation
// decisions, but commits are acknowledged and re-broadcast until every
// neighbor confirmed receipt (or the retry budget ran out).
func (a *agent) stepReliable(inbox []netsim.Message) (netsim.Payload, bool) {
	var out RelMsg
	// Process UPDs and acks every round, whatever the phase: delayed or
	// retransmitted UPDs may arrive in a decide round and must still be
	// applied and (re-)acked.
	for _, m := range inbox {
		pkt, ok := m.Payload.(RelMsg)
		if !ok {
			continue
		}
		if upd := pkt.Upd; upd != nil && upd.Slot == a.sessionSlot && upd.Color == a.sessionColor {
			if _, done := a.applied[m.From]; !done {
				if a.applied == nil {
					a.applied = make(map[int]uint32)
				}
				a.applied[m.From] = upd.Seq
				a.applyCommit(m.From, upd.Covers, upd.Slot, upd.Color)
			}
			// Ack every receipt: the previous ack may itself have been
			// lost, and retransmissions stop only on a received ack.
			out.Acks = append(out.Acks, AckMsg{Slot: a.sessionSlot, Color: a.sessionColor, To: m.From, Seq: upd.Seq})
		}
		for _, ack := range pkt.Acks {
			if ack.To == a.id && ack.Slot == a.sessionSlot && ack.Color == a.sessionColor &&
				a.myUpd != nil && ack.Seq == a.myUpd.Seq {
				delete(a.unacked, m.From)
			}
		}
	}

	switch a.phase {
	case phaseBid:
		a.phase = phaseDecide
		if !a.fixed && !a.passed {
			a.recompute()
			if a.myBid <= 1e-15 {
				a.passed = true
			} else {
				out.Bid = &BidMsg{Slot: a.sessionSlot, Color: a.sessionColor, Delta: a.myBid}
			}
		}

	case phaseDecide:
		a.phase = phaseBid
		if !a.fixed && !a.passed {
			// Bids are read only in this decide round; a bid postponed by
			// delay injection past it is intentionally dropped (unlike UPDs
			// and acks, which are processed every round above). Two agents
			// may then both conclude they won and commit overlapping tuples
			// — safe because applyCommit is idempotent and the divergence
			// only lowers utility, which is the documented degradation model
			// the chaos sweeps measure. Retransmitting bids would instead
			// stall every session for MaxDelay rounds.
			won := true
			for _, m := range inbox {
				pkt, ok := m.Payload.(RelMsg)
				if !ok || pkt.Bid == nil {
					continue
				}
				bid := pkt.Bid
				if bid.Slot != a.sessionSlot || bid.Color != a.sessionColor {
					continue
				}
				if bid.Delta > a.myBid || (bid.Delta == a.myBid && m.From < a.id) {
					won = false
					break
				}
			}
			if won {
				a.fixed = true
				a.commitOwn()
				a.updSeq++
				a.myUpd = &UpdMsg{Slot: a.sessionSlot, Color: a.sessionColor, Seq: a.updSeq, Covers: a.policies[a.myPol].Covers}
				a.unacked = make(map[int]bool, len(a.neighbors))
				for _, nb := range a.neighbors {
					a.unacked[nb] = true
				}
				a.retriesLeft = a.retryBudget
				out.Upd = a.myUpd
			}
		}
	}

	// Session epilogue: while any neighbor has not acked the committed
	// tuple and budget remains, re-broadcast it. This runs every round —
	// the engine ends a session after one fully silent round, so an idle
	// wait for in-flight acks would let the session die under total loss.
	// A retransmission racing an in-flight ack is harmless: applying a
	// commit is idempotent and the re-ack it triggers carries no reply.
	if a.fixed && out.Upd == nil && len(a.unacked) > 0 && a.retriesLeft > 0 {
		a.retriesLeft--
		a.retransmits++
		out.Upd = a.myUpd
	}

	done := (a.fixed && len(a.unacked) == 0) || a.passed
	if out.Bid == nil && out.Upd == nil && len(out.Acks) == 0 {
		return nil, done
	}
	return out, done
}

// unackedCount reports how many neighbors never acked this agent's commit
// in the session that just ended (0 when it never committed).
func (a *agent) unackedCount() int {
	if !a.fixed {
		return 0
	}
	return len(a.unacked)
}

// commitOwn records the winning policy as the S-C tuple for (slot, color)
// and applies it to the agent's own matching samples.
func (a *agent) commitOwn() {
	row, ok := a.q[a.sessionSlot]
	if !ok {
		row = make([]int, a.colors)
		for c := range row {
			row[c] = -1
		}
		a.q[a.sessionSlot] = row
	}
	row[a.sessionColor] = a.myPol
	a.applyCommit(a.id, a.policies[a.myPol].Covers, a.sessionSlot, a.sessionColor)
}

// finalPlan samples one color per slot (lines 22–24 of Algorithm 3) and
// returns the agent's orientation commands for slots [from, to).
// Unassigned slots are NaN (keep the previous physical orientation).
func (a *agent) finalPlan(from, to int, rng *rand.Rand) []float64 {
	plan := make([]float64, to-from)
	slots := make([]int, 0, len(a.q))
	for k := range a.q {
		slots = append(slots, k)
	}
	sort.Ints(slots)
	for i := range plan {
		plan[i] = math.NaN()
	}
	for _, k := range slots {
		if k < from || k >= to {
			continue
		}
		c := rng.Intn(a.colors)
		if pol := a.q[k][c]; pol >= 0 {
			plan[k-from] = a.policies[pol].Orientation
		}
	}
	return plan
}

// colorAt deterministically assigns sample s's color for partition (i,k).
// All agents share the seed, so everyone agrees on every partition's color
// vector without exchanging it — the distributed analogue of the common
// random numbers used by the centralized TabularGreedy.
func colorAt(seed int64, s, i, k, colors int) int {
	if colors <= 1 {
		return 0
	}
	x := uint64(seed) ^ uint64(s)*0x9e3779b97f4a7c15 ^ uint64(i)*0xbf58476d1ce4e5b9 ^ uint64(k)*0x94d049bb133111eb
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	// Multiply-shift (Lemire) reduction onto [0, colors): x % colors
	// over-weights the first 2^64 mod colors residues for
	// non-power-of-two color counts.
	hi, _ := bits.Mul64(x, uint64(colors))
	return int(hi)
}
