package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Error("single-point variance != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Variance(xs), 4) {
		t.Errorf("Variance = %v, want 4", Variance(xs))
	}
	if !almostEq(StdDev(xs), 2) {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Error("MinMax(nil) should fail")
	}
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v %v %v", lo, hi, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEq(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation.
	got, _ := Quantile([]float64{0, 10}, 0.3)
	if !almostEq(got, 3) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("Quantile(nil) should fail")
	}
	// Quantile must not reorder its input.
	in := []float64{5, 1, 3}
	if _, err := Quantile(in, 0.5); err != nil || in[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("Summarize(nil) should fail")
	}
	b, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 1 || b.Max != 5 || !almostEq(b.Median, 3) ||
		!almostEq(b.Q1, 2) || !almostEq(b.Q3, 4) || b.N != 5 || !almostEq(b.Mean, 3) {
		t.Errorf("Summarize = %+v", b)
	}
}

// Property: quantiles are monotone in q and bounded by the extrema.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		lo, hi, _ := MinMax(xs)
		prev := lo
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev-1e-9 || v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	cfg := &quick.Config{Rand: rng, MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		zs := make([]float64, n)
		shift, scale := rng.NormFloat64()*5, rng.Float64()*3
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i] + shift
			zs[i] = xs[i] * scale
		}
		if math.Abs(Variance(xs)-Variance(ys)) > 1e-9 {
			t.Fatalf("variance not translation invariant")
		}
		if math.Abs(Variance(zs)-scale*scale*Variance(xs)) > 1e-9 {
			t.Fatalf("variance not scaling quadratically")
		}
	}
}
