// Package stats provides the small statistical toolkit the experiment
// harness needs: means, variances, extrema and the five-number summaries
// behind the paper's box plots (Figs. 7 and 15).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a summary of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than two points).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of a non-empty sample.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics (type-7, the spreadsheet/Numpy default).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0], nil
	}
	if q >= 1 {
		return s[len(s)-1], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1], nil
	}
	return s[lo]*(1-frac) + s[lo+1]*frac, nil
}

// BoxPlot is a five-number summary plus mean and variance — everything a
// box-and-whisker figure shows.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
	Mean, Variance           float64
	N                        int
}

// Summarize computes the box-plot summary of a non-empty sample.
func Summarize(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrEmpty
	}
	var b BoxPlot
	var err error
	if b.Min, b.Max, err = MinMax(xs); err != nil {
		return b, err
	}
	if b.Q1, err = Quantile(xs, 0.25); err != nil {
		return b, err
	}
	if b.Median, err = Quantile(xs, 0.5); err != nil {
		return b, err
	}
	if b.Q3, err = Quantile(xs, 0.75); err != nil {
		return b, err
	}
	b.Mean = Mean(xs)
	b.Variance = Variance(xs)
	b.N = len(xs)
	return b, nil
}
