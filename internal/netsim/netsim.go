// Package netsim is the distributed-execution substrate for the online
// algorithm: an in-memory broadcast network that drives a set of nodes
// (one per wireless charger) through synchronized communication rounds and
// accounts for every message delivered — the quantities Fig. 16 of the
// paper reports.
//
// The paper's Algorithm 3 runs asynchronously; its proof of Theorem 6.1
// shows the asynchronous executions can be reordered into a global
// sequence (the DAG/topological-sort argument), so a round-synchronized
// engine reproduces the algorithm's behaviour exactly while keeping runs
// reproducible. The engine supports a sequential and a goroutine-per-node
// parallel driver — tests require both to produce identical outcomes — and
// optional failure injection to exercise the negotiation protocol's
// tolerance.
//
// # Failure model
//
// Four failure modes can be injected, all seeded and deterministic:
//
//   - message drop (DropRate, or per directed link via LinkDropRate),
//   - message duplication (DupRate),
//   - bounded message delay (DelayRate/MaxDelay) — a delayed message is
//     delivered 1..MaxDelay rounds late, which also reorders it relative
//     to later traffic on the same link,
//   - node crash/restart (CrashRate/CrashDownRounds) — a crashed node is
//     not stepped for CrashDownRounds rounds and every message addressed
//     to it while it is down is lost; it restarts with its state intact
//     (the fault is the outage and the lost traffic, not amnesia).
//
// All random draws happen in the single-threaded delivery/bookkeeping
// sections of the round loop, so the sequential and parallel drivers
// consume the RNG identically and produce bit-identical outcomes.
package netsim

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
)

// Payload is an opaque protocol message body.
type Payload interface{}

// Message is a delivered message with its sender.
type Message struct {
	From    int
	Payload Payload
}

// Node is a participant. Each round the engine hands it the messages
// delivered this round; the node returns a payload to broadcast to all its
// neighbors (nil for silence) and whether it considers its work done.
// Done nodes keep being stepped (they may still need to answer) until the
// whole network quiesces.
type Node interface {
	Step(inbox []Message) (out Payload, done bool)
}

// Driver is the execution-substrate contract of the negotiation protocol:
// Run drives a set of nodes through synchronized rounds to quiescence and
// accounts for every message. Both the in-memory Engine and the loopback
// TCP engine (package transport) implement it; the algorithm's behaviour
// must be invariant to which one carries the messages — the cross-driver
// differential suite (difftest.DriverSweep) enforces bit-identical
// outcomes and exactly reconciled Stats.
//
// Run may be called repeatedly (once per negotiation session); Close
// releases any substrate resources (sockets, listeners, goroutines) and
// must be called exactly once when the negotiation is over. Closing the
// in-memory engine is a no-op.
type Driver interface {
	Run(nodes []Node) (Stats, error)
	Close() error
}

// Factory builds a Driver over a topology for one negotiation. The online
// layer calls it once per arrival-triggered renegotiation with the session
// topology and the fully populated Options (failure injection Rng
// included), so every driver consumes the same RNG draws in the same
// order.
type Factory func(neighbors [][]int, opt Options) (Driver, error)

// Options configures an engine run.
type Options struct {
	// DropRate is the probability each individual delivery is lost.
	DropRate float64
	// LinkDropRate, when non-nil, overrides DropRate per directed link
	// (from, to) — asymmetric loss: A→B may be lossy while B→A is clean.
	// It must be a pure function for runs to stay deterministic.
	LinkDropRate func(from, to int) float64
	// DupRate is the probability each delivery is duplicated.
	DupRate float64
	// DelayRate is the probability each delivery is postponed by a delay
	// drawn uniformly from 1..MaxDelay rounds (delivered late, and hence
	// possibly reordered relative to later traffic).
	DelayRate float64
	// MaxDelay bounds the injected delay in rounds (default 3).
	MaxDelay int
	// CrashRate is the per-node per-round probability that an up node
	// crashes. A crashed node is down for CrashDownRounds rounds: it is
	// not stepped and all messages addressed to it are lost.
	CrashRate float64
	// CrashDownRounds is the outage length of one crash (default 2).
	CrashDownRounds int
	// Rng drives failure injection; required if any failure mode above is
	// enabled (Run returns ErrRngRequired otherwise).
	Rng *rand.Rand
	// Parallel steps all nodes concurrently (one goroutine per node) with
	// a barrier between rounds. Results are identical to the sequential
	// driver because inboxes are assembled deterministically and every
	// random draw happens outside the stepping fan.
	Parallel bool
	// MaxRounds caps a session (default 10000).
	MaxRounds int
}

// failureInjection reports whether any failure mode is enabled.
func (o Options) failureInjection() bool {
	return o.DropRate > 0 || o.DupRate > 0 || o.DelayRate > 0 ||
		o.CrashRate > 0 || o.LinkDropRate != nil
}

// Stats accounts for one engine session. The counters reconcile exactly:
//
//	Messages == Attempted - Dropped - CrashLost - Expired + Duplicated
//
// (Delayed deliveries are still delivered — late — so delay moves rounds,
// not the message balance; a delivery can be both duplicated and delayed.)
type Stats struct {
	Rounds     int   // rounds executed (the final quiescent round included)
	Attempted  int64 // per-link send attempts before any failure injection
	Messages   int64 // deliveries that reached a node
	Dropped    int64 // deliveries lost to drop injection
	Duplicated int64 // extra deliveries from duplication
	Delayed    int64 // deliveries postponed by delay injection
	Crashes    int64 // node crash events
	CrashLost  int64 // deliveries lost because the destination was down
	Expired    int64 // in-flight delayed deliveries discarded at MaxRounds
}

// Add accumulates another session's stats.
func (s *Stats) Add(o Stats) {
	s.Rounds += o.Rounds
	s.Attempted += o.Attempted
	s.Messages += o.Messages
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
	s.Delayed += o.Delayed
	s.Crashes += o.Crashes
	s.CrashLost += o.CrashLost
	s.Expired += o.Expired
}

// ErrNoQuiescence is returned when MaxRounds elapses with traffic still
// flowing.
var ErrNoQuiescence = errors.New("netsim: session did not quiesce within MaxRounds")

// ErrRngRequired is returned by Run when a failure mode is enabled but
// Options.Rng is nil — failure injection silently disabled would make
// every chaos experiment a no-op.
var ErrRngRequired = errors.New("netsim: Options.Rng is required when failure injection is enabled")

// Engine drives sessions over a fixed topology. Neighbors[i] lists the
// node indices adjacent to node i; the relation must be symmetric.
type Engine struct {
	Neighbors [][]int
	Opt       Options
}

// delayedMsg is an in-flight delivery postponed by delay injection.
type delayedMsg struct {
	due int // round whose Step consumes it
	to  int
	msg Message
}

// Run drives the nodes until a round passes with no broadcasts and no
// in-flight delayed messages (global quiescence) or MaxRounds is hit.
// len(nodes) must equal len(Neighbors).
func (e *Engine) Run(nodes []Node) (Stats, error) {
	step := sequentialStep(nodes)
	if e.Opt.Parallel {
		step = parallelStep(nodes)
	}
	return RunRounds(e.Neighbors, e.Opt, step)
}

// Close implements Driver. The in-memory engine holds no resources.
func (e *Engine) Close() error { return nil }

// MemFactory is the Factory of the in-memory engine — the default
// substrate when no driver is selected.
func MemFactory(neighbors [][]int, opt Options) (Driver, error) {
	return &Engine{Neighbors: neighbors, Opt: opt}, nil
}

// sequentialStep steps the nodes one by one on the calling goroutine.
func sequentialStep(nodes []Node) StepFunc {
	return func(round int, down []bool, inboxes [][]Message, outs []Payload) error {
		for i, nd := range nodes {
			if down != nil && down[i] {
				continue
			}
			outs[i], _ = nd.Step(inboxes[i])
		}
		return nil
	}
}

// parallelStep steps every up node on its own goroutine with a barrier.
func parallelStep(nodes []Node) StepFunc {
	return func(round int, down []bool, inboxes [][]Message, outs []Payload) error {
		var wg sync.WaitGroup
		for i := range nodes {
			if down != nil && down[i] {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i], _ = nodes[i].Step(inboxes[i])
			}(i)
		}
		wg.Wait()
		return nil
	}
}

// StepFunc executes one round's stepping fan for RunRounds: for every up
// node i (down == nil, or down[i] == false) it must run Step on node i's
// inbox and store the broadcast payload in outs[i]. outs is pre-cleared to
// nil, so down nodes need no action. A non-nil error aborts the session —
// substrates use it for link failures the round loop itself cannot see.
type StepFunc func(round int, down []bool, inboxes [][]Message, outs []Payload) error

// RunRounds is the substrate-independent session loop every Driver shares:
// crash draws, delivery bookkeeping and all failure-injection RNG draws
// happen here, single-threaded, in a fixed order — before (crash) and
// after (drop/dup/delay) the stepping fan. A driver only supplies the fan,
// so the sequential, parallel and socket drivers consume the RNG
// identically and produce bit-identical Stats and inbox orderings by
// construction. It runs until a round passes with no broadcasts and no
// in-flight delayed messages (global quiescence), MaxRounds is hit
// (ErrNoQuiescence), or the step fan fails.
func RunRounds(neighbors [][]int, opt Options, step StepFunc) (Stats, error) {
	n := len(neighbors)
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10000
	}
	maxDelay := opt.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 3
	}
	downRounds := opt.CrashDownRounds
	if downRounds <= 0 {
		downRounds = 2
	}
	if opt.failureInjection() && opt.Rng == nil {
		return Stats{}, ErrRngRequired
	}

	var stats Stats
	inboxes := make([][]Message, n)
	outs := make([]Payload, n)
	var pending []delayedMsg // in-flight delayed deliveries, insertion-ordered
	var downUntil []int      // first round node i is up again (crash injection)
	var down []bool          // this round's outage mask, nil without crash injection
	if opt.CrashRate > 0 {
		downUntil = make([]int, n)
		down = make([]bool, n)
	}

	for round := 0; round < maxRounds; round++ {
		stats.Rounds++

		// Crash injection: decide this round's outages, then discard the
		// inbox of every down node. Draws happen in node order in this
		// single-threaded section, so every driver consumes the RNG
		// identically.
		if opt.CrashRate > 0 {
			for i := 0; i < n; i++ {
				if downUntil[i] > round {
					continue // still down
				}
				if opt.Rng.Float64() < opt.CrashRate {
					stats.Crashes++
					downUntil[i] = round + downRounds
				}
			}
			for i := 0; i < n; i++ {
				down[i] = downUntil[i] > round
				if down[i] && len(inboxes[i]) > 0 {
					// These deliveries were counted as Messages when they
					// entered the inbox but never reach the node: move
					// them to CrashLost so the balance stays exact.
					stats.CrashLost += int64(len(inboxes[i]))
					stats.Messages -= int64(len(inboxes[i]))
					inboxes[i] = nil
				}
			}
		}

		for i := range outs {
			outs[i] = nil
		}
		if err := step(round, down, inboxes, outs); err != nil {
			return stats, err
		}

		// Deliver. Inboxes are rebuilt from scratch — due delayed messages
		// first (in postponement order), then this round's sends — and
		// stable-sorted by sender so every driver sees identical input order.
		sent := false
		for i := range inboxes {
			inboxes[i] = nil
		}
		if len(pending) > 0 {
			kept := pending[:0]
			for _, d := range pending {
				if d.due > round+1 {
					kept = append(kept, d)
					continue
				}
				inboxes[d.to] = append(inboxes[d.to], d.msg)
				stats.Messages++
				// A due delayed delivery is traffic: the session must run one
				// more round so its destination consumes it, even if no node
				// broadcast this round.
				sent = true
			}
			pending = kept
		}
		for from, payload := range outs {
			if payload == nil {
				continue
			}
			sent = true
			for _, to := range neighbors[from] {
				stats.Attempted++
				deliveries := 1
				if opt.Rng != nil {
					dropRate := opt.DropRate
					if opt.LinkDropRate != nil {
						dropRate = opt.LinkDropRate(from, to)
					}
					if dropRate > 0 && opt.Rng.Float64() < dropRate {
						stats.Dropped++
						continue
					}
					if opt.DupRate > 0 && opt.Rng.Float64() < opt.DupRate {
						deliveries = 2
						stats.Duplicated++
					}
				}
				for d := 0; d < deliveries; d++ {
					if opt.DelayRate > 0 && opt.Rng.Float64() < opt.DelayRate {
						stats.Delayed++
						// An undelayed send is consumed in round+1; a delay
						// of d ∈ [1, maxDelay] rounds pushes that to
						// round+1+d.
						pending = append(pending, delayedMsg{
							due: round + 2 + opt.Rng.Intn(maxDelay),
							to:  to,
							msg: Message{From: from, Payload: payload},
						})
						continue
					}
					inboxes[to] = append(inboxes[to], Message{From: from, Payload: payload})
					stats.Messages++
				}
			}
		}
		for i := range inboxes {
			sort.SliceStable(inboxes[i], func(a, b int) bool {
				return inboxes[i][a].From < inboxes[i][b].From
			})
		}
		if !sent && len(pending) == 0 {
			return stats, nil
		}
	}
	stats.Expired += int64(len(pending))
	return stats, ErrNoQuiescence
}

// ValidateTopology checks that the neighbor relation is symmetric,
// irreflexive and in range.
func ValidateTopology(neighbors [][]int) error {
	n := len(neighbors)
	for i, ns := range neighbors {
		for _, j := range ns {
			if j < 0 || j >= n {
				return errors.New("netsim: neighbor index out of range")
			}
			if j == i {
				return errors.New("netsim: self-loop in topology")
			}
			found := false
			for _, back := range neighbors[j] {
				if back == i {
					found = true
					break
				}
			}
			if !found {
				return errors.New("netsim: asymmetric neighbor relation")
			}
		}
	}
	return nil
}
