// Package netsim is the distributed-execution substrate for the online
// algorithm: an in-memory broadcast network that drives a set of nodes
// (one per wireless charger) through synchronized communication rounds and
// accounts for every message delivered — the quantities Fig. 16 of the
// paper reports.
//
// The paper's Algorithm 3 runs asynchronously; its proof of Theorem 6.1
// shows the asynchronous executions can be reordered into a global
// sequence (the DAG/topological-sort argument), so a round-synchronized
// engine reproduces the algorithm's behaviour exactly while keeping runs
// reproducible. The engine supports a sequential and a goroutine-per-node
// parallel driver — tests require both to produce identical outcomes — and
// optional failure injection (message drops and duplications) to exercise
// the negotiation protocol's tolerance.
package netsim

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
)

// Payload is an opaque protocol message body.
type Payload interface{}

// Message is a delivered message with its sender.
type Message struct {
	From    int
	Payload Payload
}

// Node is a participant. Each round the engine hands it the messages
// delivered this round; the node returns a payload to broadcast to all its
// neighbors (nil for silence) and whether it considers its work done.
// Done nodes keep being stepped (they may still need to answer) until the
// whole network quiesces.
type Node interface {
	Step(inbox []Message) (out Payload, done bool)
}

// Options configures an engine run.
type Options struct {
	// DropRate is the probability each individual delivery is lost.
	DropRate float64
	// DupRate is the probability each delivery is duplicated.
	DupRate float64
	// Rng drives failure injection; required if DropRate or DupRate > 0.
	Rng *rand.Rand
	// Parallel steps all nodes concurrently (one goroutine per node) with
	// a barrier between rounds. Results are identical to the sequential
	// driver because inboxes are assembled deterministically.
	Parallel bool
	// MaxRounds caps a session (default 10000).
	MaxRounds int
}

// Stats accounts for one engine session.
type Stats struct {
	Rounds     int   // rounds executed (the final quiescent round included)
	Messages   int64 // deliveries that reached a node
	Dropped    int64 // deliveries lost to failure injection
	Duplicated int64 // extra deliveries from duplication
}

// Add accumulates another session's stats.
func (s *Stats) Add(o Stats) {
	s.Rounds += o.Rounds
	s.Messages += o.Messages
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
}

// ErrNoQuiescence is returned when MaxRounds elapses with traffic still
// flowing.
var ErrNoQuiescence = errors.New("netsim: session did not quiesce within MaxRounds")

// Engine drives sessions over a fixed topology. Neighbors[i] lists the
// node indices adjacent to node i; the relation must be symmetric.
type Engine struct {
	Neighbors [][]int
	Opt       Options
}

// Run drives the nodes until a round passes with no broadcasts (global
// quiescence) or MaxRounds is hit. len(nodes) must equal len(Neighbors).
func (e *Engine) Run(nodes []Node) (Stats, error) {
	n := len(nodes)
	maxRounds := e.Opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10000
	}
	var stats Stats
	inboxes := make([][]Message, n)
	outs := make([]Payload, n)

	for round := 0; round < maxRounds; round++ {
		stats.Rounds++
		if e.Opt.Parallel {
			var wg sync.WaitGroup
			wg.Add(n)
			for i := 0; i < n; i++ {
				go func(i int) {
					defer wg.Done()
					outs[i], _ = nodes[i].Step(inboxes[i])
				}(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < n; i++ {
				outs[i], _ = nodes[i].Step(inboxes[i])
			}
		}

		// Deliver. Inboxes are rebuilt from scratch and sorted by sender
		// so both drivers see identical input order.
		sent := false
		for i := range inboxes {
			inboxes[i] = nil
		}
		for from, payload := range outs {
			if payload == nil {
				continue
			}
			sent = true
			for _, to := range e.Neighbors[from] {
				deliveries := 1
				if e.Opt.Rng != nil {
					if e.Opt.DropRate > 0 && e.Opt.Rng.Float64() < e.Opt.DropRate {
						stats.Dropped++
						continue
					}
					if e.Opt.DupRate > 0 && e.Opt.Rng.Float64() < e.Opt.DupRate {
						deliveries = 2
						stats.Duplicated++
					}
				}
				for d := 0; d < deliveries; d++ {
					inboxes[to] = append(inboxes[to], Message{From: from, Payload: payload})
					stats.Messages++
				}
			}
		}
		for i := range inboxes {
			sort.SliceStable(inboxes[i], func(a, b int) bool {
				return inboxes[i][a].From < inboxes[i][b].From
			})
		}
		if !sent {
			return stats, nil
		}
	}
	return stats, ErrNoQuiescence
}

// ValidateTopology checks that the neighbor relation is symmetric,
// irreflexive and in range.
func ValidateTopology(neighbors [][]int) error {
	n := len(neighbors)
	for i, ns := range neighbors {
		for _, j := range ns {
			if j < 0 || j >= n {
				return errors.New("netsim: neighbor index out of range")
			}
			if j == i {
				return errors.New("netsim: self-loop in topology")
			}
			found := false
			for _, back := range neighbors[j] {
				if back == i {
					found = true
					break
				}
			}
			if !found {
				return errors.New("netsim: asymmetric neighbor relation")
			}
		}
	}
	return nil
}
