package netsim

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomTopology draws a connected symmetric topology: a random spanning
// chain plus extra random edges.
func randomTopology(rng *rand.Rand, n int) [][]int {
	nb := make([]map[int]bool, n)
	for i := range nb {
		nb[i] = map[int]bool{}
	}
	perm := rng.Perm(n)
	for idx := 1; idx < n; idx++ {
		a, b := perm[idx-1], perm[idx]
		nb[a][b] = true
		nb[b][a] = true
	}
	for e := 0; e < n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			nb[a][b] = true
			nb[b][a] = true
		}
	}
	out := make([][]int, n)
	for i, m := range nb {
		for j := 0; j < n; j++ { // fixed order, no map iteration
			if m[j] {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// TestDriverEquivalenceSeededTopologies pins the engine's determinism
// contract on richer inputs than the line graph: on seeded random
// topologies the goroutine-per-node driver and the sequential driver must
// deliver identical node outcomes and identical message/round accounting.
// CI runs this under the race detector, where the parallel driver's
// barrier discipline is actually checked.
func TestDriverEquivalenceSeededTopologies(t *testing.T) {
	for _, seed := range []int64{201, 202, 203} {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		topo := randomTopology(rng, n)
		if err := ValidateTopology(topo); err != nil {
			t.Fatalf("seed %d: generated invalid topology: %v", seed, err)
		}
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(1000)
		}
		run := func(parallel bool) ([]int, Stats) {
			nodes := make([]Node, n)
			for i := 0; i < n; i++ {
				nodes[i] = &maxNode{val: vals[i]}
			}
			e := &Engine{Neighbors: topo, Opt: Options{Parallel: parallel}}
			stats, err := e.Run(nodes)
			if err != nil {
				t.Fatalf("seed %d parallel=%v: %v", seed, parallel, err)
			}
			out := make([]int, n)
			for i, nd := range nodes {
				out[i] = nd.(*maxNode).best
			}
			return out, stats
		}
		seqVals, seqStats := run(false)
		parVals, parStats := run(true)
		if !reflect.DeepEqual(seqVals, parVals) {
			t.Errorf("seed %d: node outcomes diverge: %v vs %v", seed, seqVals, parVals)
		}
		if seqStats != parStats {
			t.Errorf("seed %d: stats diverge: %+v vs %+v", seed, seqStats, parStats)
		}
	}
}
