package netsim

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomTopology draws a connected symmetric topology: a random spanning
// chain plus extra random edges.
func randomTopology(rng *rand.Rand, n int) [][]int {
	nb := make([]map[int]bool, n)
	for i := range nb {
		nb[i] = map[int]bool{}
	}
	perm := rng.Perm(n)
	for idx := 1; idx < n; idx++ {
		a, b := perm[idx-1], perm[idx]
		nb[a][b] = true
		nb[b][a] = true
	}
	for e := 0; e < n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			nb[a][b] = true
			nb[b][a] = true
		}
	}
	out := make([][]int, n)
	for i, m := range nb {
		for j := 0; j < n; j++ { // fixed order, no map iteration
			if m[j] {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// TestDriverEquivalenceSeededTopologies pins the engine's determinism
// contract on richer inputs than the line graph: on seeded random
// topologies the goroutine-per-node driver and the sequential driver must
// deliver identical node outcomes and identical message/round accounting.
// CI runs this under the race detector, where the parallel driver's
// barrier discipline is actually checked.
func TestDriverEquivalenceSeededTopologies(t *testing.T) {
	for _, seed := range []int64{201, 202, 203} {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		topo := randomTopology(rng, n)
		if err := ValidateTopology(topo); err != nil {
			t.Fatalf("seed %d: generated invalid topology: %v", seed, err)
		}
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(1000)
		}
		run := func(parallel bool) ([]int, Stats) {
			nodes := make([]Node, n)
			for i := 0; i < n; i++ {
				nodes[i] = &maxNode{val: vals[i]}
			}
			e := &Engine{Neighbors: topo, Opt: Options{Parallel: parallel}}
			stats, err := e.Run(nodes)
			if err != nil {
				t.Fatalf("seed %d parallel=%v: %v", seed, parallel, err)
			}
			out := make([]int, n)
			for i, nd := range nodes {
				out[i] = nd.(*maxNode).best
			}
			return out, stats
		}
		seqVals, seqStats := run(false)
		parVals, parStats := run(true)
		if !reflect.DeepEqual(seqVals, parVals) {
			t.Errorf("seed %d: node outcomes diverge: %v vs %v", seed, seqVals, parVals)
		}
		if seqStats != parStats {
			t.Errorf("seed %d: stats diverge: %+v vs %+v", seed, seqStats, parStats)
		}
	}
}

// TestDriverEquivalenceUnderFailureInjection pins the determinism contract
// for every failure mode: all random draws happen outside the stepping
// fan, so the sequential and goroutine-per-node drivers must consume the
// RNG identically and produce bit-identical outcomes and counters.
func TestDriverEquivalenceUnderFailureInjection(t *testing.T) {
	modes := map[string]Options{
		"drop":  {DropRate: 0.3},
		"dup":   {DupRate: 0.3},
		"delay": {DelayRate: 0.4, MaxDelay: 3},
		"crash": {CrashRate: 0.1, CrashDownRounds: 2},
		"asym": {LinkDropRate: func(from, to int) float64 {
			if from < to {
				return 0.5
			}
			return 0.05
		}},
		"mixed": {DropRate: 0.2, DupRate: 0.1, DelayRate: 0.2, CrashRate: 0.05},
	}
	for name, opt := range modes {
		for _, seed := range []int64{211, 212} {
			rng := rand.New(rand.NewSource(seed))
			n := 6 + rng.Intn(6)
			topo := randomTopology(rng, n)
			vals := make([]int, n)
			for i := range vals {
				vals[i] = rng.Intn(1000)
			}
			run := func(parallel bool) ([]int, Stats) {
				nodes := make([]Node, n)
				for i := 0; i < n; i++ {
					nodes[i] = &maxNode{val: vals[i]}
				}
				o := opt
				o.Parallel = parallel
				o.MaxRounds = 500
				o.Rng = rand.New(rand.NewSource(seed * 31))
				e := &Engine{Neighbors: topo, Opt: o}
				stats, err := e.Run(nodes)
				if err != nil && err != ErrNoQuiescence {
					t.Fatalf("%s seed %d parallel=%v: %v", name, seed, parallel, err)
				}
				out := make([]int, n)
				for i, nd := range nodes {
					out[i] = nd.(*maxNode).best
				}
				return out, stats
			}
			seqVals, seqStats := run(false)
			parVals, parStats := run(true)
			if !reflect.DeepEqual(seqVals, parVals) {
				t.Errorf("%s seed %d: node outcomes diverge: %v vs %v", name, seed, seqVals, parVals)
			}
			if seqStats != parStats {
				t.Errorf("%s seed %d: stats diverge: %+v vs %+v", name, seed, seqStats, parStats)
			}
		}
	}
}
