package netsim

import (
	"math/rand"
	"testing"
)

// maxNode floods the maximum value it has seen; the classic distributed
// max-consensus. It quiesces when a round brings no new information.
type maxNode struct {
	val     int
	best    int
	started bool
}

func (m *maxNode) Step(inbox []Message) (Payload, bool) {
	changed := !m.started
	if !m.started {
		m.best = m.val
		m.started = true
	}
	for _, msg := range inbox {
		if v := msg.Payload.(int); v > m.best {
			m.best = v
			changed = true
		}
	}
	if changed {
		return m.best, false
	}
	return nil, true
}

func line(n int) [][]int {
	nb := make([][]int, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			nb[i] = append(nb[i], i-1)
		}
		if i < n-1 {
			nb[i] = append(nb[i], i+1)
		}
	}
	return nb
}

func TestMaxConsensusOnLine(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		n := 8
		nodes := make([]Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = &maxNode{val: i * 3}
		}
		e := &Engine{Neighbors: line(n), Opt: Options{Parallel: parallel}}
		stats, err := e.Run(nodes)
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		want := (n - 1) * 3
		for i, nd := range nodes {
			if got := nd.(*maxNode).best; got != want {
				t.Errorf("parallel=%v node %d best = %d, want %d", parallel, i, got, want)
			}
		}
		// Information needs at least diameter rounds to cross the line.
		if stats.Rounds < n-1 {
			t.Errorf("parallel=%v rounds = %d, implausibly few", parallel, stats.Rounds)
		}
		if stats.Messages == 0 {
			t.Error("no messages counted")
		}
	}
}

func TestSequentialAndParallelAgree(t *testing.T) {
	n := 10
	run := func(parallel bool) ([]int, Stats) {
		nodes := make([]Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = &maxNode{val: (i * 7) % n}
		}
		e := &Engine{Neighbors: line(n), Opt: Options{Parallel: parallel}}
		stats, err := e.Run(nodes)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, n)
		for i, nd := range nodes {
			out[i] = nd.(*maxNode).best
		}
		return out, stats
	}
	seqVals, seqStats := run(false)
	parVals, parStats := run(true)
	for i := range seqVals {
		if seqVals[i] != parVals[i] {
			t.Fatalf("node %d: sequential %d != parallel %d", i, seqVals[i], parVals[i])
		}
	}
	if seqStats != parStats {
		t.Fatalf("stats differ: %+v vs %+v", seqStats, parStats)
	}
}

func TestQuiescenceOnSilentNetwork(t *testing.T) {
	nodes := []Node{&silentNode{}, &silentNode{}}
	e := &Engine{Neighbors: line(2)}
	stats, err := e.Run(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 || stats.Messages != 0 {
		t.Errorf("stats = %+v, want 1 silent round", stats)
	}
}

type silentNode struct{}

func (*silentNode) Step([]Message) (Payload, bool) { return nil, true }

// A node that never stops talking must trip MaxRounds.
type chattyNode struct{}

func (*chattyNode) Step([]Message) (Payload, bool) { return "hi", false }

func TestMaxRoundsGuard(t *testing.T) {
	nodes := []Node{&chattyNode{}, &chattyNode{}}
	e := &Engine{Neighbors: line(2), Opt: Options{MaxRounds: 25}}
	stats, err := e.Run(nodes)
	if err != ErrNoQuiescence {
		t.Fatalf("err = %v, want ErrNoQuiescence", err)
	}
	if stats.Rounds != 25 {
		t.Errorf("rounds = %d, want 25", stats.Rounds)
	}
}

func TestDropAndDupAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 6
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &maxNode{val: i}
	}
	e := &Engine{Neighbors: line(n), Opt: Options{DropRate: 0.3, DupRate: 0.2, Rng: rng, MaxRounds: 500}}
	stats, err := e.Run(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 {
		t.Error("expected some drops at 30% drop rate")
	}
	if stats.Duplicated == 0 {
		t.Error("expected some duplications at 20% dup rate")
	}
	// Max consensus re-floods on every change, so with rebroadcasts driven
	// by new info only, drops can stall propagation — but the line graph
	// with persistent retries via changed-detection still converges here
	// because every node rebroadcasts whenever it learns something new.
	for i, nd := range nodes {
		if got := nd.(*maxNode).best; got != n-1 {
			t.Logf("node %d best = %d under lossy network (acceptable)", i, got)
		}
	}
}

// reconcile asserts the documented message balance:
// Messages == Attempted - Dropped - CrashLost - Expired + Duplicated.
func reconcile(t *testing.T, st Stats) {
	t.Helper()
	if got := st.Attempted - st.Dropped - st.CrashLost - st.Expired + st.Duplicated; st.Messages != got {
		t.Errorf("counters do not reconcile: Messages=%d but Attempted-Dropped-CrashLost-Expired+Duplicated=%d (%+v)",
			st.Messages, got, st)
	}
}

// Satellite regression: failure injection used to be silently disabled
// when Rng was nil despite the rates asking for it. Every failure mode
// must refuse to run without an RNG.
func TestRngRequiredWhenFailureInjectionEnabled(t *testing.T) {
	cases := map[string]Options{
		"drop":  {DropRate: 0.1},
		"dup":   {DupRate: 0.1},
		"delay": {DelayRate: 0.1},
		"crash": {CrashRate: 0.1},
		"link":  {LinkDropRate: func(from, to int) float64 { return 0 }},
	}
	for name, opt := range cases {
		e := &Engine{Neighbors: line(2), Opt: opt}
		st, err := e.Run([]Node{&maxNode{val: 1}, &maxNode{val: 2}})
		if err != ErrRngRequired {
			t.Errorf("%s: err = %v, want ErrRngRequired", name, err)
		}
		if st != (Stats{}) {
			t.Errorf("%s: stats = %+v, want zero (run must not start)", name, st)
		}
	}
	// Zero rates without an RNG must keep working.
	e := &Engine{Neighbors: line(2)}
	if _, err := e.Run([]Node{&maxNode{val: 1}, &maxNode{val: 2}}); err != nil {
		t.Errorf("failure-free run without Rng: %v", err)
	}
}

// Deterministic drop/dup sweep: at every rate combination the per-mode
// counters must reconcile exactly with the delivered message count.
func TestDropDupSweepReconciles(t *testing.T) {
	n := 8
	for _, drop := range []float64{0, 0.1, 0.3, 0.6} {
		for _, dup := range []float64{0, 0.1, 0.3} {
			rng := rand.New(rand.NewSource(int64(1000 + int(drop*100)*10 + int(dup*100))))
			nodes := make([]Node, n)
			for i := 0; i < n; i++ {
				nodes[i] = &maxNode{val: i * 5}
			}
			e := &Engine{Neighbors: line(n), Opt: Options{DropRate: drop, DupRate: dup, Rng: rng, MaxRounds: 2000}}
			st, err := e.Run(nodes)
			if err != nil {
				t.Fatalf("drop=%v dup=%v: %v", drop, dup, err)
			}
			reconcile(t, st)
			if drop == 0 && st.Dropped != 0 {
				t.Errorf("drop=0 but Dropped=%d", st.Dropped)
			}
			if dup == 0 && st.Duplicated != 0 {
				t.Errorf("dup=0 but Duplicated=%d", st.Duplicated)
			}
			if st.Delayed != 0 || st.Crashes != 0 || st.CrashLost != 0 || st.Expired != 0 {
				t.Errorf("disabled modes fired: %+v", st)
			}
		}
	}
}

// Delay injection postpones deliveries but loses nothing: consensus must
// still complete exactly, with the delayed messages accounted.
func TestDelayInjectionDeliversLate(t *testing.T) {
	n := 8
	rng := rand.New(rand.NewSource(77))
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &maxNode{val: i * 2}
	}
	e := &Engine{Neighbors: line(n), Opt: Options{DelayRate: 0.5, MaxDelay: 3, Rng: rng, MaxRounds: 2000}}
	st, err := e.Run(nodes)
	if err != nil {
		t.Fatal(err)
	}
	reconcile(t, st)
	if st.Delayed == 0 {
		t.Error("expected delayed deliveries at 50% delay rate")
	}
	if st.Dropped != 0 || st.Expired != 0 {
		t.Errorf("delay must not lose messages: %+v", st)
	}
	for i, nd := range nodes {
		if got := nd.(*maxNode).best; got != (n-1)*2 {
			t.Errorf("node %d best = %d, want %d (delay-only network must converge)", i, got, (n-1)*2)
		}
	}
}

// onceNode broadcasts in its first step, then stays silent and counts
// every delivery it consumes.
type onceNode struct {
	sent     bool
	consumed int
}

func (o *onceNode) Step(inbox []Message) (Payload, bool) {
	o.consumed += len(inbox)
	if !o.sent {
		o.sent = true
		return "hello", false
	}
	return nil, true
}

// Regression: a delayed message becoming due on a round where nobody
// broadcasts used to satisfy the quiescence check right after being moved
// into an inbox — counted in Messages but never consumed, silently turning
// delay into loss at the session tail. The session must run one more round
// so the destination actually sees it.
func TestDelayedMessageDueOnQuietRoundIsConsumed(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		// DelayRate=1 with MaxDelay=1 postpones every delivery by exactly
		// one round: both broadcasts from round 0 become due on round 1,
		// where nobody sends.
		rng := rand.New(rand.NewSource(1))
		nodes := []Node{&onceNode{}, &onceNode{}}
		e := &Engine{Neighbors: line(2), Opt: Options{DelayRate: 1, MaxDelay: 1, Rng: rng, Parallel: parallel}}
		st, err := e.Run(nodes)
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		reconcile(t, st)
		if st.Delayed != 2 {
			t.Fatalf("parallel=%v: Delayed = %d, scenario must delay both broadcasts", parallel, st.Delayed)
		}
		var consumed int
		for _, nd := range nodes {
			consumed += nd.(*onceNode).consumed
		}
		if consumed != int(st.Messages) {
			t.Errorf("parallel=%v: nodes consumed %d of %d counted deliveries", parallel, consumed, st.Messages)
		}
	}
}

// Asymmetric loss: with the 0→1 direction fully lossy and 1→0 clean, node
// 1 never learns node 0's value while node 0 hears node 1 fine.
func TestAsymmetricLinkDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nodes := []Node{&maxNode{val: 9}, &maxNode{val: 1}}
	e := &Engine{Neighbors: line(2), Opt: Options{
		Rng: rng,
		LinkDropRate: func(from, to int) float64 {
			if from == 0 && to == 1 {
				return 1
			}
			return 0
		},
	}}
	st, err := e.Run(nodes)
	if err != nil {
		t.Fatal(err)
	}
	reconcile(t, st)
	if got := nodes[0].(*maxNode).best; got != 9 {
		t.Errorf("node 0 best = %d, want 9", got)
	}
	if got := nodes[1].(*maxNode).best; got != 1 {
		t.Errorf("node 1 best = %d, want 1 (0→1 is fully lossy)", got)
	}
	if st.Dropped == 0 {
		t.Error("expected drops on the lossy direction")
	}
}

// Crash/restart: crashed nodes skip rounds and lose their inbound
// traffic, all of it accounted, and the session still terminates.
func TestCrashRestartInjection(t *testing.T) {
	n := 8
	rng := rand.New(rand.NewSource(31))
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &maxNode{val: i * 3}
	}
	e := &Engine{Neighbors: line(n), Opt: Options{CrashRate: 0.15, CrashDownRounds: 2, Rng: rng, MaxRounds: 2000}}
	st, err := e.Run(nodes)
	if err != nil {
		t.Fatal(err)
	}
	reconcile(t, st)
	if st.Crashes == 0 {
		t.Error("expected crash events at 15% crash rate")
	}
	if st.Dropped != 0 || st.Duplicated != 0 || st.Delayed != 0 {
		t.Errorf("disabled modes fired: %+v", st)
	}
}

// In-flight delayed messages discarded at MaxRounds must be accounted as
// Expired so the balance still closes on non-quiescent sessions.
func TestExpiredCountsInFlightAtMaxRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nodes := []Node{&chattyNode{}, &chattyNode{}}
	e := &Engine{Neighbors: line(2), Opt: Options{DelayRate: 0.6, MaxDelay: 4, Rng: rng, MaxRounds: 30}}
	st, err := e.Run(nodes)
	if err != ErrNoQuiescence {
		t.Fatalf("err = %v, want ErrNoQuiescence", err)
	}
	if st.Expired == 0 {
		t.Error("expected in-flight deliveries to expire at MaxRounds")
	}
	reconcile(t, st)
}

func TestValidateTopology(t *testing.T) {
	if err := ValidateTopology(line(4)); err != nil {
		t.Errorf("valid line rejected: %v", err)
	}
	if err := ValidateTopology([][]int{{1}, {}}); err == nil {
		t.Error("asymmetric topology accepted")
	}
	if err := ValidateTopology([][]int{{0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if err := ValidateTopology([][]int{{5}}); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Rounds: 1, Attempted: 9, Messages: 2, Dropped: 3, Duplicated: 4,
		Delayed: 5, Crashes: 6, CrashLost: 7, Expired: 8}
	a.Add(Stats{Rounds: 10, Attempted: 90, Messages: 20, Dropped: 30, Duplicated: 40,
		Delayed: 50, Crashes: 60, CrashLost: 70, Expired: 80})
	want := Stats{Rounds: 11, Attempted: 99, Messages: 22, Dropped: 33, Duplicated: 44,
		Delayed: 55, Crashes: 66, CrashLost: 77, Expired: 88}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}
