package netsim

import (
	"math/rand"
	"testing"
)

// maxNode floods the maximum value it has seen; the classic distributed
// max-consensus. It quiesces when a round brings no new information.
type maxNode struct {
	val     int
	best    int
	started bool
}

func (m *maxNode) Step(inbox []Message) (Payload, bool) {
	changed := !m.started
	if !m.started {
		m.best = m.val
		m.started = true
	}
	for _, msg := range inbox {
		if v := msg.Payload.(int); v > m.best {
			m.best = v
			changed = true
		}
	}
	if changed {
		return m.best, false
	}
	return nil, true
}

func line(n int) [][]int {
	nb := make([][]int, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			nb[i] = append(nb[i], i-1)
		}
		if i < n-1 {
			nb[i] = append(nb[i], i+1)
		}
	}
	return nb
}

func TestMaxConsensusOnLine(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		n := 8
		nodes := make([]Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = &maxNode{val: i * 3}
		}
		e := &Engine{Neighbors: line(n), Opt: Options{Parallel: parallel}}
		stats, err := e.Run(nodes)
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		want := (n - 1) * 3
		for i, nd := range nodes {
			if got := nd.(*maxNode).best; got != want {
				t.Errorf("parallel=%v node %d best = %d, want %d", parallel, i, got, want)
			}
		}
		// Information needs at least diameter rounds to cross the line.
		if stats.Rounds < n-1 {
			t.Errorf("parallel=%v rounds = %d, implausibly few", parallel, stats.Rounds)
		}
		if stats.Messages == 0 {
			t.Error("no messages counted")
		}
	}
}

func TestSequentialAndParallelAgree(t *testing.T) {
	n := 10
	run := func(parallel bool) ([]int, Stats) {
		nodes := make([]Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = &maxNode{val: (i * 7) % n}
		}
		e := &Engine{Neighbors: line(n), Opt: Options{Parallel: parallel}}
		stats, err := e.Run(nodes)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, n)
		for i, nd := range nodes {
			out[i] = nd.(*maxNode).best
		}
		return out, stats
	}
	seqVals, seqStats := run(false)
	parVals, parStats := run(true)
	for i := range seqVals {
		if seqVals[i] != parVals[i] {
			t.Fatalf("node %d: sequential %d != parallel %d", i, seqVals[i], parVals[i])
		}
	}
	if seqStats != parStats {
		t.Fatalf("stats differ: %+v vs %+v", seqStats, parStats)
	}
}

func TestQuiescenceOnSilentNetwork(t *testing.T) {
	nodes := []Node{&silentNode{}, &silentNode{}}
	e := &Engine{Neighbors: line(2)}
	stats, err := e.Run(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 || stats.Messages != 0 {
		t.Errorf("stats = %+v, want 1 silent round", stats)
	}
}

type silentNode struct{}

func (*silentNode) Step([]Message) (Payload, bool) { return nil, true }

// A node that never stops talking must trip MaxRounds.
type chattyNode struct{}

func (*chattyNode) Step([]Message) (Payload, bool) { return "hi", false }

func TestMaxRoundsGuard(t *testing.T) {
	nodes := []Node{&chattyNode{}, &chattyNode{}}
	e := &Engine{Neighbors: line(2), Opt: Options{MaxRounds: 25}}
	stats, err := e.Run(nodes)
	if err != ErrNoQuiescence {
		t.Fatalf("err = %v, want ErrNoQuiescence", err)
	}
	if stats.Rounds != 25 {
		t.Errorf("rounds = %d, want 25", stats.Rounds)
	}
}

func TestDropAndDupAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 6
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &maxNode{val: i}
	}
	e := &Engine{Neighbors: line(n), Opt: Options{DropRate: 0.3, DupRate: 0.2, Rng: rng, MaxRounds: 500}}
	stats, err := e.Run(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 {
		t.Error("expected some drops at 30% drop rate")
	}
	if stats.Duplicated == 0 {
		t.Error("expected some duplications at 20% dup rate")
	}
	// Max consensus re-floods on every change, so with rebroadcasts driven
	// by new info only, drops can stall propagation — but the line graph
	// with persistent retries via changed-detection still converges here
	// because every node rebroadcasts whenever it learns something new.
	for i, nd := range nodes {
		if got := nd.(*maxNode).best; got != n-1 {
			t.Logf("node %d best = %d under lossy network (acceptable)", i, got)
		}
	}
}

func TestValidateTopology(t *testing.T) {
	if err := ValidateTopology(line(4)); err != nil {
		t.Errorf("valid line rejected: %v", err)
	}
	if err := ValidateTopology([][]int{{1}, {}}); err == nil {
		t.Error("asymmetric topology accepted")
	}
	if err := ValidateTopology([][]int{{0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if err := ValidateTopology([][]int{{5}}); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Rounds: 1, Messages: 2, Dropped: 3, Duplicated: 4}
	a.Add(Stats{Rounds: 10, Messages: 20, Dropped: 30, Duplicated: 40})
	want := Stats{Rounds: 11, Messages: 22, Dropped: 33, Duplicated: 44}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}
