// Package instio serializes HASTE problem instances to and from JSON, so
// deployments can be described in files, shared, and replayed:
//
//	haste gen  --chargers 20 --tasks 60 --out field.json
//	haste eval --instance field.json
//
// The schema is versioned and explicit rather than a direct dump of the
// model types: the utility function is named (the model type is an
// interface), angles are stored in degrees for human editing, and loading
// always validates.
package instio

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"haste/internal/geom"
	"haste/internal/model"
)

// SchemaVersion identifies the file format.
const SchemaVersion = 1

// File is the on-disk representation of a problem instance.
type File struct {
	Version int         `json:"version"`
	Comment string      `json:"comment,omitempty"`
	Params  FileParams  `json:"params"`
	Charger []FilePoint `json:"chargers"`
	Tasks   []FileTask  `json:"tasks"`
}

// FileParams mirrors model.Params with angles in degrees.
type FileParams struct {
	Alpha                 float64 `json:"alpha"`
	Beta                  float64 `json:"beta"`
	Radius                float64 `json:"radius_m"`
	ChargeAngleDeg        float64 `json:"charge_angle_deg"`
	ReceiveAngleDeg       float64 `json:"receive_angle_deg"`
	SlotSeconds           float64 `json:"slot_seconds"`
	Rho                   float64 `json:"switching_delay_rho"`
	Tau                   int     `json:"rescheduling_delay_tau"`
	AnisotropicGain       bool    `json:"anisotropic_gain,omitempty"`
	ProportionalSwitching bool    `json:"proportional_switching,omitempty"`
	Utility               string  `json:"utility,omitempty"` // "", "linear-bounded", "log", "exp-saturating"
}

// FilePoint is a 2D position.
type FilePoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// FileTask is a charging task with its device orientation in degrees.
type FileTask struct {
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	PhiDeg  float64 `json:"phi_deg"`
	Release int     `json:"release_slot"`
	End     int     `json:"end_slot"`
	Energy  float64 `json:"energy_j"`
	Weight  float64 `json:"weight"`
}

// deg converts to degrees rounded at the ninth decimal, so that
// radian-exact angles like π/3 serialize as the 60 a human wrote.
func deg(rad float64) float64 {
	return math.Round(geom.ToDeg(rad)*1e9) / 1e9
}

// utilityByName maps schema names to model utilities.
func utilityByName(name string) (model.Utility, error) {
	switch name {
	case "", "linear-bounded":
		return model.LinearBounded{}, nil
	case "log":
		return model.LogUtility{}, nil
	case "exp-saturating":
		return model.ExpSaturating{}, nil
	}
	return nil, fmt.Errorf("instio: unknown utility %q", name)
}

// FromInstance converts a model instance into the file schema.
func FromInstance(in *model.Instance, comment string) File {
	f := File{
		Version: SchemaVersion,
		Comment: comment,
		Params: FileParams{
			Alpha:                 in.Params.Alpha,
			Beta:                  in.Params.Beta,
			Radius:                in.Params.Radius,
			ChargeAngleDeg:        deg(in.Params.ChargeAngle),
			ReceiveAngleDeg:       deg(in.Params.ReceiveAngle),
			SlotSeconds:           in.Params.SlotSeconds,
			Rho:                   in.Params.Rho,
			Tau:                   in.Params.Tau,
			AnisotropicGain:       in.Params.AnisotropicGain,
			ProportionalSwitching: in.Params.ProportionalSwitching,
			Utility:               in.U().Name(),
		},
	}
	for _, c := range in.Chargers {
		f.Charger = append(f.Charger, FilePoint{c.Pos.X, c.Pos.Y})
	}
	for _, t := range in.Tasks {
		f.Tasks = append(f.Tasks, FileTask{
			X: t.Pos.X, Y: t.Pos.Y, PhiDeg: deg(t.Phi),
			Release: t.Release, End: t.End, Energy: t.Energy, Weight: t.Weight,
		})
	}
	return f
}

// ToInstance converts the file schema back into a validated instance.
// Charger and task IDs are assigned densely in file order.
func (f File) ToInstance() (*model.Instance, error) {
	if f.Version != SchemaVersion {
		return nil, fmt.Errorf("instio: unsupported schema version %d (want %d)", f.Version, SchemaVersion)
	}
	u, err := utilityByName(f.Params.Utility)
	if err != nil {
		return nil, err
	}
	in := &model.Instance{
		Params: model.Params{
			Alpha:                 f.Params.Alpha,
			Beta:                  f.Params.Beta,
			Radius:                f.Params.Radius,
			ChargeAngle:           geom.Deg(f.Params.ChargeAngleDeg),
			ReceiveAngle:          geom.Deg(f.Params.ReceiveAngleDeg),
			SlotSeconds:           f.Params.SlotSeconds,
			Rho:                   f.Params.Rho,
			Tau:                   f.Params.Tau,
			AnisotropicGain:       f.Params.AnisotropicGain,
			ProportionalSwitching: f.Params.ProportionalSwitching,
		},
		Utility: u,
	}
	for i, c := range f.Charger {
		in.Chargers = append(in.Chargers, model.Charger{ID: i, Pos: geom.Point{X: c.X, Y: c.Y}})
	}
	for j, t := range f.Tasks {
		in.Tasks = append(in.Tasks, TaskFromFile(t, j))
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("instio: invalid instance: %w", err)
	}
	return in, nil
}

// nz normalizes negative zero to positive zero. encoding/json spells
// -0.0 as "-0", so without this an instance differing from another only
// in the sign of a zero coordinate would canonicalize to different bytes
// — and different content addresses — despite compiling to an identical
// Problem (every distance, angle, and power computation treats the two
// zeros alike).
func nz(f float64) float64 {
	if f == 0 {
		return 0
	}
	return f
}

// TaskFromFile converts one schema task into a model task with the given
// ID, using exactly the conversion ToInstance applies — the session API
// decodes streamed task mutations through this so an incrementally built
// instance matches a from-scratch Load of the same file bit for bit.
func TaskFromFile(t FileTask, id int) model.Task {
	return model.Task{
		ID: id, Pos: geom.Point{X: t.X, Y: t.Y}, Phi: geom.Deg(t.PhiDeg),
		Release: t.Release, End: t.End, Energy: t.Energy, Weight: t.Weight,
	}
}

// Canonical returns the canonical wire encoding of the file: schema
// version pinned, comment stripped, nil slices normalized to empty,
// negative zeros normalized, and compact JSON in the fixed field order of
// the schema structs. Two files that decode to the same instance content
// (regardless of whitespace, float spelling like 60 vs 6e1 vs -0, or
// comments) canonicalize to the same bytes, which is what makes the
// encoding usable as a content address.
func (f File) Canonical() ([]byte, error) {
	f.Version = SchemaVersion
	f.Comment = ""
	p := &f.Params
	p.Alpha, p.Beta, p.Radius = nz(p.Alpha), nz(p.Beta), nz(p.Radius)
	p.ChargeAngleDeg, p.ReceiveAngleDeg = nz(p.ChargeAngleDeg), nz(p.ReceiveAngleDeg)
	p.SlotSeconds, p.Rho = nz(p.SlotSeconds), nz(p.Rho)
	if f.Charger == nil {
		f.Charger = []FilePoint{}
	} else {
		f.Charger = append([]FilePoint(nil), f.Charger...)
		for i := range f.Charger {
			c := &f.Charger[i]
			c.X, c.Y = nz(c.X), nz(c.Y)
		}
	}
	if f.Tasks == nil {
		f.Tasks = []FileTask{}
	} else {
		f.Tasks = append([]FileTask(nil), f.Tasks...)
		for i := range f.Tasks {
			t := &f.Tasks[i]
			t.X, t.Y, t.PhiDeg = nz(t.X), nz(t.Y), nz(t.PhiDeg)
			t.Energy, t.Weight = nz(t.Energy), nz(t.Weight)
		}
	}
	raw, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("instio: canonicalize: %w", err)
	}
	return raw, nil
}

// Hash returns the content address of the file: "sha256:" followed by the
// hex SHA-256 of Canonical(). Instances with equal canonical encodings —
// and only those — share a hash; the compiled-problem cache of package
// serve keys on it.
func (f File) Hash() (string, error) {
	raw, err := f.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// HashInstance returns the content address of a model instance via its
// canonical file serialization.
func HashInstance(in *model.Instance) (string, error) {
	return FromInstance(in, "").Hash()
}

// Save writes the instance as indented JSON.
func Save(w io.Writer, in *model.Instance, comment string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromInstance(in, comment))
}

// Load reads and validates an instance.
func Load(r io.Reader) (*model.Instance, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("instio: %w", err)
	}
	return f.ToInstance()
}

// SaveFile writes the instance to a path.
func SaveFile(path string, in *model.Instance, comment string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := Save(w, in, comment); err != nil {
		return err
	}
	return w.Close()
}

// LoadFile reads an instance from a path.
func LoadFile(path string) (*model.Instance, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Load(r)
}
