package instio

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"haste/internal/model"
	"haste/internal/workload"
)

func sample(seed int64) *model.Instance {
	cfg := workload.SmallScale()
	return cfg.Generate(rand.New(rand.NewSource(seed)))
}

func TestRoundTrip(t *testing.T) {
	in := sample(1)
	in.Utility = model.LogUtility{}
	in.Params.AnisotropicGain = true
	in.Params.ProportionalSwitching = true

	var buf bytes.Buffer
	if err := Save(&buf, in, "round trip test"); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chargers) != len(in.Chargers) || len(got.Tasks) != len(in.Tasks) {
		t.Fatalf("sizes changed: %d/%d vs %d/%d",
			len(got.Chargers), len(got.Tasks), len(in.Chargers), len(in.Tasks))
	}
	for i := range in.Chargers {
		if got.Chargers[i].Pos.Dist(in.Chargers[i].Pos) > 1e-9 {
			t.Errorf("charger %d moved", i)
		}
	}
	for j := range in.Tasks {
		a, b := in.Tasks[j], got.Tasks[j]
		if a.Pos.Dist(b.Pos) > 1e-9 || math.Abs(a.Phi-b.Phi) > 1e-9 ||
			a.Release != b.Release || a.End != b.End ||
			math.Abs(a.Energy-b.Energy) > 1e-9 || math.Abs(a.Weight-b.Weight) > 1e-9 {
			t.Errorf("task %d changed: %+v vs %+v", j, a, b)
		}
	}
	if got.U().Name() != "log" {
		t.Errorf("utility = %q", got.U().Name())
	}
	if !got.Params.AnisotropicGain {
		t.Error("anisotropic flag lost")
	}
	if !got.Params.ProportionalSwitching {
		t.Error("proportional-switching flag lost")
	}
	if math.Abs(got.Params.ChargeAngle-in.Params.ChargeAngle) > 1e-9 {
		t.Error("charge angle changed")
	}
}

func TestFileIO(t *testing.T) {
	in := sample(2)
	path := filepath.Join(t.TempDir(), "instance.json")
	if err := SaveFile(path, in, "file test"); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tasks) != len(in.Tasks) {
		t.Fatal("task count changed")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":          "not json",
		"unknown fields":   `{"version":1,"bogus":true,"params":{},"chargers":[],"tasks":[]}`,
		"bad version":      `{"version":99,"params":{},"chargers":[],"tasks":[]}`,
		"unknown utility":  `{"version":1,"params":{"alpha":1,"beta":1,"radius_m":1,"charge_angle_deg":60,"receive_angle_deg":60,"slot_seconds":60,"utility":"cubic"},"chargers":[],"tasks":[]}`,
		"invalid instance": `{"version":1,"params":{"alpha":0,"beta":1,"radius_m":1,"charge_angle_deg":60,"receive_angle_deg":60,"slot_seconds":60},"chargers":[],"tasks":[]}`,
	}
	for name, body := range cases {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSchemaIsHumanOriented(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sample(3), "c"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"charge_angle_deg": 60`, `"slot_seconds": 60`, `"version": 1`, `"comment": "c"`} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized form missing %q:\n%s", want, s[:400])
		}
	}
}
