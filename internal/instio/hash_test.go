package instio

import (
	"math/rand"
	"strings"
	"testing"

	"haste/internal/workload"
)

func TestHashDeterministic(t *testing.T) {
	in := workload.SmallScale().Generate(rand.New(rand.NewSource(3)))
	h1, err := HashInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
		t.Fatalf("malformed hash %q", h1)
	}
}

func TestHashIgnoresCommentAndFormatting(t *testing.T) {
	in := workload.SmallScale().Generate(rand.New(rand.NewSource(4)))
	base, err := FromInstance(in, "").Hash()
	if err != nil {
		t.Fatal(err)
	}
	commented, err := FromInstance(in, "a human-readable comment").Hash()
	if err != nil {
		t.Fatal(err)
	}
	if base != commented {
		t.Errorf("comment changed the hash: %s vs %s", base, commented)
	}

	// Re-serializing through Save (indented JSON) and loading back must
	// reach the same content address: the hash is over canonical bytes,
	// not over whatever spelling the client sent.
	var sb strings.Builder
	if err := Save(&sb, in, "different comment, different whitespace"); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rh, err := HashInstance(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if rh != base {
		t.Errorf("round trip changed the hash: %s vs %s", rh, base)
	}
}

func TestHashSeparatesContent(t *testing.T) {
	cfg := workload.SmallScale()
	a := cfg.Generate(rand.New(rand.NewSource(5)))
	b := cfg.Generate(rand.New(rand.NewSource(6)))
	ha, err := HashInstance(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashInstance(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("distinct instances collided")
	}

	// A one-float perturbation must change the address.
	c := cfg.Generate(rand.New(rand.NewSource(5)))
	c.Tasks[0].Energy += 1e-9
	hc, err := HashInstance(c)
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("perturbed instance kept the same hash")
	}
}

func TestCanonicalNormalizesEmptySlices(t *testing.T) {
	f := File{Version: SchemaVersion, Comment: "x"}
	raw, err := f.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if strings.Contains(s, "null") {
		t.Errorf("canonical encoding contains null slices: %s", s)
	}
	if strings.Contains(s, "comment") {
		t.Errorf("canonical encoding kept the comment: %s", s)
	}
}
