package instio

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"haste/internal/geom"
	"haste/internal/workload"
)

func TestHashDeterministic(t *testing.T) {
	in := workload.SmallScale().Generate(rand.New(rand.NewSource(3)))
	h1, err := HashInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
		t.Fatalf("malformed hash %q", h1)
	}
}

func TestHashIgnoresCommentAndFormatting(t *testing.T) {
	in := workload.SmallScale().Generate(rand.New(rand.NewSource(4)))
	base, err := FromInstance(in, "").Hash()
	if err != nil {
		t.Fatal(err)
	}
	commented, err := FromInstance(in, "a human-readable comment").Hash()
	if err != nil {
		t.Fatal(err)
	}
	if base != commented {
		t.Errorf("comment changed the hash: %s vs %s", base, commented)
	}

	// Re-serializing through Save (indented JSON) and loading back must
	// reach the same content address: the hash is over canonical bytes,
	// not over whatever spelling the client sent.
	var sb strings.Builder
	if err := Save(&sb, in, "different comment, different whitespace"); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rh, err := HashInstance(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if rh != base {
		t.Errorf("round trip changed the hash: %s vs %s", rh, base)
	}
}

func TestHashSeparatesContent(t *testing.T) {
	cfg := workload.SmallScale()
	a := cfg.Generate(rand.New(rand.NewSource(5)))
	b := cfg.Generate(rand.New(rand.NewSource(6)))
	ha, err := HashInstance(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashInstance(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("distinct instances collided")
	}

	// A one-float perturbation must change the address.
	c := cfg.Generate(rand.New(rand.NewSource(5)))
	c.Tasks[0].Energy += 1e-9
	hc, err := HashInstance(c)
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("perturbed instance kept the same hash")
	}
}

// TestHashNegativeZero: encoding/json spells -0.0 as "-0", so before
// Canonical normalized it, two instances differing only in the sign of a
// zero coordinate — which compile to identical Problems — hashed to
// different content addresses and defeated the serve cache.
func TestHashNegativeZero(t *testing.T) {
	in := workload.SmallScale().Generate(rand.New(rand.NewSource(7)))
	in.Chargers[0].Pos = geom.Point{X: 0, Y: 12}
	in.Tasks[0].Pos.Y = 0
	in.Tasks[0].Phi = 0
	base, err := HashInstance(in)
	if err != nil {
		t.Fatal(err)
	}

	neg := workload.SmallScale().Generate(rand.New(rand.NewSource(7)))
	neg.Chargers[0].Pos = geom.Point{X: math.Copysign(0, -1), Y: 12}
	neg.Tasks[0].Pos.Y = math.Copysign(0, -1)
	neg.Tasks[0].Phi = math.Copysign(0, -1)
	nh, err := HashInstance(neg)
	if err != nil {
		t.Fatal(err)
	}
	if nh != base {
		t.Errorf("-0.0 coordinates changed the content address: %s vs %s", nh, base)
	}

	// The canonical bytes themselves must not contain a negative zero.
	raw, err := FromInstance(neg, "").Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "-0,") || strings.Contains(string(raw), "-0}") {
		t.Errorf("canonical encoding kept a -0: %s", raw)
	}

	// Canonical must not mutate the receiver's slices in place: the file's
	// own spelling (and anything aliasing it) stays untouched.
	f := FromInstance(neg, "")
	if _, err := f.Canonical(); err != nil {
		t.Fatal(err)
	}
	if !math.Signbit(f.Charger[0].X) {
		t.Error("Canonical mutated the receiver's charger slice")
	}
}

func TestCanonicalNormalizesEmptySlices(t *testing.T) {
	f := File{Version: SchemaVersion, Comment: "x"}
	raw, err := f.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if strings.Contains(s, "null") {
		t.Errorf("canonical encoding contains null slices: %s", s)
	}
	if strings.Contains(s, "comment") {
		t.Errorf("canonical encoding kept the comment: %s", s)
	}
}
