package instio

import (
	"strings"
	"testing"
)

// FuzzLoad: arbitrary bytes must never panic the loader — they either
// parse into a valid instance or return an error.
func FuzzLoad(f *testing.F) {
	f.Add(`{"version":1,"params":{"alpha":1,"beta":1,"radius_m":1,"charge_angle_deg":60,"receive_angle_deg":60,"slot_seconds":60},"chargers":[{"x":0,"y":0}],"tasks":[]}`)
	f.Add(`{"version":1}`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`{"version":1,"params":{"alpha":1,"beta":0,"radius_m":5,"charge_angle_deg":90,"receive_angle_deg":180,"slot_seconds":1},"chargers":[],"tasks":[{"x":1,"y":1,"phi_deg":0,"release_slot":0,"end_slot":2,"energy_j":10,"weight":1}]}`)
	// Negative-zero coordinates: hashes must be stable across the sign of
	// a zero (regression seed for the -0 canonicalization fix).
	f.Add(`{"version":1,"params":{"alpha":1,"beta":1,"radius_m":1,"charge_angle_deg":60,"receive_angle_deg":60,"slot_seconds":60},"chargers":[{"x":-0,"y":-0.0}],"tasks":[]}`)
	f.Fuzz(func(t *testing.T, body string) {
		in, err := Load(strings.NewReader(body))
		if err != nil {
			return
		}
		// Whatever loads must be valid and must round-trip.
		if err := in.Validate(); err != nil {
			t.Fatalf("Load accepted an invalid instance: %v", err)
		}
		var sb strings.Builder
		if err := Save(&sb, in, ""); err != nil {
			t.Fatalf("Save of loaded instance failed: %v", err)
		}
		back, err := Load(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip of loaded instance failed: %v", err)
		}
		// Content addresses survive the round trip (Save may respell
		// floats, e.g. -0 for a negative zero; Canonical must not care).
		h1, err := HashInstance(in)
		if err != nil {
			t.Fatalf("hash of loaded instance: %v", err)
		}
		h2, err := HashInstance(back)
		if err != nil {
			t.Fatalf("hash of round-tripped instance: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("round trip changed the content address: %s vs %s", h1, h2)
		}
	})
}
