package matroid

import (
	"math/rand"
	"testing"
)

func small() Partition {
	return Partition{NumChargers: 2, NumSlots: 2, PolicyCounts: []int{2, 1}}
}

func TestGroundSize(t *testing.T) {
	m := small()
	if got := m.GroundSize(); got != 6 {
		t.Errorf("GroundSize = %d, want 6", got)
	}
	if got := len(m.Ground()); got != 6 {
		t.Errorf("len(Ground) = %d, want 6", got)
	}
}

func TestValid(t *testing.T) {
	m := small()
	cases := []struct {
		e    Element
		want bool
	}{
		{Element{0, 0, 0}, true},
		{Element{0, 1, 1}, true},
		{Element{1, 1, 0}, true},
		{Element{1, 0, 1}, false}, // charger 1 has only 1 policy
		{Element{2, 0, 0}, false},
		{Element{0, 2, 0}, false},
		{Element{-1, 0, 0}, false},
	}
	for _, c := range cases {
		if got := m.Valid(c.e); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestIndependent(t *testing.T) {
	m := small()
	cases := []struct {
		set  []Element
		want bool
	}{
		{nil, true},
		{[]Element{{0, 0, 0}}, true},
		{[]Element{{0, 0, 0}, {0, 1, 1}, {1, 0, 0}, {1, 1, 0}}, true},
		{[]Element{{0, 0, 0}, {0, 0, 1}}, false}, // same partition
		{[]Element{{0, 0, 0}, {0, 0, 0}}, false}, // duplicate
		{[]Element{{1, 0, 1}}, false},            // invalid element
	}
	for _, c := range cases {
		if got := m.Independent(c.set); got != c.want {
			t.Errorf("Independent(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestCanAdd(t *testing.T) {
	m := small()
	base := []Element{{0, 0, 0}}
	if m.CanAdd(base, Element{0, 0, 1}) {
		t.Error("CanAdd allowed same partition")
	}
	if !m.CanAdd(base, Element{0, 1, 0}) {
		t.Error("CanAdd rejected other slot")
	}
	if !m.CanAdd(base, Element{1, 0, 0}) {
		t.Error("CanAdd rejected other charger")
	}
	if m.CanAdd(base, Element{5, 0, 0}) {
		t.Error("CanAdd accepted invalid element")
	}
}

func TestRank(t *testing.T) {
	m := small()
	if got := m.Rank(); got != 4 {
		t.Errorf("Rank = %d, want 4", got)
	}
	m2 := Partition{NumChargers: 3, NumSlots: 2, PolicyCounts: []int{2, 0, 1}}
	if got := m2.Rank(); got != 4 {
		t.Errorf("Rank with empty partition = %d, want 4", got)
	}
}

// The paper's Lemma 4.1: the scheduling constraint is a matroid. Verify
// the axioms exhaustively on small random instances.
func TestPartitionMatroidAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		m := Partition{
			NumChargers:  1 + rng.Intn(2),
			NumSlots:     1 + rng.Intn(2),
			PolicyCounts: nil,
		}
		for i := 0; i < m.NumChargers; i++ {
			m.PolicyCounts = append(m.PolicyCounts, 1+rng.Intn(3))
		}
		if m.GroundSize() > 8 {
			continue // keep enumeration small
		}
		if err := CheckAxioms(m.Ground(), m.Independent, 4); err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, m, err)
		}
	}
}

// Negative control: the checker must catch a non-matroid. Independence
// defined as "set is not exactly {a}" violates heredity.
func TestCheckAxiomsDetectsViolation(t *testing.T) {
	ground := []Element{{0, 0, 0}, {0, 0, 1}}
	bogus := func(set []Element) bool {
		return !(len(set) == 1 && set[0] == ground[0])
	}
	if err := CheckAxioms(ground, bogus, 2); err == nil {
		t.Fatal("checker accepted a non-matroid")
	}
}

// Negative control for the exchange axiom: "all elements must share a
// slot" satisfies heredity but not exchange on a two-slot ground set.
func TestCheckAxiomsDetectsExchangeViolation(t *testing.T) {
	ground := []Element{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}
	sameSlot := func(set []Element) bool {
		for i := 1; i < len(set); i++ {
			if set[i].Slot != set[0].Slot {
				return false
			}
		}
		return true
	}
	if err := CheckAxioms(ground, sameSlot, 3); err == nil {
		t.Fatal("checker accepted an exchange violation")
	}
}

func TestElementString(t *testing.T) {
	e := Element{1, 2, 3}
	if got := e.String(); got != "Θ_{1,2}^3" {
		t.Errorf("String = %q", got)
	}
}
