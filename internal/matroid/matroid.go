// Package matroid provides the partition-matroid structure underlying the
// HASTE-R reformulation (Lemma 4.1): the ground set is the union of the
// disjoint policy sets Θ_{i,k} (one per charger per time slot), and a
// selection is independent iff it picks at most one policy from every
// Θ_{i,k}.
//
// The package also exposes a generic matroid-axiom checker used by the
// property tests to certify the structure actually is a matroid.
package matroid

import "fmt"

// Element identifies one scheduling policy in the ground set S: the p-th
// dominant task set of charger i at time slot k (Θ_{i,k}^p).
type Element struct {
	Charger int // i
	Slot    int // k
	Policy  int // p, index into Γ_i
}

// String renders the element as Θ_{i,k}^p.
func (e Element) String() string {
	return fmt.Sprintf("Θ_{%d,%d}^%d", e.Charger, e.Slot, e.Policy)
}

// Partition describes the partition matroid M = (S, I): n chargers, K time
// slots, and the number of policies |Γ_i| available to each charger.
// Capacity is fixed at 1 per partition, matching |X ∩ Θ_{i,k}| ≤ 1.
type Partition struct {
	NumChargers  int
	NumSlots     int
	PolicyCounts []int // PolicyCounts[i] = |Γ_i|
}

// GroundSize returns |S| = K·Σ_i |Γ_i|.
func (m Partition) GroundSize() int {
	total := 0
	for _, c := range m.PolicyCounts {
		total += c
	}
	return total * m.NumSlots
}

// Ground enumerates the full ground set in deterministic order.
func (m Partition) Ground() []Element {
	out := make([]Element, 0, m.GroundSize())
	for k := 0; k < m.NumSlots; k++ {
		for i := 0; i < m.NumChargers; i++ {
			for p := 0; p < m.PolicyCounts[i]; p++ {
				out = append(out, Element{i, k, p})
			}
		}
	}
	return out
}

// Valid reports whether the element lies inside the ground set.
func (m Partition) Valid(e Element) bool {
	return e.Charger >= 0 && e.Charger < m.NumChargers &&
		e.Slot >= 0 && e.Slot < m.NumSlots &&
		e.Policy >= 0 && e.Policy < m.PolicyCounts[e.Charger]
}

// Independent reports whether X ∈ I: all elements valid, no duplicates,
// and at most one element per partition Θ_{i,k}.
func (m Partition) Independent(set []Element) bool {
	used := make(map[[2]int]Element, len(set))
	for _, e := range set {
		if !m.Valid(e) {
			return false
		}
		key := [2]int{e.Charger, e.Slot}
		if prev, ok := used[key]; ok {
			if prev == e {
				return false // duplicate element
			}
			return false // two policies in the same partition
		}
		used[key] = e
	}
	return true
}

// CanAdd reports whether set ∪ {e} remains independent assuming set
// already is.
func (m Partition) CanAdd(set []Element, e Element) bool {
	if !m.Valid(e) {
		return false
	}
	for _, x := range set {
		if x.Charger == e.Charger && x.Slot == e.Slot {
			return false
		}
	}
	return true
}

// Rank returns the matroid rank: the size of every maximal independent
// set, i.e. the number of non-empty partitions times the slot count.
func (m Partition) Rank() int {
	nonEmpty := 0
	for _, c := range m.PolicyCounts {
		if c > 0 {
			nonEmpty++
		}
	}
	return nonEmpty * m.NumSlots
}

// IndependenceOracle is the abstract interface the axiom checker works
// against.
type IndependenceOracle func(set []Element) bool

// CheckAxioms verifies the three matroid axioms of Definition 4.3 on the
// given ground set by exhaustive enumeration of subsets up to size
// maxSize. It returns a descriptive error on the first violation found.
// Intended for tests on small ground sets.
func CheckAxioms(ground []Element, indep IndependenceOracle, maxSize int) error {
	// Axiom 1: ∅ ∈ I.
	if !indep(nil) {
		return fmt.Errorf("matroid axiom 1 violated: empty set not independent")
	}
	subsets := enumerateSubsets(ground, maxSize)

	// Axiom 2 (heredity): X ⊆ Y ∈ I ⇒ X ∈ I. It suffices to check
	// one-element deletions.
	for _, y := range subsets {
		if !indep(y) {
			continue
		}
		for drop := range y {
			x := append(append([]Element{}, y[:drop]...), y[drop+1:]...)
			if !indep(x) {
				return fmt.Errorf("matroid axiom 2 violated: %v independent but subset %v is not", y, x)
			}
		}
	}

	// Axiom 3 (exchange): |X| < |Y|, both independent ⇒ ∃ y ∈ Y\X with
	// X ∪ {y} independent.
	var indepSets [][]Element
	for _, s := range subsets {
		if indep(s) {
			indepSets = append(indepSets, s)
		}
	}
	for _, x := range indepSets {
		for _, y := range indepSets {
			if len(x) >= len(y) {
				continue
			}
			found := false
			for _, e := range y {
				if containsElement(x, e) {
					continue
				}
				if indep(append(append([]Element{}, x...), e)) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("matroid axiom 3 violated: |X|=%d |Y|=%d X=%v Y=%v", len(x), len(y), x, y)
			}
		}
	}
	return nil
}

func containsElement(set []Element, e Element) bool {
	for _, x := range set {
		if x == e {
			return true
		}
	}
	return false
}

// enumerateSubsets lists all subsets of ground with size ≤ maxSize.
func enumerateSubsets(ground []Element, maxSize int) [][]Element {
	var out [][]Element
	var rec func(start int, cur []Element)
	rec = func(start int, cur []Element) {
		out = append(out, append([]Element{}, cur...))
		if len(cur) == maxSize {
			return
		}
		for i := start; i < len(ground); i++ {
			rec(i+1, append(cur, ground[i]))
		}
	}
	rec(0, nil)
	return out
}
