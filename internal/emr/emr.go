// Package emr adds electromagnetic-radiation safety to HASTE scheduling —
// the extension direction of the safe-charging line of work the paper
// builds on (SCAPE and the radiation-constrained scheduling papers by the
// same group, refs. [42]–[50]): the EMR intensity at any point of the
// field must never exceed a safety threshold.
//
// The EMR model follows those papers: intensity at a point is proportional
// to the total wireless power received there, e(q) = γ·Σ_i P_r(s_i, q),
// summed over the chargers whose charging sector covers q. The continuous
// "everywhere" constraint is discretized over a grid of monitoring points,
// as in the original papers.
//
// ConstrainedGreedy is the locally greedy HASTE scheduler with the safety
// constraint enforced per slot: a charger may also stay off (radiate
// nothing), so a feasible schedule always exists. With an infinite
// threshold it reproduces the unconstrained scheduler exactly.
package emr

import (
	"math"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
)

// Field is the EMR safety specification.
type Field struct {
	Points []geom.Point // monitoring points
	Gamma  float64      // EMR per unit received power (γ)
	Limit  float64      // safety threshold R_t; +Inf disables the constraint
}

// Grid builds a uniform grid of monitoring points covering the square
// [0, side]² with the given spacing (points at both boundaries included).
func Grid(side, spacing float64) []geom.Point {
	var pts []geom.Point
	if spacing <= 0 {
		return pts
	}
	for x := 0.0; x <= side+1e-9; x += spacing {
		for y := 0.0; y <= side+1e-9; y += spacing {
			pts = append(pts, geom.Point{X: x, Y: y})
		}
	}
	return pts
}

// intensityOf returns the EMR contribution of charger i oriented at theta
// to point q (γ times the power an omnidirectional probe at q would
// receive from it).
func (f Field) intensityOf(in *model.Instance, i int, theta float64, q geom.Point) float64 {
	c := in.Chargers[i]
	s := geom.Sector{
		Apex:        c.Pos,
		Orientation: theta,
		HalfAngle:   in.Params.ChargeAngle / 2,
		Radius:      in.Params.Radius,
	}
	if !s.Contains(q) {
		return 0
	}
	return f.Gamma * in.Params.PowerBetween(c.Pos, q)
}

// SlotIntensities returns, for one slot's orientations (NaN = off), the
// EMR intensity at every monitoring point.
func (f Field) SlotIntensities(in *model.Instance, orientations []float64) []float64 {
	out := make([]float64, len(f.Points))
	for i, theta := range orientations {
		if math.IsNaN(theta) {
			continue
		}
		for pi, q := range f.Points {
			out[pi] += f.intensityOf(in, i, theta, q)
		}
	}
	return out
}

// Audit replays a schedule and reports the worst EMR intensity observed at
// any monitoring point in any slot, plus the number of (slot, point)
// violations of the threshold. It uses the same off semantics as
// ConstrainedGreedy and ExecuteOff: a charger with no policy in a slot
// radiates nothing. (Schedules from the unconstrained schedulers always
// assign every slot, so the distinction only matters for constrained
// ones.)
func (f Field) Audit(p *core.Problem, s core.Schedule) (peak float64, violations int) {
	in := p.In
	n := len(in.Chargers)
	cur := make([]float64, n)
	for k := 0; k < s.Slots(); k++ {
		for i := 0; i < n; i++ {
			cur[i] = math.NaN()
			if k < len(s.Policy[i]) {
				if pol := s.Policy[i][k]; pol >= 0 && !p.Gamma[i][pol].Idle {
					cur[i] = p.Gamma[i][pol].Orientation
				}
			}
		}
		for _, e := range f.SlotIntensities(in, cur) {
			if e > peak {
				peak = e
			}
			if e > f.Limit+1e-12 {
				violations++
			}
		}
	}
	return peak, violations
}

// ConstrainedGreedy is the locally greedy offline scheduler under the EMR
// safety constraint: per slot (in slot-major, charger-minor order, the
// same order and tie-breaking as core.TabularGreedy with C = 1) each
// charger picks the feasible policy with the best marginal utility, where
// feasible means no monitoring point exceeds Limit in that slot given the
// policies already committed. A charger with no feasible policy stays off
// for the slot (schedule entry −1, radiating nothing).
//
// The returned result's RUtility is the HASTE-R objective of the schedule.
// Note the off semantics differ from the unconstrained executor: an off
// charger here is truly silent, so callers should audit and execute
// constrained schedules with ExecuteOff.
func ConstrainedGreedy(p *core.Problem, f Field) core.Result {
	in := p.In
	n := len(in.Chargers)
	sched := core.NewSchedule(n, p.K)
	es := p.AcquireState()
	defer p.ReleaseState(es)

	// contrib[i][pol][pi] would be large; compute lazily per charger with
	// a cache keyed by policy, valid across slots (orientation fixed).
	cache := make([]map[int][]float64, n)
	for i := range cache {
		cache[i] = make(map[int][]float64)
	}
	contribution := func(i, pol int) []float64 {
		if c, ok := cache[i][pol]; ok {
			return c
		}
		c := make([]float64, len(f.Points))
		if !p.Gamma[i][pol].Idle {
			theta := p.Gamma[i][pol].Orientation
			for pi, q := range f.Points {
				c[pi] = f.intensityOf(in, i, theta, q)
			}
		}
		cache[i][pol] = c
		return c
	}

	load := make([]float64, len(f.Points)) // intensity committed this slot
	for k := 0; k < p.K; k++ {
		for pi := range load {
			load[pi] = 0
		}
		for i := 0; i < n; i++ {
			best, bestGain := -1, 0.0
			prev := -1
			if k > 0 {
				prev = sched.Policy[i][k-1]
			}
			for pol := range p.Gamma[i] {
				c := contribution(i, pol)
				feasible := true
				for pi, add := range c {
					if add > 0 && load[pi]+add > f.Limit+1e-12 {
						feasible = false
						break
					}
				}
				if !feasible {
					continue
				}
				gain := es.Marginal(i, k, pol)
				switch {
				case best < 0 || gain > bestGain:
					best, bestGain = pol, gain
				case gain == bestGain && pol == prev && best != prev:
					best = pol
				}
			}
			if best < 0 {
				continue // no feasible policy: stay off this slot
			}
			sched.Policy[i][k] = best
			es.Apply(i, k, best)
			for pi, add := range contribution(i, best) {
				load[pi] += add
			}
		}
	}
	return core.Result{Schedule: sched, RUtility: es.Total()}
}

// ExecuteOff plays a constrained schedule with off semantics: a charger
// with policy −1 radiates nothing that slot (unlike sim.Execute, where −1
// means "keep the previous orientation"). Switching delay applies when a
// charger turns back on with a different orientation than it last used.
func ExecuteOff(p *core.Problem, s core.Schedule) (utility float64, perTask []float64) {
	in := p.In
	energy := make([]float64, len(in.Tasks))
	n := len(in.Chargers)
	last := make([]float64, n) // last used orientation
	for i := range last {
		last[i] = math.NaN()
	}
	for k := 0; k < s.Slots(); k++ {
		for i := 0; i < n; i++ {
			pol := -1
			if k < len(s.Policy[i]) {
				pol = s.Policy[i][k]
			}
			if pol < 0 || p.Gamma[i][pol].Idle {
				continue
			}
			theta := p.Gamma[i][pol].Orientation
			frac := 1.0
			if math.IsNaN(last[i]) || theta != last[i] {
				frac = 1 - in.Params.SwitchLoss(last[i], theta)
				last[i] = theta
			}
			// Compiled cover list: zero-energy pairs dropped, slot energy
			// inline (bit-identical to the Gamma scan; see core.CompiledCovers).
			if lo, hi := p.PolicyWindow(i, pol); k < lo || k >= hi {
				continue
			}
			for _, e := range p.CompiledCovers(i, pol) {
				if in.Tasks[e.Task].ActiveAt(k) {
					energy[e.Task] += e.De * frac
				}
			}
		}
	}
	u := in.U()
	perTask = make([]float64, len(in.Tasks))
	for j, t := range in.Tasks {
		perTask[j] = u.Of(energy[j], t.Energy)
		utility += t.Weight * perTask[j]
	}
	return utility, perTask
}
