package emr

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
	"haste/internal/workload"
)

func mustProblem(t *testing.T, in *model.Instance) *core.Problem {
	t.Helper()
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func smallInstance(seed int64) *model.Instance {
	cfg := workload.SmallScale()
	cfg.NumChargers, cfg.NumTasks = 6, 12
	cfg.FieldSide = 15
	cfg.Params.ReceiveAngle = geom.Deg(120)
	return cfg.Generate(rand.New(rand.NewSource(seed)))
}

func TestGrid(t *testing.T) {
	pts := Grid(10, 5)
	if len(pts) != 9 { // 3×3
		t.Fatalf("grid has %d points, want 9", len(pts))
	}
	if pts[0] != (geom.Point{X: 0, Y: 0}) || pts[len(pts)-1] != (geom.Point{X: 10, Y: 10}) {
		t.Errorf("grid corners wrong: %v … %v", pts[0], pts[len(pts)-1])
	}
	if len(Grid(10, 0)) != 0 {
		t.Error("zero spacing should give no points")
	}
}

func TestSlotIntensities(t *testing.T) {
	in := &model.Instance{
		Chargers: []model.Charger{{ID: 0, Pos: geom.Point{X: 0, Y: 0}}},
		Tasks: []model.Task{{ID: 0, Pos: geom.Point{X: 10, Y: 0}, Phi: math.Pi,
			Release: 0, End: 2, Energy: 100, Weight: 1}},
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(60),
			SlotSeconds: 60, Rho: 0, Tau: 0,
		},
	}
	f := Field{
		Points: []geom.Point{{X: 10, Y: 0}, {X: -10, Y: 0}, {X: 30, Y: 0}},
		Gamma:  2,
	}
	// Charger aimed along +x: only the first point is irradiated.
	got := f.SlotIntensities(in, []float64{0})
	want := 2 * in.Params.Power(10)
	if math.Abs(got[0]-want) > 1e-9 {
		t.Errorf("intensity at covered point = %v, want %v", got[0], want)
	}
	if got[1] != 0 || got[2] != 0 {
		t.Errorf("uncovered points irradiated: %v", got)
	}
	// Off charger: nothing anywhere.
	for _, e := range f.SlotIntensities(in, []float64{math.NaN()}) {
		if e != 0 {
			t.Error("off charger radiated")
		}
	}
}

// The constrained schedule must never violate the threshold, and its
// utility can only shrink as the threshold tightens.
func TestConstrainedGreedySafetyAndMonotonicity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := smallInstance(seed)
		p := mustProblem(t, in)
		grid := Grid(15, 3)

		unconstrained := core.TabularGreedy(p, core.DefaultOptions(1))
		prevU := math.Inf(1)
		for _, limit := range []float64{math.Inf(1), 50, 20, 8, 2, 0.5} {
			f := Field{Points: grid, Gamma: 1, Limit: limit}
			res := ConstrainedGreedy(p, f)
			peak, viol := f.Audit(p, res.Schedule)
			_ = peak
			if math.IsInf(limit, 1) {
				// With no constraint the schedule matches the
				// unconstrained locally greedy exactly.
				if math.Abs(res.RUtility-unconstrained.RUtility) > 1e-9 {
					t.Fatalf("seed %d: unconstrained mismatch: %v vs %v",
						seed, res.RUtility, unconstrained.RUtility)
				}
			}
			if viol != 0 {
				t.Fatalf("seed %d limit %v: %d violations", seed, limit, viol)
			}
			if res.RUtility > prevU+1e-9 {
				t.Fatalf("seed %d: utility grew as limit tightened: %v > %v",
					seed, res.RUtility, prevU)
			}
			prevU = res.RUtility
		}
	}
}

func TestConstrainedGreedyZeroLimitTurnsEverythingOff(t *testing.T) {
	in := smallInstance(1)
	p := mustProblem(t, in)
	f := Field{Points: Grid(15, 3), Gamma: 1, Limit: 0}
	res := ConstrainedGreedy(p, f)
	if res.RUtility != 0 {
		t.Fatalf("utility %v with zero EMR budget", res.RUtility)
	}
	u, _ := ExecuteOff(p, res.Schedule)
	if u != 0 {
		t.Fatalf("executed utility %v with zero EMR budget", u)
	}
}

func TestExecuteOffSemantics(t *testing.T) {
	in := &model.Instance{
		Chargers: []model.Charger{{ID: 0, Pos: geom.Point{X: 0, Y: 0}}},
		Tasks: []model.Task{{ID: 0, Pos: geom.Point{X: 10, Y: 0}, Phi: math.Pi,
			Release: 0, End: 4, Energy: 1e6, Weight: 1}},
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(60),
			SlotSeconds: 60, Rho: 0.25, Tau: 0,
		},
	}
	p := mustProblem(t, in)
	s := core.NewSchedule(1, p.K)
	s.Policy[0][0] = 0
	// Slot 1 off, slot 2 on again with the same orientation: no second
	// switching penalty (the head kept its position while off).
	s.Policy[0][2] = 0
	u, perTask := ExecuteOff(p, s)
	wantE := 240*(1-0.25) + 0 + 240
	if got := perTask[0] * 1e6; math.Abs(got-wantE) > 1e-6 {
		t.Errorf("energy = %v, want %v", got, wantE)
	}
	if u != perTask[0] {
		t.Errorf("weighted utility mismatch")
	}
}

// The EMR audit of an unconstrained schedule must find violations when
// the threshold is below the achievable peak.
func TestAuditFindsViolations(t *testing.T) {
	in := smallInstance(2)
	p := mustProblem(t, in)
	res := core.TabularGreedy(p, core.DefaultOptions(1))
	f := Field{Points: Grid(15, 3), Gamma: 1, Limit: math.Inf(1)}
	peak, viol := f.Audit(p, res.Schedule)
	if viol != 0 {
		t.Fatalf("infinite limit reported %d violations", viol)
	}
	if peak <= 0 {
		t.Fatal("no radiation observed at all")
	}
	f.Limit = peak / 2
	if _, viol = f.Audit(p, res.Schedule); viol == 0 {
		t.Fatal("audit missed violations below the peak")
	}
}
