// Package model defines the HASTE problem model from the paper: directional
// wireless chargers, rechargeable devices, charging tasks (five-tuples),
// the discrete time grid, the directional charging power model, and
// charging-utility functions.
//
// Units: distances in meters, time in seconds, power in watts, energy in
// joules, angles in radians.
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"haste/internal/geom"
)

// Charger is a static directional wireless charger s_i. Its orientation is
// the scheduling decision and therefore not part of the model object.
type Charger struct {
	ID  int
	Pos geom.Point
}

// Task is a charging task T_j = ⟨o_j, φ_j, t_r, t_e, E_j⟩ launched by a
// rechargeable device. Times are expressed in whole time slots: the task is
// active during slots [Release, End) — the paper assumes t_r falls at the
// beginning of a slot and t_e at the end of one.
type Task struct {
	ID      int
	Pos     geom.Point // o_j: device position
	Phi     float64    // φ_j: device receiving orientation, radians
	Release int        // t_r / T_s: first active slot (inclusive)
	End     int        // t_e / T_s: one past the last active slot (exclusive)
	Energy  float64    // E_j: required charging energy, joules
	Weight  float64    // w_j: weight in the overall utility
}

// Duration returns the task's lifetime in slots.
func (t Task) Duration() int { return t.End - t.Release }

// ActiveAt reports whether the task is alive during slot k.
func (t Task) ActiveAt(k int) bool { return k >= t.Release && k < t.End }

// Params holds the network-wide physical and scheduling constants of §3.
type Params struct {
	Alpha  float64 // α: charging model constant (hardware dependent)
	Beta   float64 // β: charging model constant
	Radius float64 // D: radius of the charging and receiving areas, meters

	ChargeAngle  float64 // A_s: charging angle of chargers, radians
	ReceiveAngle float64 // A_o: receiving angle of devices, radians

	SlotSeconds float64 // T_s: duration of a time slot, seconds
	Rho         float64 // ρ ∈ (0,1): switching delay, fraction of a slot
	Tau         int     // τ: rescheduling delay, whole time slots

	// ProportionalSwitching is an extension of the paper's switching
	// model: instead of a fixed delay of ρ·T_s per reorientation, the
	// delay scales with the rotation angle — ρ·T_s·(Δθ/π), so a U-turn
	// costs the full ρ and small nudges almost nothing. This matches
	// rotating heads with constant angular speed. The worst case equals
	// the paper's model, so the (1−ρ)(1−1/e) guarantee is unaffected.
	// Off by default.
	ProportionalSwitching bool

	// AnisotropicGain enables the extension of the receiving model cited
	// as future work in the paper ([57]): received power is additionally
	// scaled by cos of the angle between the device's orientation and the
	// direction back to the charger, normalized so the gain is 1 on the
	// device's boresight and falls to cos(A_o/2) at the receiving-sector
	// edge. Off by default to match the paper's model.
	AnisotropicGain bool
}

// Validate checks the physical sanity of the parameters.
func (p Params) Validate() error {
	switch {
	case p.Alpha <= 0:
		return errors.New("model: Alpha must be positive")
	case p.Beta < 0:
		return errors.New("model: Beta must be non-negative")
	case p.Radius <= 0:
		return errors.New("model: Radius must be positive")
	case p.ChargeAngle <= 0 || p.ChargeAngle > geom.TwoPi:
		return errors.New("model: ChargeAngle must be in (0, 2π]")
	case p.ReceiveAngle <= 0 || p.ReceiveAngle > geom.TwoPi:
		return errors.New("model: ReceiveAngle must be in (0, 2π]")
	case p.SlotSeconds <= 0:
		return errors.New("model: SlotSeconds must be positive")
	case p.Rho < 0 || p.Rho > 1:
		return errors.New("model: Rho must be in [0, 1]")
	case p.Tau < 0:
		return errors.New("model: Tau must be non-negative")
	}
	return nil
}

// SwitchLoss returns the fraction of a slot lost to a reorientation from
// angle `from` to angle `to` under the configured switching model. Pass
// from = NaN for a charger that had no orientation yet (θ = Φ): the first
// orientation always costs the full ρ.
func (p Params) SwitchLoss(from, to float64) float64 {
	if math.IsNaN(to) {
		return 0
	}
	if !p.ProportionalSwitching || math.IsNaN(from) {
		return p.Rho
	}
	return p.Rho * geom.AngDist(from, to) / math.Pi
}

// Power returns the distance-dependent factor P_r(s_i, o_j) of the charging
// model: α/(d+β)² when d ≤ D and 0 otherwise. This is the power a device at
// distance d receives when both sector conditions hold.
func (p Params) Power(dist float64) float64 {
	if dist > p.Radius || dist < 0 {
		return 0
	}
	return p.Alpha / ((dist + p.Beta) * (dist + p.Beta))
}

// PowerBetween returns P_r(s_i, o_j) for a charger and a device position,
// ignoring orientations (used throughout the HASTE-R objective, where
// coverage is decided by the chosen dominant task set).
func (p Params) PowerBetween(charger, device geom.Point) float64 {
	return p.Power(charger.Dist(device))
}

// Chargeable reports whether charger c can ever deliver non-zero power to
// task t under some charger orientation: the pair must be within distance
// D and the charger must lie inside the device's fixed receiving sector.
func (p Params) Chargeable(c Charger, t Task) bool {
	if c.Pos.Dist(t.Pos) > p.Radius {
		return false
	}
	recv := geom.Sector{
		Apex:        t.Pos,
		Orientation: t.Phi,
		HalfAngle:   p.ReceiveAngle / 2,
		Radius:      p.Radius,
	}
	return recv.Contains(c.Pos)
}

// Covers reports whether charger c with orientation theta covers task t:
// the full directional condition of the paper's charging model.
func (p Params) Covers(c Charger, theta float64, t Task) bool {
	if !p.Chargeable(c, t) {
		return false
	}
	send := geom.Sector{
		Apex:        c.Pos,
		Orientation: theta,
		HalfAngle:   p.ChargeAngle / 2,
		Radius:      p.Radius,
	}
	return send.Contains(t.Pos)
}

// ReceivedPower returns P_r(s_i, θ_i, o_j, φ_j): the instantaneous power
// task t harvests from charger c oriented at theta. With AnisotropicGain
// the distance term is scaled by the device-side directional gain.
func (p Params) ReceivedPower(c Charger, theta float64, t Task) float64 {
	if !p.Covers(c, theta, t) {
		return 0
	}
	pw := p.Power(c.Pos.Dist(t.Pos))
	if p.AnisotropicGain {
		pw *= p.ReceiveGain(c, t)
	}
	return pw
}

// ReceiveGain returns the device-side anisotropic gain factor in
// (0, 1]: cos of the deviation of the charger from the device's boresight.
// It is 1 when the charger sits exactly along φ_j. Only meaningful when
// the pair is chargeable.
func (p Params) ReceiveGain(c Charger, t Task) float64 {
	if c.Pos.Dist(t.Pos) == 0 {
		return 1
	}
	dev := geom.AngDist(geom.Azimuth(t.Pos, c.Pos), t.Phi)
	g := math.Cos(dev)
	if g < 0 {
		g = 0
	}
	return g
}

// Instance is a complete HASTE problem: chargers, tasks, parameters and the
// utility model.
type Instance struct {
	Chargers []Charger
	Tasks    []Task
	Params   Params
	Utility  Utility // nil means LinearBounded (the paper's default)
}

// U returns the instance's utility function, defaulting to the paper's
// linear-and-bounded model.
func (in *Instance) U() Utility {
	if in.Utility == nil {
		return LinearBounded{}
	}
	return in.Utility
}

// Horizon returns K: the number of time slots spanned by all tasks
// (max End over tasks), 0 if there are none.
func (in *Instance) Horizon() int {
	k := 0
	for _, t := range in.Tasks {
		if t.End > k {
			k = t.End
		}
	}
	return k
}

// TotalWeight returns Σ_j w_j, the maximum achievable overall utility.
func (in *Instance) TotalWeight() float64 {
	var w float64
	for _, t := range in.Tasks {
		w += t.Weight
	}
	return w
}

// Validate checks structural consistency: parameter sanity, unique dense
// IDs, finite coordinates, positive energies and weights, sane task
// windows, and the paper's standing assumption t_e − t_r ≥ 2τ·T_s.
func (in *Instance) Validate() error {
	if err := in.Params.Validate(); err != nil {
		return err
	}
	for i, c := range in.Chargers {
		if c.ID != i {
			return fmt.Errorf("model: charger at index %d has ID %d (IDs must be dense)", i, c.ID)
		}
		if !finite(c.Pos.X) || !finite(c.Pos.Y) {
			return fmt.Errorf("model: charger %d has non-finite position (%g, %g)", i, c.Pos.X, c.Pos.Y)
		}
	}
	for j, t := range in.Tasks {
		if t.ID != j {
			return fmt.Errorf("model: task at index %d has ID %d (IDs must be dense)", j, t.ID)
		}
		if err := in.CheckTask(t); err != nil {
			return err
		}
	}
	return nil
}

// CheckTask validates one task against the instance's parameters: finite
// coordinates and orientation (a NaN or ±Inf position would land in an
// arbitrary spatial-grid cell and be scheduled as garbage — rejected here
// so instio.Load, core.NewProblem and the incremental delta ops all refuse
// it with a real error), a non-empty non-negative window, positive finite
// energy, non-negative finite weight, and t_e − t_r ≥ 2τ. The task's ID is
// not checked (density is a whole-instance property; Validate checks it).
func (in *Instance) CheckTask(t Task) error {
	j := t.ID
	switch {
	case !finite(t.Pos.X) || !finite(t.Pos.Y):
		return fmt.Errorf("model: task %d has non-finite position (%g, %g)", j, t.Pos.X, t.Pos.Y)
	case !finite(t.Phi):
		return fmt.Errorf("model: task %d has non-finite orientation %g", j, t.Phi)
	case t.End <= t.Release:
		return fmt.Errorf("model: task %d has empty window [%d, %d)", j, t.Release, t.End)
	case t.Release < 0:
		return fmt.Errorf("model: task %d released at negative slot %d", j, t.Release)
	case !finite(t.Energy):
		return fmt.Errorf("model: task %d has non-finite energy %g", j, t.Energy)
	case t.Energy <= 0:
		return fmt.Errorf("model: task %d requires non-positive energy %g", j, t.Energy)
	case !finite(t.Weight):
		return fmt.Errorf("model: task %d has non-finite weight %g", j, t.Weight)
	case t.Weight < 0:
		return fmt.Errorf("model: task %d has negative weight %g", j, t.Weight)
	case in.Params.Tau > 0 && t.Duration() < 2*in.Params.Tau:
		return fmt.Errorf("model: task %d duration %d slots violates t_e−t_r ≥ 2τ (τ=%d)",
			j, t.Duration(), in.Params.Tau)
	}
	return nil
}

// finite reports whether f is neither NaN nor ±Inf.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// ChargeableTasks returns T_i for every charger: the IDs of tasks the
// charger can cover under some orientation, ascending.
func (in *Instance) ChargeableTasks() [][]int {
	out := make([][]int, len(in.Chargers))
	for i, c := range in.Chargers {
		for _, t := range in.Tasks {
			if in.Params.Chargeable(c, t) {
				out[i] = append(out[i], t.ID)
			}
		}
	}
	return out
}

// Neighbors returns N(s_i) for every charger under the paper's rule: two
// chargers are neighbors iff they share at least one chargeable task.
func (in *Instance) Neighbors() [][]int {
	cover := in.ChargeableTasks()
	taskTo := make([][]int, len(in.Tasks))
	for i, ts := range cover {
		for _, j := range ts {
			taskTo[j] = append(taskTo[j], i)
		}
	}
	seen := make([]map[int]bool, len(in.Chargers))
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	for _, cs := range taskTo {
		for _, a := range cs {
			for _, b := range cs {
				if a != b {
					seen[a][b] = true
				}
			}
		}
	}
	out := make([][]int, len(in.Chargers))
	for i, m := range seen {
		for b := range m {
			out[i] = append(out[i], b)
		}
		sort.Ints(out[i])
	}
	return out
}
