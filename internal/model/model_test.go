package model

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"haste/internal/geom"
)

func testParams() Params {
	return Params{
		Alpha:        10000,
		Beta:         40,
		Radius:       20,
		ChargeAngle:  geom.Deg(60),
		ReceiveAngle: geom.Deg(60),
		SlotSeconds:  60,
		Rho:          1.0 / 12,
		Tau:          1,
	}
}

func TestParamsValidate(t *testing.T) {
	p := testParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Beta = -1 },
		func(p *Params) { p.Radius = 0 },
		func(p *Params) { p.ChargeAngle = 0 },
		func(p *Params) { p.ChargeAngle = 7 },
		func(p *Params) { p.ReceiveAngle = -1 },
		func(p *Params) { p.SlotSeconds = 0 },
		func(p *Params) { p.Rho = -0.1 },
		func(p *Params) { p.Rho = 1.5 },
		func(p *Params) { p.Tau = -1 },
	}
	for i, mut := range bad {
		q := testParams()
		mut(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("bad params #%d accepted", i)
		}
	}
}

func TestPower(t *testing.T) {
	p := testParams()
	if got := p.Power(0); !almostEq(got, 10000.0/1600) {
		t.Errorf("Power(0) = %v", got)
	}
	if got := p.Power(10); !almostEq(got, 10000.0/2500) {
		t.Errorf("Power(10) = %v", got)
	}
	if got := p.Power(20); !almostEq(got, 10000.0/3600) {
		t.Errorf("Power(20) = %v", got)
	}
	if got := p.Power(20.001); got != 0 {
		t.Errorf("Power beyond radius = %v, want 0", got)
	}
	if got := p.Power(-1); got != 0 {
		t.Errorf("Power(-1) = %v, want 0", got)
	}
	// Monotone decreasing within range.
	prev := math.Inf(1)
	for d := 0.0; d <= 20; d += 0.5 {
		cur := p.Power(d)
		if cur > prev {
			t.Fatalf("Power not decreasing at d=%v", d)
		}
		prev = cur
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// A charger at the origin and a device 10 m along +x facing back (-x).
func facingPair(p Params) (Charger, Task) {
	c := Charger{ID: 0, Pos: geom.Point{X: 0, Y: 0}}
	tk := Task{
		ID: 0, Pos: geom.Point{X: 10, Y: 0}, Phi: math.Pi,
		Release: 0, End: 10, Energy: 1000, Weight: 1,
	}
	return c, tk
}

func TestChargeableAndCovers(t *testing.T) {
	p := testParams()
	c, tk := facingPair(p)
	if !p.Chargeable(c, tk) {
		t.Fatal("facing pair should be chargeable")
	}
	if !p.Covers(c, 0, tk) {
		t.Error("charger pointing at device should cover it")
	}
	if p.Covers(c, math.Pi/2, tk) {
		t.Error("charger pointing away should not cover")
	}
	// Device turned away: not chargeable under any orientation.
	tk.Phi = 0
	if p.Chargeable(c, tk) {
		t.Error("device facing away should not be chargeable")
	}
	if p.Covers(c, 0, tk) {
		t.Error("Covers must imply Chargeable")
	}
	// Too far.
	tk.Phi = math.Pi
	tk.Pos = geom.Point{X: 25, Y: 0}
	if p.Chargeable(c, tk) {
		t.Error("device beyond D should not be chargeable")
	}
}

func TestReceivedPower(t *testing.T) {
	p := testParams()
	c, tk := facingPair(p)
	want := p.Power(10)
	if got := p.ReceivedPower(c, 0, tk); !almostEq(got, want) {
		t.Errorf("ReceivedPower = %v, want %v", got, want)
	}
	if got := p.ReceivedPower(c, math.Pi, tk); got != 0 {
		t.Errorf("uncovered ReceivedPower = %v, want 0", got)
	}
	// Boundary of the charging sector: azimuth deviation exactly A_s/2.
	theta := geom.Deg(30)
	if got := p.ReceivedPower(c, theta, tk); !almostEq(got, want) {
		t.Errorf("boundary ReceivedPower = %v, want %v", got, want)
	}
	if got := p.ReceivedPower(c, geom.Deg(31), tk); got != 0 {
		t.Errorf("just outside boundary = %v, want 0", got)
	}
}

func TestAnisotropicGain(t *testing.T) {
	p := testParams()
	p.AnisotropicGain = true
	c, tk := facingPair(p)
	// Device boresight points straight at the charger → gain 1.
	if got := p.ReceiveGain(c, tk); !almostEq(got, 1) {
		t.Errorf("boresight gain = %v, want 1", got)
	}
	if got := p.ReceivedPower(c, 0, tk); !almostEq(got, p.Power(10)) {
		t.Errorf("boresight power = %v", got)
	}
	// Rotate the device 30° off boresight (still within A_o/2 = 30°).
	tk.Phi = math.Pi - geom.Deg(30)
	g := p.ReceiveGain(c, tk)
	if !almostEq(g, math.Cos(geom.Deg(30))) {
		t.Errorf("off-boresight gain = %v, want cos30", g)
	}
	if got := p.ReceivedPower(c, 0, tk); !almostEq(got, p.Power(10)*g) {
		t.Errorf("anisotropic power = %v", got)
	}
	// Gain never exceeds 1 and never negative.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		tk.Phi = rng.Float64() * geom.TwoPi
		g := p.ReceiveGain(c, tk)
		if g < 0 || g > 1 {
			t.Fatalf("gain out of range: %v", g)
		}
	}
}

func TestTaskActivity(t *testing.T) {
	tk := Task{Release: 3, End: 7}
	for k, want := range map[int]bool{2: false, 3: true, 6: true, 7: false} {
		if got := tk.ActiveAt(k); got != want {
			t.Errorf("ActiveAt(%d) = %v, want %v", k, got, want)
		}
	}
	if tk.Duration() != 4 {
		t.Errorf("Duration = %d, want 4", tk.Duration())
	}
}

func smallInstance() *Instance {
	p := testParams()
	return &Instance{
		Chargers: []Charger{
			{ID: 0, Pos: geom.Point{X: 0, Y: 0}},
			{ID: 1, Pos: geom.Point{X: 15, Y: 0}},
			{ID: 2, Pos: geom.Point{X: 100, Y: 100}},
		},
		Tasks: []Task{
			{ID: 0, Pos: geom.Point{X: 7, Y: 0}, Phi: math.Pi, Release: 0, End: 5, Energy: 1e3, Weight: 0.5},
			{ID: 1, Pos: geom.Point{X: 8, Y: 0}, Phi: 0, Release: 2, End: 9, Energy: 2e3, Weight: 0.5},
		},
		Params: p,
	}
}

func TestInstanceBasics(t *testing.T) {
	in := smallInstance()
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := in.Horizon(); got != 9 {
		t.Errorf("Horizon = %d, want 9", got)
	}
	if got := in.TotalWeight(); !almostEq(got, 1) {
		t.Errorf("TotalWeight = %v, want 1", got)
	}
	if in.U().Name() != "linear-bounded" {
		t.Errorf("default utility = %q", in.U().Name())
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Instance)
		want   string
	}{
		{func(in *Instance) { in.Chargers[1].ID = 5 }, "IDs must be dense"},
		{func(in *Instance) { in.Tasks[0].ID = 9 }, "IDs must be dense"},
		{func(in *Instance) { in.Tasks[0].End = in.Tasks[0].Release }, "empty window"},
		{func(in *Instance) { in.Tasks[0].Release = -1 }, "negative slot"},
		{func(in *Instance) { in.Tasks[0].Energy = 0 }, "non-positive energy"},
		{func(in *Instance) { in.Tasks[0].Weight = -1 }, "negative weight"},
		{func(in *Instance) { in.Tasks[0].End = in.Tasks[0].Release + 1 }, "2τ"},
		{func(in *Instance) { in.Params.Alpha = 0 }, "Alpha"},
		// Non-finite coordinates used to be accepted and silently collapse
		// to a single spatial-grid cell; they must be rejected up front.
		{func(in *Instance) { in.Chargers[0].Pos.X = math.NaN() }, "non-finite position"},
		{func(in *Instance) { in.Chargers[2].Pos.Y = math.Inf(1) }, "non-finite position"},
		{func(in *Instance) { in.Tasks[0].Pos.X = math.Inf(-1) }, "non-finite position"},
		{func(in *Instance) { in.Tasks[1].Pos.Y = math.NaN() }, "non-finite position"},
		{func(in *Instance) { in.Tasks[0].Phi = math.NaN() }, "non-finite orientation"},
		{func(in *Instance) { in.Tasks[0].Energy = math.NaN() }, "non-finite energy"},
		{func(in *Instance) { in.Tasks[1].Energy = math.Inf(1) }, "non-finite energy"},
		{func(in *Instance) { in.Tasks[0].Weight = math.NaN() }, "non-finite weight"},
		{func(in *Instance) { in.Tasks[1].Weight = math.Inf(1) }, "non-finite weight"},
	}
	for i, c := range cases {
		in := smallInstance()
		c.mutate(in)
		err := in.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want containing %q", i, err, c.want)
		}
	}
}

func TestChargeableTasksAndNeighbors(t *testing.T) {
	in := smallInstance()
	ct := in.ChargeableTasks()
	// Charger 0 at origin: task 0 faces it (phi=π) at distance 7 → chargeable.
	// Task 1 faces +x (phi=0) so charger 0 (at −x from it) is NOT in its
	// receiving sector.
	if len(ct[0]) != 1 || ct[0][0] != 0 {
		t.Errorf("charger 0 chargeable = %v, want [0]", ct[0])
	}
	// Charger 1 at (15,0): task 0 at (7,0) faces −x, charger 1 is at +x → no.
	// Task 1 at (8,0) faces +x, charger 1 is at +x, distance 7 → yes.
	if len(ct[1]) != 1 || ct[1][0] != 1 {
		t.Errorf("charger 1 chargeable = %v, want [1]", ct[1])
	}
	if len(ct[2]) != 0 {
		t.Errorf("remote charger chargeable = %v, want empty", ct[2])
	}
	// No shared tasks → no neighbors anywhere.
	nb := in.Neighbors()
	for i, ns := range nb {
		if len(ns) != 0 {
			t.Errorf("charger %d neighbors = %v, want none", i, ns)
		}
	}
	// Make task 0 receivable by both charger 0 and 1 (full receiving circle).
	in.Params.ReceiveAngle = geom.TwoPi
	nb = in.Neighbors()
	if len(nb[0]) != 1 || nb[0][0] != 1 || len(nb[1]) != 1 || nb[1][0] != 0 {
		t.Errorf("neighbors with A_o=2π: %v", nb)
	}
	if len(nb[2]) != 0 {
		t.Errorf("remote charger should stay isolated: %v", nb[2])
	}
}
