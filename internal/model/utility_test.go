package model

import (
	"math"
	"math/rand"
	"testing"
)

func utilities() []Utility {
	return []Utility{LinearBounded{}, LogUtility{}, ExpSaturating{}}
}

func TestUtilityLinearBounded(t *testing.T) {
	u := LinearBounded{}
	cases := []struct{ e, req, want float64 }{
		{0, 100, 0},
		{-5, 100, 0},
		{50, 100, 0.5},
		{100, 100, 1},
		{200, 100, 1},
	}
	for _, c := range cases {
		if got := u.Of(c.e, c.req); !almostEq(got, c.want) {
			t.Errorf("U(%v;%v) = %v, want %v", c.e, c.req, got, c.want)
		}
	}
}

func TestUtilityEndpoints(t *testing.T) {
	for _, u := range utilities() {
		if got := u.Of(0, 123); got != 0 {
			t.Errorf("%s: U(0) = %v, want 0", u.Name(), got)
		}
		if got := u.Of(123, 123); !almostEq(got, 1) {
			t.Errorf("%s: U(E_j) = %v, want 1", u.Name(), got)
		}
		if got := u.Of(1e9, 123); !almostEq(got, 1) {
			t.Errorf("%s: U(huge) = %v, want 1", u.Name(), got)
		}
	}
}

// Every utility must be normalized, monotone, concave and in [0, 1] —
// the exact properties Lemma 4.2 relies on.
func TestUtilityProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, u := range utilities() {
		req := 1000.0
		for i := 0; i < 5000; i++ {
			x1 := rng.Float64() * 2 * req
			x2 := x1 + rng.Float64()*req // x2 ≥ x1
			dx := rng.Float64() * req

			v1, v2 := u.Of(x1, req), u.Of(x2, req)
			if v1 < 0 || v1 > 1+1e-12 {
				t.Fatalf("%s: U(%v) = %v outside [0,1]", u.Name(), x1, v1)
			}
			if v2 < v1-1e-12 {
				t.Fatalf("%s: not monotone: U(%v)=%v > U(%v)=%v", u.Name(), x1, v1, x2, v2)
			}
			// Concavity / diminishing marginals (Eq. 6 of the paper):
			// U(x1+Δ)−U(x1) ≥ U(x2+Δ)−U(x2) for x1 ≤ x2.
			m1 := u.Of(x1+dx, req) - v1
			m2 := u.Of(x2+dx, req) - v2
			if m1 < m2-1e-9 {
				t.Fatalf("%s: marginals not diminishing at x1=%v x2=%v Δ=%v (%v < %v)",
					u.Name(), x1, x2, dx, m1, m2)
			}
		}
	}
}

func TestUtilityNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, u := range utilities() {
		if seen[u.Name()] {
			t.Fatalf("duplicate utility name %q", u.Name())
		}
		seen[u.Name()] = true
	}
}

func TestExpSaturatingContinuousAtCap(t *testing.T) {
	u := ExpSaturating{}
	req := 500.0
	below := u.Of(req*(1-1e-9), req)
	if math.Abs(below-1) > 1e-6 {
		t.Errorf("ExpSaturating discontinuous at cap: U(E−ε) = %v", below)
	}
}
