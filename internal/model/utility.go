package model

import "math"

// Utility is a charging-utility function U: it maps the energy a task has
// harvested to a value in [0, 1], given the task's required energy E_j.
// The paper's analysis requires U to be normalized (U(0) = 0), monotone
// non-decreasing, concave, and bounded by 1; every implementation here
// satisfies those properties (checked by property tests).
type Utility interface {
	// Of returns U(energy) for a task requiring `required` joules.
	Of(energy, required float64) float64
	// Name identifies the utility model in reports.
	Name() string
}

// LinearBounded is the paper's default charging utility (Eq. 1):
// U(x) = x/E_j for x ≤ E_j and 1 beyond.
type LinearBounded struct{}

// Of implements Utility.
func (LinearBounded) Of(energy, required float64) float64 {
	if energy <= 0 {
		return 0
	}
	if energy >= required {
		return 1
	}
	return energy / required
}

// Name implements Utility.
func (LinearBounded) Name() string { return "linear-bounded" }

// LogUtility is a strictly concave alternative,
// U(x) = log(1 + x/E_j) / log 2, capped at 1 (it reaches 1 exactly at
// x = E_j). It models steeply diminishing returns near the requirement.
type LogUtility struct{}

// Of implements Utility.
func (LogUtility) Of(energy, required float64) float64 {
	if energy <= 0 {
		return 0
	}
	u := math.Log1p(energy/required) / math.Ln2
	if u > 1 {
		return 1
	}
	return u
}

// Name implements Utility.
func (LogUtility) Name() string { return "log" }

// ExpSaturating is a smooth saturating utility,
// U(x) = (1 − e^(−λ·x/E_j)) / (1 − e^(−λ)) for x ≤ E_j and 1 beyond,
// with sharpness λ = 3. Unlike LinearBounded it is differentiable
// everywhere below the cap.
type ExpSaturating struct{}

const expSharpness = 3.0

// Of implements Utility.
func (ExpSaturating) Of(energy, required float64) float64 {
	if energy <= 0 {
		return 0
	}
	if energy >= required {
		return 1
	}
	norm := 1 - math.Exp(-expSharpness)
	return (1 - math.Exp(-expSharpness*energy/required)) / norm
}

// Name implements Utility.
func (ExpSaturating) Name() string { return "exp-saturating" }
