package model

import (
	"math"
	"testing"

	"haste/internal/geom"
)

func TestSwitchLossFixedModel(t *testing.T) {
	p := testParams() // ρ = 1/12, fixed model
	if got := p.SwitchLoss(0, math.Pi); !almostEq(got, 1.0/12) {
		t.Errorf("full turn loss = %v, want ρ", got)
	}
	if got := p.SwitchLoss(0, 0.01); !almostEq(got, 1.0/12) {
		t.Errorf("tiny turn loss = %v, want ρ (fixed model)", got)
	}
	if got := p.SwitchLoss(math.NaN(), 1); !almostEq(got, 1.0/12) {
		t.Errorf("first orientation loss = %v, want ρ", got)
	}
	if got := p.SwitchLoss(1, math.NaN()); got != 0 {
		t.Errorf("no target orientation loss = %v, want 0", got)
	}
}

func TestSwitchLossProportionalModel(t *testing.T) {
	p := testParams()
	p.ProportionalSwitching = true
	rho := p.Rho
	cases := []struct {
		from, to, want float64
	}{
		{0, math.Pi, rho},         // U-turn: full delay
		{0, math.Pi / 2, rho / 2}, // quarter turn: half delay
		{0, 0, 0},                 // no rotation
		{0.1, 0.1 + math.Pi/4, rho / 4},
		{geom.Deg(350), geom.Deg(10), rho / 9}, // 20° across the wrap
	}
	for _, c := range cases {
		if got := p.SwitchLoss(c.from, c.to); !almostEq(got, c.want) {
			t.Errorf("SwitchLoss(%v→%v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	// First orientation (from Φ) still costs the full ρ.
	if got := p.SwitchLoss(math.NaN(), 2); !almostEq(got, rho) {
		t.Errorf("first orientation = %v, want ρ", got)
	}
	// Never exceeds ρ.
	for a := 0.0; a < geom.TwoPi; a += 0.1 {
		if got := p.SwitchLoss(0, a); got > rho+1e-12 {
			t.Fatalf("loss %v exceeds ρ at Δ=%v", got, a)
		}
	}
}
