package model

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/geom"
)

// Seeded randomized property tests for the directional charging-power model
// of §3: the invariants the rest of the pipeline (cover-list compilation,
// greedy evaluation) silently relies on. Each property is checked over many
// random scenes with boundary margins, so float fuzz at sector edges cannot
// flake the suite.

const propTrials = 2000

// propParams draws physically valid parameters. Angles stay a margin away
// from 0 and 2π so sector-membership margins below are meaningful.
func propParams(rng *rand.Rand) Params {
	p := Params{
		Alpha:        0.5 + 100*rng.Float64(),
		Beta:         5 * rng.Float64(),
		Radius:       1 + 29*rng.Float64(),
		ChargeAngle:  0.1 + (geom.TwoPi-0.2)*rng.Float64(),
		ReceiveAngle: 0.1 + (geom.TwoPi-0.2)*rng.Float64(),
		SlotSeconds:  1 + 120*rng.Float64(),
		Rho:          rng.Float64(),
		Tau:          rng.Intn(3),
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func propPoint(rng *rand.Rand, span float64) geom.Point {
	return geom.Point{X: span * (2*rng.Float64() - 1), Y: span * (2*rng.Float64() - 1)}
}

// TestPowerZeroBeyondRadius: P_r is exactly 0 past D and strictly positive
// (α/(d+β)²) inside.
func TestPowerZeroBeyondRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < propTrials; trial++ {
		p := propParams(rng)
		dOut := p.Radius * (1 + 1e-9 + 10*rng.Float64())
		if got := p.Power(dOut); got != 0 {
			t.Fatalf("trial %d: Power(%g) = %g beyond Radius %g, want 0", trial, dOut, got, p.Radius)
		}
		dIn := p.Radius * rng.Float64()
		want := p.Alpha / ((dIn + p.Beta) * (dIn + p.Beta))
		if got := p.Power(dIn); got != want || got <= 0 {
			t.Fatalf("trial %d: Power(%g) = %g, want %g > 0", trial, dIn, got, want)
		}
	}
}

// TestPowerMonotoneNonIncreasing: within [0, D] the distance factor never
// increases with distance.
func TestPowerMonotoneNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < propTrials; trial++ {
		p := propParams(rng)
		d1 := p.Radius * rng.Float64()
		d2 := p.Radius * rng.Float64()
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		if p.Power(d1) < p.Power(d2) {
			t.Fatalf("trial %d: Power(%g)=%g < Power(%g)=%g", trial, d1, p.Power(d1), d2, p.Power(d2))
		}
	}
}

// placeCovered builds a charger/orientation/task trio that is strictly
// inside every condition of the charging model: distance below D and both
// sector deviations below their half-angles by the given margin (radians
// for the angles, fraction of D for the distance).
func placeCovered(rng *rand.Rand, p Params, margin float64) (Charger, float64, Task) {
	c := Charger{ID: 0, Pos: propPoint(rng, 40)}
	dist := (0.05 + 0.9*rng.Float64()) * p.Radius
	az := geom.TwoPi * rng.Float64() // direction charger → device
	task := Task{
		ID:      0,
		Pos:     c.Pos.Add(geom.UnitVec(az).Scale(dist)),
		Release: 0, End: 1, Energy: 1, Weight: 1,
	}
	// Charger orientation: within A_s/2 − margin of the device direction.
	sendSlack := p.ChargeAngle/2 - margin
	if sendSlack < 0 {
		sendSlack = 0
	}
	theta := geom.NormalizeAngle(az + sendSlack*(2*rng.Float64()-1))
	// Device orientation: the charger sits at azimuth az+π from the device;
	// point φ within A_o/2 − margin of that.
	recvSlack := p.ReceiveAngle/2 - margin
	if recvSlack < 0 {
		recvSlack = 0
	}
	task.Phi = geom.NormalizeAngle(az + math.Pi + recvSlack*(2*rng.Float64()-1))
	return c, theta, task
}

// TestReceivedPowerSectorConditions: power is positive strictly inside both
// sectors, zero when the charger aims elsewhere, zero when the device faces
// away, and zero beyond D — each violated condition alone kills the power.
func TestReceivedPowerSectorConditions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const margin = 0.02 // radians clear of the sector boundary
	for trial := 0; trial < propTrials; trial++ {
		p := propParams(rng)
		c, theta, task := placeCovered(rng, p, margin)
		if got := p.ReceivedPower(c, theta, task); got <= 0 {
			t.Fatalf("trial %d: covered pair got power %g, want > 0", trial, got)
		}

		// Rotate the charger to aim strictly outside A_s/2 (when the
		// charging sector is not the full disk).
		if p.ChargeAngle/2+margin < math.Pi {
			az := geom.Azimuth(c.Pos, task.Pos)
			dev := p.ChargeAngle/2 + margin + (math.Pi-p.ChargeAngle/2-margin)*rng.Float64()
			sign := float64(1)
			if rng.Intn(2) == 0 {
				sign = -1
			}
			away := geom.NormalizeAngle(az + sign*dev)
			if got := p.ReceivedPower(c, away, task); got != 0 {
				t.Fatalf("trial %d: charger aimed %g rad off still delivers %g", trial, dev, got)
			}
		}

		// Turn the device to face strictly away from the charger.
		if p.ReceiveAngle/2+margin < math.Pi {
			back := geom.Azimuth(task.Pos, c.Pos)
			dev := p.ReceiveAngle/2 + margin + (math.Pi-p.ReceiveAngle/2-margin)*rng.Float64()
			sign := float64(1)
			if rng.Intn(2) == 0 {
				sign = -1
			}
			turned := task
			turned.Phi = geom.NormalizeAngle(back + sign*dev)
			if got := p.ReceivedPower(c, theta, turned); got != 0 {
				t.Fatalf("trial %d: device facing %g rad away still receives %g", trial, dev, got)
			}
		}

		// Push the device beyond D along the same azimuth.
		far := task
		az := geom.Azimuth(c.Pos, task.Pos)
		far.Pos = c.Pos.Add(geom.UnitVec(az).Scale(p.Radius * (1.001 + rng.Float64())))
		if got := p.ReceivedPower(c, theta, far); got != 0 {
			t.Fatalf("trial %d: device beyond D still receives %g", trial, got)
		}
	}
}

// rotateAbout rotates point q about center by angle a.
func rotateAbout(q, center geom.Point, a float64) geom.Point {
	v := q.Sub(center)
	sin, cos := math.Sincos(a)
	return center.Add(geom.Vec{X: v.X*cos - v.Y*sin, Y: v.X*sin + v.Y*cos})
}

// TestReceivedPowerRotationInvariant: jointly rotating the whole scene
// (charger position, orientation, device position, device orientation)
// about an arbitrary center leaves the received power unchanged up to
// float round-off — with and without the anisotropic receive gain.
func TestReceivedPowerRotationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const relTol = 1e-9
	for trial := 0; trial < propTrials; trial++ {
		p := propParams(rng)
		p.AnisotropicGain = trial%2 == 1
		c, theta, task := placeCovered(rng, p, 0.02)
		base := p.ReceivedPower(c, theta, task)

		center := propPoint(rng, 50)
		a := geom.TwoPi * rng.Float64()
		rc := Charger{ID: c.ID, Pos: rotateAbout(c.Pos, center, a)}
		rtask := task
		rtask.Pos = rotateAbout(task.Pos, center, a)
		rtask.Phi = geom.NormalizeAngle(task.Phi + a)
		rtheta := geom.NormalizeAngle(theta + a)

		got := p.ReceivedPower(rc, rtheta, rtask)
		if math.Abs(got-base) > relTol*math.Max(math.Abs(base), 1) {
			t.Fatalf("trial %d (aniso=%v): power %g before rotation, %g after (Δ=%g)",
				trial, p.AnisotropicGain, base, got, got-base)
		}
	}
}

// TestReceivedPowerTranslationInvariant: jointly translating the scene
// leaves the received power unchanged up to float round-off.
func TestReceivedPowerTranslationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const relTol = 1e-9
	for trial := 0; trial < propTrials; trial++ {
		p := propParams(rng)
		p.AnisotropicGain = trial%2 == 1
		c, theta, task := placeCovered(rng, p, 0.02)
		base := p.ReceivedPower(c, theta, task)

		shift := propPoint(rng, 1000).Sub(geom.Point{})
		tc := Charger{ID: c.ID, Pos: c.Pos.Add(shift)}
		ttask := task
		ttask.Pos = task.Pos.Add(shift)

		got := p.ReceivedPower(tc, theta, ttask)
		if math.Abs(got-base) > relTol*math.Max(math.Abs(base), 1) {
			t.Fatalf("trial %d: power %g before translation, %g after", trial, base, got)
		}
	}
}

// TestReceiveGainBounds: the anisotropic gain is always in [0, 1], reaches
// 1 exactly on the device's boresight, and never increases the received
// power relative to the isotropic model.
func TestReceiveGainBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < propTrials; trial++ {
		p := propParams(rng)
		c, theta, task := placeCovered(rng, p, 0.02)
		g := p.ReceiveGain(c, task)
		if g < 0 || g > 1 {
			t.Fatalf("trial %d: gain %g outside [0,1]", trial, g)
		}
		boresight := task
		boresight.Phi = geom.Azimuth(task.Pos, c.Pos)
		if gb := p.ReceiveGain(c, boresight); math.Abs(gb-1) > 1e-12 {
			t.Fatalf("trial %d: boresight gain %g, want 1", trial, gb)
		}
		iso := p.ReceivedPower(c, theta, task)
		p.AnisotropicGain = true
		if aniso := p.ReceivedPower(c, theta, task); aniso > iso+1e-15 {
			t.Fatalf("trial %d: anisotropic power %g exceeds isotropic %g", trial, aniso, iso)
		}
	}
}

// TestChargeableMatchesCoverage: Chargeable must be exactly "some
// orientation covers the pair": aiming straight at the device realizes it,
// and ReceivedPower is zero for every sampled orientation otherwise.
func TestChargeableMatchesCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < propTrials; trial++ {
		p := propParams(rng)
		c := Charger{ID: 0, Pos: propPoint(rng, 20)}
		task := Task{
			ID: 0, Pos: propPoint(rng, 20), Phi: geom.TwoPi * rng.Float64(),
			Release: 0, End: 1, Energy: 1, Weight: 1,
		}
		direct := geom.Azimuth(c.Pos, task.Pos)
		if p.Chargeable(c, task) {
			if got := p.ReceivedPower(c, direct, task); got <= 0 {
				t.Fatalf("trial %d: chargeable pair gets %g when aimed directly", trial, got)
			}
		} else {
			for s := 0; s < 16; s++ {
				theta := geom.TwoPi * float64(s) / 16
				if got := p.ReceivedPower(c, theta, task); got != 0 {
					t.Fatalf("trial %d: unchargeable pair receives %g at θ=%g", trial, got, theta)
				}
			}
			if got := p.ReceivedPower(c, direct, task); got != 0 {
				t.Fatalf("trial %d: unchargeable pair receives %g aimed directly", trial, got)
			}
		}
	}
}
