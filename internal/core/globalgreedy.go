package core

import "container/heap"

// GlobalGreedy is the classic greedy algorithm for submodular maximization
// under a matroid constraint applied to HASTE-R: repeatedly commit the
// (partition, policy) element with the largest marginal gain over the
// whole ground set until every partition Θ_{i,k} is filled. Like the C = 1
// TabularGreedy it guarantees a ½-approximation [Nemhauser et al. 1978],
// but it visits partitions in data-driven rather than fixed order.
//
// With lazy = true the marginals are evaluated lazily: because marginals
// only shrink as the solution grows (submodularity of f, Lemma 4.2), a
// partition's previously computed best marginal is a valid upper bound, so
// a priority queue re-evaluates a partition only when its stale bound
// reaches the top. With lazy = false every remaining partition is
// re-evaluated each round (the textbook quadratic implementation). Both
// use the same deterministic tie order (gain, then slot, then charger) and
// produce identical schedules; BenchmarkAblationLazy compares their cost.
func GlobalGreedy(p *Problem, lazy bool) Result {
	n, K := len(p.In.Chargers), p.K
	sched := NewSchedule(n, K)
	if n == 0 || K == 0 {
		return Result{Schedule: sched}
	}
	es := p.AcquireState()
	defer p.ReleaseState(es)
	if lazy {
		globalGreedyLazy(p, es, &sched)
	} else {
		globalGreedyEager(p, es, &sched)
	}
	return Result{Schedule: sched, RUtility: es.Total()}
}

func globalGreedyEager(p *Problem, es *EnergyState, sched *Schedule) {
	n, K := len(p.In.Chargers), p.K
	done := make([]bool, n*K)
	for committed := 0; committed < n*K; committed++ {
		bestI, bestK, bestPol, bestGain := -1, -1, 0, -1.0
		for k := 0; k < K; k++ {
			for i := 0; i < n; i++ {
				if done[i*K+k] {
					continue
				}
				pol, gain := bestPolicy(p, es, i, k)
				if gain > bestGain {
					bestI, bestK, bestPol, bestGain = i, k, pol, gain
				}
			}
		}
		done[bestI*K+bestK] = true
		sched.Policy[bestI][bestK] = bestPol
		es.Apply(bestI, bestK, bestPol)
	}
}

func globalGreedyLazy(p *Problem, es *EnergyState, sched *Schedule) {
	pq := make(partHeap, 0, len(p.In.Chargers)*p.K)
	for i := range p.In.Chargers {
		for k := 0; k < p.K; k++ {
			pol, gain := bestPolicy(p, es, i, k)
			pq = append(pq, &partItem{i: i, k: k, bound: gain, pol: pol, version: 0})
		}
	}
	heap.Init(&pq)
	version := 0 // bumped after every commit; items with older stamps are stale
	for pq.Len() > 0 {
		top := pq[0]
		if top.version != version {
			pol, gain := bestPolicy(p, es, top.i, top.k)
			top.pol, top.bound, top.version = pol, gain, version
			heap.Fix(&pq, 0)
			continue
		}
		heap.Pop(&pq)
		sched.Policy[top.i][top.k] = top.pol
		es.Apply(top.i, top.k, top.pol)
		version++
	}
}

// bestPolicy returns the argmax policy and marginal for partition (i,k)
// under the current state, breaking ties toward the lowest index.
func bestPolicy(p *Problem, es *EnergyState, i, k int) (int, float64) {
	best, bestGain := 0, -1.0
	for pol := range p.Gamma[i] {
		if g := es.Marginal(i, k, pol); g > bestGain {
			best, bestGain = pol, g
		}
	}
	return best, bestGain
}

// partItem is a partition Θ_{i,k} whose bound on the best marginal gain
// was computed at the given commit version (stale when versions differ).
type partItem struct {
	i, k    int
	bound   float64
	pol     int
	version int
}

// partHeap orders partitions by (bound desc, slot asc, charger asc); the
// secondary keys make lazy and eager greedy commit identical elements on
// exact marginal ties.
type partHeap []*partItem

func (h partHeap) Len() int      { return len(h) }
func (h partHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h partHeap) Less(a, b int) bool {
	if h[a].bound != h[b].bound {
		return h[a].bound > h[b].bound
	}
	if h[a].k != h[b].k {
		return h[a].k < h[b].k
	}
	return h[a].i < h[b].i
}
func (h *partHeap) Push(x interface{}) { *h = append(*h, x.(*partItem)) }
func (h *partHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
