package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"haste/internal/geom"
	"haste/internal/model"
)

// randomTask builds a valid task placed near a random charger (so it
// usually lands inside some charger's radius and actually perturbs the
// compiled structures), with id left for AddTask to assign.
func randomTask(in *model.Instance, rng *rand.Rand) model.Task {
	c := in.Chargers[rng.Intn(len(in.Chargers))]
	r := in.Params.Radius
	rel := rng.Intn(8)
	dur := 2*in.Params.Tau + 2 + rng.Intn(8)
	return model.Task{
		Pos: geom.Point{
			X: c.Pos.X + (rng.Float64()*2-1)*1.5*r,
			Y: c.Pos.Y + (rng.Float64()*2-1)*1.5*r,
		},
		Phi:     rng.Float64() * 6.28,
		Release: rel,
		End:     rel + dur,
		Energy:  1e3 + rng.Float64()*5e3,
		Weight:  rng.Float64() * 3,
	}
}

// mirrorAdd applies AddTask's instance-level effect to a plain copy.
func mirrorAdd(in *model.Instance, t model.Task) {
	t.ID = len(in.Tasks)
	in.Tasks = append(in.Tasks, t)
}

// mirrorRemove applies RemoveTask's swap-remove to a plain copy.
func mirrorRemove(in *model.Instance, id int) {
	last := len(in.Tasks) - 1
	in.Tasks[id] = in.Tasks[last]
	in.Tasks[id].ID = id
	in.Tasks = in.Tasks[:last]
}

func copyInstance(in *model.Instance) *model.Instance {
	return &model.Instance{
		Chargers: in.Chargers,
		Tasks:    append([]model.Task(nil), in.Tasks...),
		Params:   in.Params,
		Utility:  in.Utility,
	}
}

// requireProblemsEqual asserts that a delta-patched problem is
// bit-identical to a from-scratch compile of the same instance, across
// every compiled structure the schedulers read.
func requireProblemsEqual(t *testing.T, got, want *Problem) {
	t.Helper()
	if got.K != want.K {
		t.Fatalf("K = %d, want %d", got.K, want.K)
	}
	if !reflect.DeepEqual(got.In.Tasks, want.In.Tasks) {
		t.Fatalf("task tables differ")
	}
	for i := range want.In.Chargers {
		gr, wr := got.ChargerRow(i), want.ChargerRow(i)
		if len(gr) == 0 && len(wr) == 0 {
			continue
		}
		if !reflect.DeepEqual(gr, wr) {
			t.Fatalf("charger %d row differs:\n got %v\nwant %v", i, gr, wr)
		}
		if !reflect.DeepEqual(got.Gamma[i], want.Gamma[i]) {
			t.Fatalf("charger %d Gamma differs", i)
		}
	}
	gk, wk := &got.kern, &want.kern
	if !reflect.DeepEqual(gk.polOff, wk.polOff) {
		t.Fatalf("polOff differs")
	}
	for fp := range wk.entries {
		if len(gk.entries[fp]) == 0 && len(wk.entries[fp]) == 0 {
			continue
		}
		if !reflect.DeepEqual(gk.entries[fp], wk.entries[fp]) {
			t.Fatalf("flat policy %d entries differ:\n got %v\nwant %v", fp, gk.entries[fp], wk.entries[fp])
		}
	}
	if !reflect.DeepEqual(gk.winLo, wk.winLo) || !reflect.DeepEqual(gk.winHi, wk.winHi) {
		t.Fatalf("policy windows differ")
	}
	for j := range wk.taskPols {
		if len(gk.taskPols[j]) == 0 && len(wk.taskPols[j]) == 0 {
			continue
		}
		if !reflect.DeepEqual(gk.taskPols[j], wk.taskPols[j]) {
			t.Fatalf("taskPols[%d] differs", j)
		}
	}
	for _, cmp := range []struct {
		name string
		g, w any
	}{
		{"weight", gk.weight, wk.weight}, {"req", gk.req, wk.req},
		{"release", gk.release, wk.release}, {"end", gk.end, wk.end},
	} {
		if !reflect.DeepEqual(cmp.g, cmp.w) {
			t.Fatalf("SoA column %s differs", cmp.name)
		}
	}
}

// TestIncrementalEquivalenceWalk drives a random add/remove walk through
// the delta operations, and after every step checks the patched problem is
// bit-identical — rows, Gamma, kernel, K — to NewProblem of the mutated
// instance, and periodically that both schedule identically.
func TestIncrementalEquivalenceWalk(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		p := shardProblem(t, seed, 3, 8, 20)
		mirror := copyInstance(p.In)
		rng := rand.New(rand.NewSource(seed * 7))
		for step := 0; step < 40; step++ {
			if rng.Intn(2) == 0 || len(mirror.Tasks) < 4 {
				task := randomTask(mirror, rng)
				if _, err := p.AddTask(task); err != nil {
					t.Fatalf("seed %d step %d: AddTask: %v", seed, step, err)
				}
				mirrorAdd(mirror, task)
			} else {
				id := rng.Intn(len(mirror.Tasks))
				if _, err := p.RemoveTask(id); err != nil {
					t.Fatalf("seed %d step %d: RemoveTask: %v", seed, step, err)
				}
				mirrorRemove(mirror, id)
			}
			fresh, err := NewProblem(copyInstance(mirror))
			if err != nil {
				t.Fatalf("seed %d step %d: NewProblem: %v", seed, step, err)
			}
			requireProblemsEqual(t, p, fresh)
			if step%10 == 9 {
				opt := Options{Colors: 2, Samples: 4, PreferStay: true, Workers: 1,
					Rng: rand.New(rand.NewSource(99)), Shard: ShardOn}
				fopt := opt
				fopt.Rng = rand.New(rand.NewSource(99))
				got := TabularGreedy(p, opt)
				want := TabularGreedy(fresh, fopt)
				if got.RUtility != want.RUtility {
					t.Fatalf("seed %d step %d: RUtility %v != %v", seed, step, got.RUtility, want.RUtility)
				}
				if !reflect.DeepEqual(got.Schedule.Policy, want.Schedule.Policy) {
					t.Fatalf("seed %d step %d: schedules diverge", seed, step)
				}
			}
		}
	}
}

// TestAddTaskRejectsInvalid pins that the delta op validates like
// NewProblem: non-finite and malformed tasks are refused and the problem
// is left untouched.
func TestAddTaskRejectsInvalid(t *testing.T) {
	p := shardProblem(t, 5, 2, 4, 10)
	fresh, _ := NewProblem(copyInstance(p.In))
	bad := []model.Task{
		{Pos: geom.Point{X: math.NaN(), Y: 0}, Release: 0, End: 6, Energy: 1e3, Weight: 1},
		{Pos: geom.Point{X: 1, Y: 2}, Release: 0, End: 6, Energy: math.Inf(1), Weight: 1},
		{Pos: geom.Point{X: 1, Y: 2}, Release: 0, End: 6, Energy: 1e3, Weight: -1},
		{Pos: geom.Point{X: 1, Y: 2}, Release: 4, End: 4, Energy: 1e3, Weight: 1},
	}
	for idx, task := range bad {
		if _, err := p.AddTask(task); err == nil {
			t.Fatalf("bad task %d: AddTask accepted %+v", idx, task)
		}
	}
	requireProblemsEqual(t, p, fresh)
}

// TestCloneCompiledIsolation pins copy-on-write: mutating a clone leaves
// the original problem bit-identical to an untouched compile, and the
// clone matches a from-scratch compile of the mutated instance.
func TestCloneCompiledIsolation(t *testing.T) {
	p := shardProblem(t, 11, 3, 6, 16)
	pristine, _ := NewProblem(copyInstance(p.In))
	clone := p.CloneCompiled()
	requireProblemsEqual(t, clone, pristine)

	mirror := copyInstance(p.In)
	rng := rand.New(rand.NewSource(4))
	task := randomTask(mirror, rng)
	if _, err := clone.AddTask(task); err != nil {
		t.Fatal(err)
	}
	mirrorAdd(mirror, task)
	if _, err := clone.RemoveTask(2); err != nil {
		t.Fatal(err)
	}
	mirrorRemove(mirror, 2)

	requireProblemsEqual(t, p, pristine) // original untouched
	mutated, err := NewProblem(mirror)
	if err != nil {
		t.Fatal(err)
	}
	requireProblemsEqual(t, clone, mutated)
}

// TestWarmStartBitIdentical pins the warm-start contract: a solve seeded
// with the previous run's WarmStart (dirty set from the delta ops) is
// bit-identical to a cold solve of the mutated problem, and actually
// reuses untouched components.
func TestWarmStartBitIdentical(t *testing.T) {
	p := shardProblem(t, 21, 4, 10, 28).CloneCompiled()
	mirror := copyInstance(p.In)
	opt := func() Options {
		return Options{Colors: 3, Samples: 6, PreferStay: true, Workers: 1,
			Rng: rand.New(rand.NewSource(7)), Shard: ShardOn, CollectWarm: true}
	}
	res := TabularGreedy(p, opt())
	if res.Warm == nil {
		t.Fatal("CollectWarm returned no WarmStart")
	}
	rng := rand.New(rand.NewSource(13))
	reusedTotal := 0
	for step := 0; step < 12; step++ {
		var dirty []int
		var err error
		if rng.Intn(2) == 0 {
			task := randomTask(mirror, rng)
			dirty, err = p.AddTask(task)
			mirrorAdd(mirror, task)
		} else {
			id := rng.Intn(len(mirror.Tasks))
			dirty, err = p.RemoveTask(id)
			mirrorRemove(mirror, id)
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		res.Warm.MarkDirty(dirty)

		warmOpt := opt()
		warmOpt.Incumbent = res.Warm
		got := TabularGreedy(p, warmOpt)

		fresh, err := NewProblem(copyInstance(mirror))
		if err != nil {
			t.Fatal(err)
		}
		want := TabularGreedy(fresh, opt())
		if got.RUtility != want.RUtility {
			t.Fatalf("step %d: RUtility %v != %v", step, got.RUtility, want.RUtility)
		}
		if !reflect.DeepEqual(got.Schedule.Policy, want.Schedule.Policy) {
			t.Fatalf("step %d: warm schedule diverges from cold", step)
		}
		reusedTotal += got.WarmReused
		if got.Warm == nil {
			t.Fatalf("step %d: warm run returned no WarmStart", step)
		}
		res = got
	}
	if reusedTotal == 0 {
		t.Fatal("no component was ever reused — warm start is vacuous")
	}
}

// TestAcquireStateDropsStale pins that pooled EnergyStates sized for a
// pre-mutation problem are discarded, not resurrected.
func TestAcquireStateDropsStale(t *testing.T) {
	p := shardProblem(t, 9, 2, 4, 12).CloneCompiled()
	es := p.AcquireState()
	es.Apply(0, 0, 0)
	p.ReleaseState(es)

	rng := rand.New(rand.NewSource(2))
	if _, err := p.AddTask(randomTask(p.In, rng)); err != nil {
		t.Fatal(err)
	}
	es2 := p.AcquireState()
	defer p.ReleaseState(es2)
	if len(es2.energy) != len(p.In.Tasks) {
		t.Fatalf("stale pooled state resurrected: energy len %d, tasks %d",
			len(es2.energy), len(p.In.Tasks))
	}
	if p.StatesInUse() != 1 {
		t.Fatalf("StatesInUse = %d, want 1", p.StatesInUse())
	}
}
