package core

import (
	"fmt"
	"sort"
	"sync"

	"haste/internal/dominant"
	"haste/internal/geom"
	"haste/internal/model"
)

// This file is the incremental-scheduling layer: delta operations that
// patch a compiled Problem in place when one task arrives or leaves,
// instead of rebuilding everything through NewProblem. Production traffic
// for a charger network is task churn — tasks arrive, complete and expire
// every slot — and a full recompile per mutation repeats work whose
// inputs did not change: the charging model is strictly local, so a task
// mutation can only touch the chargers within radius D of it.
//
// Equivalence contract (enforced by internal/difftest's mutation-walk
// sweep): after any sequence of AddTask/RemoveTask calls, the Problem is
// bit-identical — instance, rows, Gamma, compiled kernel, K — to
// NewProblem of the mutated instance. The argument, piece by piece:
//
//   - Instance. AddTask appends with the next dense ID; RemoveTask
//     swap-removes (the last task moves into the freed ID), so IDs stay
//     dense without renumbering the whole tail. Task field values are
//     never altered.
//   - Rows. The affected chargers — those chargeable to the added,
//     removed or moved task, found through a grid index over the static
//     charger positions — get their sparse rows patched: an append (the
//     new task has the maximum ID, so ascending order is preserved), a
//     deletion, or a renumber-and-reposition of the moved task's entry.
//     Entry De values are never recomputed for surviving pairs, and the
//     De of a new pair is the same pure float expression chargeableRows
//     evaluates on the same inputs. Unaffected chargers' rows are, by
//     locality, exactly what a recompile would produce.
//   - Gamma. Affected chargers re-run dominant.ExtractSubset on their
//     patched row's candidate IDs — the same deterministic pure function
//     of (params, charger, task values) NewProblem calls. Unaffected
//     chargers' candidate IDs and the task values behind them are
//     untouched (a charger whose row contains a mutated ID is affected by
//     construction), so their cached policies equal a re-extraction.
//   - Kernel. Affected chargers' policy cover lists are recompiled
//     through appendPolicyEntries — the same code compileKernel runs —
//     while unaffected chargers keep their compiled list slices; the
//     cheap index-only structures (polOff, taskPols, the entries/window
//     top-levels) are rebuilt exactly as compileKernel orders them.
//
// Mutations are copy-on-write against shared backing: a Problem obtained
// from CloneCompiled shares immutable compiled innards (row slices, cover
// lists, Gamma policies) with its origin, so patches always allocate
// fresh slices for what they change and never write through a shared one.
//
// Concurrency: delta operations are NOT safe to run concurrently with
// anything else on the same Problem — schedulers, EnergyStates, other
// mutations. Callers serialize (the session layer in internal/serve does;
// its tests run the race detector over the full lifecycle). The statePool
// may hold EnergyStates sized for the pre-mutation problem; AcquireState
// discards stale ones instead of resurrecting them.

// subCache carries the pre-mutation decomposition so the next
// subProblems rebuild can adopt the component sub-Problems no mutation
// touched (see Problem.prevSubs).
type subCache struct {
	comps []Component
	subs  []*Problem
	dirty map[int]struct{} // global charger IDs a mutation touched
}

// CloneCompiled returns an independently mutable copy of the Problem
// without recompiling anything: compiled immutable innards (row slices,
// cover lists, dominant policies, the charger grid) are shared, while
// everything a delta operation writes — the instance's task table, the
// SoA columns, the per-charger and per-policy top-level slices — is
// copied. The clone starts with a fresh state pool and fresh shard
// caches. This is what lets the session layer mutate a private copy of a
// cached Problem while concurrent requests keep solving the original.
func (p *Problem) CloneCompiled() *Problem {
	in := &model.Instance{
		Chargers: p.In.Chargers, // static; never mutated by delta ops
		Tasks:    append([]model.Task(nil), p.In.Tasks...),
		Params:   p.In.Params,
		Utility:  p.In.Utility,
	}
	c := &Problem{
		In:          in,
		Gamma:       append([][]dominant.Policy(nil), p.Gamma...),
		K:           p.K,
		rows:        append([][]CoverEntry(nil), p.rows...),
		compsOnce:   new(sync.Once),
		subsOnce:    new(sync.Once),
		chargerGrid: p.chargerGrid,
	}
	kn, src := &c.kern, &p.kern
	kn.linear, kn.linearOK = src.linear, src.linearOK
	kn.weight = append([]float64(nil), src.weight...)
	kn.req = append([]float64(nil), src.req...)
	kn.release = append([]int32(nil), src.release...)
	kn.end = append([]int32(nil), src.end...)
	kn.polOff = append([]int32(nil), src.polOff...)
	kn.entries = append([][]CoverEntry(nil), src.entries...)
	kn.winLo = append([]int32(nil), src.winLo...)
	kn.winHi = append([]int32(nil), src.winHi...)
	kn.taskPols = append([][]int32(nil), src.taskPols...)
	return c
}

// AddTask appends a task to the compiled problem, patching rows, Gamma
// and the kernel of exactly the chargers that can reach it. The task's ID
// is assigned (the next dense ID); the rest of t is validated like
// NewProblem would. It returns the IDs of the patched ("dirty") chargers
// — the set a warm-start incumbent must be told about (WarmStart.MarkDirty).
func (p *Problem) AddTask(t model.Task) ([]int, error) {
	in := p.In
	t.ID = len(in.Tasks)
	if err := in.CheckTask(t); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	affected := p.affectedChargers(t)

	in.Tasks = append(in.Tasks, t)
	kn := &p.kern
	kn.weight = append(kn.weight, t.Weight)
	kn.req = append(kn.req, t.Energy)
	kn.release = append(kn.release, int32(t.Release))
	kn.end = append(kn.end, int32(t.End))
	if t.End > p.K {
		p.K = t.End
	}

	// The new task has the maximum ID: appending keeps rows ascending.
	j32 := int32(t.ID)
	for _, i := range affected {
		c := in.Chargers[i]
		pw := in.Params.PowerBetween(c.Pos, t.Pos)
		if in.Params.AnisotropicGain {
			pw *= in.Params.ReceiveGain(c, t)
		}
		row := p.rows[i]
		nrow := make([]CoverEntry, len(row)+1)
		copy(nrow, row)
		nrow[len(row)] = CoverEntry{Task: j32, De: pw * in.Params.SlotSeconds}
		p.rows[i] = nrow
	}

	p.patchChargers(affected)
	p.invalidate(affected)
	return affected, nil
}

// RemoveTask deletes task id from the compiled problem by swap-remove:
// the last task takes over the freed ID, so IDs stay dense and the patch
// touches only the chargers reaching the removed or the moved task. It
// returns the patched charger IDs.
func (p *Problem) RemoveTask(id int) ([]int, error) {
	in := p.In
	last := len(in.Tasks) - 1
	if id < 0 || id > last {
		return nil, fmt.Errorf("core: RemoveTask(%d): task count is %d", id, last+1)
	}
	removed := in.Tasks[id]
	moved := in.Tasks[last]
	affected := p.affectedChargers(removed)
	movedAff := affected[:0:0]
	if id != last {
		movedAff = p.affectedChargers(moved)
		affected = unionSorted(affected, movedAff)
	}

	in.Tasks[id] = moved
	in.Tasks[id].ID = id
	in.Tasks = in.Tasks[:last]
	kn := &p.kern
	kn.weight[id] = kn.weight[last]
	kn.weight = kn.weight[:last]
	kn.req[id] = kn.req[last]
	kn.req = kn.req[:last]
	kn.release[id] = kn.release[last]
	kn.release = kn.release[:last]
	kn.end[id] = kn.end[last]
	kn.end = kn.end[:last]
	p.K = in.Horizon()

	// Patch the affected rows copy-on-write. A charger chargeable to the
	// removed task loses its entry; a charger chargeable to the moved task
	// has that entry — necessarily the row's last, since the moved task
	// held the maximum ID — renumbered to id and repositioned to keep the
	// row ascending. De values travel untouched.
	id32, last32 := int32(id), int32(last)
	for _, i := range affected {
		row := p.rows[i]
		nrow := make([]CoverEntry, 0, len(row))
		var movedDe float64
		hasMoved := false
		for _, e := range row {
			switch e.Task {
			case id32:
				// dropped (the removed task's entry)
			case last32:
				movedDe, hasMoved = e.De, true
			default:
				nrow = append(nrow, e)
			}
		}
		if hasMoved && id != last {
			at := searchEntry(nrow, id32)
			nrow = append(nrow, CoverEntry{})
			copy(nrow[at+1:], nrow[at:])
			nrow[at] = CoverEntry{Task: id32, De: movedDe}
		}
		p.rows[i] = nrow
	}

	p.patchChargers(affected)
	p.invalidate(affected)
	return affected, nil
}

// affectedChargers returns, ascending, the chargers chargeable to t — the
// only chargers whose rows, policies or compiled lists a mutation of t
// can change. Candidates come from a grid over the static charger
// positions, built once per Problem (and shared by clones).
func (p *Problem) affectedChargers(t model.Task) []int {
	if p.chargerGrid == nil {
		pts := make([]geom.Point, len(p.In.Chargers))
		for i := range p.In.Chargers {
			pts[i] = p.In.Chargers[i].Pos
		}
		p.chargerGrid = geom.NewGridIndex(pts, p.In.Params.Radius)
	}
	var out []int
	for _, i := range p.chargerGrid.Candidates(t.Pos, nil) {
		if p.In.Params.Chargeable(p.In.Chargers[i], t) {
			out = append(out, int(i))
		}
	}
	return out
}

// unionSorted merges two ascending int slices without duplicates.
func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	w := 0
	for r, v := range out {
		if r == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// patchChargers re-extracts the dominant policies of the affected
// chargers from their patched rows and splices the kernel: affected
// chargers' cover lists are recompiled through appendPolicyEntries (the
// compileKernel code path), every other charger keeps its compiled list
// slices, and the index-only top-levels (polOff, entries, windows,
// taskPols) are rebuilt in compileKernel's exact order.
func (p *Problem) patchChargers(affected []int) {
	in := p.In
	isAff := make(map[int]bool, len(affected))
	for _, i := range affected {
		isAff[i] = true
		ids := make([]int, 0, len(p.rows[i]))
		for _, e := range p.rows[i] {
			ids = append(ids, int(e.Task))
		}
		p.Gamma[i] = dominant.ExtractSubset(in, i, ids)
	}

	kn := &p.kern
	oldOff, oldEntries := kn.polOff, kn.entries
	oldLo, oldHi := kn.winLo, kn.winHi
	nPols := 0
	newOff := make([]int32, len(p.Gamma))
	for i, g := range p.Gamma {
		newOff[i] = int32(nPols)
		nPols += len(g)
	}
	newEntries := make([][]CoverEntry, nPols)
	newLo := make([]int32, nPols)
	newHi := make([]int32, nPols)
	for i, g := range p.Gamma {
		nf := int(newOff[i])
		if !isAff[i] {
			of := int(oldOff[i])
			copy(newEntries[nf:nf+len(g)], oldEntries[of:of+len(g)])
			copy(newLo[nf:nf+len(g)], oldLo[of:of+len(g)])
			copy(newHi[nf:nf+len(g)], oldHi[of:of+len(g)])
			continue
		}
		var arena []CoverEntry
		for pol := range g {
			var start int
			arena, start, newLo[nf+pol], newHi[nf+pol] = appendPolicyEntries(p, kn, i, pol, arena)
			newEntries[nf+pol] = arena[start:len(arena):len(arena)]
		}
	}
	kn.polOff, kn.entries = newOff, newEntries
	kn.winLo, kn.winHi = newLo, newHi
	kn.buildTaskPols(len(in.Tasks))
}

// invalidate resets the decomposition caches after a mutation, stashing
// the outgoing component sub-Problems (plus the accumulated dirty charger
// set) so the next subProblems rebuild can adopt the untouched ones.
func (p *Problem) invalidate(dirty []int) {
	if subs := p.subs.Load(); subs != nil {
		sc := &subCache{comps: p.comps, subs: *subs, dirty: make(map[int]struct{}, len(dirty))}
		p.prevSubs = sc
	}
	if p.prevSubs != nil {
		for _, i := range dirty {
			p.prevSubs.dirty[i] = struct{}{}
		}
	}
	p.comps, p.schedulable = nil, 0
	p.compsOnce, p.subsOnce = new(sync.Once), new(sync.Once)
	p.subs.Store(nil)
}

// adoptableSub returns the stashed pre-mutation sub-Problem for a
// component of the current decomposition, when one exists with the exact
// same charger and task membership and no dirty member — in which case
// its sub-instance is bit-identical to what sliceInstance would produce
// now (a mutation that changed any of its tasks would have dirtied one of
// its chargers), so the compiled sub-Problem can be reused as-is.
func (sc *subCache) adoptableSub(comp Component) *Problem {
	if sc == nil || len(comp.Chargers) == 0 {
		return nil
	}
	for _, i := range comp.Chargers {
		if _, bad := sc.dirty[i]; bad {
			return nil
		}
	}
	for oldCi, old := range sc.comps {
		if len(old.Chargers) == 0 || old.Chargers[0] != comp.Chargers[0] {
			continue
		}
		if intsEqual(old.Chargers, comp.Chargers) && intsEqual(old.Tasks, comp.Tasks) {
			return sc.subs[oldCi]
		}
		return nil
	}
	return nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
