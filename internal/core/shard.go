package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"haste/internal/model"
	"haste/internal/obs"
)

// This file is the shard-and-stitch decomposition: the charging model is
// strictly local (P_r = 0 beyond the radius D), so the charger–task
// coverage graph of a large field decomposes into connected components
// that are exactly independent subproblems under the partition matroid —
// no policy of a charger in one component can move a single joule into
// another component. The decomposer finds the components by walking the
// dominant policies' cover lists, compiles each schedulable component as
// an independent sub-Problem, runs the monolithic greedy on every
// component (concurrently, bounded by Options.Workers), and stitches the
// per-component schedules back together with global indices restored.
//
// Equivalence contract (enforced by internal/difftest's sharded sweep):
//
//   - The stitched utility is EXACTLY equal to the monolithic RUtility,
//     and every cell the sharded run assigns is identical to the
//     monolithic run's cell.
//   - Cells the sharded run leaves at -1 are exactly the padding slots
//     past a component's own horizon (and the rows of chargers whose
//     component has no tasks). There the monolithic run assigns policies
//     too, but every such assignment has marginal gain exactly +0.0
//     (every task the charger can reach has ended), so it changes
//     neither energies nor the objective. The switching-delay-aware
//     simulation yields the exact same utility as well — a padding-cell
//     policy delivers zero energy whether or not a switch precedes it —
//     and since sim.Execute clips assignments past each charger's
//     AssignedHorizons entry, the simulated switch count is identical
//     too. (Before that clip, the monolithic final color sampling at
//     Colors > 1 could hop between zero-gain policies in the padding
//     region and report a higher count than the sharded run, whose -1
//     padding never switches.)
//   - On a single-component instance covering all chargers and tasks the
//     stitched result is bit-identical to the monolithic one, schedule
//     cells and utility alike.
//
// The key mechanism behind cell-for-cell identity at Colors > 1 is the
// colorPlan: the sharded runner draws the full Monte-Carlo color table
// and the final color samples from Options.Rng in exactly the monolithic
// consumption order, then hands every component the slices belonging to
// its chargers. Each component then performs, on its own tasks, exactly
// the subsequence of greedy selections and state updates the monolithic
// run performs on them — selections for chargers of other components
// cannot touch this component's task energies, and the monolithic
// iteration order (color-major, then slot, then charger) restricts to
// the component's own iteration order.

// ShardMode selects whether TabularGreedy decomposes the instance into
// connected components of the charger–task coverage graph and schedules
// them independently.
type ShardMode int

const (
	// ShardAuto (the zero value) shards when the instance decomposes
	// into at least Options.ShardThreshold schedulable components.
	ShardAuto ShardMode = iota
	// ShardOff always runs the monolithic scheduler.
	ShardOff
	// ShardOn always takes the shard-and-stitch path, even on a single
	// component (where it is bit-identical to the monolithic run).
	ShardOn
)

// DefaultShardThreshold is the component count at which ShardAuto turns
// sharding on. Below it the decomposition buys little (the components'
// compiled kernels largely duplicate the monolithic one) and the
// monolithic path avoids the sub-Problem compilation entirely.
const DefaultShardThreshold = 4

// Component is one connected component of the charger–task coverage
// graph: charger i and task j are connected when some dominant policy of
// charger i covers task j (equivalently, when the pair is chargeable —
// every chargeable task appears in at least one dominant policy). Both
// index lists hold original instance indices in ascending order.
// Components are ordered by their smallest member (chargers before
// tasks), so the decomposition is canonical for a given instance.
type Component struct {
	Chargers []int
	Tasks    []int
}

// Components returns the connected components of the problem's coverage
// graph. Tasks no charger can reach and chargers with no chargeable task
// form singleton components. The result is computed once and cached; the
// returned slice must not be mutated.
func (p *Problem) Components() []Component {
	p.compsOnce.Do(p.computeComponents)
	return p.comps
}

// SchedulableComponents returns the number of components with at least
// one charger and one task — the components the sharded scheduler
// actually runs. ShardAuto compares this count against the threshold.
func (p *Problem) SchedulableComponents() int {
	p.compsOnce.Do(p.computeComponents)
	return p.schedulable
}

func (p *Problem) computeComponents() {
	p.comps, p.schedulable = coverageComponents(len(p.In.Chargers), len(p.In.Tasks), p.rows)
}

// AssignedHorizons returns, per charger, one past the last slot in which
// any schedule for this problem can assign a policy with non-zero effect:
// the maximum End over the charger's component's tasks (0 for chargers
// with no reachable task). Past this horizon every policy delivers
// exactly zero energy — all tasks the charger can reach have ended — so
// the sharded scheduler leaves such cells at -1 while the monolithic one
// may fill them with zero-gain policies. Executors and comparators that
// must treat the two schedules identically (sim switch counting,
// difftest's sharded contract) clip assignments at this horizon.
func (p *Problem) AssignedHorizons() []int {
	hor := make([]int, len(p.In.Chargers))
	for _, comp := range p.Components() {
		end := 0
		for _, gj := range comp.Tasks {
			if e := p.In.Tasks[gj].End; e > end {
				end = e
			}
		}
		for _, gi := range comp.Chargers {
			hor[gi] = end
		}
	}
	return hor
}

// coverageComponents finds the connected components of the coverage graph
// straight from the sparse chargeable rows: charger i and task j are
// adjacent iff j appears in rows[i]. Rows carry exactly the chargeable
// relation (zero-energy chargeable pairs included), which is the same edge
// set the dominant policies' cover lists induce, so components computed
// here are identical to the Gamma-walk of earlier revisions — and
// available without compiling policies or a kernel at all, which is what
// lets ScheduleSharded decompose a raw instance before any compilation.
func coverageComponents(n, m int, rows [][]CoverEntry) ([]Component, int) {
	// Union-find over n+m nodes (task j is node n+j), union-by-minimum so
	// every root is its component's smallest member.
	parent := make([]int32, n+m)
	for v := range parent {
		parent[v] = int32(v)
	}
	find := func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]] // path halving
			v = parent[v]
		}
		return v
	}
	for i, row := range rows {
		for _, e := range row {
			a, b := find(int32(i)), find(int32(n)+e.Task)
			if a == b {
				continue
			}
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	index := make(map[int32]int)
	var comps []Component
	for v := 0; v < n+m; v++ {
		r := find(int32(v))
		ci, ok := index[r]
		if !ok {
			ci = len(comps)
			index[r] = ci
			comps = append(comps, Component{})
		}
		if v < n {
			comps[ci].Chargers = append(comps[ci].Chargers, v)
		} else {
			comps[ci].Tasks = append(comps[ci].Tasks, v-n)
		}
	}
	sched := 0
	for _, c := range comps {
		if len(c.Chargers) > 0 && len(c.Tasks) > 0 {
			sched++
		}
	}
	return comps, sched
}

// subProblems compiles (once, cached) an independent sub-Problem for
// every schedulable component; unschedulable components get nil. Each
// sub-instance keeps the component's chargers and tasks in their
// original relative order with densely renumbered IDs, so dominant
// extraction reproduces exactly the global Gamma rows of the component's
// chargers (policy indices included) and the compiled kernel reproduces
// their cover entries bit for bit. Sub-Problems inherit the parent's
// kernel choice (SetFlatKernel) as of their compilation.
//
// After a delta operation (incremental.go) the rebuild first consults the
// stashed pre-mutation decomposition: a component with identical
// membership and no dirty charger adopts its old compiled sub-Problem —
// whose sub-instance is bit-identical to what sliceInstance would produce
// now — instead of recompiling it.
func (p *Problem) subProblems() []*Problem {
	p.subsOnce.Do(func() {
		comps := p.Components()
		prev := p.prevSubs
		p.prevSubs = nil
		subs := make([]*Problem, len(comps))
		for ci, comp := range comps {
			if len(comp.Chargers) == 0 || len(comp.Tasks) == 0 {
				continue
			}
			if sub := prev.adoptableSub(comp); sub != nil {
				sub.SetFlatKernel(p.kern.linear)
				subs[ci] = sub
				continue
			}
			sub, err := NewProblem(sliceInstance(p.In, comp))
			if err != nil {
				// A component of a valid instance satisfies everything
				// Validate checks (dense renumbered IDs, same params,
				// untouched task fields), so this cannot happen.
				panic(fmt.Sprintf("core: component sub-problem failed to compile: %v", err))
			}
			sub.SetFlatKernel(p.kern.linear)
			subs[ci] = sub
		}
		p.subs.Store(&subs)
	})
	return *p.subs.Load()
}

// sliceInstance extracts a component's standalone sub-instance: the
// component's chargers and tasks in their original relative order with
// densely renumbered IDs, sharing the parent's params and utility.
func sliceInstance(parent *model.Instance, comp Component) *model.Instance {
	in := &model.Instance{Params: parent.Params, Utility: parent.Utility}
	in.Chargers = make([]model.Charger, len(comp.Chargers))
	for li, gi := range comp.Chargers {
		in.Chargers[li] = parent.Chargers[gi]
		in.Chargers[li].ID = li
	}
	in.Tasks = make([]model.Task, len(comp.Tasks))
	for lj, gj := range comp.Tasks {
		in.Tasks[lj] = parent.Tasks[gj]
		in.Tasks[lj].ID = lj
	}
	return in
}

// colorPlan fixes every random draw of a monolithic greedy run up front:
// colorOf is the partition-major Monte-Carlo color table and final the
// per-partition color sampled at the end (Algorithm 2 line 6–8). A run
// handed a plan consumes no randomness from Options.Rng at all, which is
// what lets concurrent component runs share one global plan without
// contending on (or reordering draws from) a single rand.Rand.
type colorPlan struct {
	colorOf []uint8 // [(i*K+k)*N+s]: color of partition (i,k) in sample s
	final   []int32 // [i*K+k]: color sampled for partition (i,k)
}

// shardedGreedy is the shard-and-stitch execution of Algorithm 2: draw
// the global color plan, run every schedulable component's sub-Problem
// under the plan's restriction to its chargers (at most Options.Workers
// components in flight; each sub-run is sequential), stitch the
// component schedules into the global index space, and evaluate the
// stitched schedule on the original problem. parent receives the phase
// spans (decompose, one component span per sub-run with size/worker/
// warm-adoption attributes, stitch, evaluate); since component workers
// record concurrently, sibling span order is not deterministic — the
// schedule itself remains bit-identical at any worker count.
func shardedGreedy(done <-chan struct{}, p *Problem, opt Options, parent obs.SpanRef) (Result, bool) {
	n, K, C, N := len(p.In.Chargers), p.K, opt.Colors, opt.Samples
	sched := NewSchedule(n, K)
	if K == 0 || n == 0 {
		return Result{Schedule: sched}, true
	}

	dsp := parent.Start("decompose")
	comps := p.Components()
	subs := p.subProblems()
	dsp.Int("components", int64(len(comps))).End()

	plan := drawColorPlan(opt.Rng, n, K, C, N)

	runnable := make([]int, 0, len(comps))
	for ci, sub := range subs {
		if sub != nil && sub.K > 0 {
			runnable = append(runnable, ci)
		}
	}

	// Warm start: adopt the incumbent's result for every component a
	// re-run provably could not change (warm.go documents the conditions);
	// only the rest is dispatched to the workers.
	results := make([]*Result, len(comps))
	oks := make([]bool, len(comps))
	reusedCount := 0
	toRun := runnable
	if inc := opt.Incumbent; inc.matches(opt, n) {
		toRun = make([]int, 0, len(runnable))
		for _, ci := range runnable {
			if r := inc.reusable(comps[ci], subs[ci].K, &plan, K, N); r != nil {
				results[ci], oks[ci] = r, true
				reusedCount++
				// Zero-duration marker span: the component's stored result
				// was adopted instead of re-run.
				parent.Start("component").
					Int("chargers", int64(len(comps[ci].Chargers))).
					Int("tasks", int64(len(comps[ci].Tasks))).
					Bool("warm_adopted", true).End()
				continue
			}
			toRun = append(toRun, ci)
		}
	}

	workers := opt.Workers
	if workers > len(toRun) {
		workers = len(toRun)
	}
	var next atomic.Int64
	run := func(w int) {
		for {
			idx := int(next.Add(1)) - 1
			if idx >= len(toRun) {
				return
			}
			ci := toRun[idx]
			csp := parent.Start("component").
				Int("chargers", int64(len(comps[ci].Chargers))).
				Int("tasks", int64(len(comps[ci].Tasks))).
				Int("worker", int64(w)).
				Bool("warm_adopted", false)
			r, ok := runComponent(done, subs[ci], comps[ci], p.K, opt, &plan, csp)
			csp.End()
			if ok {
				results[ci] = &r
			}
			oks[ci] = ok
		}
	}
	if workers <= 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers - 1)
		for w := 1; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				run(w)
			}(w)
		}
		run(0)
		wg.Wait()
	}

	for _, ci := range runnable {
		if !oks[ci] {
			return Result{}, false // cancelled; every sub-run has released its states
		}
	}

	ssp := parent.Start("stitch")
	res := Result{Schedule: sched, Shards: len(runnable), WarmReused: reusedCount}
	for _, ci := range runnable {
		comp, sub := comps[ci], subs[ci]
		for li, gi := range comp.Chargers {
			copy(sched.Policy[gi][:sub.K], results[ci].Schedule.Policy[li])
		}
		// Aggregated in canonical component order, so instrumented runs
		// report deterministic counters at any worker count. Adopted
		// results carry the counters of their original (also sequential,
		// also deterministic) run — the counts a re-run would reproduce.
		res.Kernel.add(results[ci].Kernel)
	}
	ssp.End()
	// Re-evaluating the stitched schedule on the original problem — not
	// summing per-component utilities — keeps the total bit-identical to
	// the monolithic run: Evaluate accumulates contributions in the same
	// (charger, slot) order, and the cells only the monolithic schedule
	// assigns contribute exactly +0.0.
	esp := parent.Start("evaluate")
	res.RUtility = Evaluate(p, sched)
	esp.End()
	if opt.CollectWarm {
		subKs := make([]int, len(comps))
		for _, ci := range runnable {
			subKs[ci] = subs[ci].K
		}
		res.Warm = &WarmStart{
			colors: C, samples: N, preferStay: opt.PreferStay,
			kernelStats: opt.KernelStats, n: n, k: K,
			plan: plan, comps: comps, results: results, subKs: subKs,
		}
	}
	return res, true
}

// drawColorPlan draws every random decision of a greedy run up front, in
// exactly the monolithic consumption order (samples-major color table,
// then the final colors), so a sharded run spends rng draws identically
// to the monolithic run it must reproduce.
func drawColorPlan(rng *rand.Rand, n, K, C, N int) colorPlan {
	plan := colorPlan{
		colorOf: make([]uint8, N*n*K),
		final:   make([]int32, n*K),
	}
	for s := 0; s < N; s++ {
		for idx := 0; idx < n*K; idx++ {
			plan.colorOf[idx*N+s] = uint8(rng.Intn(C))
		}
	}
	for idx := range plan.final {
		plan.final[idx] = int32(rng.Intn(C))
	}
	return plan
}

// runComponent slices the global color plan (drawn for a K-slot horizon
// over all global chargers) down to the component's chargers and runs the
// monolithic greedy on its sub-Problem. The sub-run is sequential
// (Workers = 1): sharding parallelizes across components, and nesting the
// per-step policy fan inside component goroutines would oversubscribe the
// pool.
func runComponent(done <-chan struct{}, sub *Problem, comp Component, K int, opt Options, plan *colorPlan, parent obs.SpanRef) (Result, bool) {
	N := opt.Samples
	Kc := sub.K
	subPlan := &colorPlan{
		colorOf: make([]uint8, N*len(comp.Chargers)*Kc),
		final:   make([]int32, len(comp.Chargers)*Kc),
	}
	for li, gi := range comp.Chargers {
		for k := 0; k < Kc; k++ {
			lidx, gidx := li*Kc+k, gi*K+k
			copy(subPlan.colorOf[lidx*N:(lidx+1)*N], plan.colorOf[gidx*N:(gidx+1)*N])
			subPlan.final[lidx] = plan.final[gidx]
		}
	}
	subOpt := opt
	subOpt.Workers = 1
	subOpt.Shard = ShardOff
	subOpt.Rng = nil // every draw comes from the plan
	return monolithicGreedy(done, sub, subOpt, subPlan, parent)
}
