package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"haste/internal/geom"
	"haste/internal/model"
)

// kernelProneInstance is randomFieldInstance tilted toward the kernel's
// edge cases: a fraction of zero-weight tasks, tiny energy requirements so
// tasks saturate quickly mid-run, and one charger pushed far outside the
// field so it contributes empty compiled cover lists.
func kernelProneInstance(rng *rand.Rand, n, m int) *model.Instance {
	in := randomFieldInstance(rng, n, m, 6, 25)
	for j := range in.Tasks {
		switch rng.Intn(4) {
		case 0:
			in.Tasks[j].Weight = 0
		case 1:
			in.Tasks[j].Energy = 1 + rng.Float64()*20 // saturates in a few slots
		}
	}
	in.Chargers[n-1].Pos = geom.Point{X: 1e6, Y: 1e6}
	return in
}

// The compiled cover lists must be exactly the Gamma covers with
// zero-energy pairs dropped, in ascending task order, and the per-policy
// windows must be the union of the compiled tasks' activity windows.
func TestCompileKernelLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := mustProblem(t, kernelProneInstance(rng, 4, 24))
	for i := range p.Gamma {
		for pol := range p.Gamma[i] {
			var want []CoverEntry
			wantLo, wantHi := 0, 0
			for _, j := range p.Gamma[i][pol].Covers {
				de := p.SlotEnergy(i, j)
				if de == 0 {
					continue
				}
				want = append(want, CoverEntry{Task: int32(j), De: de})
				tk := p.In.Tasks[j]
				if len(want) == 1 || tk.Release < wantLo {
					wantLo = tk.Release
				}
				if tk.End > wantHi {
					wantHi = tk.End
				}
			}
			got := p.CompiledCovers(i, pol)
			if len(got) != len(want) {
				t.Fatalf("charger %d pol %d: %d entries, want %d", i, pol, len(got), len(want))
			}
			for idx := range want {
				if got[idx] != want[idx] {
					t.Fatalf("charger %d pol %d entry %d: %+v want %+v", i, pol, idx, got[idx], want[idx])
				}
				if idx > 0 && got[idx].Task <= got[idx-1].Task {
					t.Fatalf("charger %d pol %d: tasks not ascending", i, pol)
				}
			}
			lo, hi := p.PolicyWindow(i, pol)
			if lo != wantLo || hi != wantHi {
				t.Fatalf("charger %d pol %d: window [%d,%d) want [%d,%d)", i, pol, lo, hi, wantLo, wantHi)
			}
		}
	}
	// The far-away charger must still have a (single, idle) policy whose
	// compiled list is empty, and its window must short-circuit every slot.
	far := len(p.Gamma) - 1
	for pol := range p.Gamma[far] {
		if len(p.CompiledCovers(far, pol)) != 0 {
			t.Fatalf("far charger policy %d has compiled entries", pol)
		}
		es := NewEnergyState(p)
		for k := 0; k < p.K; k++ {
			if g := es.Marginal(far, k, pol); g != 0 {
				t.Fatalf("empty policy yields gain %v", g)
			}
		}
	}
}

// Property: on instances with zero-weight tasks, fast-saturating tasks and
// empty cover lists, the flat kernel and the generic interface-dispatch
// fallback agree to the last bit on every operation of a random walk, and
// the saturation structures match the energies at every step.
func TestFlatKernelMatchesGenericQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := kernelProneInstance(rng, 3, 12)
		p, err := NewProblem(in)
		if err != nil || !p.FlatKernel() {
			return false
		}
		flat, gen := NewEnergyState(p), NewEnergyState(p)
		for step := 0; step < 120; step++ {
			i := rng.Intn(len(p.Gamma))
			pol := rng.Intn(len(p.Gamma[i]))
			k := rng.Intn(p.K)
			frac := float64(rng.Intn(4)) / 3.0
			var a, b float64
			switch rng.Intn(4) {
			case 0:
				a = flat.Marginal(i, k, pol)
				p.SetFlatKernel(false)
				b = gen.Marginal(i, k, pol)
			case 1:
				a, _ = flat.MarginalUpper(i, k, pol)
				p.SetFlatKernel(false)
				b, _ = gen.MarginalUpper(i, k, pol)
			case 2:
				a = flat.MarginalScaled(i, k, pol, frac)
				p.SetFlatKernel(false)
				b = gen.MarginalScaled(i, k, pol, frac)
			default:
				a = flat.ApplyScaled(i, k, pol, frac)
				p.SetFlatKernel(false)
				b = gen.ApplyScaled(i, k, pol, frac)
			}
			p.SetFlatKernel(true)
			if a != b || flat.Total() != gen.Total() {
				return false
			}
			for j := range in.Tasks {
				if flat.Energy(j) != gen.Energy(j) {
					return false
				}
			}
			if !saturationInvariantHolds(flat) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// saturationInvariantHolds checks the flat kernel's pruning invariant on a
// state: satur[j] ⟺ energy[j] ≥ E_j, and every materialized live list is
// exactly the shared compiled list minus the saturated tasks, in order.
func saturationInvariantHolds(es *EnergyState) bool {
	kn := &es.p.kern
	sat := func(j int32) bool { return es.satur != nil && es.satur[j] }
	for j := range es.p.In.Tasks {
		if sat(int32(j)) != (es.energy[j] >= kn.req[j]) {
			return false
		}
	}
	if es.live == nil {
		for j := range es.p.In.Tasks {
			if sat(int32(j)) && len(kn.taskPols[j]) > 0 {
				return false
			}
		}
		return true
	}
	for fp, shared := range kn.entries {
		row := es.live[fp]
		if row == nil {
			for _, e := range shared {
				if sat(e.Task) {
					return false
				}
			}
			continue
		}
		idx := 0
		for _, e := range shared {
			if sat(e.Task) {
				continue
			}
			if idx >= len(row) || row[idx] != e {
				return false
			}
			idx++
		}
		if idx != len(row) {
			return false
		}
	}
	return true
}

// Regression for the pruning fast path: as tasks saturate over a greedy
// run, the policy chosen by the batched flat scan must match the generic
// reference selection in every partition — under PreferStay, where exact
// zero-gain ties (the saturated regime) decide the outcome.
func TestSaturationPruningPreservesArgmaxUnderPreferStay(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := kernelProneInstance(rng, 3, 12)
	for j := range in.Tasks {
		in.Tasks[j].Energy = 1 + rng.Float64()*30 // everything saturates
	}
	p := mustProblem(t, in)

	nStates := 4
	flatStates := make([]*EnergyState, nStates)
	genStates := make([]*EnergyState, nStates)
	for s := range flatStates {
		flatStates[s] = NewEnergyState(p)
		genStates[s] = NewEnergyState(p)
	}
	affected := []int{0, 1, 2, 3}
	maxPol := 0
	for _, g := range p.Gamma {
		if len(g) > maxPol {
			maxPol = len(g)
		}
	}
	gains := make([]float64, maxPol)
	acc := make([]float64, nStates)
	prev := make([]int, len(p.Gamma))
	for i := range prev {
		prev[i] = -1
	}
	anySaturated := false
	for k := 0; k < p.K; k++ {
		for i := range p.Gamma {
			nPol := len(p.Gamma[i])
			gainsBatchFlat(p, flatStates, affected, i, k, nPol, gains, acc)
			flatPick := argmaxPolicy(gains[:nPol], prev[i], true)
			p.SetFlatKernel(false)
			genPick := selectPolicy(p, genStates, affected, i, k, prev[i], true, gains)
			p.SetFlatKernel(true)
			if flatPick != genPick {
				t.Fatalf("slot %d charger %d: flat picks %d, generic picks %d", k, i, flatPick, genPick)
			}
			applyBatchFlat(p, flatStates, affected, i, k, flatPick, acc)
			p.SetFlatKernel(false)
			for _, s := range affected {
				genStates[s].Apply(i, k, genPick)
			}
			p.SetFlatKernel(true)
			prev[i] = flatPick
		}
	}
	for _, st := range flatStates {
		if st.satur != nil {
			for j := range st.satur {
				anySaturated = anySaturated || st.satur[j]
			}
		}
	}
	if !anySaturated {
		t.Fatal("run never saturated a task; regression exercises nothing")
	}
}

// The marginal inner loops must not allocate: per-call flat scans always,
// and the batched scans whenever no new saturation crossing occurs.
func TestMarginalPathsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := mustProblem(t, kernelProneInstance(rng, 4, 24))
	es := NewEnergyState(p)
	// Saturate what will saturate so live lists are materialized up front.
	for k := 0; k < p.K; k++ {
		for i := range p.Gamma {
			es.Apply(i, k, 0)
		}
	}
	states := []*EnergyState{es}
	affected := []int{0}
	gains := make([]float64, 8)
	acc := make([]float64, 1)
	checks := map[string]func(){
		"Marginal":       func() { es.Marginal(0, 1, 0) },
		"MarginalUpper":  func() { es.MarginalUpper(0, 1, 0) },
		"MarginalScaled": func() { es.MarginalScaled(0, 1, 0, 0.5) },
		"gainsBatchFlat": func() { gainsBatchFlat(p, states, affected, 0, 1, len(p.Gamma[0]), gains, acc) },
		"applyBatchFlat": func() { applyBatchFlat(p, states, affected, 0, 1, 0, acc) },
	}
	for name, fn := range checks {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per run", name, n)
		}
	}
}

// WeightedValue and WeightedDelta must match the interface expressions for
// every branch of the inlined utility, with the flat kernel on and off.
func TestWeightedValueAndDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	p := mustProblem(t, kernelProneInstance(rng, 3, 10))
	u := p.In.U()
	for _, on := range []bool{true, false} {
		p.SetFlatKernel(on)
		for j := range p.In.Tasks {
			tk := p.In.Tasks[j]
			for _, e := range []float64{0, tk.Energy * 0.3, tk.Energy, tk.Energy * 2} {
				wantV := tk.Weight * u.Of(e, tk.Energy)
				if got := p.WeightedValue(j, e); got != wantV {
					t.Fatalf("flat=%v WeightedValue(%d, %v) = %v, want %v", on, j, e, got, wantV)
				}
				for _, de := range []float64{0, tk.Energy * 0.5, tk.Energy * 3} {
					want := tk.Weight * (u.Of(e+de, tk.Energy) - u.Of(e, tk.Energy))
					if got := p.WeightedDelta(j, e, de); got != want {
						t.Fatalf("flat=%v WeightedDelta(%d, %v, %v) = %v, want %v", on, j, e, de, got, want)
					}
				}
			}
		}
	}
	p.SetFlatKernel(true)
}

// AcquireState must hand back zeroed states (even when recycled after
// heavy use) and CopyFrom must reproduce a state exactly, pruning
// structures included.
func TestStatePoolingAndCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := mustProblem(t, kernelProneInstance(rng, 3, 12))
	es := p.AcquireState()
	for k := 0; k < p.K; k++ {
		for i := range p.Gamma {
			es.Apply(i, k, rng.Intn(len(p.Gamma[i])))
		}
	}
	cp := NewEnergyState(p)
	cp.CopyFrom(es)
	if cp.Total() != es.Total() {
		t.Fatalf("CopyFrom total %v != %v", cp.Total(), es.Total())
	}
	for j := range p.In.Tasks {
		if cp.Energy(j) != es.Energy(j) {
			t.Fatalf("CopyFrom energy[%d] differs", j)
		}
	}
	if !saturationInvariantHolds(cp) {
		t.Fatal("CopyFrom broke the saturation invariant")
	}
	// The copy must behave identically from here on.
	for i := range p.Gamma {
		for pol := range p.Gamma[i] {
			if a, b := es.Marginal(i, 1, pol), cp.Marginal(i, 1, pol); a != b {
				t.Fatalf("copy diverges on Marginal(%d,1,%d): %v != %v", i, pol, a, b)
			}
		}
	}

	p.ReleaseState(es)
	re := p.AcquireState()
	if re.Total() != 0 {
		t.Fatalf("recycled state has total %v", re.Total())
	}
	for j := range p.In.Tasks {
		if re.Energy(j) != 0 {
			t.Fatalf("recycled state has energy[%d] = %v", j, re.Energy(j))
		}
	}
	if g := re.Marginal(0, 0, 0); g != NewEnergyState(p).Marginal(0, 0, 0) {
		t.Fatal("recycled state computes different marginals than a fresh one")
	}
	// A foreign state must not enter this problem's pool.
	other := mustProblem(t, kernelProneInstance(rng, 2, 6))
	p.ReleaseState(NewEnergyState(other))
}

// Restore must rewind the pruning structures too: a task saturated by an
// apply and then restored below its requirement has to reappear in every
// scan, with marginals matching a never-saturated state bit for bit.
func TestRestoreUnsaturates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	in := kernelProneInstance(rng, 3, 12)
	for j := range in.Tasks {
		in.Tasks[j].Energy = 1 + rng.Float64()*10
	}
	p := mustProblem(t, in)
	es := NewEnergyState(p)
	ids := make([]int, len(p.In.Tasks))
	vals := make([]float64, len(p.In.Tasks))
	for j := range ids {
		ids[j] = j
	}
	for step := 0; step < 60; step++ {
		i := rng.Intn(len(p.Gamma))
		pol := rng.Intn(len(p.Gamma[i]))
		k := rng.Intn(p.K)
		for j := range vals {
			vals[j] = es.Energy(j)
		}
		total := es.Total()
		es.Apply(i, k, pol)
		if rng.Intn(2) == 0 {
			es.Restore(ids, vals, total)
			if !saturationInvariantHolds(es) {
				t.Fatalf("step %d: invariant broken after Restore", step)
			}
		}
	}
	// Full rewind to empty: every marginal must equal a fresh state's.
	for j := range vals {
		vals[j] = 0
	}
	es.Restore(ids, vals, 0)
	fresh := NewEnergyState(p)
	for i := range p.Gamma {
		for pol := range p.Gamma[i] {
			for k := 0; k < p.K; k += 3 {
				if a, b := es.Marginal(i, k, pol), fresh.Marginal(i, k, pol); a != b {
					t.Fatalf("restored state diverges at (%d,%d,%d): %v != %v", i, k, pol, a, b)
				}
			}
		}
	}
}

// KernelStats must balance (Offered = Visited + Skipped), see pruning in a
// saturating run, and survive the parallel fan with counts equal to the
// sequential run's.
func TestKernelStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	in := kernelProneInstance(rng, 3, 12)
	for j := range in.Tasks {
		in.Tasks[j].Energy = 1 + rng.Float64()*10
	}
	p := mustProblem(t, in)
	res := TabularGreedy(p, Options{Colors: 2, PreferStay: true, Workers: 1, KernelStats: true})
	ks := res.Kernel
	if ks.Calls == 0 || ks.Offered == 0 {
		t.Fatalf("no kernel work counted: %+v", ks)
	}
	if ks.Visited > ks.Offered || ks.Skipped() < 0 {
		t.Fatalf("counters inconsistent: %+v", ks)
	}
	if ks.Pruned == 0 {
		t.Fatalf("saturating run pruned nothing: %+v", ks)
	}
	if ks.Skipped() == 0 {
		t.Fatalf("saturating run skipped no evaluations: %+v", ks)
	}

	par := TabularGreedy(p, Options{Colors: 2, PreferStay: true, Workers: 2, KernelStats: true})
	if par.Kernel != ks {
		t.Fatalf("parallel stats diverge from sequential: %+v != %+v", par.Kernel, ks)
	}
	if err := compareSchedules(res.Schedule, par.Schedule); err != nil {
		t.Fatalf("instrumented and parallel schedules diverge: %v", err)
	}
}

// Regression for the Workers > 1 stats loss: counters used to be silently
// zeroed whenever the pool could start. Both parallel fan shapes — the
// sample fan (Colors > 1: disjoint states per chunk) and the policy fan
// (Colors == 1: one state, per-chunk scratch collectors merged at the
// barrier) — must now report exactly the sequential run's counts at any
// worker count, with the schedule bit-identical throughout. The forced
// ParallelThreshold guarantees the pool actually engages.
func TestKernelStatsParallelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	in := kernelProneInstance(rng, 4, 16)
	for j := range in.Tasks {
		in.Tasks[j].Energy = 1 + rng.Float64()*10
	}
	p := mustProblem(t, in)
	for _, colors := range []int{1, 3} { // 1 → policy fan, 3 → sample fan
		base := Options{Colors: colors, PreferStay: true, KernelStats: true, ParallelThreshold: 1}
		seq := base
		seq.Workers = 1
		ref := TabularGreedy(p, seq)
		if ref.Kernel.Calls == 0 {
			t.Fatalf("C=%d: sequential run counted nothing: %+v", colors, ref.Kernel)
		}
		for _, workers := range []int{2, 4, 7} {
			opt := base
			opt.Workers = workers
			got := TabularGreedy(p, opt)
			if got.Kernel != ref.Kernel {
				t.Errorf("C=%d workers=%d: stats %+v, want %+v", colors, workers, got.Kernel, ref.Kernel)
			}
			if err := compareSchedules(ref.Schedule, got.Schedule); err != nil {
				t.Errorf("C=%d workers=%d: schedule diverges: %v", colors, workers, err)
			}
		}
	}
}

func compareSchedules(a, b Schedule) error {
	if len(a.Policy) != len(b.Policy) {
		return fmt.Errorf("charger count %d != %d", len(b.Policy), len(a.Policy))
	}
	for i := range a.Policy {
		for k := range a.Policy[i] {
			if a.Policy[i][k] != b.Policy[i][k] {
				return fmt.Errorf("cell (%d,%d): %d != %d", i, k, b.Policy[i][k], a.Policy[i][k])
			}
		}
	}
	return nil
}

// The pool must not start when even the largest possible step cannot reach
// the work threshold, and must start when the threshold is forced down.
func TestWorkerPoolGating(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	p := mustProblem(t, kernelProneInstance(rng, 3, 12))
	small := Options{Colors: 2, Workers: 4, PreferStay: true}.normalize()
	s := newSelector(p, small)
	if s.pool != nil {
		t.Errorf("pool started below the threshold (Samples=%d)", small.Samples)
	}
	s.close()

	forced := small
	forced.ParallelThreshold = 1
	s = newSelector(p, forced)
	if s.pool == nil {
		t.Error("pool not started with ParallelThreshold=1 and Workers=4")
	}
	s.close()
}
