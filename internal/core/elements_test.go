package core

import (
	"math/rand"
	"testing"
)

// Every scheduler's output must be an independent set of the problem's
// partition matroid (Lemma 4.1), and a full schedule must be a basis.
func TestSchedulersProduceIndependentSets(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 10; trial++ {
		in := randomFieldInstance(rng, 5, 15, 6, 30)
		p := mustProblem(t, in)
		m := p.Matroid()

		for name, s := range map[string]Schedule{
			"tabular C1": TabularGreedy(p, DefaultOptions(1)).Schedule,
			"tabular C3": TabularGreedy(p, Options{Colors: 3, PreferStay: true}).Schedule,
			"global":     GlobalGreedy(p, true).Schedule,
		} {
			elems := s.Elements()
			if !m.Independent(elems) {
				t.Fatalf("trial %d: %s schedule not independent", trial, name)
			}
			// Full schedules are bases: |X| = rank.
			if len(elems) != m.Rank() {
				t.Fatalf("trial %d: %s has %d elements, rank is %d",
					trial, name, len(elems), m.Rank())
			}
		}
	}
}

func TestElementsSkipsUnassigned(t *testing.T) {
	s := NewSchedule(2, 3)
	s.Policy[1][2] = 4
	elems := s.Elements()
	if len(elems) != 1 || elems[0].Charger != 1 || elems[0].Slot != 2 || elems[0].Policy != 4 {
		t.Fatalf("Elements = %v", elems)
	}
}

func TestMatroidShape(t *testing.T) {
	in := oneTaskInstance(480, 0, 2)
	p := mustProblem(t, in)
	m := p.Matroid()
	if m.NumChargers != 1 || m.NumSlots != 2 || len(m.PolicyCounts) != 1 {
		t.Fatalf("matroid shape: %+v", m)
	}
	if m.PolicyCounts[0] != len(p.Gamma[0]) {
		t.Fatalf("policy counts: %+v vs %d", m.PolicyCounts, len(p.Gamma[0]))
	}
}
