package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestDecomposeInstanceMatchesProblem: the instance-direct decomposition
// (no Gamma, no kernel) yields exactly the components the compiled
// Problem reports.
func TestDecomposeInstanceMatchesProblem(t *testing.T) {
	for seed := int64(901); seed < 905; seed++ {
		p := shardProblem(t, seed, 6, 12, 40)
		comps, err := DecomposeInstance(p.In)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(comps, p.Components()) {
			t.Fatalf("seed %d: DecomposeInstance diverges from Problem.Components", seed)
		}
	}
}

// TestScheduleShardedMatchesParent pins the equivalence contract of the
// instance-direct fleet path against the parent-Problem sharded path:
// identical seeds must produce bit-identical schedule cells and the same
// shard count, and evaluating the fleet schedule on the compiled parent
// problem must reproduce the parent run's RUtility exactly. The fleet
// path's own RUtility (per-component sums in canonical order) is allowed
// to differ only in the last ulps.
func TestScheduleShardedMatchesParent(t *testing.T) {
	for _, colors := range []int{1, 3} {
		for seed := int64(901); seed < 904; seed++ {
			p := shardProblem(t, seed, 6, 12, 40)

			optParent := DefaultOptions(colors)
			optParent.Rng = rand.New(rand.NewSource(seed))
			optParent.Shard = ShardOn
			optParent.Workers = 3
			parent := TabularGreedy(p, optParent)

			optFleet := DefaultOptions(colors)
			optFleet.Rng = rand.New(rand.NewSource(seed))
			optFleet.Workers = 3
			fleet, err := ScheduleSharded(p.In, optFleet)
			if err != nil {
				t.Fatalf("colors=%d seed=%d: ScheduleSharded: %v", colors, seed, err)
			}

			if fleet.Shards != parent.Shards {
				t.Fatalf("colors=%d seed=%d: shards %d != parent %d", colors, seed, fleet.Shards, parent.Shards)
			}
			if !reflect.DeepEqual(fleet.Schedule.Policy, parent.Schedule.Policy) {
				t.Fatalf("colors=%d seed=%d: fleet schedule cells diverge from parent sharded run", colors, seed)
			}
			if got := Evaluate(p, fleet.Schedule); got != parent.RUtility {
				t.Fatalf("colors=%d seed=%d: Evaluate(fleet schedule) = %.17g, parent RUtility = %.17g",
					colors, seed, got, parent.RUtility)
			}
			if diff := math.Abs(fleet.RUtility - parent.RUtility); diff > 1e-9*math.Max(1, parent.RUtility) {
				t.Fatalf("colors=%d seed=%d: fleet RUtility %.17g vs parent %.17g (diff %g)",
					colors, seed, fleet.RUtility, parent.RUtility, diff)
			}
		}
	}
}

// TestScheduleShardedDegenerate: empty and taskless instances return an
// empty schedule without error.
func TestScheduleShardedDegenerate(t *testing.T) {
	p := shardProblem(t, 901, 2, 4, 8)
	in := *p.In
	in.Tasks = nil
	res, err := ScheduleSharded(&in, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 0 || res.RUtility != 0 {
		t.Fatalf("taskless instance: got %d shards, utility %g", res.Shards, res.RUtility)
	}
}
