package core

import (
	"context"
	"math/rand"
	"runtime"

	"haste/internal/obs"
)

// Options configures the centralized offline algorithm.
type Options struct {
	// Colors is the control parameter C of TabularGreedy. C = 1 collapses
	// to the locally greedy algorithm (½-approximation); growing C pushes
	// the ratio toward 1−1/e at higher cost. Defaults to 1.
	Colors int

	// Samples is the number of Monte-Carlo color vectors used to estimate
	// the expectation 𝔽(Q) = E_c[f(sample_c(Q))] when Colors > 1 (common
	// random numbers: the same vectors are used throughout a run).
	// Defaults to 8·Colors. Ignored when Colors == 1, where the
	// expectation is exact.
	Samples int

	// Rng drives color sampling. Defaults to a deterministic source so
	// runs are reproducible; pass rand.New(rand.NewSource(seed)) to vary.
	Rng *rand.Rand

	// PreferStay breaks exact marginal ties in favor of the policy chosen
	// in the previous slot, which avoids gratuitous orientation switches
	// (and hence switching-delay losses) once tasks saturate. Defaults to
	// true via DefaultOptions.
	PreferStay bool

	// Workers bounds the worker pool that fans the per-sample marginal
	// accumulation and the per-sample state updates of each greedy step.
	// 0 defaults to runtime.GOMAXPROCS(0); 1 runs the plain sequential
	// path with no pool. Every worker count produces a bit-identical
	// schedule: each (sample, policy) marginal is computed independently
	// and the per-policy gains are reduced in a fixed canonical order
	// (sample-major, exactly the sequential accumulation order), so the
	// floating-point result cannot depend on goroutine scheduling. The
	// differential suite in internal/difftest enforces this.
	Workers int

	// Lazy selects policies through the stale-bound selector: cached
	// optimistic marginals (valid upper bounds under submodularity, see
	// lazy.go) let a greedy step skip exactly those policies that cannot
	// reach the running best gain. Schedules are bit-identical to the
	// eager path; only the number of marginal evaluations changes.
	Lazy bool

	// ParallelThreshold is the minimum per-step work — affected samples ×
	// policies of the partition's charger — worth fanning out to the
	// worker pool; steps below it run the sequential scan, and if even
	// Samples × maxPol (the largest possible step) falls short the pool
	// is never started. Dispatching a step costs two channel operations
	// per chunk plus a goroutine wake-up, so small batches run faster
	// sequentially no matter how many cores are idle — BENCH_core.json
	// records Workers=4 losing 1.4–3× to Workers=1 on paper-scale
	// instances at the old always-fan behavior. 0 selects
	// DefaultParallelThreshold. Purely a performance knob: both sides of
	// the cutoff compute bit-identical gains.
	ParallelThreshold int

	// KernelStats collects evaluation-kernel work counters (calls, cover
	// entries visited, entries skipped by windows and saturation pruning)
	// into Result.Kernel, at any worker count. The counters live on the
	// per-sample states; the sample-fanned parallel path touches disjoint
	// states, and the policy fan (which evaluates one state concurrently)
	// counts into per-chunk scratch collectors merged at the reduction
	// barrier — so parallel counters equal the sequential run's exactly
	// (the same set of marginals is evaluated either way; kernel_test.go
	// pins the parity). Instrumented runs take the per-state scan instead
	// of the batched one — same results, slightly slower, exact counts.
	// Sharded runs aggregate per-component counters in canonical
	// component order.
	KernelStats bool

	// Shard selects the shard-and-stitch decomposition (shard.go): the
	// connected components of the charger–task coverage graph are exactly
	// independent subproblems, scheduled concurrently under the Workers
	// bound and stitched back together. ShardAuto (the default) turns it
	// on when the instance has at least ShardThreshold schedulable
	// components. The stitched result has exactly the monolithic utility
	// and agrees with the monolithic schedule on every cell it assigns;
	// cells past a component's own horizon stay -1 (the monolithic run
	// fills them with zero-gain assignments). internal/difftest's sharded
	// sweep enforces the equivalence.
	Shard ShardMode

	// ShardThreshold is the schedulable-component count at which
	// ShardAuto shards; 0 selects DefaultShardThreshold.
	ShardThreshold int

	// Incumbent warm-starts a sharded run from a previous run's WarmStart
	// (warm.go): components whose membership, dirtiness and plan slice
	// show a re-run could not differ adopt the incumbent's stored result
	// instead of running. The output is bit-identical to a cold run by
	// construction — reuse only fires when determinism pins the result —
	// which internal/difftest's mutation-walk sweep enforces. Ignored by
	// monolithic runs (warm starts are component-granular; sessions force
	// ShardOn).
	Incumbent *WarmStart

	// CollectWarm asks a sharded run to return a WarmStart in Result.Warm
	// for use as the next run's Incumbent.
	CollectWarm bool

	// Trace, when non-nil, records a phase-level span tree of the run —
	// greedy/evaluate for a monolithic solve; decompose, per-component
	// solves (with component size, worker id and warm-adoption flag) and
	// stitch for a sharded one — into Result.Trace, with the run's
	// shard/warm/kernel counters folded into the root span's attributes.
	// The probe is observational only: spans bracket whole phases, never
	// inner-loop iterations, so a traced run's schedule is bit-identical
	// to an untraced one, and a nil Trace costs nothing (obs's disabled
	// path is alloc-free, pinned by testing.AllocsPerRun in trace_test.go).
	Trace *obs.Trace
}

// DefaultParallelThreshold is the Options.ParallelThreshold used when the
// caller leaves it zero. Measured on the paper-scale workload (sec. 7.1
// defaults): below roughly this many (sample, policy) marginals per step,
// pool dispatch overhead exceeds the scan work itself even with all
// workers idle.
const DefaultParallelThreshold = 512

// DefaultOptions returns the options used by the paper's experiments for
// a given color count.
func DefaultOptions(colors int) Options {
	return Options{Colors: colors, PreferStay: true}
}

func (o Options) normalize() Options {
	if o.Colors < 1 {
		o.Colors = 1
	}
	// Colors are stored in a byte-sized table; beyond a few dozen the
	// approximation gain is < (nK choose 2)/C anyway (Lemma 5.1).
	if o.Colors > 255 {
		o.Colors = 255
	}
	if o.Colors == 1 {
		o.Samples = 1
	} else if o.Samples <= 0 {
		o.Samples = 8 * o.Colors
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ParallelThreshold <= 0 {
		o.ParallelThreshold = DefaultParallelThreshold
	}
	if o.ShardThreshold <= 0 {
		o.ShardThreshold = DefaultShardThreshold
	}
	return o
}

// useShards decides whether a normalized run takes the shard-and-stitch
// path. ShardAuto asks the problem for its (cached) component count.
func (o Options) useShards(p *Problem) bool {
	switch o.Shard {
	case ShardOff:
		return false
	case ShardOn:
		return true
	default:
		return p.SchedulableComponents() >= o.ShardThreshold
	}
}

// Result is the output of an offline scheduling run.
type Result struct {
	Schedule Schedule
	RUtility float64 // HASTE-R objective f(X) of the schedule

	// Kernel aggregates the evaluation kernel's work counters over all
	// sample states when Options.KernelStats was set (zero otherwise).
	Kernel KernelStats

	// Shards is the number of independently scheduled components when the
	// run took the shard-and-stitch path (0 for a monolithic run).
	Shards int

	// WarmReused counts the components adopted from Options.Incumbent
	// without re-running; Warm is the run's own WarmStart when
	// Options.CollectWarm was set (sharded runs only).
	WarmReused int
	Warm       *WarmStart

	// Trace echoes Options.Trace after the run recorded its phase tree
	// into it (nil when tracing was off). Render with Trace.Tree().
	Trace *obs.Trace
}

// TabularGreedy is Algorithm 2, the centralized offline algorithm for
// HASTE. For every color c ∈ [C] it sweeps all partitions Θ_{i,k} in slot-
// major order and greedily assigns the policy maximizing the (estimated)
// expected marginal gain 𝔽(Q + x) − 𝔽(Q) over the samples whose color for
// that partition equals c. Finally each partition samples one of its C
// assignments uniformly at random. With C = 1 this is exactly the locally
// greedy ½-approximation; as C → ∞ the approximation ratio approaches
// 1−1/e (Lemma 5.1), and accounting for switching delay the overall
// guarantee is (1−ρ)(1−1/e) (Theorem 5.1).
//
// Execution strategy (Workers, Lazy) never changes the output schedule —
// only how fast it is found. See Options.Workers and Options.Lazy.
func TabularGreedy(p *Problem, opt Options) Result {
	res, _ := tabularGreedy(nil, p, opt)
	return res
}

// TabularGreedyCtx is TabularGreedy with cooperative cancellation: the run
// checks ctx between greedy stages (one partition's selection + state
// update), so a cancelled caller gets control back within one stage — the
// granularity a long request can be abandoned at without tearing shared
// state. On cancellation it returns ctx.Err() and a zero Result; all
// pooled EnergyStates are released either way (Problem.StatesInUse drops
// back to the caller's balance), and the Problem remains fully reusable —
// an uncancelled rerun is bit-identical to TabularGreedy. The service
// layer (internal/serve) threads per-request timeouts through this.
func TabularGreedyCtx(ctx context.Context, p *Problem, opt Options) (Result, error) {
	res, ok := tabularGreedy(ctx.Done(), p, opt)
	if !ok {
		return Result{}, ctx.Err()
	}
	return res, nil
}

// tabularGreedy dispatches a run: done, when non-nil, aborts the run at
// the next stage boundary (ok = false). The cancellation probe is a
// non-blocking channel read per partition step — it cannot reorder or
// change any floating-point work, so cancelled-then-retried runs and
// never-cancelled runs stay on the canonical schedule.
func tabularGreedy(done <-chan struct{}, p *Problem, opt Options) (Result, bool) {
	opt = opt.normalize()
	root := opt.Trace.Start("solve")
	var res Result
	var ok bool
	if opt.useShards(p) {
		res, ok = shardedGreedy(done, p, opt, root)
	} else {
		res, ok = monolithicGreedy(done, p, opt, nil, root)
	}
	if ok {
		root.Int("shards", int64(res.Shards)).Int("warm_reused", int64(res.WarmReused))
		if opt.KernelStats {
			root.Int("kernel_calls", res.Kernel.Calls).
				Int("kernel_visited", res.Kernel.Visited).
				Int("kernel_offered", res.Kernel.Offered).
				Int("kernel_pruned", res.Kernel.Pruned)
		}
		res.Trace = opt.Trace
	}
	root.End()
	return res, ok
}

// monolithicGreedy is the classic single-problem body of Algorithm 2.
// opt must already be normalized. plan, when non-nil, supplies every
// random draw of the run (see colorPlan); the sharded path uses it to
// hand each component its slice of the globally drawn color tables, and
// a nil plan draws from opt.Rng exactly as before. parent is the span
// the run's greedy/evaluate phases are recorded under (the run's root
// for a monolithic solve, the component span for a sharded sub-run);
// the zero SpanRef disables recording.
func monolithicGreedy(done <-chan struct{}, p *Problem, opt Options, plan *colorPlan, parent obs.SpanRef) (Result, bool) {
	n, K, C, N := len(p.In.Chargers), p.K, opt.Colors, opt.Samples

	sched := NewSchedule(n, K)
	if K == 0 || n == 0 {
		return Result{Schedule: sched}, true
	}

	// colorOf[(i*K+k)*N+s]: the color sample s assigns to partition (i,k),
	// stored partition-major so the per-step affected scan reads N
	// consecutive bytes instead of striding across N sample vectors. The
	// draws stay sample-major — the exact RNG consumption order of the
	// original layout, so schedules are unchanged.
	var colorOf []uint8
	if plan != nil {
		colorOf = plan.colorOf
	} else {
		colorOf = make([]uint8, N*n*K)
		for s := 0; s < N; s++ {
			for idx := 0; idx < n*K; idx++ {
				colorOf[idx*N+s] = uint8(opt.Rng.Intn(C))
			}
		}
	}

	states := make([]*EnergyState, N)
	for s := range states {
		states[s] = p.AcquireState()
		if opt.KernelStats {
			states[s].EnableKernelStats()
		}
	}
	defer func() {
		for _, st := range states {
			p.ReleaseState(st)
		}
	}()

	// q[i][k*C+c]: the S-C tuple table Q — the policy assigned to
	// partition (i,k) in color round c.
	q := make([][]int32, n)
	for i := range q {
		row := make([]int32, K*C)
		for idx := range row {
			row[idx] = -1
		}
		q[i] = row
	}

	sel := newSelector(p, opt)
	defer sel.close()

	gsp := parent.Start("greedy").
		Int("chargers", int64(n)).Int("slots", int64(K)).
		Int("colors", int64(C)).Int("samples", int64(N))
	affected := make([]int, 0, N)
	for c := 0; c < C; c++ {
		for k := 0; k < K; k++ {
			for i := 0; i < n; i++ {
				if done != nil {
					select {
					case <-done:
						return Result{}, false
					default:
					}
				}
				affected = affected[:0]
				cc := uint8(c)
				for s, col := range colorOf[(i*K+k)*N : (i*K+k+1)*N] {
					if col == cc {
						affected = append(affected, s)
					}
				}
				prev := int32(-1)
				if opt.PreferStay && k > 0 {
					prev = q[i][(k-1)*C+c]
				}
				best := sel.selectPolicy(states, affected, i, k, int(prev))
				q[i][k*C+c] = int32(best)
				sel.apply(states, affected, i, k, best)
			}
		}
	}

	// Line 6–8 of Algorithm 2: sample one color per partition.
	for i := 0; i < n; i++ {
		for k := 0; k < K; k++ {
			var c int
			if plan != nil {
				c = int(plan.final[i*K+k])
			} else {
				c = opt.Rng.Intn(C)
			}
			sched.Policy[i][k] = int(q[i][k*C+c])
		}
	}
	gsp.End()
	esp := parent.Start("evaluate")
	res := Result{Schedule: sched, RUtility: Evaluate(p, sched)}
	esp.End()
	if opt.KernelStats {
		for _, st := range states {
			res.Kernel.add(st.KernelStats())
		}
	}
	return res, true
}

// selectPolicy is the sequential reference selection for partition (i,k):
// it fills gains[pol] with the summed marginal over the affected sample
// states (in affected order — the canonical reduction order every other
// execution path reproduces) and reduces with argmaxPolicy.
func selectPolicy(p *Problem, states []*EnergyState, affected []int, i, k, prev int, preferStay bool, gains []float64) int {
	nPol := len(p.Gamma[i])
	for pol := 0; pol < nPol; pol++ {
		var gain float64
		for _, s := range affected {
			gain += states[s].Marginal(i, k, pol)
		}
		gains[pol] = gain
	}
	return argmaxPolicy(gains[:nPol], prev, preferStay)
}

// argmaxPolicy is the single reduction defining the selection's tie
// semantics for every execution path (sequential, parallel and lazy): the
// maximum gain wins; on exact float equality the previous slot's policy
// prev wins when preferStay is set — regardless of where prev sits in the
// scan order — and otherwise the lowest index wins.
func argmaxPolicy(gains []float64, prev int, preferStay bool) int {
	best := 0
	for pol := 1; pol < len(gains); pol++ {
		if gains[pol] > gains[best] {
			best = pol
		}
	}
	if preferStay && prev >= 0 && prev < len(gains) && prev != best && gains[prev] == gains[best] {
		best = prev
	}
	return best
}
