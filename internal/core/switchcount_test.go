// Switch-count parity between monolithic and sharded schedules under the
// physical executor. Lives in an external test package: sim imports core,
// so the parity check (which needs both) cannot sit in package core.
package core_test

import (
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/sim"
	"haste/internal/workload"
)

// TestSwitchCountShardParity: executing the monolithic and the sharded
// schedule of the same instance reports the exact same switch count (and
// utility). Regression for the PR 5 documented discrepancy: monolithic
// runs at Colors > 1 fill slots past a component's horizon with zero-gain
// policies whose orientation hops were counted as switches, while the
// sharded -1 padding never switched. sim.Execute now clips assignments
// past core.AssignedHorizons, making the count a function of the
// schedule's effective content only. The (seed, colors, preferStay)
// triples below were measured to disagree under the pre-clip counting —
// each is a genuine regression case, not a vacuous pass.
func TestSwitchCountShardParity(t *testing.T) {
	cases := []struct {
		seed       int64
		colors     int
		preferStay bool
	}{
		{1, 3, false},
		{4, 4, false},
		{13, 4, true},
		{23, 3, true},
		{1, 1, true}, // C=1: never disagreed, pins the fix changes nothing here
	}
	for _, tc := range cases {
		cfg := workload.Default()
		cfg.NumChargers, cfg.NumTasks = 10, 30
		cfg.DurationMin, cfg.DurationMax = 4, 12
		cfg.ReleaseMax = 8
		cfg.EnergyMin, cfg.EnergyMax = 1e3, 6e3
		cfg.Placement = workload.Clustered
		cfg.NumClusters = 5
		cfg.Params.Radius = 8
		cfg.ClusterRadius = 6
		in := cfg.Generate(rand.New(rand.NewSource(tc.seed)))
		p, err := core.NewProblem(in)
		if err != nil {
			t.Fatal(err)
		}
		if p.SchedulableComponents() < 2 {
			t.Fatalf("seed %d: want a multi-component instance", tc.seed)
		}
		opt := func() core.Options {
			return core.Options{Colors: tc.colors, PreferStay: tc.preferStay, Workers: 1,
				Rng: rand.New(rand.NewSource(tc.seed + 1000))}
		}
		monoOpt := opt()
		monoOpt.Shard = core.ShardOff
		mono := core.TabularGreedy(p, monoOpt)
		shardOpt := opt()
		shardOpt.Shard = core.ShardOn
		shard := core.TabularGreedy(p, shardOpt)

		mout := sim.Execute(p, mono.Schedule)
		sout := sim.Execute(p, shard.Schedule)
		if mout.Switches != sout.Switches {
			t.Errorf("seed=%d colors=%d preferStay=%v: switch count %d (monolithic) != %d (sharded)",
				tc.seed, tc.colors, tc.preferStay, mout.Switches, sout.Switches)
		}
		if mout.Utility != sout.Utility {
			t.Errorf("seed=%d colors=%d preferStay=%v: utility %v != %v",
				tc.seed, tc.colors, tc.preferStay, mout.Utility, sout.Utility)
		}
	}
}
