package core

import "haste/internal/matroid"

// Matroid returns the partition matroid M = (S, I) of Lemma 4.1 for this
// problem: one partition Θ_{i,k} per charger per slot, each holding the
// charger's dominant-set policies.
func (p *Problem) Matroid() matroid.Partition {
	counts := make([]int, len(p.Gamma))
	for i, g := range p.Gamma {
		counts[i] = len(g)
	}
	return matroid.Partition{
		NumChargers:  len(p.Gamma),
		NumSlots:     p.K,
		PolicyCounts: counts,
	}
}

// Elements converts a schedule into its ground-set elements (assigned
// cells only). The result of any scheduler in this package is independent
// in the problem's matroid by construction; tests verify it.
func (s Schedule) Elements() []matroid.Element {
	var out []matroid.Element
	for i, row := range s.Policy {
		for k, pol := range row {
			if pol >= 0 {
				out = append(out, matroid.Element{Charger: i, Slot: k, Policy: pol})
			}
		}
	}
	return out
}
