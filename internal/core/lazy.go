package core

import "math"

// The lazy execution path of TabularGreedy.
//
// Submodularity of the HASTE-R objective (Lemma 4.2) means every per-sample
// marginal only shrinks as that sample's energy state grows. lazyBounds
// caches, per Monte-Carlo sample and per (charger, policy), the last
// computed *optimistic* marginal — the marginal with every covered task
// treated as active (EnergyState.MarginalUpper). The optimistic value is an
// upper bound on the true marginal in any slot (a slot only deactivates
// tasks, never adds energy terms) and it is non-increasing over the run
// (concavity of U: each per-task utility increment shrinks as energy
// accumulates, and energies only grow). A cached value from any earlier
// greedy step therefore still bounds the policy's gain now.
//
// A greedy step evaluates the previous slot's policy first (under
// PreferStay it wins every exact tie, so its gain settles all of them),
// then walks the remaining policies in decreasing stale-bound order. The
// walk stops once the best unevaluated bound is strictly below the best
// exact gain — those policies cannot win — or equals it while the
// best-positioned candidate would lose the tie anyway under the canonical
// argmaxPolicy rule (prev wins, then lowest index). Skipped policies can
// therefore never change the selection: the result is bit-identical to the
// eager full scan, only the number of marginal evaluations differs
// (BenchmarkTabularGreedyLazy records the saving — in the saturated tail
// of a run a step costs one evaluation instead of |Γ_i|).
type lazyBounds struct {
	offset    []int     // offset[i]: first slot of charger i's policies
	perSample int       // total policy count P = Σ_i |Γ_i|
	bound     []float64 // N·P stale optimistic marginals, +Inf = never computed

	// Per-step scratch, sized to the widest Γ_i.
	sum       []float64 // summed stale bounds per policy
	evaluated []bool
}

func newLazyBounds(p *Problem, samples int) *lazyBounds {
	lb := &lazyBounds{offset: make([]int, len(p.Gamma))}
	maxPol := 0
	for i, g := range p.Gamma {
		lb.offset[i] = lb.perSample
		lb.perSample += len(g)
		if len(g) > maxPol {
			maxPol = len(g)
		}
	}
	lb.bound = make([]float64, samples*lb.perSample)
	for idx := range lb.bound {
		lb.bound[idx] = math.Inf(1)
	}
	lb.sum = make([]float64, maxPol)
	lb.evaluated = make([]bool, maxPol)
	return lb
}

func (lb *lazyBounds) selectPolicy(p *Problem, states []*EnergyState, affected []int, i, k, prev int, preferStay bool) int {
	nPol := len(p.Gamma[i])
	base := lb.offset[i]
	for pol := 0; pol < nPol; pol++ {
		var b float64
		for _, s := range affected {
			b += lb.bound[s*lb.perSample+base+pol]
		}
		lb.sum[pol] = b
		lb.evaluated[pol] = false
	}
	if prev < 0 || prev >= nPol {
		prev = -1
	}

	// best/bestGain track argmaxPolicy over the evaluated subset,
	// maintained incrementally with the identical tie rule.
	best, bestGain := -1, math.Inf(-1)
	eval := func(pol int) {
		lb.evaluated[pol] = true
		var gain float64
		for _, s := range affected {
			exact, upper := states[s].MarginalUpper(i, k, pol)
			gain += exact
			lb.bound[s*lb.perSample+base+pol] = upper
		}
		switch {
		case best < 0 || gain > bestGain:
			best, bestGain = pol, gain
		case gain == bestGain:
			if preferStay && best == prev {
				// prev keeps every tie
			} else if (preferStay && pol == prev) || pol < best {
				best = pol
			}
		}
	}

	if preferStay && prev >= 0 {
		eval(prev)
	}
	for {
		// Deterministic pick: the unevaluated policy with the largest
		// stale bound, lowest index on ties.
		pick := -1
		for pol := 0; pol < nPol; pol++ {
			if !lb.evaluated[pol] && (pick < 0 || lb.sum[pol] > lb.sum[pick]) {
				pick = pol
			}
		}
		if pick < 0 || lb.sum[pick] < bestGain {
			break // nothing unevaluated can reach the best exact gain
		}
		if lb.sum[pick] == bestGain && best >= 0 {
			// A bound-tied policy can at most tie the best exact gain.
			// prev is already evaluated (see above), so the only way a
			// tie changes the winner is through a lower index — and pick
			// is the lowest-indexed candidate left.
			if (preferStay && best == prev) || pick > best {
				break
			}
		}
		eval(pick)
	}
	return best
}
