package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"haste/internal/geom"
	"haste/internal/model"
)

func TestTabularGreedyEmptyProblem(t *testing.T) {
	in := oneTaskInstance(480, 0, 2)
	in.Tasks = nil
	p := mustProblem(t, in)
	res := TabularGreedy(p, DefaultOptions(1))
	if res.RUtility != 0 {
		t.Errorf("utility on empty task set = %v", res.RUtility)
	}
}

func TestTabularGreedyFillsAllPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, colors := range []int{1, 4} {
		in := randomFieldInstance(rng, 5, 20, 8, 40)
		p := mustProblem(t, in)
		res := TabularGreedy(p, Options{Colors: colors, PreferStay: true})
		for i, row := range res.Schedule.Policy {
			if len(row) != p.K {
				t.Fatalf("charger %d schedule has %d slots, want %d", i, len(row), p.K)
			}
			for k, pol := range row {
				if pol < 0 || pol >= len(p.Gamma[i]) {
					t.Fatalf("C=%d: invalid policy %d at (%d,%d)", colors, pol, i, k)
				}
			}
		}
		if got := Evaluate(p, res.Schedule); !almostEq(got, res.RUtility) {
			t.Fatalf("C=%d: RUtility %v != Evaluate %v", colors, res.RUtility, got)
		}
		if res.RUtility < 0 || res.RUtility > in.TotalWeight()+1e-9 {
			t.Fatalf("C=%d: utility %v outside [0, %v]", colors, res.RUtility, in.TotalWeight())
		}
	}
}

func TestTabularGreedyDeterministicForC1(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	in := randomFieldInstance(rng, 5, 20, 8, 40)
	p := mustProblem(t, in)
	a := TabularGreedy(p, DefaultOptions(1))
	b := TabularGreedy(p, DefaultOptions(1))
	for i := range a.Schedule.Policy {
		for k := range a.Schedule.Policy[i] {
			if a.Schedule.Policy[i][k] != b.Schedule.Policy[i][k] {
				t.Fatalf("C=1 nondeterministic at (%d,%d)", i, k)
			}
		}
	}
}

// The locally greedy algorithm guarantees f(greedy) ≥ ½·f(X) for every
// feasible X (it is ½-approximate against OPT). Check against random
// feasible schedules.
func TestTabularGreedyHalfApproxAgainstRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		in := randomFieldInstance(rng, 4, 12, 6, 30)
		p := mustProblem(t, in)
		res := TabularGreedy(p, DefaultOptions(1))
		for x := 0; x < 20; x++ {
			s := NewSchedule(len(in.Chargers), p.K)
			for i := range s.Policy {
				for k := range s.Policy[i] {
					s.Policy[i][k] = rng.Intn(len(p.Gamma[i]))
				}
			}
			if u := Evaluate(p, s); res.RUtility < u/2-1e-9 {
				t.Fatalf("trial %d: greedy %v < ½·%v", trial, res.RUtility, u)
			}
		}
	}
}

// PreferStay must keep the previous policy on exact marginal ties instead
// of jumping back to the lowest index.
func TestTabularGreedyPreferStay(t *testing.T) {
	// Charger at origin. Task 0 (policy 0, azimuth 0°) saturates within
	// one slot; task 1 (policy 1, azimuth 180°) needs exactly two slots.
	// Greedy picks pol0@k0, pol1@k1, pol1@k2; from k3 on all marginals are
	// zero: PreferStay keeps pol1, without it the charger flips to pol0.
	in := &model.Instance{
		Chargers: []model.Charger{{ID: 0, Pos: geom.Point{X: 0, Y: 0}}},
		Tasks: []model.Task{
			{ID: 0, Pos: geom.Point{X: 10, Y: 0}, Phi: math.Pi, Release: 0, End: 5, Energy: 240, Weight: 0.5},
			{ID: 1, Pos: geom.Point{X: -10, Y: 0}, Phi: 0, Release: 0, End: 5, Energy: 480, Weight: 0.5},
		},
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(60),
			SlotSeconds: 60, Rho: 0, Tau: 0,
		},
	}
	p := mustProblem(t, in)
	if len(p.Gamma[0]) != 2 {
		t.Fatalf("want 2 policies, got %v", p.Gamma[0])
	}
	// Identify which policy covers task 0.
	pol0 := 0
	if p.Gamma[0][0].Covers[0] != 0 {
		pol0 = 1
	}
	pol1 := 1 - pol0

	stay := TabularGreedy(p, Options{Colors: 1, PreferStay: true})
	want := []int{pol0, pol1, pol1, pol1, pol1}
	for k, w := range want {
		if got := stay.Schedule.Policy[0][k]; got != w {
			t.Errorf("PreferStay slot %d = %d, want %d", k, got, w)
		}
	}
	noStay := TabularGreedy(p, Options{Colors: 1, PreferStay: false})
	if got := noStay.Schedule.Policy[0][3]; got != pol0 {
		t.Errorf("without PreferStay slot 3 = %d, want lowest index %d", got, pol0)
	}
	// Utilities identical either way: both saturate both tasks.
	if !almostEq(stay.RUtility, 1) || !almostEq(noStay.RUtility, 1) {
		t.Errorf("utilities = %v, %v, want 1", stay.RUtility, noStay.RUtility)
	}
}

// More colors should not hurt much; on average they help (Figs. 7/15).
func TestTabularGreedyColorsSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	var sum1, sum4 float64
	for trial := 0; trial < 10; trial++ {
		in := randomFieldInstance(rng, 5, 24, 8, 40)
		p := mustProblem(t, in)
		u1 := TabularGreedy(p, Options{Colors: 1, PreferStay: true}).RUtility
		u4 := TabularGreedy(p, Options{Colors: 4, PreferStay: true,
			Rng: rand.New(rand.NewSource(int64(trial)))}).RUtility
		sum1 += u1
		sum4 += u4
		if u4 < 0.8*u1 {
			t.Errorf("trial %d: C=4 utility %v collapsed vs C=1 %v", trial, u4, u1)
		}
	}
	if sum4 < 0.95*sum1 {
		t.Errorf("C=4 aggregate %v much worse than C=1 %v", sum4, sum1)
	}
}

func TestGlobalGreedyMatchesLazyAndEager(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 15; trial++ {
		in := randomFieldInstance(rng, 4, 15, 6, 30)
		p := mustProblem(t, in)
		eager := GlobalGreedy(p, false)
		lazy := GlobalGreedy(p, true)
		if math.Abs(eager.RUtility-lazy.RUtility) > 1e-6 {
			t.Fatalf("trial %d: eager %v != lazy %v", trial, eager.RUtility, lazy.RUtility)
		}
		if got := Evaluate(p, lazy.Schedule); !almostEq(got, lazy.RUtility) {
			t.Fatalf("lazy RUtility inconsistent: %v vs %v", lazy.RUtility, got)
		}
	}
}

// Global greedy and locally greedy are both valid ½-approximations and
// should land in the same ballpark.
func TestGlobalGreedyComparableToLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 10; trial++ {
		in := randomFieldInstance(rng, 5, 20, 6, 35)
		p := mustProblem(t, in)
		local := TabularGreedy(p, DefaultOptions(1)).RUtility
		global := GlobalGreedy(p, true).RUtility
		if global < 0.5*local-1e-9 || local < 0.5*global-1e-9 {
			t.Fatalf("trial %d: local %v vs global %v diverge beyond ½", trial, local, global)
		}
	}
}

// argmaxPolicy is the single reduction defining the selection's tie
// semantics for the sequential, parallel and lazy paths. The table pins
// the rule: maximum gain wins; on exact equality prev wins under
// preferStay no matter where prev sits in the scan order (the subtlety the
// old selectPolicy structure made easy to break); otherwise lowest index.
func TestArgmaxPolicyTieSemantics(t *testing.T) {
	cases := []struct {
		name       string
		gains      []float64
		prev       int
		preferStay bool
		want       int
	}{
		{"single policy", []float64{0}, -1, true, 0},
		{"strict max wins", []float64{1, 3, 2}, 0, true, 1},
		{"tie goes to lowest index without prev", []float64{2, 2, 1}, -1, true, 0},
		{"prev wins tie when scanned later", []float64{2, 1, 2}, 2, true, 2},
		{"prev wins tie when scanned first", []float64{2, 2}, 0, true, 0},
		{"prev wins tie in the middle", []float64{5, 5, 5}, 1, true, 1},
		{"prev loses when strictly beaten", []float64{2, 3}, 0, true, 1},
		{"prev ties runner-up only", []float64{1, 2, 1}, 2, true, 1},
		{"preferStay off ignores prev", []float64{2, 1, 2}, 2, false, 0},
		{"all-zero saturation keeps prev", []float64{0, 0, 0, 0}, 3, true, 3},
		{"all-zero saturation without prev", []float64{0, 0, 0}, -1, true, 0},
		{"prev out of range is ignored", []float64{1, 1}, 7, true, 0},
		{"no previous slot", []float64{4, 4}, -1, false, 0},
	}
	for _, c := range cases {
		if got := argmaxPolicy(c.gains, c.prev, c.preferStay); got != c.want {
			t.Errorf("%s: argmaxPolicy(%v, prev=%d, stay=%v) = %d, want %d",
				c.name, c.gains, c.prev, c.preferStay, got, c.want)
		}
	}
}

// The full selection must agree with argmaxPolicy's semantics end-to-end:
// for C = 1 the schedule is exactly the sequence of reference selections,
// so replaying selectPolicy slot by slot must reproduce every cell — under
// every execution strategy, ties included.
func TestSelectPolicyTieRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	in := randomFieldInstance(rng, 3, 10, 6, 30)
	p := mustProblem(t, in)
	maxPol := 0
	for _, g := range p.Gamma {
		if len(g) > maxPol {
			maxPol = len(g)
		}
	}
	for _, opt := range []Options{
		{Colors: 1, PreferStay: true, Workers: 1},
		{Colors: 1, PreferStay: true, Workers: 4},
		{Colors: 1, PreferStay: true, Workers: 1, Lazy: true},
	} {
		res := TabularGreedy(p, opt)
		es := NewEnergyState(p)
		gains := make([]float64, maxPol)
		for k := 0; k < p.K; k++ {
			for i := range p.Gamma {
				prev := -1
				if k > 0 {
					prev = res.Schedule.Policy[i][k-1]
				}
				want := selectPolicy(p, []*EnergyState{es}, []int{0}, i, k, prev, true, gains)
				if got := res.Schedule.Policy[i][k]; got != want {
					t.Fatalf("workers=%d lazy=%v: charger %d slot %d chose %d, reference selection %d",
						opt.Workers, opt.Lazy, i, k, got, want)
				}
				es.Apply(i, k, want)
			}
		}
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Colors != 1 || o.Samples != 1 || o.Rng == nil {
		t.Errorf("defaults wrong: %+v", o)
	}
	o = Options{Colors: 4}.normalize()
	if o.Samples != 32 {
		t.Errorf("Samples default = %d, want 32", o.Samples)
	}
	o = Options{Colors: 4, Samples: 10}.normalize()
	if o.Samples != 10 {
		t.Errorf("explicit Samples overridden: %d", o.Samples)
	}
	o = Options{Colors: 1000}.normalize()
	if o.Colors != 255 {
		t.Errorf("Colors not clamped: %d", o.Colors)
	}
	if o := (Options{}).normalize(); o.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers default = %d, want GOMAXPROCS %d", o.Workers, runtime.GOMAXPROCS(0))
	}
	if o := (Options{Workers: 3}).normalize(); o.Workers != 3 {
		t.Errorf("explicit Workers overridden: %d", o.Workers)
	}
}
