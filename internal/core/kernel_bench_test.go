package core

import (
	"math/rand"
	"testing"
)

// White-box micro-benchmarks of the flat kernel's batched loops — the
// entry-major scans the sequential TabularGreedy path runs once per
// (partition, step). BENCH_core.json records the measured numbers; the CI
// benchmark-smoke job runs these at -benchtime=1x to catch path breakage.

func benchProblem(b *testing.B) *Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	p, err := NewProblem(randomFieldInstance(rng, 8, 64, 10, 30))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchStates builds nSt sample states with some accumulated energy so the
// scans run over a realistic mix of partial and saturated tasks.
func benchStates(p *Problem, nSt int) ([]*EnergyState, []int) {
	states := make([]*EnergyState, nSt)
	affected := make([]int, nSt)
	for s := range states {
		states[s] = NewEnergyState(p)
		affected[s] = s
		for k := 0; k < p.K; k += 2 {
			for i := range p.Gamma {
				states[s].Apply(i, k, (s+i+k)%len(p.Gamma[i]))
			}
		}
	}
	return states, affected
}

func BenchmarkGainsBatchFlat(b *testing.B) {
	p := benchProblem(b)
	states, affected := benchStates(p, 16)
	nPol := len(p.Gamma[0])
	gains := make([]float64, nPol)
	acc := make([]float64, len(states))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gainsBatchFlat(p, states, affected, 0, i%p.K, nPol, gains, acc)
	}
}

func BenchmarkApplyBatchFlat(b *testing.B) {
	p := benchProblem(b)
	states, affected := benchStates(p, 16)
	acc := make([]float64, len(states))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		applyBatchFlat(p, states, affected, 0, i%p.K, i%len(p.Gamma[0]), acc)
	}
}

func BenchmarkMarginalFlatVsGeneric(b *testing.B) {
	for _, cfg := range []struct {
		name string
		flat bool
	}{{"flat", true}, {"generic", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			p := benchProblem(b)
			p.SetFlatKernel(cfg.flat)
			states, _ := benchStates(p, 1)
			es := states[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch := i % len(p.Gamma)
				es.Marginal(ch, i%p.K, i%len(p.Gamma[ch]))
			}
		})
	}
}
