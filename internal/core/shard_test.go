package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"haste/internal/geom"
	"haste/internal/model"
	"haste/internal/workload"
)

// shardProblem builds a clustered multi-component problem.
func shardProblem(t testing.TB, seed int64, clusters, chargers, tasks int) *Problem {
	t.Helper()
	cfg := workload.Default()
	cfg.NumChargers = chargers
	cfg.NumTasks = tasks
	cfg.DurationMin, cfg.DurationMax = 4, 10
	cfg.ReleaseMax = 6
	cfg.EnergyMin, cfg.EnergyMax = 1e3, 6e3
	cfg.Placement = workload.Clustered
	cfg.NumClusters = clusters
	cfg.Params.Radius = 8
	cfg.ClusterRadius = 6
	in := cfg.Generate(rand.New(rand.NewSource(seed)))
	p, err := NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkPartition asserts the decomposer's core contract on a problem:
// every charger and every task appears in exactly one component, members
// are ascending, no chargeable pair crosses a component boundary, and
// every component is internally connected under the chargeable relation
// (the decomposer neither splits nor over-merges).
func checkPartition(t *testing.T, p *Problem) {
	t.Helper()
	in := p.In
	n, m := len(in.Chargers), len(in.Tasks)
	comps := p.Components()

	chargerComp := make([]int, n)
	taskComp := make([]int, m)
	for v := range chargerComp {
		chargerComp[v] = -1
	}
	for v := range taskComp {
		taskComp[v] = -1
	}
	for ci, comp := range comps {
		if len(comp.Chargers) == 0 && len(comp.Tasks) == 0 {
			t.Fatalf("component %d is empty", ci)
		}
		for idx, i := range comp.Chargers {
			if idx > 0 && comp.Chargers[idx-1] >= i {
				t.Fatalf("component %d chargers not ascending: %v", ci, comp.Chargers)
			}
			if chargerComp[i] != -1 {
				t.Fatalf("charger %d in components %d and %d", i, chargerComp[i], ci)
			}
			chargerComp[i] = ci
		}
		for idx, j := range comp.Tasks {
			if idx > 0 && comp.Tasks[idx-1] >= j {
				t.Fatalf("component %d tasks not ascending: %v", ci, comp.Tasks)
			}
			if taskComp[j] != -1 {
				t.Fatalf("task %d in components %d and %d", j, taskComp[j], ci)
			}
			taskComp[j] = ci
		}
	}
	for i, ci := range chargerComp {
		if ci == -1 {
			t.Fatalf("charger %d in no component", i)
		}
	}
	for j, cj := range taskComp {
		if cj == -1 {
			t.Fatalf("task %d in no component", j)
		}
	}

	// No chargeable pair — hence no cover entry — crosses a boundary, and
	// chargeable pairs are always in the same component.
	for i, c := range in.Chargers {
		for j, tk := range in.Tasks {
			if in.Params.Chargeable(c, tk) && chargerComp[i] != taskComp[j] {
				t.Fatalf("chargeable pair (charger %d, task %d) spans components %d and %d",
					i, j, chargerComp[i], taskComp[j])
			}
		}
	}

	// Cover lists stay inside their component.
	for i, g := range p.Gamma {
		for _, pol := range g {
			for _, j := range pol.Covers {
				if chargerComp[i] != taskComp[j] {
					t.Fatalf("cover entry (charger %d, task %d) spans components", i, j)
				}
			}
		}
	}

	// Minimality: each component is connected via chargeable edges (BFS
	// from its first node must reach every member).
	for ci, comp := range comps {
		size := len(comp.Chargers) + len(comp.Tasks)
		if size == 1 {
			continue
		}
		seen := make(map[int]bool, size) // charger i → node i, task j → node n+j
		var frontier []int
		if len(comp.Chargers) > 0 {
			frontier = []int{comp.Chargers[0]}
		} else {
			frontier = []int{n + comp.Tasks[0]}
		}
		seen[frontier[0]] = true
		for len(frontier) > 0 {
			v := frontier[0]
			frontier = frontier[1:]
			if v < n {
				for _, j := range comp.Tasks {
					if !seen[n+j] && in.Params.Chargeable(in.Chargers[v], in.Tasks[j]) {
						seen[n+j] = true
						frontier = append(frontier, n+j)
					}
				}
			} else {
				for _, i := range comp.Chargers {
					if !seen[i] && in.Params.Chargeable(in.Chargers[i], in.Tasks[v-n]) {
						seen[i] = true
						frontier = append(frontier, i)
					}
				}
			}
		}
		if len(seen) != size {
			t.Fatalf("component %d is not connected: reached %d of %d members", ci, len(seen), size)
		}
	}
}

// TestComponentsPartition: the decomposer yields a true partition with
// intra-component connectivity on seeded random geometry — clustered
// fields that genuinely decompose and the paper's dense uniform field.
func TestComponentsPartition(t *testing.T) {
	for seed := int64(301); seed < 306; seed++ {
		p := shardProblem(t, seed, 5, 10, 30)
		if got := len(p.Components()); got < 5 {
			t.Fatalf("seed %d: clustered field gave only %d components", seed, got)
		}
		checkPartition(t, p)
	}
	// Dense uniform field (paper defaults, small): whatever the component
	// structure, the partition contract must hold.
	for seed := int64(311); seed < 314; seed++ {
		cfg := workload.Default()
		cfg.NumChargers, cfg.NumTasks = 8, 24
		in := cfg.Generate(rand.New(rand.NewSource(seed)))
		p, err := NewProblem(in)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, p)
	}
}

// degenerateInstance builds a hand-laid instance: chargers on one row,
// tasks on another, with the given params.
func degenerateInstance(params model.Params, n, m int, spacing float64, taskY float64) *model.Instance {
	in := &model.Instance{Params: params}
	for i := 0; i < n; i++ {
		in.Chargers = append(in.Chargers, model.Charger{ID: i, Pos: geom.Point{X: float64(i) * spacing}})
	}
	for j := 0; j < m; j++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID: j, Pos: geom.Point{X: float64(j) * spacing, Y: taskY},
			Phi: 0, Release: 0, End: 4, Energy: 100, Weight: 1,
		})
	}
	return in
}

// TestComponentsDegenerate: the all-isolated and fully-connected extremes.
func TestComponentsDegenerate(t *testing.T) {
	base := model.Params{
		Alpha: 100, Beta: 1, Radius: 1,
		ChargeAngle: geom.Deg(60), ReceiveAngle: geom.TwoPi,
		SlotSeconds: 60, Tau: 1,
	}

	t.Run("all-isolated", func(t *testing.T) {
		// Radius 1, everything ≥ 10 apart: no chargeable pair at all, so
		// every charger and every task is its own singleton component.
		p, err := NewProblem(degenerateInstance(base, 4, 6, 10, 50))
		if err != nil {
			t.Fatal(err)
		}
		if got := len(p.Components()); got != 10 {
			t.Fatalf("components = %d, want 10 singletons", got)
		}
		if got := p.SchedulableComponents(); got != 0 {
			t.Fatalf("schedulable = %d, want 0", got)
		}
		checkPartition(t, p)
		// A forced sharded run on a fully unschedulable instance: empty
		// schedule, zero utility, zero shards.
		res := TabularGreedy(p, Options{Colors: 2, PreferStay: true, Workers: 2, Shard: ShardOn,
			Rng: rand.New(rand.NewSource(1))})
		if res.Shards != 0 || res.RUtility != 0 {
			t.Fatalf("isolated instance: Shards=%d RUtility=%v", res.Shards, res.RUtility)
		}
		for _, row := range res.Schedule.Policy {
			for _, pol := range row {
				if pol != -1 {
					t.Fatalf("isolated instance scheduled a policy: %v", res.Schedule.Policy)
				}
			}
		}
	})

	t.Run("fully-connected", func(t *testing.T) {
		// A radius past every pairwise distance and full-circle receive
		// sectors: one component containing everything.
		params := base
		params.Radius = 1000
		p, err := NewProblem(degenerateInstance(params, 4, 6, 10, 50))
		if err != nil {
			t.Fatal(err)
		}
		if got := len(p.Components()); got != 1 {
			t.Fatalf("components = %d, want 1", got)
		}
		comp := p.Components()[0]
		if len(comp.Chargers) != 4 || len(comp.Tasks) != 6 {
			t.Fatalf("component = %+v, want all chargers and tasks", comp)
		}
		checkPartition(t, p)
		// Single component under ShardOn must be bit-identical to the
		// monolithic run, padding included (the component horizon is K).
		mono := TabularGreedy(p, Options{Colors: 3, PreferStay: true, Workers: 1,
			Rng: rand.New(rand.NewSource(5))})
		shard := TabularGreedy(p, Options{Colors: 3, PreferStay: true, Workers: 1, Shard: ShardOn,
			Rng: rand.New(rand.NewSource(5))})
		if shard.Shards != 1 {
			t.Fatalf("Shards = %d, want 1", shard.Shards)
		}
		if shard.RUtility != mono.RUtility {
			t.Fatalf("RUtility %v != %v", shard.RUtility, mono.RUtility)
		}
		for i := range mono.Schedule.Policy {
			for k := range mono.Schedule.Policy[i] {
				if shard.Schedule.Policy[i][k] != mono.Schedule.Policy[i][k] {
					t.Fatalf("schedule differs at (%d,%d)", i, k)
				}
			}
		}
	})
}

// TestComponentsPermutationInvariant: permuting charger and task indices
// permutes the decomposition but cannot change it — the components of the
// permuted instance, mapped back through the permutation, are exactly the
// components of the original.
func TestComponentsPermutationInvariant(t *testing.T) {
	p := shardProblem(t, 401, 4, 8, 24)
	rng := rand.New(rand.NewSource(402))
	in := p.In
	n, m := len(in.Chargers), len(in.Tasks)

	cperm := rng.Perm(n) // position li in the permuted instance holds original charger cperm[li]
	tperm := rng.Perm(m)
	pin := &model.Instance{Params: in.Params, Utility: in.Utility}
	for li, oi := range cperm {
		ch := in.Chargers[oi]
		ch.ID = li
		pin.Chargers = append(pin.Chargers, ch)
	}
	for lj, oj := range tperm {
		tk := in.Tasks[oj]
		tk.ID = lj
		pin.Tasks = append(pin.Tasks, tk)
	}
	pp, err := NewProblem(pin)
	if err != nil {
		t.Fatal(err)
	}

	canon := func(comps []Component, cmap, tmap []int) map[string]bool {
		set := make(map[string]bool, len(comps))
		for _, comp := range comps {
			key := make([]byte, 0, 4*(len(comp.Chargers)+len(comp.Tasks)))
			ids := make([]int, 0, len(comp.Chargers)+len(comp.Tasks))
			for _, i := range comp.Chargers {
				ids = append(ids, cmap[i])
			}
			for _, j := range comp.Tasks {
				ids = append(ids, n+tmap[j])
			}
			// Sort into a canonical membership string.
			for a := 1; a < len(ids); a++ {
				for b := a; b > 0 && ids[b-1] > ids[b]; b-- {
					ids[b-1], ids[b] = ids[b], ids[b-1]
				}
			}
			for _, id := range ids {
				key = append(key, byte(id>>8), byte(id), ',')
			}
			set[string(key)] = true
		}
		return set
	}
	ident := make([]int, n+m)
	for v := range ident {
		ident[v] = v
	}
	identT := make([]int, m)
	for v := range identT {
		identT[v] = v
	}
	orig := canon(p.Components(), ident[:n], identT)
	perm := canon(pp.Components(), cperm, tperm)
	if len(orig) != len(perm) {
		t.Fatalf("component count changed under permutation: %d != %d", len(perm), len(orig))
	}
	for key := range orig {
		if !perm[key] {
			t.Fatalf("a component of the original is missing from the permuted decomposition")
		}
	}
	if pp.SchedulableComponents() != p.SchedulableComponents() {
		t.Fatalf("schedulable count changed under permutation: %d != %d",
			pp.SchedulableComponents(), p.SchedulableComponents())
	}
}

// TestAssignedHorizons: every charger's assigned horizon is the max End
// over its component's tasks, zero for chargers with no reachable task,
// and never exceeds the global horizon. Cross-checked against the
// decomposition and against each component sub-instance's own Horizon().
func TestAssignedHorizons(t *testing.T) {
	p := shardProblem(t, 601, 5, 10, 30)
	hor := p.AssignedHorizons()
	if len(hor) != len(p.In.Chargers) {
		t.Fatalf("len = %d, want %d", len(hor), len(p.In.Chargers))
	}
	for ci, comp := range p.Components() {
		end := 0
		for _, gj := range comp.Tasks {
			if e := p.In.Tasks[gj].End; e > end {
				end = e
			}
		}
		for _, gi := range comp.Chargers {
			if hor[gi] != end {
				t.Fatalf("charger %d (component %d): horizon %d, want %d", gi, ci, hor[gi], end)
			}
			if hor[gi] > p.K {
				t.Fatalf("charger %d horizon %d exceeds global K %d", gi, hor[gi], p.K)
			}
		}
		if len(comp.Chargers) > 0 && len(comp.Tasks) > 0 {
			sub := sliceInstance(p.In, comp)
			if sub.Horizon() != end {
				t.Fatalf("component %d: sub horizon %d != assigned horizon %d", ci, sub.Horizon(), end)
			}
		}
	}

	// Isolated chargers (no reachable task) get horizon 0.
	base := model.Params{
		Alpha: 100, Beta: 1, Radius: 1,
		ChargeAngle: geom.Deg(60), ReceiveAngle: geom.TwoPi,
		SlotSeconds: 60, Tau: 1,
	}
	iso, err := NewProblem(degenerateInstance(base, 4, 6, 10, 50))
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range iso.AssignedHorizons() {
		if h != 0 {
			t.Fatalf("isolated charger %d: horizon %d, want 0", i, h)
		}
	}
}

// TestShardedAutoThreshold: ShardAuto shards exactly when the schedulable
// component count reaches the threshold.
func TestShardedAutoThreshold(t *testing.T) {
	p := shardProblem(t, 501, 5, 10, 30)
	nc := p.SchedulableComponents()
	if nc < 2 {
		t.Fatalf("want a multi-component instance, got %d", nc)
	}
	opts := func(thr int) Options {
		return Options{Colors: 1, PreferStay: true, Workers: 1, ShardThreshold: thr,
			Rng: rand.New(rand.NewSource(1))}
	}
	if res := TabularGreedy(p, opts(nc)); res.Shards != nc {
		t.Fatalf("threshold %d on %d components: Shards = %d, want %d", nc, nc, res.Shards, nc)
	}
	if res := TabularGreedy(p, opts(nc+1)); res.Shards != 0 {
		t.Fatalf("threshold %d on %d components: Shards = %d, want monolithic 0", nc+1, nc, res.Shards)
	}
}

// TestShardedCtxUncancelled: the sharded ctx run with a live context is
// identical to the sharded plain run, and both agree with the monolithic
// utility.
func TestShardedCtxUncancelled(t *testing.T) {
	p := shardProblem(t, 502, 5, 10, 30)
	for _, workers := range []int{1, 4} {
		opt := Options{Colors: 3, PreferStay: true, Workers: workers, Shard: ShardOn,
			Rng: rand.New(rand.NewSource(7))}
		want := TabularGreedy(p, opt)
		opt.Rng = rand.New(rand.NewSource(7))
		got, err := TabularGreedyCtx(context.Background(), p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.RUtility != want.RUtility || got.Shards != want.Shards {
			t.Fatalf("workers=%d: ctx run diverged: %v/%d != %v/%d",
				workers, got.RUtility, got.Shards, want.RUtility, want.Shards)
		}
		for i := range want.Schedule.Policy {
			for k := range want.Schedule.Policy[i] {
				if got.Schedule.Policy[i][k] != want.Schedule.Policy[i][k] {
					t.Fatalf("workers=%d: schedule differs at (%d,%d)", workers, i, k)
				}
			}
		}
		mono := TabularGreedy(p, Options{Colors: 3, PreferStay: true, Workers: 1, Shard: ShardOff,
			Rng: rand.New(rand.NewSource(7))})
		if got.RUtility != mono.RUtility {
			t.Fatalf("workers=%d: sharded utility %v != monolithic %v", workers, got.RUtility, mono.RUtility)
		}
	}
}

// TestShardedCtxMidRunCancel: cancelling a sharded concurrent run returns
// promptly, leaks zero pooled states across the parent problem AND every
// component sub-Problem, and leaves the problem reusable bit-identically.
func TestShardedCtxMidRunCancel(t *testing.T) {
	p := shardProblem(t, 503, 6, 12, 48)
	opts := func() Options {
		return Options{Colors: 8, PreferStay: true, Workers: 4, Shard: ShardOn,
			Rng: rand.New(rand.NewSource(9))}
	}
	full := TabularGreedy(p, opts())
	base := p.StatesInUse()
	if base != 0 {
		t.Fatalf("states in use after a completed sharded run: %d", base)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := TabularGreedyCtx(ctx, p, opts())
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled sharded run did not return within 10s")
	}

	// Zero leaked pooled states — the aggregate covers every sub-Problem,
	// and each sub's own balance must be zero too.
	if got := p.StatesInUse(); got != 0 {
		t.Fatalf("pooled states leaked after sharded cancel: %d", got)
	}
	for ci, sub := range *p.subs.Load() {
		if sub != nil && sub.statesOut.Load() != 0 {
			t.Fatalf("component %d sub-problem leaked %d states", ci, sub.statesOut.Load())
		}
	}

	// Problem (and its cached sub-Problems) remain reusable.
	again, err := TabularGreedyCtx(context.Background(), p, opts())
	if err != nil {
		t.Fatal(err)
	}
	if again.RUtility != full.RUtility {
		t.Fatalf("post-cancel sharded rerun diverged: %v != %v", again.RUtility, full.RUtility)
	}
	for i := range full.Schedule.Policy {
		for k := range full.Schedule.Policy[i] {
			if again.Schedule.Policy[i][k] != full.Schedule.Policy[i][k] {
				t.Fatalf("post-cancel rerun schedule differs at (%d,%d)", i, k)
			}
		}
	}
}

// TestShardedStatesBalance: sharded runs at several worker counts drive
// the aggregated pool balance back to zero, and repeated runs reuse the
// cached decomposition (pointer-stable components).
func TestShardedStatesBalance(t *testing.T) {
	p := shardProblem(t, 504, 4, 8, 24)
	comps := p.Components()
	for _, workers := range []int{1, 2, 8} {
		res := TabularGreedy(p, Options{Colors: 2, PreferStay: true, Workers: workers, Shard: ShardOn,
			Rng: rand.New(rand.NewSource(3))})
		if res.Shards == 0 {
			t.Fatalf("workers=%d: expected a sharded run", workers)
		}
		if got := p.StatesInUse(); got != 0 {
			t.Fatalf("workers=%d: %d pooled states in use after run", workers, got)
		}
	}
	if &comps[0] != &p.Components()[0] {
		t.Fatal("component cache was rebuilt between runs")
	}
}
