// Differential tests: every execution strategy of TabularGreedy — the
// pooled parallel fan at any worker count and the lazy stale-bound
// selector — must reproduce the sequential reference byte-for-byte on the
// seeded workload sweep. This file (with the internal/difftest harness) is
// the determinism contract of DESIGN.md §3 "Parallel execution &
// determinism"; CI additionally runs it under the race detector.
package core_test

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/difftest"
)

// TestTabularGreedyDifferentialSweep is the acceptance-criteria suite: for
// every seeded case, Workers ∈ {1, 2, 8, GOMAXPROCS} and the lazy variant
// produce identical Schedule.Policy tables and equal RUtility.
func TestTabularGreedyDifferentialSweep(t *testing.T) {
	for _, c := range difftest.Sweep() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if err := difftest.Run(c, difftest.Variants()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestShardedDifferentialSweep is the shard-and-stitch acceptance suite:
// for every clustered multi-component and fully connected case, a
// ShardOn run of every execution variant (workers, lazy, threshold,
// generic kernel, instrumented scan) reproduces the monolithic Workers=1
// reference under the stitching contract — bit-identical on connected
// instances, exact utility equality plus per-component schedule identity
// on multi-component ones. See difftest.RunSharded.
func TestShardedDifferentialSweep(t *testing.T) {
	for _, c := range difftest.ShardSweep() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if err := difftest.RunSharded(c, difftest.Variants()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestMutationWalkDifferentialSweep is the incremental-scheduling
// acceptance suite: a ≥100-step random add/remove walk through the delta
// operations, where after every step the patched problem must equal a
// from-scratch compile, and periodic warm-started solves under every
// execution variant (workers, lazy, generic kernel) must be bit-identical
// to cold solves of freshly compiled problems. The clustered cases must
// actually adopt untouched components across the walk, or the warm-start
// machinery would be passing vacuously.
func TestMutationWalkDifferentialSweep(t *testing.T) {
	steps, solveEvery := 120, 6
	if testing.Short() {
		steps = 30
	}
	for _, c := range difftest.MutationSweep() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			reused, err := difftest.RunMutationWalk(c, difftest.MutationVariants(), steps, solveEvery)
			if err != nil {
				t.Fatal(err)
			}
			if c.Clusters > 1 && reused == 0 {
				t.Error("no component was ever adopted warm — the sweep is vacuous")
			}
		})
	}
}

// TestTabularGreedyWorkerCountIrrelevant drives one mid-size C > 1 case
// through a denser worker-count grid than the standard variant set,
// including counts far above both GOMAXPROCS and the sample count.
func TestTabularGreedyWorkerCountIrrelevant(t *testing.T) {
	c := difftest.Case{Name: "worker-grid", Chargers: 6, Tasks: 24,
		Duration: [2]int{4, 10}, Releases: 5, Colors: 3, Samples: 9, Seed: 42}
	p, err := c.Problem()
	if err != nil {
		t.Fatal(err)
	}
	ref := core.TabularGreedy(p, c.Options(1, false))
	for _, w := range []int{2, 3, 4, 5, 7, 16, 64} {
		got := core.TabularGreedy(p, c.Options(w, false))
		if err := difftest.CompareResults(ref, got); err != nil {
			t.Errorf("workers=%d: %v", w, err)
		}
	}
}

// TestTabularGreedyLazyParallelComposition checks the remaining option
// combinations: Lazy together with a Workers override (lazy selection is
// sequential by design, but the options must still compose), and
// PreferStay off under every strategy.
func TestTabularGreedyLazyParallelComposition(t *testing.T) {
	c := difftest.Case{Name: "compose", Chargers: 5, Tasks: 20,
		Duration: [2]int{3, 9}, Releases: 4, Colors: 2, Seed: 77}
	p, err := c.Problem()
	if err != nil {
		t.Fatal(err)
	}
	for _, preferStay := range []bool{true, false} {
		mkOpts := func(workers int, lazy bool) core.Options {
			o := c.Options(workers, lazy)
			o.PreferStay = preferStay
			return o
		}
		ref := core.TabularGreedy(p, mkOpts(1, false))
		for _, v := range []struct {
			name    string
			workers int
			lazy    bool
		}{{"lazy+workers4", 4, true}, {"workers3", 3, false}, {"lazy", 1, true}} {
			got := core.TabularGreedy(p, mkOpts(v.workers, v.lazy))
			if err := difftest.CompareResults(ref, got); err != nil {
				t.Errorf("preferStay=%v %s: %v", preferStay, v.name, err)
			}
		}
	}
}

// TestCompareResultsDetectsDivergence guards the harness itself: a flipped
// policy cell and a perturbed utility must both be reported.
func TestCompareResultsDetectsDivergence(t *testing.T) {
	c := difftest.Sweep()[0]
	p, err := c.Problem()
	if err != nil {
		t.Fatal(err)
	}
	ref := core.TabularGreedy(p, c.Options(1, false))
	if err := difftest.CompareResults(ref, ref); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}

	mut := core.Result{Schedule: ref.Schedule.Clone(), RUtility: ref.RUtility}
	rng := rand.New(rand.NewSource(1))
	i := rng.Intn(len(mut.Schedule.Policy))
	k := rng.Intn(len(mut.Schedule.Policy[i]))
	mut.Schedule.Policy[i][k]++
	if err := difftest.CompareResults(ref, mut); err == nil {
		t.Error("flipped policy cell not detected")
	}

	mut = core.Result{Schedule: ref.Schedule.Clone(), RUtility: math.Nextafter(ref.RUtility, 2)}
	if err := difftest.CompareResults(ref, mut); err == nil {
		t.Error("one-ulp utility drift not detected")
	}
}
