package core

import (
	"sort"

	"haste/internal/model"
)

// This file is the flat marginal-evaluation kernel: the precompiled data
// layout and the inlined inner loops behind EnergyState.Marginal,
// MarginalUpper, MarginalScaled and ApplyScaled. The reference semantics
// are the generic loops in problem.go (pointer-chased Gamma covers +
// interface-dispatched Utility); the kernel must reproduce them bit for
// bit, which internal/difftest's kernel sweep and the property tests in
// kernel_test.go enforce. DESIGN.md §4 documents the layout and the
// bit-identity argument.
//
// Three ideas, compiled once per Problem:
//
//  1. Flat cover lists. Every Gamma[i][pol].Covers is compiled into a
//     dense []CoverEntry of (task, slotEnergy) pairs with zero-energy
//     pairs dropped, so the inner loop never touches model.Instance, the
//     2D slotEnergy table, or the de == 0 branch. Task weight, required
//     energy, release and end live in parallel SoA arrays indexed by task.
//  2. Inlined utility. When the instance uses the paper's default
//     linear-and-bounded utility U(x) = min(x/E, 1), the per-task utility
//     delta is computed inline with exactly LinearBounded.Of's branches —
//     no interface dispatch. Any other Utility takes the generic fallback
//     path in problem.go, unchanged from the pre-kernel code.
//  3. Work skipping that cannot change results. Per-policy slot windows
//     [winLo, winHi) skip whole scans in slots where no compiled task is
//     active (every term of the reference sum would be skipped by its
//     ActiveAt check), and per-EnergyState saturation pruning removes a
//     task from the scan lists of every policy covering it the moment its
//     energy reaches E_j (its utility delta is exactly +0.0 from then on,
//     and x + 0.0 == x for every x ≥ 0 in IEEE 754; gains are sums of
//     non-negative terms, so -0.0 never occurs). Removal preserves the
//     ascending-task scan order, so the surviving terms accumulate in the
//     reference order and not a single rounding step can differ.

// CoverEntry is one compiled (task, per-slot energy) pair of a policy's
// cover list. Compiled lists drop pairs with zero slot energy and keep
// ascending task order — the accumulation order of the reference kernel.
// The entry is deliberately minimal (16 bytes): per-task constants
// (weight, requirement, window) stay in the kernel's small SoA arrays,
// which the scans keep fully cached — fatter entries measurably lose more
// to memory traffic than they save in gather loads.
type CoverEntry struct {
	Task int32
	De   float64 // energy the task harvests per fully covered slot, > 0
}

// KernelStats counts the work of the flat kernel on one EnergyState (or,
// summed, on a scheduling run). Collection is opt-in per state (see
// EnableKernelStats); TabularGreedy enables it on its sample states when
// Options.KernelStats is set. The policy-fanned parallel path evaluates
// one state concurrently, so there each chunk counts into a private
// collector (selector.chunkStats) merged at the reduction barrier.
type KernelStats struct {
	Calls   int64 // flat marginal-kernel invocations
	Visited int64 // cover entries actually scanned
	Offered int64 // entries a scan without windows/pruning would visit
	Pruned  int64 // saturation-pruning removal events (net of reinsertions)
}

// Skipped returns the evaluations the windows and saturation pruning
// avoided: Offered − Visited.
func (s KernelStats) Skipped() int64 { return s.Offered - s.Visited }

func (s *KernelStats) add(o KernelStats) {
	s.Calls += o.Calls
	s.Visited += o.Visited
	s.Offered += o.Offered
	s.Pruned += o.Pruned
}

// kernel is the flat evaluation kernel compiled by NewProblem.
type kernel struct {
	linear   bool // inlined LinearBounded fast path active
	linearOK bool // the instance's utility is the paper's LinearBounded

	// SoA copies of the per-task fields the inner loops read.
	weight  []float64
	req     []float64
	release []int32
	end     []int32

	// Flat policy index space: policy pol of charger i is fp =
	// polOff[i] + pol. entries[fp] is the compiled cover list, sliced out
	// of one shared arena; winLo/winHi is the union slot window of its
	// tasks ([0,0) for empty lists, so they short-circuit everywhere).
	polOff  []int32
	entries [][]CoverEntry
	winLo   []int32
	winHi   []int32

	// taskPols[j]: the flat policies whose compiled list contains task j —
	// the reverse index saturation pruning walks when task j crosses E_j.
	taskPols [][]int32
}

func compileKernel(p *Problem) kernel {
	in := p.In
	m := len(in.Tasks)
	kn := kernel{
		weight:  make([]float64, m),
		req:     make([]float64, m),
		release: make([]int32, m),
		end:     make([]int32, m),
		polOff:  make([]int32, len(p.Gamma)),
	}
	_, kn.linearOK = in.U().(model.LinearBounded)
	kn.linear = kn.linearOK
	for j := range in.Tasks {
		t := &in.Tasks[j]
		kn.weight[j], kn.req[j] = t.Weight, t.Energy
		kn.release[j], kn.end[j] = int32(t.Release), int32(t.End)
	}

	nPols, total := 0, 0
	for i, g := range p.Gamma {
		kn.polOff[i] = int32(nPols)
		nPols += len(g)
		for _, pol := range g {
			for _, j := range pol.Covers {
				if p.SlotEnergy(i, j) != 0 {
					total++
				}
			}
		}
	}
	kn.entries = make([][]CoverEntry, nPols)
	kn.winLo = make([]int32, nPols)
	kn.winHi = make([]int32, nPols)
	arena := make([]CoverEntry, 0, total)
	fp := 0
	for i, g := range p.Gamma {
		for pol := range g {
			var start int
			arena, start, kn.winLo[fp], kn.winHi[fp] = appendPolicyEntries(p, &kn, i, pol, arena)
			kn.entries[fp] = arena[start:len(arena):len(arena)]
			fp++
		}
	}
	kn.buildTaskPols(m)
	return kn
}

// appendPolicyEntries compiles the cover list of policy pol of charger i
// onto arena: one CoverEntry per covered task with non-zero slot energy,
// in the cover order (ascending task), plus the union slot window of the
// appended tasks ([0,0) for an empty list). It is the single compilation
// of a policy's scan list — compileKernel and the incremental kernel
// patch (incremental.go) both call it, so a patched policy is
// bit-identical to a from-scratch compile by construction. kn only needs
// its release/end SoA columns populated for the policy's tasks.
func appendPolicyEntries(p *Problem, kn *kernel, i, pol int, arena []CoverEntry) (out []CoverEntry, start int, lo, hi int32) {
	start = len(arena)
	for _, j := range p.Gamma[i][pol].Covers {
		de := p.SlotEnergy(i, j)
		if de == 0 {
			continue
		}
		arena = append(arena, CoverEntry{Task: int32(j), De: de})
		if start == len(arena)-1 || kn.release[j] < lo {
			lo = kn.release[j]
		}
		if kn.end[j] > hi {
			hi = kn.end[j]
		}
	}
	return arena, start, lo, hi
}

// buildTaskPols (re)derives the saturation-pruning reverse index from the
// compiled cover lists: taskPols[j] lists, ascending, every flat policy
// whose list contains task j. Walking entries in flat-policy order
// reproduces exactly the appends the old inline construction performed.
func (kn *kernel) buildTaskPols(m int) {
	kn.taskPols = make([][]int32, m)
	for fp, list := range kn.entries {
		for _, e := range list {
			kn.taskPols[e.Task] = append(kn.taskPols[e.Task], int32(fp))
		}
	}
}

// flatPol maps (charger, policy) to the flat policy index.
func (kn *kernel) flatPol(i, pol int) int { return int(kn.polOff[i]) + pol }

// CompiledCovers returns the flat kernel's compiled cover list of policy
// pol of charger i: (task, slot energy) pairs with zero-energy pairs
// dropped, in ascending task order. Executors (package sim, emr) iterate
// it instead of pointer-chasing Gamma[i][pol].Covers through the instance.
func (p *Problem) CompiledCovers(i, pol int) []CoverEntry {
	return p.kern.entries[p.kern.flatPol(i, pol)]
}

// PolicyWindow returns the union activity window [lo, hi) of the policy's
// compiled tasks: outside it the policy cannot charge anything. Empty
// compiled lists report [0, 0).
func (p *Problem) PolicyWindow(i, pol int) (lo, hi int) {
	fp := p.kern.flatPol(i, pol)
	return int(p.kern.winLo[fp]), int(p.kern.winHi[fp])
}

// FlatKernel reports whether the inlined linear-bounded kernel is active
// (false for instances with a custom Utility, which take the generic
// interface-dispatch path).
func (p *Problem) FlatKernel() bool { return p.kern.linear }

// SetFlatKernel forces the evaluation kernel choice: SetFlatKernel(false)
// routes every EnergyState of this problem through the generic
// interface-dispatch fallback even for the default utility, and
// SetFlatKernel(true) re-enables the flat kernel where it is sound. This
// is a differential-testing hook (internal/difftest sweeps old vs new
// kernel with it); both settings are bit-identical by contract.
func (p *Problem) SetFlatKernel(on bool) { p.kern.linear = on && p.kern.linearOK }

// WeightedValue returns w_j·U(e) for task j, inlining the default
// linear-bounded utility when the flat kernel is active.
func (p *Problem) WeightedValue(j int, e float64) float64 {
	if kn := &p.kern; kn.linear {
		req := kn.req[j]
		var u float64
		if e >= req {
			u = 1
		} else if e > 0 {
			u = e / req
		}
		return kn.weight[j] * u
	}
	t := &p.In.Tasks[j]
	return t.Weight * p.In.U().Of(e, t.Energy)
}

// WeightedDelta returns w_j·(U(e+de) − U(e)) for task j — the utility
// increment one charging contribution adds — inlining the default
// linear-bounded utility when the flat kernel is active. The distributed
// online agents use it for their local energy views; it is bit-identical
// to the interface expression for every input.
func (p *Problem) WeightedDelta(j int, e, de float64) float64 {
	if kn := &p.kern; kn.linear {
		req := kn.req[j]
		var u1 float64
		if e >= req {
			u1 = 1
		} else if e > 0 {
			u1 = e / req
		}
		x := e + de
		var u2 float64
		if x >= req {
			u2 = 1
		} else if x > 0 {
			u2 = x / req
		}
		return kn.weight[j] * (u2 - u1)
	}
	t := &p.In.Tasks[j]
	u := p.In.U()
	return t.Weight * (u.Of(e+de, t.Energy) - u.Of(e, t.Energy))
}

// AcquireState returns an empty EnergyState, reusing a pooled one when
// available. Pair with ReleaseState on hot paths (a greedy run per
// Monte-Carlo sample, an Evaluate per step) to stop per-run allocation
// churn; NewEnergyState remains the plain allocating constructor.
func (p *Problem) AcquireState() *EnergyState {
	p.statesOut.Add(1)
	if v := p.statePool.Get(); v != nil {
		es := v.(*EnergyState)
		// A pooled state that predates a delta operation (incremental.go)
		// is sized for the old task count or the old flat-policy space —
		// drop it and allocate fresh instead of resurrecting stale caches.
		if len(es.energy) == len(p.In.Tasks) &&
			(es.live == nil || len(es.live) == len(p.kern.entries)) {
			es.Reset()
			es.stats = nil
			es.pooled = true
			return es
		}
	}
	es := NewEnergyState(p)
	es.pooled = true
	return es
}

// ReleaseState returns a state obtained from AcquireState (or
// NewEnergyState) to the problem's pool. The caller must not use it
// afterwards.
func (p *Problem) ReleaseState(es *EnergyState) {
	if es != nil && es.p == p {
		if es.pooled {
			es.pooled = false
			p.statesOut.Add(-1)
		}
		p.statePool.Put(es)
	}
}

// StatesInUse returns the pool's get/put balance: AcquireState checkouts
// not yet returned by ReleaseState, summed over this problem and every
// compiled component sub-Problem (sharded runs acquire states on the
// subs). Every code path that acquires states — including a
// TabularGreedyCtx run abandoned mid-stage, sharded or not — must drive
// the balance back to what it found, which the cancellation and service
// tests assert.
func (p *Problem) StatesInUse() int64 {
	out := p.statesOut.Load()
	if subs := p.subs.Load(); subs != nil {
		for _, sub := range *subs {
			if sub != nil {
				out += sub.statesOut.Load()
			}
		}
	}
	return out
}

// EnableKernelStats turns on work counting for this state and returns the
// collector (idempotent). The single-sample parallel path evaluates
// policies of one state concurrently; it bypasses this collector with
// per-chunk scratch collectors (marginalInto) and merges them in at the
// reduction barrier, so the counts stay exact at any worker count. Reset
// and AcquireState disable collection again.
func (es *EnergyState) EnableKernelStats() *KernelStats {
	if es.stats == nil {
		es.stats = &KernelStats{}
	}
	return es.stats
}

// KernelStats returns the counters collected since EnableKernelStats
// (zero when collection was never enabled).
func (es *EnergyState) KernelStats() KernelStats {
	if es.stats == nil {
		return KernelStats{}
	}
	return *es.stats
}

// scanList returns the list the flat kernel should scan for flat policy
// fp: the state's saturation-pruned live list when one was materialized,
// the problem's shared compiled list otherwise.
func (es *EnergyState) scanList(fp int) []CoverEntry {
	if es.live != nil {
		if row := es.live[fp]; row != nil {
			return row
		}
	}
	return es.p.kern.entries[fp]
}

// marginalFlat is Marginal/MarginalScaled on the flat kernel. frac scales
// every per-slot contribution; scaled is false on the frac == 1 path,
// which skips the multiply and the de == 0 re-check (compiled entries are
// nonzero, and the reference only re-checks after scaling). st is the
// kernel-stats collector to count into — es.stats for the sequential
// callers, a per-chunk scratch collector under the parallel policy fan
// (marginalInto), nil for none.
func (es *EnergyState) marginalFlat(i, k, pol int, frac float64, scaled bool, st *KernelStats) float64 {
	kn := &es.p.kern
	fp := kn.flatPol(i, pol)
	k32 := int32(k)
	if st != nil {
		st.Calls++
		st.Offered += int64(len(kn.entries[fp]))
	}
	if k32 < kn.winLo[fp] || k32 >= kn.winHi[fp] {
		return 0
	}
	list := es.scanList(fp)
	if st != nil {
		st.Visited += int64(len(list))
	}
	energy, uval := es.energy, es.uval
	var gain float64
	for _, e := range list {
		j := e.Task
		if k32 < kn.release[j] || k32 >= kn.end[j] {
			continue
		}
		de := e.De
		if scaled {
			de *= frac
			if de == 0 {
				continue
			}
		}
		// Inlined LinearBounded.Of delta. U(energy[j]) comes from the
		// uval cache (maintained branch-exactly at apply/restore time),
		// so only U(energy[j]+de) costs a division. Live entries are
		// unsaturated (energy < req), so x = energy+de > 0 always.
		req := kn.req[j]
		u2 := 1.0
		if x := energy[j] + de; x < req {
			u2 = x / req
		}
		gain += kn.weight[j] * (u2 - uval[j])
	}
	return gain
}

// marginalUpperFlat is MarginalUpper on the flat kernel. The optimistic
// part sums every live entry regardless of slot, so the per-policy slot
// window cannot short-circuit here — only saturation pruning applies
// (pruned entries contribute exactly +0.0 to both sums).
func (es *EnergyState) marginalUpperFlat(i, k, pol int) (gain, upper float64) {
	kn := &es.p.kern
	fp := kn.flatPol(i, pol)
	k32 := int32(k)
	list := es.scanList(fp)
	if st := es.stats; st != nil {
		st.Calls++
		st.Offered += int64(len(kn.entries[fp]))
		st.Visited += int64(len(list))
	}
	energy, uval := es.energy, es.uval
	for _, e := range list {
		j := e.Task
		req := kn.req[j]
		u2 := 1.0
		if x := energy[j] + e.De; x < req {
			u2 = x / req
		}
		d := kn.weight[j] * (u2 - uval[j])
		upper += d
		if k32 >= kn.release[j] && k32 < kn.end[j] {
			gain += d
		}
	}
	return gain, upper
}

// applyScaledFlat is ApplyScaled on the flat kernel. It walks the full
// compiled list — not the pruned one — because energy keeps accruing past
// saturation in the reference semantics (only the utility delta is zero),
// and PerTaskEnergies/Energy expose those energies. Saturation crossings
// trigger the pruning of the task from every policy's live list.
func (es *EnergyState) applyScaledFlat(i, k, pol int, frac float64) float64 {
	kn := &es.p.kern
	fp := kn.flatPol(i, pol)
	k32 := int32(k)
	var gain float64
	if k32 >= kn.winLo[fp] && k32 < kn.winHi[fp] {
		for _, e := range kn.entries[fp] {
			j := e.Task
			if k32 < kn.release[j] || k32 >= kn.end[j] {
				continue
			}
			de := e.De * frac
			if de == 0 {
				continue
			}
			ej := es.energy[j]
			req := kn.req[j]
			x := ej + de
			u2 := 1.0
			if x < req {
				u2 = x / req
			}
			// uval holds U(ej) exactly (1 while saturated — set at the
			// crossing and constant from then on).
			gain += kn.weight[j] * (u2 - es.uval[j])
			es.energy[j] = x
			es.uval[j] = u2
			if ej < req && x >= req {
				es.saturate(j)
			}
		}
	}
	es.total += gain
	return gain
}

// saturate removes task j from the live scan list of every policy whose
// compiled list contains it. Removal keeps ascending task order, so the
// surviving entries still accumulate in the reference order. Lists are
// materialized copy-on-write: a nil live row means "no contained task has
// ever saturated", so the problem's shared list is still exact for it.
func (es *EnergyState) saturate(j int32) {
	kn := &es.p.kern
	if es.satur == nil {
		es.satur = make([]bool, len(kn.req))
	}
	es.satur[j] = true
	if es.live == nil {
		es.live = make([][]CoverEntry, len(kn.entries))
	}
	for _, fp := range kn.taskPols[j] {
		row := es.live[fp]
		if row == nil {
			shared := kn.entries[fp]
			row = make([]CoverEntry, 0, len(shared)-1)
			for _, e := range shared {
				if e.Task != j {
					row = append(row, e)
				}
			}
		} else {
			idx := searchEntry(row, j)
			row = append(row[:idx], row[idx+1:]...)
		}
		es.live[fp] = row
	}
	if es.stats != nil {
		es.stats.Pruned += int64(len(kn.taskPols[j]))
	}
}

// unsaturate reinserts task j into every live list it was pruned from —
// Restore can rewind a task's energy back below its requirement (the
// branch-and-bound solver does exactly that when backtracking).
func (es *EnergyState) unsaturate(j int) {
	kn := &es.p.kern
	es.satur[j] = false
	j32 := int32(j)
	for _, fp := range kn.taskPols[j] {
		shared := kn.entries[fp]
		e := shared[searchEntry(shared, j32)]
		row := es.live[fp]
		idx := searchEntry(row, j32)
		row = append(row, CoverEntry{})
		copy(row[idx+1:], row[idx:])
		row[idx] = e
		es.live[fp] = row
	}
	if es.stats != nil {
		es.stats.Pruned -= int64(len(kn.taskPols[j]))
	}
}

// resyncSaturation re-establishes the flat kernel's caches for the given
// tasks after their energies changed by fiat (Restore): uval must again
// equal U(energy_j) branch-exactly, and live lists must contain exactly
// the tasks with energy below their requirement.
func (es *EnergyState) resyncSaturation(ids []int) {
	kn := &es.p.kern
	if !kn.linear {
		return
	}
	for _, j := range ids {
		ej, req := es.energy[j], kn.req[j]
		var u float64
		if ej >= req {
			u = 1
		} else if ej > 0 {
			u = ej / req
		}
		es.uval[j] = u
		sat := es.satur != nil && es.satur[j]
		now := ej >= req
		switch {
		case sat && !now:
			es.unsaturate(j)
		case !sat && now:
			es.saturate(int32(j))
		}
	}
}

// searchEntry returns the position of (or insertion point for) task j in
// a compiled list sorted by ascending task.
func searchEntry(row []CoverEntry, j int32) int {
	return sort.Search(len(row), func(i int) bool { return row[i].Task >= j })
}

// gainsBatchFlat fills gains[pol] with the summed marginal of every policy
// of charger i at slot k over the affected sample states — the whole
// selection scan of one greedy step in a single call. Batching flips the
// loops entry-major: the slot-window test runs once per policy and the
// activity test once per entry instead of once per (sample, entry), which
// is where the per-state scan spends most of its time at C > 1.
//
// Bit-identity with the per-state reference (selectPolicy): a sample's
// contribution accumulates over the shared compiled list in order,
// skipping saturated tasks via the satur bitmap — exactly the terms, in
// exactly the order, of a live-list scan (live lists are order-preserving
// filtrations of the shared list by the same bitmap). Each sample gets a
// private accumulator in acc, and gains[pol] then reduces acc in affected
// order — the canonical reduction order of every execution path.
func gainsBatchFlat(p *Problem, states []*EnergyState, affected []int, i, k, nPol int, gains, acc []float64) {
	kn := &p.kern
	base := int(kn.polOff[i])
	k32 := int32(k)
	acc = acc[:len(affected)]
	for pol := 0; pol < nPol; pol++ {
		fp := base + pol
		if k32 < kn.winLo[fp] || k32 >= kn.winHi[fp] {
			gains[pol] = 0
			continue
		}
		for idx := range acc {
			acc[idx] = 0
		}
		for _, e := range kn.entries[fp] {
			j := e.Task
			if k32 < kn.release[j] || k32 >= kn.end[j] {
				continue
			}
			de, req, w := e.De, kn.req[j], kn.weight[j]
			for idx, smp := range affected {
				st := states[smp]
				if st.satur != nil && st.satur[j] {
					continue
				}
				u2 := 1.0
				if x := st.energy[j] + de; x < req {
					u2 = x / req
				}
				acc[idx] += w * (u2 - st.uval[j])
			}
		}
		var g float64
		for _, v := range acc {
			g += v
		}
		gains[pol] = g
	}
}

// applyBatchFlat commits policy pol of charger i at slot k to every
// affected sample state in one entry-major pass — the batched counterpart
// of applyScaledFlat with frac = 1. Like it, the pass walks the full
// compiled list (energy accrues past saturation), realizes each sample's
// gain in shared-list order into a private acc slot, and adds it to the
// sample's total exactly once — the same single addition the per-state
// path performs, so totals are bit-identical.
func applyBatchFlat(p *Problem, states []*EnergyState, affected []int, i, k, pol int, acc []float64) {
	kn := &p.kern
	fp := kn.flatPol(i, pol)
	k32 := int32(k)
	if k32 < kn.winLo[fp] || k32 >= kn.winHi[fp] {
		return
	}
	acc = acc[:len(affected)]
	for idx := range acc {
		acc[idx] = 0
	}
	for _, e := range kn.entries[fp] {
		j := e.Task
		if k32 < kn.release[j] || k32 >= kn.end[j] {
			continue
		}
		de, req, w := e.De, kn.req[j], kn.weight[j]
		for idx, smp := range affected {
			st := states[smp]
			ej := st.energy[j]
			x := ej + de
			u2 := 1.0
			if x < req {
				u2 = x / req
			}
			acc[idx] += w * (u2 - st.uval[j])
			st.energy[j] = x
			st.uval[j] = u2
			if ej < req && x >= req {
				st.saturate(j)
			}
		}
	}
	for idx, smp := range affected {
		states[smp].total += acc[idx]
	}
}
