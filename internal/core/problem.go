// Package core implements the paper's primary contribution: the HASTE-R
// objective (problem RP2) and the centralized offline scheduling algorithm
// (Algorithm 2, a tailored TabularGreedy over S-C tuples) together with a
// lazy global-greedy variant used for ablation.
//
// A Problem bundles a model.Instance with the precomputed dominant task
// sets Γ_i (Algorithm 1) and the per-pair power matrix P_r(s_i, o_j). A
// Schedule fixes one dominant-set policy per charger per time slot — one
// element from every partition Θ_{i,k} of the partition matroid — and
// Evaluate computes the HASTE-R utility Σ_j w_j·U(harvested energy_j),
// ignoring switching delay. The switching-delay-aware HASTE utility of a
// schedule is computed by package sim.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"haste/internal/dominant"
	"haste/internal/geom"
	"haste/internal/model"
	"haste/internal/obs"
)

// Problem is a HASTE instance with everything precomputed that the
// schedulers need: dominant task sets per charger, the time horizon K, and
// the energy each covered task harvests from each charger per slot.
type Problem struct {
	In    *model.Instance
	Gamma [][]dominant.Policy // Γ_i for every charger
	K     int                 // number of time slots spanned by the tasks

	// rows[i] is charger i's sparse slot-energy row: one CoverEntry per
	// chargeable task, ascending by task index, sliced out of a shared
	// arena. Entry j holds P_r(s_i, o_j)·T_s — the energy task j harvests
	// during one full slot in which charger i covers it. Pairs that are
	// not chargeable are simply absent (SlotEnergy reports 0 for them);
	// chargeable pairs whose anisotropic receive gain is exactly zero are
	// kept with De == 0, so the rows carry precisely the coverage
	// relation dominant extraction sees. This replaced the dense n×m
	// table, whose O(n·m) memory (~1 TB at 10⁶ tasks) was the compile
	// wall: the charging model is strictly local, so row lengths scale
	// with the tasks within radius D, not with m.
	rows [][]CoverEntry

	// kern is the flat evaluation kernel (kernel.go): compiled cover
	// lists, SoA task data and slot windows the hot marginal loops run on.
	kern kernel

	// statePool recycles EnergyStates between runs; see AcquireState.
	// statesOut counts AcquireState calls minus ReleaseState returns —
	// the pool's get/put balance. Leak tests (and the service layer's
	// cancellation tests) assert it returns to its baseline.
	statePool sync.Pool
	statesOut atomic.Int64

	// Shard-and-stitch caches (shard.go): the coverage graph's connected
	// components and their compiled sub-Problems, each computed at most
	// once per Problem. subs is an atomic pointer so StatesInUse can
	// aggregate sub-problem balances while another run is compiling them.
	// The Once guards are pointers so the delta operations (incremental.go)
	// can invalidate a cache by re-pointing its guard — a value sync.Once
	// cannot be reset or copied.
	compsOnce   *sync.Once
	comps       []Component
	schedulable int

	subsOnce *sync.Once
	subs     atomic.Pointer[[]*Problem]

	// Incremental-scheduling state (incremental.go). chargerGrid is the
	// lazily built spatial index over the (static) charger positions that
	// delta operations use to find the chargers a task mutation touches.
	// prevSubs carries the component sub-Problems of the pre-mutation
	// decomposition so the next subProblems rebuild can adopt the ones no
	// mutation touched instead of recompiling them.
	chargerGrid *geom.GridIndex
	prevSubs    *subCache
}

// NewProblem validates the instance, builds the sparse slot-energy rows
// through a spatial grid index over the tasks, extracts the dominant
// task sets of every charger from its row's candidate set, and compiles
// the flat evaluation kernel. The whole compile is O((n+m)·density) in
// time and memory — density being the tasks within radius D of a
// charger — instead of the dense all-pairs O(n·m); the resulting Gamma,
// kernel and every published energy are bit-identical to the dense-era
// compile (the grid feeds dominant extraction the chargeable tasks in
// the same ascending order the full scan did).
func NewProblem(in *model.Instance) (*Problem, error) {
	return newProblem(in, obs.SpanRef{})
}

// NewProblemTraced is NewProblem with the compile phases — grid build,
// slot-energy rows, dominant extraction, kernel compile — recorded as a
// "compile" span tree on tr. A nil tr is exactly NewProblem; the probe
// only observes, so the compiled Problem is identical either way.
func NewProblemTraced(in *model.Instance, tr *obs.Trace) (*Problem, error) {
	return newProblem(in, tr.Root())
}

func newProblem(in *model.Instance, parent obs.SpanRef) (*Problem, error) {
	sp := parent.Start("compile")
	defer sp.End()
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := &Problem{
		In:        in,
		K:         in.Horizon(),
		rows:      chargeableRows(in, sp),
		compsOnce: new(sync.Once),
		subsOnce:  new(sync.Once),
	}
	dsp := sp.Start("dominant_extract")
	p.Gamma = make([][]dominant.Policy, len(in.Chargers))
	nPols := 0
	var ids []int // candidate buffer, reused across chargers
	for i := range in.Chargers {
		ids = ids[:0]
		for _, e := range p.rows[i] {
			ids = append(ids, int(e.Task))
		}
		p.Gamma[i] = dominant.ExtractSubset(in, i, ids)
		nPols += len(p.Gamma[i])
	}
	dsp.Int("policies", int64(nPols)).End()
	ksp := sp.Start("kernel_compile")
	p.kern = compileKernel(p)
	ksp.End()
	sp.Int("chargers", int64(len(in.Chargers))).Int("tasks", int64(len(in.Tasks)))
	return p, nil
}

// chargeableRows builds the per-charger sparse slot-energy rows: for
// every charger, the grid index proposes the tasks within one cell (≥ D)
// of it, the exact Chargeable predicate filters them, and the survivors
// get their per-slot energy — the same expression, evaluated on the same
// (charger, task) pairs, as the dense-era table. One arena backs all
// rows; offsets are resolved after the arena stops growing. parent
// receives the grid_build / slot_energy_rows phase spans (zero = off).
func chargeableRows(in *model.Instance, parent obs.SpanRef) [][]CoverEntry {
	n := len(in.Chargers)
	rows := make([][]CoverEntry, n)
	if len(in.Tasks) == 0 {
		return rows
	}
	gsp := parent.Start("grid_build")
	pts := make([]geom.Point, len(in.Tasks))
	for j := range in.Tasks {
		pts[j] = in.Tasks[j].Pos
	}
	grid := geom.NewGridIndex(pts, in.Params.Radius)
	gsp.End()
	rsp := parent.Start("slot_energy_rows")
	offs := make([]int, n+1)
	var arena []CoverEntry
	var buf []int32
	for i := range in.Chargers {
		c := in.Chargers[i]
		buf = grid.Candidates(c.Pos, buf[:0])
		for _, j := range buf {
			t := in.Tasks[j]
			if !in.Params.Chargeable(c, t) {
				continue
			}
			pw := in.Params.PowerBetween(c.Pos, t.Pos)
			if in.Params.AnisotropicGain {
				pw *= in.Params.ReceiveGain(c, t)
			}
			arena = append(arena, CoverEntry{Task: j, De: pw * in.Params.SlotSeconds})
		}
		offs[i+1] = len(arena)
	}
	for i := range rows {
		rows[i] = arena[offs[i]:offs[i+1]:offs[i+1]]
	}
	rsp.Int("entries", int64(len(arena))).End()
	return rows
}

// SlotEnergy returns the energy task j harvests from charger i over one
// full covered slot (0 when the pair is not chargeable). The lookup is a
// binary search of charger i's sparse row — O(log row length), where the
// row holds only the tasks within charging radius of charger i.
func (p *Problem) SlotEnergy(i, j int) float64 {
	row := p.rows[i]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(row[mid].Task) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && int(row[lo].Task) == j {
		return row[lo].De
	}
	return 0
}

// ChargerRow returns charger i's sparse slot-energy row: one entry per
// chargeable task, ascending by task index. Unlike compiled policy cover
// lists, a row entry's De may be exactly 0 (a chargeable pair whose
// anisotropic receive gain vanishes) — filter De > 0 when only energy
// flow matters. The returned slice is shared; callers must not mutate it.
func (p *Problem) ChargerRow(i int) []CoverEntry { return p.rows[i] }

// Schedule assigns each charger one policy index per time slot:
// Policy[i][k] indexes into Gamma[i]; -1 means unassigned (the charger
// keeps whatever orientation it had and covers nothing that the objective
// credits). A fully assigned Schedule is a basis of the partition matroid.
type Schedule struct {
	Policy [][]int
}

// NewSchedule returns an all-unassigned schedule for n chargers over K
// slots.
func NewSchedule(n, k int) Schedule {
	s := Schedule{Policy: make([][]int, n)}
	for i := range s.Policy {
		row := make([]int, k)
		for j := range row {
			row[j] = -1
		}
		s.Policy[i] = row
	}
	return s
}

// Clone deep-copies the schedule.
func (s Schedule) Clone() Schedule {
	c := Schedule{Policy: make([][]int, len(s.Policy))}
	for i, row := range s.Policy {
		c.Policy[i] = append([]int(nil), row...)
	}
	return c
}

// Slots returns the number of slots the schedule spans.
func (s Schedule) Slots() int {
	if len(s.Policy) == 0 {
		return 0
	}
	return len(s.Policy[0])
}

// EnergyState tracks the energy accumulated by every task under a
// partially built schedule and maintains the HASTE-R objective value
// incrementally. Marginals are exactly the quantities the greedy
// algorithms compare; thanks to the concavity of U they shrink as energy
// accumulates, which is what makes f submodular (Lemma 4.2).
type EnergyState struct {
	p      *Problem
	energy []float64 // joules harvested per task
	total  float64   // Σ_j w_j · U(energy_j)

	// uval[j] caches U(energy_j) for the flat kernel, maintained at
	// apply/restore time with exactly the reference branches of
	// model.LinearBounded.Of — so the hot marginal loops pay one division
	// per scanned entry (for U(e+Δe)) instead of two. U(0) = 0 is the
	// zero value, so a fresh or Reset state is already consistent.

	// Saturation pruning (flat kernel only, kernel.go). live[fp] is the
	// copy-on-write scan list of flat policy fp with saturated tasks
	// removed; nil row ⇒ no contained task has saturated, scan the shared
	// compiled list. satur[j] records whether task j is currently pruned.
	uval  []float64
	live  [][]CoverEntry
	satur []bool

	// stats, when non-nil, counts the flat kernel's work (opt-in; see
	// EnableKernelStats).
	stats *KernelStats

	// pooled marks states handed out by AcquireState and not yet
	// returned, so the statesOut balance counts each checkout exactly
	// once even if ReleaseState is called on a NewEnergyState state or
	// twice on the same one.
	pooled bool
}

// NewEnergyState returns the empty state (f(∅) = 0).
func NewEnergyState(p *Problem) *EnergyState {
	m := len(p.In.Tasks)
	return &EnergyState{p: p, energy: make([]float64, m), uval: make([]float64, m)}
}

// Reset clears accumulated energy, reusing the allocations.
func (es *EnergyState) Reset() {
	for j := range es.energy {
		es.energy[j] = 0
	}
	for j := range es.uval {
		es.uval[j] = 0
	}
	es.total = 0
	for fp := range es.live {
		es.live[fp] = nil
	}
	for j := range es.satur {
		es.satur[j] = false
	}
}

// Clone deep-copies the state.
func (es *EnergyState) Clone() *EnergyState {
	c := NewEnergyState(es.p)
	c.CopyFrom(es)
	return c
}

// CopyFrom makes es an exact copy of src (same Problem) without
// allocating the energy vector anew. The pruning structures are rebuilt
// from src's saturated set; because pruned lists are order-preserving
// filtrations of the shared compiled lists, the rebuild is equal to src's
// lists element for element.
func (es *EnergyState) CopyFrom(src *EnergyState) {
	copy(es.energy, src.energy)
	copy(es.uval, src.uval)
	es.total = src.total
	for fp := range es.live {
		es.live[fp] = nil
	}
	for j := range es.satur {
		es.satur[j] = false
	}
	if src.satur != nil {
		for j, sat := range src.satur {
			if sat {
				es.saturate(int32(j))
			}
		}
	}
}

// Total returns the current objective value Σ_j w_j·U(e_j).
func (es *EnergyState) Total() float64 { return es.total }

// Energy returns the energy task j has accumulated so far.
func (es *EnergyState) Energy(j int) float64 { return es.energy[j] }

// Marginal returns the objective increase of assigning policy pol to
// charger i at slot k on top of the current state: only tasks covered by
// the policy AND active during slot k accrue energy.
//
// Marginal, MarginalUpper, MarginalScaled and ApplyScaled dispatch to the
// flat kernel (kernel.go) when the instance uses the default
// linear-and-bounded utility; the *Generic bodies below are the reference
// semantics, kept verbatim as the fallback for custom utilities and as
// the oracle of the differential kernel sweep. Both paths are
// bit-identical by contract.
func (es *EnergyState) Marginal(i, k, pol int) float64 {
	if es.p.kern.linear {
		return es.marginalFlat(i, k, pol, 1, false, es.stats)
	}
	return es.marginalGeneric(i, k, pol)
}

// marginalInto is Marginal with the kernel-stats collector overridden:
// the parallel policy fan evaluates many policies of one state
// concurrently, so it hands each chunk a private collector (merged at
// the reduction barrier) instead of racing on es.stats. A nil st counts
// nothing; the gain is identical to Marginal's either way.
func (es *EnergyState) marginalInto(i, k, pol int, st *KernelStats) float64 {
	if es.p.kern.linear {
		return es.marginalFlat(i, k, pol, 1, false, st)
	}
	return es.marginalGeneric(i, k, pol)
}

func (es *EnergyState) marginalGeneric(i, k, pol int) float64 {
	u := es.p.In.U()
	var gain float64
	for _, j := range es.p.Gamma[i][pol].Covers {
		t := &es.p.In.Tasks[j]
		if !t.ActiveAt(k) {
			continue
		}
		de := es.p.SlotEnergy(i, j)
		if de == 0 {
			continue
		}
		gain += t.Weight * (u.Of(es.energy[j]+de, t.Energy) - u.Of(es.energy[j], t.Energy))
	}
	return gain
}

// MarginalUpper returns Marginal(i, k, pol) together with an optimistic
// variant that treats every covered task as active. The exact part is
// accumulated over the same tasks in the same order as Marginal, so the
// two agree bit-for-bit. The optimistic part upper-bounds the policy's
// marginal in any slot and only shrinks as energy accumulates (concavity
// of U) — the invariant the lazy selector's stale bounds rely on.
func (es *EnergyState) MarginalUpper(i, k, pol int) (gain, upper float64) {
	if es.p.kern.linear {
		return es.marginalUpperFlat(i, k, pol)
	}
	return es.marginalUpperGeneric(i, k, pol)
}

func (es *EnergyState) marginalUpperGeneric(i, k, pol int) (gain, upper float64) {
	u := es.p.In.U()
	for _, j := range es.p.Gamma[i][pol].Covers {
		t := &es.p.In.Tasks[j]
		de := es.p.SlotEnergy(i, j)
		if de == 0 {
			continue
		}
		d := t.Weight * (u.Of(es.energy[j]+de, t.Energy) - u.Of(es.energy[j], t.Energy))
		upper += d
		if t.ActiveAt(k) {
			gain += d
		}
	}
	return gain, upper
}

// MarginalScaled is Marginal with the per-slot energy contribution scaled
// by frac ∈ [0,1]; used by the switching-delay-aware simulation where a
// rotating charger only radiates for the trailing 1−ρ of a slot.
func (es *EnergyState) MarginalScaled(i, k, pol int, frac float64) float64 {
	if es.p.kern.linear {
		return es.marginalFlat(i, k, pol, frac, true, es.stats)
	}
	return es.marginalScaledGeneric(i, k, pol, frac)
}

func (es *EnergyState) marginalScaledGeneric(i, k, pol int, frac float64) float64 {
	u := es.p.In.U()
	var gain float64
	for _, j := range es.p.Gamma[i][pol].Covers {
		t := &es.p.In.Tasks[j]
		if !t.ActiveAt(k) {
			continue
		}
		de := es.p.SlotEnergy(i, j) * frac
		if de == 0 {
			continue
		}
		gain += t.Weight * (u.Of(es.energy[j]+de, t.Energy) - u.Of(es.energy[j], t.Energy))
	}
	return gain
}

// Apply commits policy pol for charger i at slot k, updating energies and
// the objective, and returns the realized gain.
func (es *EnergyState) Apply(i, k, pol int) float64 {
	return es.ApplyScaled(i, k, pol, 1)
}

// ApplyScaled commits the policy with its per-slot energy scaled by frac.
func (es *EnergyState) ApplyScaled(i, k, pol int, frac float64) float64 {
	if es.p.kern.linear {
		return es.applyScaledFlat(i, k, pol, frac)
	}
	return es.applyScaledGeneric(i, k, pol, frac)
}

func (es *EnergyState) applyScaledGeneric(i, k, pol int, frac float64) float64 {
	u := es.p.In.U()
	var gain float64
	for _, j := range es.p.Gamma[i][pol].Covers {
		t := &es.p.In.Tasks[j]
		if !t.ActiveAt(k) {
			continue
		}
		de := es.p.SlotEnergy(i, j) * frac
		if de == 0 {
			continue
		}
		gain += t.Weight * (u.Of(es.energy[j]+de, t.Energy) - u.Of(es.energy[j], t.Energy))
		es.energy[j] += de
	}
	es.total += gain
	return gain
}

// Restore rewinds the given tasks' energies and the objective total to a
// previously captured snapshot. It lets a backtracking search (package
// opt) undo a policy application without copying the whole state; callers
// must pass exactly the energies that were captured before the Apply.
func (es *EnergyState) Restore(ids []int, vals []float64, total float64) {
	for idx, j := range ids {
		es.energy[j] = vals[idx]
	}
	es.total = total
	// A rewind can pull a task back below its requirement (or, on an
	// upward restore, past it) — re-establish the saturation-pruning
	// invariant for exactly the touched tasks.
	es.resyncSaturation(ids)
}

// Evaluate computes the HASTE-R objective f(X) of a schedule: the total
// weighted utility with every assigned slot counted in full (no switching
// delay).
func Evaluate(p *Problem, s Schedule) float64 {
	es := p.AcquireState()
	defer p.ReleaseState(es)
	for i, row := range s.Policy {
		for k, pol := range row {
			if pol >= 0 {
				es.Apply(i, k, pol)
			}
		}
	}
	return es.Total()
}

// PerTaskEnergies returns each task's harvested energy under the schedule
// (HASTE-R accounting, no switching delay).
func PerTaskEnergies(p *Problem, s Schedule) []float64 {
	es := p.AcquireState()
	defer p.ReleaseState(es)
	for i, row := range s.Policy {
		for k, pol := range row {
			if pol >= 0 {
				es.Apply(i, k, pol)
			}
		}
	}
	return append([]float64(nil), es.energy...)
}
