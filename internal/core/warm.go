package core

import "bytes"

// WarmStart carries what a sharded TabularGreedy run (Options.CollectWarm)
// learned, so a later run on a mutated clone of the problem can skip the
// components the mutations did not touch. Reuse is sound at component
// granularity, and only when re-running could not produce anything
// different:
//
//   - the options that shape the search must match (colors, samples,
//     tie-breaking, stats collection — the fingerprint);
//   - the component must have exactly the same charger and task membership
//     as an incumbent component, and none of its chargers may have been
//     marked dirty by a delta operation (then its sub-instance is
//     bit-identical to the incumbent's — a mutation changing any of its
//     tasks would have dirtied one of its chargers);
//   - the new run's color plan, restricted to the component's chargers
//     over its own horizon, must equal the incumbent plan's restriction
//     (both plans are drawn from Options.Rng in the monolithic order, so
//     equal seeds and equal shapes make this trivially true — the check
//     keeps reuse sound for any seed).
//
// Under those conditions monolithicGreedy is a deterministic function of
// (sub-Problem, options, plan slice), so the stored component result IS
// the result a re-run would compute, bit for bit — which is exactly what
// internal/difftest's mutation-walk sweep enforces against from-scratch
// solves. Everything else (dirty or reshaped components) re-runs normally.
//
// A WarmStart is immutable once returned except for MarkDirty, which the
// owner calls between solves as it mutates the problem. It must not be
// shared across concurrently running solves.
type WarmStart struct {
	// Fingerprint of the producing run.
	colors, samples int
	preferStay      bool
	kernelStats     bool
	n, k            int // charger count and horizon of the producing run

	plan    colorPlan   // the producing run's full color plan
	comps   []Component // the producing run's decomposition
	results []*Result   // per-component local results (nil when not run)
	subKs   []int       // per-component sub-horizons
	dirty   map[int]struct{}
}

// MarkDirty records that the given chargers were touched by a delta
// operation since this WarmStart was collected; their components will not
// be reused. AddTask and RemoveTask return exactly this charger set.
func (w *WarmStart) MarkDirty(chargers []int) {
	if w.dirty == nil {
		w.dirty = make(map[int]struct{}, len(chargers))
	}
	for _, i := range chargers {
		w.dirty[i] = struct{}{}
	}
}

// matches reports whether a run with the given normalized options on an
// n-charger problem searches the same space the incumbent run did.
func (w *WarmStart) matches(opt Options, n int) bool {
	return w != nil && w.colors == opt.Colors && w.samples == opt.Samples &&
		w.preferStay == opt.PreferStay && w.kernelStats == opt.KernelStats &&
		w.n == n
}

// reusable returns the incumbent's local result for a component of the new
// decomposition when every reuse condition holds, nil otherwise. K and N
// are the new run's horizon and sample count; plan its color plan.
func (w *WarmStart) reusable(comp Component, subK int, plan *colorPlan, K, N int) *Result {
	if len(comp.Chargers) == 0 {
		return nil
	}
	for _, gi := range comp.Chargers {
		if _, bad := w.dirty[gi]; bad {
			return nil
		}
	}
	// Components are disjoint charger sets ordered by smallest member, so
	// the first charger identifies the only possible incumbent match.
	for oldCi, old := range w.comps {
		if len(old.Chargers) == 0 || old.Chargers[0] != comp.Chargers[0] {
			continue
		}
		if !intsEqual(old.Chargers, comp.Chargers) || !intsEqual(old.Tasks, comp.Tasks) {
			return nil
		}
		r := w.results[oldCi]
		if r == nil || w.subKs[oldCi] != subK {
			return nil
		}
		if !w.planMatches(plan, K, N, comp.Chargers, subK) {
			return nil
		}
		return r
	}
	return nil
}

// planMatches compares the new plan's restriction to the component — its
// chargers over its own subK-slot horizon, the only draws runComponent
// hands the sub-run — against the incumbent plan's restriction.
func (w *WarmStart) planMatches(plan *colorPlan, K, N int, chargers []int, subK int) bool {
	for _, gi := range chargers {
		for k := 0; k < subK; k++ {
			a, b := gi*K+k, gi*w.k+k
			if plan.final[a] != w.plan.final[b] {
				return false
			}
			if !bytes.Equal(plan.colorOf[a*N:(a+1)*N], w.plan.colorOf[b*N:(b+1)*N]) {
				return false
			}
		}
	}
	return true
}
