package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"haste/internal/model"
	"haste/internal/obs"
)

// This file is the fleet-scale entry point of the shard-and-stitch
// decomposition: scheduling straight from a raw instance, without ever
// compiling the monolithic Problem. TabularGreedy's sharded path still
// compiles the full Gamma and kernel first (the parent Problem is its
// API), which at 10⁶ tasks costs minutes of dominant extraction the
// components then redo anyway. ScheduleSharded skips that: it builds only
// the sparse chargeable rows (grid-indexed, O((n+m)·density)), finds the
// coverage components from them, and compiles each component's
// sub-Problem transiently inside the worker loop — a component's Gamma
// and kernel exist only while its greedy run is in flight, so peak memory
// is bounded by Options.Workers × the largest component instead of the
// whole field. That is what lets a 10⁶-task fleet compile and schedule
// end-to-end in a small memory budget.
//
// Equivalence contract with TabularGreedy's sharded path (pinned by
// TestScheduleShardedMatchesParent): both draw the identical global color
// plan in monolithic RNG order, decompose into identical components
// (coverageComponents from the same chargeable rows), slice identical
// sub-instances and hand each component the identical plan slices — so
// every schedule cell is bit-identical. Only RUtility is accumulated
// differently: the parent path re-evaluates the stitched schedule on the
// monolithic kernel, which ScheduleSharded deliberately never builds, so
// it sums the per-component utilities in canonical ascending component
// order instead. The sum is mathematically equal (components partition
// the tasks and cross-component energy is exactly zero) but may differ
// from the monolithic accumulation order in the last ulp; callers needing
// the bit-exact monolithic figure can Evaluate the returned schedule on a
// compiled Problem.

// DecomposeInstance returns the connected components of the charger–task
// coverage graph of a raw instance, computed from grid-indexed sparse
// rows without extracting dominant policies or compiling a kernel. The
// components are identical to Problem.Components() on the same instance.
func DecomposeInstance(in *model.Instance) ([]Component, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	comps, _ := coverageComponents(len(in.Chargers), len(in.Tasks), chargeableRows(in, obs.SpanRef{}))
	return comps, nil
}

// ScheduleSharded runs the shard-and-stitch TabularGreedy directly on a
// raw instance: decompose, compile each schedulable component on demand,
// schedule it under the globally drawn color plan, stitch the cells back
// into the global index space, and sum the per-component utilities. See
// the file comment for the exact equivalence contract with the
// parent-Problem sharded path; Options.Shard is ignored (the whole point
// is the sharded route) and Result.Shards reports the scheduled component
// count.
func ScheduleSharded(in *model.Instance, opt Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	opt = opt.normalize()
	n, K := len(in.Chargers), in.Horizon()
	C, N := opt.Colors, opt.Samples
	sched := NewSchedule(n, K)
	if K == 0 || n == 0 {
		return Result{Schedule: sched}, nil
	}

	root := opt.Trace.Start("solve")
	rows := chargeableRows(in, root)
	dsp := root.Start("decompose")
	comps, _ := coverageComponents(n, len(in.Tasks), rows)
	dsp.Int("components", int64(len(comps))).End()
	rows = nil // decomposition done; let the arena be reclaimed

	plan := drawColorPlan(opt.Rng, n, K, C, N)

	runnable := make([]int, 0, len(comps))
	for ci, comp := range comps {
		if len(comp.Chargers) > 0 && len(comp.Tasks) > 0 {
			runnable = append(runnable, ci)
		}
	}

	results := make([]Result, len(comps))
	errs := make([]error, len(comps))
	workers := opt.Workers
	if workers > len(runnable) {
		workers = len(runnable)
	}
	var next atomic.Int64
	run := func(w int) {
		for {
			idx := int(next.Add(1)) - 1
			if idx >= len(runnable) {
				return
			}
			ci := runnable[idx]
			csp := root.Start("component").
				Int("chargers", int64(len(comps[ci].Chargers))).
				Int("tasks", int64(len(comps[ci].Tasks))).
				Int("worker", int64(w))
			// The sub-Problem lives only for this call: compiled, run,
			// reduced to its Result, then garbage. At no point does a
			// global Gamma or kernel exist. The transient compile records
			// its own "compile" subtree under the component span.
			sub, err := newProblem(sliceInstance(in, comps[ci]), csp)
			if err != nil {
				errs[ci] = err
				csp.End()
				continue
			}
			if sub.K == 0 {
				csp.End()
				continue
			}
			results[ci], _ = runComponent(nil, sub, comps[ci], K, opt, &plan, csp)
			csp.End()
		}
	}
	if workers <= 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers - 1)
		for w := 1; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				run(w)
			}(w)
		}
		run(0)
		wg.Wait()
	}

	ssp := root.Start("stitch")
	res := Result{Schedule: sched}
	for _, ci := range runnable {
		if errs[ci] != nil {
			// A component of a valid instance revalidates cleanly; this
			// is unreachable but reported rather than panicking, since
			// the caller handed us the instance unvalidated.
			return Result{}, fmt.Errorf("core: component sub-problem failed to compile: %w", errs[ci])
		}
		if results[ci].Schedule.Policy == nil {
			continue // component with zero horizon: nothing scheduled
		}
		comp := comps[ci]
		sub := results[ci].Schedule
		for li, gi := range comp.Chargers {
			copy(sched.Policy[gi][:len(sub.Policy[li])], sub.Policy[li])
		}
		// Canonical ascending component order keeps the stitched utility
		// and counters deterministic at any worker count.
		res.RUtility += results[ci].RUtility
		res.Kernel.add(results[ci].Kernel)
		res.Shards++
	}
	ssp.End()
	root.Int("shards", int64(res.Shards))
	root.End()
	res.Trace = opt.Trace
	return res, nil
}
