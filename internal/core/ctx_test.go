package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"haste/internal/workload"
)

func ctxProblem(t testing.TB, seed int64) *Problem {
	t.Helper()
	cfg := workload.Default()
	cfg.NumChargers = 20
	cfg.NumTasks = 60
	in := cfg.Generate(rand.New(rand.NewSource(seed)))
	p, err := NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTabularGreedyCtxUncancelled: with a live context the ctx variant is
// bit-identical to TabularGreedy — the cancellation probe must not perturb
// the schedule.
func TestTabularGreedyCtxUncancelled(t *testing.T) {
	p := ctxProblem(t, 11)
	for _, colors := range []int{1, 3} {
		want := TabularGreedy(p, Options{Colors: colors, PreferStay: true, Workers: 1,
			Rng: rand.New(rand.NewSource(7))})
		got, err := TabularGreedyCtx(context.Background(), p, Options{Colors: colors,
			PreferStay: true, Workers: 1, Rng: rand.New(rand.NewSource(7))})
		if err != nil {
			t.Fatalf("C=%d: unexpected error %v", colors, err)
		}
		if got.RUtility != want.RUtility {
			t.Fatalf("C=%d: RUtility %v != %v", colors, got.RUtility, want.RUtility)
		}
		for i := range want.Schedule.Policy {
			for k := range want.Schedule.Policy[i] {
				if got.Schedule.Policy[i][k] != want.Schedule.Policy[i][k] {
					t.Fatalf("C=%d: schedule differs at (%d,%d)", colors, i, k)
				}
			}
		}
	}
}

// TestTabularGreedyCtxPreCancelled: an already-cancelled context returns
// promptly with ctx.Err() and leaves the state pool balanced.
func TestTabularGreedyCtxPreCancelled(t *testing.T) {
	p := ctxProblem(t, 12)
	base := p.StatesInUse()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := TabularGreedyCtx(ctx, p, Options{Colors: 4, PreferStay: true, Workers: 1})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Schedule.Policy != nil {
		t.Fatalf("cancelled run returned a schedule: %+v", res)
	}
	if got := p.StatesInUse(); got != base {
		t.Fatalf("state pool leaked: balance %d, want %d", got, base)
	}
}

// TestTabularGreedyCtxMidRunCancel: cancelling mid-run returns promptly
// (bounded by one greedy stage), leaks no pooled EnergyState, and leaves
// the Problem reusable — the next uncancelled run is bit-identical to a
// run on a fresh Problem.
func TestTabularGreedyCtxMidRunCancel(t *testing.T) {
	p := ctxProblem(t, 13)
	base := p.StatesInUse()

	// A heavy configuration so the run takes long enough to catch the
	// cancel mid-flight (C=8 with the default 64 samples).
	opts := func() Options {
		return Options{Colors: 8, PreferStay: true, Workers: 1, Rng: rand.New(rand.NewSource(9))}
	}
	full := TabularGreedy(p, opts())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := TabularGreedyCtx(ctx, p, opts())
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// Fast machines may legitimately finish before the cancel lands.
		if err != nil && err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return within 10s")
	}
	if got := p.StatesInUse(); got != base {
		t.Fatalf("state pool leaked after cancel: balance %d, want %d", got, base)
	}

	// The cached Problem must be untouched: rerun bit-identically.
	again, err := TabularGreedyCtx(context.Background(), p, opts())
	if err != nil {
		t.Fatal(err)
	}
	if again.RUtility != full.RUtility {
		t.Fatalf("post-cancel rerun diverged: %v != %v", again.RUtility, full.RUtility)
	}
	for i := range full.Schedule.Policy {
		for k := range full.Schedule.Policy[i] {
			if again.Schedule.Policy[i][k] != full.Schedule.Policy[i][k] {
				t.Fatalf("post-cancel rerun schedule differs at (%d,%d)", i, k)
			}
		}
	}
}

// TestTabularGreedyCtxDeadline: a deadline that cannot possibly be met
// surfaces context.DeadlineExceeded, still with a balanced pool.
func TestTabularGreedyCtxDeadline(t *testing.T) {
	p := ctxProblem(t, 14)
	base := p.StatesInUse()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // deadline long past before the run starts
	_, err := TabularGreedyCtx(ctx, p, Options{Colors: 4, PreferStay: true, Workers: 1})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := p.StatesInUse(); got != base {
		t.Fatalf("state pool leaked: balance %d, want %d", got, base)
	}
}

// TestStatesInUseBalance: the counter tracks checkouts exactly, tolerates
// double releases and plain NewEnergyState states, and Evaluate-style
// acquire/release pairs net to zero.
func TestStatesInUseBalance(t *testing.T) {
	p := ctxProblem(t, 15)
	if got := p.StatesInUse(); got != 0 {
		t.Fatalf("fresh problem balance %d", got)
	}
	a, b := p.AcquireState(), p.AcquireState()
	if got := p.StatesInUse(); got != 2 {
		t.Fatalf("after two acquires: %d", got)
	}
	p.ReleaseState(a)
	p.ReleaseState(a) // double release must not double-count
	if got := p.StatesInUse(); got != 1 {
		t.Fatalf("after double release of one state: %d", got)
	}
	p.ReleaseState(NewEnergyState(p)) // unpooled state: balance unchanged
	if got := p.StatesInUse(); got != 1 {
		t.Fatalf("after releasing an unpooled state: %d", got)
	}
	p.ReleaseState(b)
	if got := p.StatesInUse(); got != 0 {
		t.Fatalf("final balance %d", got)
	}
	Evaluate(p, TabularGreedy(p, DefaultOptions(1)).Schedule)
	if got := p.StatesInUse(); got != 0 {
		t.Fatalf("balance after Evaluate/TabularGreedy: %d", got)
	}
}
