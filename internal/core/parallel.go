package core

import "sync"

// The parallel execution path of TabularGreedy. Determinism is a repo
// invariant (DESIGN.md §3), so the fan-out is organized such that the
// schedule is bit-identical for every worker count:
//
//   - each (sample, policy) marginal is computed by exactly one worker and
//     written to a private slot of a scratch buffer (no shared accumulator,
//     no data race);
//   - the per-policy gains are then reduced single-threadedly in canonical
//     order — sample-major, following the affected list — which is exactly
//     the order the sequential reference accumulates in, so not a single
//     floating-point rounding step can differ;
//   - per-sample Apply calls touch disjoint EnergyStates and each state's
//     internal accumulation order is fixed, so the fan-out cannot reorder
//     additions either.
//
// internal/difftest and the -race differential suite enforce all of this.

// workerPool is a fixed set of goroutines fed closures over a channel. It
// exists so TabularGreedy, which dispatches one small batch per greedy step
// (n·K·C of them), pays two channel operations per chunk instead of a
// goroutine spawn.
type workerPool struct {
	work chan func()
	n    int
}

// newWorkerPool starts n-1 workers (the caller is the n-th).
func newWorkerPool(n int) *workerPool {
	wp := &workerPool{work: make(chan func()), n: n}
	for w := 1; w < n; w++ {
		go func() {
			for fn := range wp.work {
				fn()
			}
		}()
	}
	return wp
}

func (wp *workerPool) close() { close(wp.work) }

// runChunks splits [0, total) into at most wp.n contiguous chunks and runs
// fn on each concurrently, returning when all are done. The chunk
// boundaries depend only on total and wp.n, never on timing; fn receives
// its chunk's index ch ∈ [0, wp.n) so callers can address per-chunk
// scratch (the policy fan's kernel-stats collectors) without contention.
func (wp *workerPool) runChunks(total int, fn func(ch, lo, hi int)) {
	chunks := wp.n
	if chunks > total {
		chunks = total
	}
	if chunks <= 1 {
		fn(0, 0, total)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	size, rem := total/chunks, total%chunks
	lo := 0
	for ch := 0; ch < chunks; ch++ {
		hi := lo + size
		if ch < rem {
			hi++
		}
		if ch == chunks-1 {
			// The caller runs the last chunk itself, then waits.
			fn(ch, lo, hi)
			break
		}
		cch, clo, chi := ch, lo, hi
		wp.work <- func() {
			defer wg.Done()
			fn(cch, clo, chi)
		}
		lo = hi
	}
	wg.Wait()
}

// selector executes the per-partition policy selection and state update of
// TabularGreedy under the configured strategy (sequential, pooled parallel,
// or lazy). All strategies produce bit-identical decisions.
type selector struct {
	p          *Problem
	preferStay bool
	stats      bool        // kernel stats collection on ⇒ instrumented per-state path
	threshold  int         // min (samples × policies) per step worth fanning out
	pool       *workerPool // nil ⇒ sequential
	lazy       *lazyBounds // nil ⇒ eager
	gains      []float64   // per-policy gains, maxPol wide
	buf        []float64   // per-(sample, policy) marginals, N·maxPol wide
	acc        []float64   // per-sample accumulators of the batched scan, N wide

	// chunkStats are the policy fan's per-chunk kernel-stats collectors
	// (nil unless stats collection and the pool are both on): the fan
	// evaluates many policies of ONE state concurrently, so the workers
	// cannot share that state's counter — each chunk counts into its own
	// slot and selectPolicy merges them into the state's collector at the
	// reduction barrier. Counts are deterministic: chunking partitions
	// the same set of marginal evaluations the sequential scan performs.
	chunkStats []KernelStats
}

func newSelector(p *Problem, opt Options) *selector {
	maxPol := 0
	for _, g := range p.Gamma {
		if len(g) > maxPol {
			maxPol = len(g)
		}
	}
	s := &selector{
		p:          p,
		preferStay: opt.PreferStay,
		stats:      opt.KernelStats,
		threshold:  opt.ParallelThreshold,
		gains:      make([]float64, maxPol),
		acc:        make([]float64, opt.Samples),
	}
	if opt.Lazy {
		s.lazy = newLazyBounds(p, opt.Samples)
		return s // lazy selection is inherently sequential; see lazy.go
	}
	// Don't even start the pool when no step can clear the work threshold:
	// Samples × maxPol bounds the largest per-step batch, so below the
	// cutoff every step would take the sequential branch anyway and the
	// pool would be pure goroutine overhead.
	if opt.Workers > 1 && opt.Samples*maxPol >= s.threshold {
		s.pool = newWorkerPool(opt.Workers)
		s.buf = make([]float64, opt.Samples*maxPol)
		if s.stats {
			s.chunkStats = make([]KernelStats, opt.Workers)
		}
	}
	return s
}

func (s *selector) close() {
	if s.pool != nil {
		s.pool.close()
	}
}

func (s *selector) selectPolicy(states []*EnergyState, affected []int, i, k, prev int) int {
	if s.lazy != nil {
		return s.lazy.selectPolicy(s.p, states, affected, i, k, prev, s.preferStay)
	}
	nPol := len(s.p.Gamma[i])
	if s.pool == nil || len(affected)*nPol < s.threshold {
		// Sequential scan. With the flat kernel the whole step runs
		// through the entry-major batched loop; the per-state reference
		// path remains for custom utilities and for instrumented runs
		// (KernelStats counts per-state work there).
		if s.p.kern.linear && !s.stats && len(affected) > 1 {
			gainsBatchFlat(s.p, states, affected, i, k, nPol, s.gains, s.acc)
			return argmaxPolicy(s.gains[:nPol], prev, s.preferStay)
		}
		return selectPolicy(s.p, states, affected, i, k, prev, s.preferStay, s.gains)
	}
	if len(affected) > 1 {
		// Fan over samples: worker w computes the full per-policy marginal
		// row of its slice of the affected samples. Each sample's state —
		// kernel-stats collector included — is touched by exactly one
		// chunk, so instrumented runs count here without extra machinery.
		s.pool.runChunks(len(affected), func(_, lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				st := states[affected[idx]]
				row := s.buf[idx*nPol : (idx+1)*nPol]
				for pol := 0; pol < nPol; pol++ {
					row[pol] = st.Marginal(i, k, pol)
				}
			}
		})
		// Fixed-order reduction: per policy, sum rows in affected order —
		// the exact accumulation sequence of the sequential reference.
		for pol := 0; pol < nPol; pol++ {
			var gain float64
			for idx := range affected {
				gain += s.buf[idx*nPol+pol]
			}
			s.gains[pol] = gain
		}
	} else {
		// One affected sample (the whole C = 1 regime): fan over policies
		// instead; each gains slot is written by exactly one worker. The
		// workers all evaluate the same state, so instrumented runs hand
		// each chunk a private stats collector and merge them below, at
		// the barrier — the counts are exactly the sequential scan's.
		cs := s.chunkStats
		for ci := range cs {
			cs[ci] = KernelStats{}
		}
		s.pool.runChunks(nPol, func(ch, lo, hi int) {
			var st *KernelStats
			if cs != nil {
				st = &cs[ch]
			}
			for pol := lo; pol < hi; pol++ {
				var gain float64
				for _, smp := range affected {
					gain += states[smp].marginalInto(i, k, pol, st)
				}
				s.gains[pol] = gain
			}
		})
		if cs != nil && len(affected) == 1 {
			if dst := states[affected[0]].stats; dst != nil {
				for ci := range cs {
					dst.add(cs[ci])
				}
			}
		}
	}
	return argmaxPolicy(s.gains[:nPol], prev, s.preferStay)
}

// apply commits the chosen policy to every affected sample state. States
// are disjoint, so the fan-out is race-free and each state's accumulation
// order is unchanged.
func (s *selector) apply(states []*EnergyState, affected []int, i, k, pol int) {
	if s.pool == nil || len(affected) < 2 {
		if s.p.kern.linear && len(affected) > 1 {
			applyBatchFlat(s.p, states, affected, i, k, pol, s.acc)
			return
		}
		for _, smp := range affected {
			states[smp].Apply(i, k, pol)
		}
		return
	}
	s.pool.runChunks(len(affected), func(_, lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			states[affected[idx]].Apply(i, k, pol)
		}
	})
}
