package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haste/internal/model"
)

// testing/quick property: for a random instance, random independent sets
// A ⊆ B and a random fresh element e, the objective satisfies
// 0 ≤ Δf(B, e) ≤ Δf(A, e) (monotone + submodular, Lemma 4.2) under every
// concave utility model shipped with the library.
func TestObjectivePropertiesQuick(t *testing.T) {
	utilities := []model.Utility{model.LinearBounded{}, model.LogUtility{}, model.ExpSaturating{}}
	prop := func(seed int64, uIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomFieldInstance(rng, 3, 8, 4, 25)
		in.Utility = utilities[int(uIdx)%len(utilities)]
		p, err := NewProblem(in)
		if err != nil {
			return false
		}
		type elem struct{ i, k, pol int }
		used := map[[2]int]bool{}
		var b []elem
		for len(b) < 5 {
			i, k := rng.Intn(3), rng.Intn(p.K)
			if used[[2]int{i, k}] {
				continue
			}
			used[[2]int{i, k}] = true
			b = append(b, elem{i, k, rng.Intn(len(p.Gamma[i]))})
		}
		var e elem
		for {
			i, k := rng.Intn(3), rng.Intn(p.K)
			if !used[[2]int{i, k}] {
				e = elem{i, k, rng.Intn(len(p.Gamma[i]))}
				break
			}
		}
		nA := rng.Intn(len(b))
		esA, esB := NewEnergyState(p), NewEnergyState(p)
		for idx, x := range b {
			if idx < nA {
				esA.Apply(x.i, x.k, x.pol)
			}
			esB.Apply(x.i, x.k, x.pol)
		}
		mA := esA.Marginal(e.i, e.k, e.pol)
		mB := esB.Marginal(e.i, e.k, e.pol)
		return mB >= -1e-12 && mA >= mB-1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// testing/quick property: Restore exactly undoes Apply regardless of the
// application sequence.
func TestRestoreUndoesApplyQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomFieldInstance(rng, 3, 8, 4, 25)
		p, err := NewProblem(in)
		if err != nil {
			return false
		}
		es := NewEnergyState(p)
		// Warm the state with a few applications.
		for step := 0; step < 5; step++ {
			i := rng.Intn(3)
			es.Apply(i, rng.Intn(p.K), rng.Intn(len(p.Gamma[i])))
		}
		i := rng.Intn(3)
		k, pol := rng.Intn(p.K), rng.Intn(len(p.Gamma[i]))
		before := es.Clone()
		ids := append([]int(nil), p.Gamma[i][pol].Covers...)
		vals := make([]float64, len(ids))
		for idx, j := range ids {
			vals[idx] = es.Energy(j)
		}
		total := es.Total()
		es.Apply(i, k, pol)
		es.Restore(ids, vals, total)
		if es.Total() != before.Total() {
			return false
		}
		for j := range in.Tasks {
			if es.Energy(j) != before.Energy(j) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(100))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// The whole offline pipeline must work under the general concave
// utilities, not just the paper's linear-bounded one.
func TestTabularGreedyWithGeneralUtilities(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	base := randomFieldInstance(rng, 5, 16, 8, 35)
	for _, u := range []model.Utility{model.LogUtility{}, model.ExpSaturating{}} {
		in := *base
		in.Utility = u
		p := mustProblem(t, &in)
		res := TabularGreedy(p, DefaultOptions(1))
		if res.RUtility <= 0 || res.RUtility > in.TotalWeight()+1e-9 {
			t.Errorf("%s: utility %v out of range", u.Name(), res.RUtility)
		}
		// ½-approximation against random feasible schedules holds for any
		// monotone submodular objective.
		for x := 0; x < 10; x++ {
			s := NewSchedule(len(in.Chargers), p.K)
			for i := range s.Policy {
				for k := range s.Policy[i] {
					s.Policy[i][k] = rng.Intn(len(p.Gamma[i]))
				}
			}
			if other := Evaluate(p, s); res.RUtility < other/2-1e-9 {
				t.Errorf("%s: greedy %v below ½·%v", u.Name(), res.RUtility, other)
			}
		}
	}
}
