package core

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/geom"
	"haste/internal/model"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// oneTaskInstance: a charger at the origin and one task 10 m along +x
// facing back, P_r = 10000/(10+40)² = 4 W, 240 J per 60 s slot.
func oneTaskInstance(energy float64, release, end int) *model.Instance {
	return &model.Instance{
		Chargers: []model.Charger{{ID: 0, Pos: geom.Point{X: 0, Y: 0}}},
		Tasks: []model.Task{{
			ID: 0, Pos: geom.Point{X: 10, Y: 0}, Phi: math.Pi,
			Release: release, End: end, Energy: energy, Weight: 1,
		}},
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(60),
			SlotSeconds: 60, Rho: 0, Tau: 0,
		},
	}
}

// randomFieldInstance builds a random HASTE instance on a side×side field.
func randomFieldInstance(rng *rand.Rand, n, m, maxDur int, side float64) *model.Instance {
	in := &model.Instance{
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: side / 2,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(120),
			SlotSeconds: 60, Rho: 1.0 / 12, Tau: 0,
		},
	}
	for i := 0; i < n; i++ {
		in.Chargers = append(in.Chargers, model.Charger{
			ID: i, Pos: geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side},
		})
	}
	for j := 0; j < m; j++ {
		rel := rng.Intn(3)
		dur := 2 + rng.Intn(maxDur)
		in.Tasks = append(in.Tasks, model.Task{
			ID:  j,
			Pos: geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side},
			Phi: rng.Float64() * geom.TwoPi, Release: rel, End: rel + dur,
			Energy: 100 + rng.Float64()*2000, Weight: 1.0 / float64(m),
		})
	}
	return in
}

func mustProblem(t *testing.T, in *model.Instance) *Problem {
	t.Helper()
	p, err := NewProblem(in)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func TestNewProblemValidates(t *testing.T) {
	in := oneTaskInstance(480, 0, 2)
	in.Tasks[0].Energy = -1
	if _, err := NewProblem(in); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestProblemPrecomputation(t *testing.T) {
	p := mustProblem(t, oneTaskInstance(480, 0, 2))
	if p.K != 2 {
		t.Errorf("K = %d, want 2", p.K)
	}
	if got := p.SlotEnergy(0, 0); !almostEq(got, 240) {
		t.Errorf("SlotEnergy = %v, want 240", got)
	}
	if len(p.Gamma[0]) != 1 || p.Gamma[0][0].Idle {
		t.Fatalf("Gamma = %v", p.Gamma[0])
	}
}

func TestEvaluateManual(t *testing.T) {
	// Task needs 480 J over 2 slots; one covered slot delivers 240 J.
	p := mustProblem(t, oneTaskInstance(480, 0, 2))
	s := NewSchedule(1, p.K)
	if got := Evaluate(p, s); got != 0 {
		t.Errorf("empty schedule utility = %v", got)
	}
	s.Policy[0][0] = 0
	if got := Evaluate(p, s); !almostEq(got, 0.5) {
		t.Errorf("one-slot utility = %v, want 0.5", got)
	}
	s.Policy[0][1] = 0
	if got := Evaluate(p, s); !almostEq(got, 1) {
		t.Errorf("two-slot utility = %v, want 1", got)
	}
	e := PerTaskEnergies(p, s)
	if !almostEq(e[0], 480) {
		t.Errorf("energy = %v, want 480", e[0])
	}
}

func TestEvaluateInactiveSlotEarnsNothing(t *testing.T) {
	p := mustProblem(t, oneTaskInstance(480, 1, 3)) // active slots 1,2
	s := NewSchedule(1, p.K)
	s.Policy[0][0] = 0 // before release
	if got := Evaluate(p, s); got != 0 {
		t.Errorf("pre-release slot earned %v", got)
	}
	s.Policy[0][1] = 0
	if got := Evaluate(p, s); !almostEq(got, 0.5) {
		t.Errorf("utility = %v, want 0.5", got)
	}
}

func TestMarginalMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		in := randomFieldInstance(rng, 4, 12, 6, 30)
		p := mustProblem(t, in)
		es := NewEnergyState(p)
		for step := 0; step < 30; step++ {
			i := rng.Intn(len(in.Chargers))
			k := rng.Intn(p.K)
			pol := rng.Intn(len(p.Gamma[i]))
			m := es.Marginal(i, k, pol)
			before := es.Total()
			gain := es.Apply(i, k, pol)
			if !almostEq(m, gain) {
				t.Fatalf("Marginal %v != Apply gain %v", m, gain)
			}
			if !almostEq(es.Total()-before, gain) {
				t.Fatalf("Total drift: %v vs %v", es.Total()-before, gain)
			}
		}
	}
}

func TestMarginalScaled(t *testing.T) {
	p := mustProblem(t, oneTaskInstance(480, 0, 2))
	es := NewEnergyState(p)
	full := es.Marginal(0, 0, 0)
	half := es.MarginalScaled(0, 0, 0, 0.5)
	if !almostEq(full, 0.5) || !almostEq(half, 0.25) {
		t.Errorf("marginals full=%v half=%v", full, half)
	}
	es.ApplyScaled(0, 0, 0, 0.5)
	if !almostEq(es.Energy(0), 120) {
		t.Errorf("scaled energy = %v, want 120", es.Energy(0))
	}
	if zero := es.MarginalScaled(0, 1, 0, 0); zero != 0 {
		t.Errorf("zero-frac marginal = %v", zero)
	}
}

func TestEnergyStateCloneAndReset(t *testing.T) {
	p := mustProblem(t, oneTaskInstance(480, 0, 2))
	es := NewEnergyState(p)
	es.Apply(0, 0, 0)
	cl := es.Clone()
	es.Apply(0, 1, 0)
	if almostEq(cl.Total(), es.Total()) {
		t.Error("clone aliases original")
	}
	es.Reset()
	if es.Total() != 0 || es.Energy(0) != 0 {
		t.Error("Reset incomplete")
	}
	if !almostEq(cl.Total(), 0.5) {
		t.Errorf("clone total = %v, want 0.5", cl.Total())
	}
}

// Lemma 4.2: f is normalized, monotone and submodular. We verify the
// diminishing-marginals property on random instances: for element sets
// A ⊆ B not touching partition (i,k), Marginal_A(e) ≥ Marginal_B(e) ≥ 0.
func TestObjectiveMonotoneSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 80; trial++ {
		in := randomFieldInstance(rng, 4, 10, 5, 25)
		p := mustProblem(t, in)
		n := len(in.Chargers)

		// Random independent set B as a sequence of distinct partitions.
		type elem struct{ i, k, pol int }
		used := map[[2]int]bool{}
		var b []elem
		for len(b) < 6 {
			i, k := rng.Intn(n), rng.Intn(p.K)
			if used[[2]int{i, k}] {
				continue
			}
			used[[2]int{i, k}] = true
			b = append(b, elem{i, k, rng.Intn(len(p.Gamma[i]))})
		}
		nA := rng.Intn(len(b))
		// e from a fresh partition.
		var e elem
		for {
			i, k := rng.Intn(n), rng.Intn(p.K)
			if !used[[2]int{i, k}] {
				e = elem{i, k, rng.Intn(len(p.Gamma[i]))}
				break
			}
		}
		esA, esB := NewEnergyState(p), NewEnergyState(p)
		for idx, x := range b {
			if idx < nA {
				esA.Apply(x.i, x.k, x.pol)
			}
			esB.Apply(x.i, x.k, x.pol)
		}
		mA := esA.Marginal(e.i, e.k, e.pol)
		mB := esB.Marginal(e.i, e.k, e.pol)
		if mB < -1e-12 {
			t.Fatalf("trial %d: negative marginal %v (monotonicity)", trial, mB)
		}
		if mA < mB-1e-9 {
			t.Fatalf("trial %d: submodularity violated: Δf(A)=%v < Δf(B)=%v", trial, mA, mB)
		}
	}
}

func TestScheduleHelpers(t *testing.T) {
	s := NewSchedule(2, 3)
	if s.Slots() != 3 {
		t.Errorf("Slots = %d", s.Slots())
	}
	for i := range s.Policy {
		for k := range s.Policy[i] {
			if s.Policy[i][k] != -1 {
				t.Fatal("NewSchedule not -1 initialized")
			}
		}
	}
	s.Policy[0][0] = 7
	c := s.Clone()
	c.Policy[0][0] = 9
	if s.Policy[0][0] != 7 {
		t.Error("Clone aliases original")
	}
	var empty Schedule
	if empty.Slots() != 0 {
		t.Error("empty schedule Slots != 0")
	}
}
