package core

import (
	"math/rand"
	"testing"

	"haste/internal/obs"
)

func childrenNamed(n *obs.Node, name string) []*obs.Node {
	var out []*obs.Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// A traced monolithic run must produce the documented phase tree — one
// solve root with greedy and evaluate children and the run counters as
// root attributes — and a schedule bit-identical to the untraced run.
func TestTraceMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	in := kernelProneInstance(rng, 4, 16)
	p := mustProblem(t, in)

	base := Options{Colors: 2, PreferStay: true, Workers: 1, KernelStats: true, Shard: ShardOff}
	plain := TabularGreedy(p, base)

	traced := base
	traced.Trace = obs.New()
	res := TabularGreedy(p, traced)
	if err := compareSchedules(plain.Schedule, res.Schedule); err != nil {
		t.Fatalf("traced schedule diverges from untraced: %v", err)
	}
	if res.RUtility != plain.RUtility {
		t.Fatalf("traced utility %v != untraced %v", res.RUtility, plain.RUtility)
	}
	if res.Trace != traced.Trace {
		t.Fatalf("Result.Trace does not echo Options.Trace")
	}

	roots := res.Trace.Tree()
	if len(roots) != 1 || roots[0].Name != "solve" {
		t.Fatalf("want a single solve root, got %+v", roots)
	}
	solve := roots[0]
	if len(childrenNamed(solve, "greedy")) != 1 || len(childrenNamed(solve, "evaluate")) != 1 {
		t.Fatalf("solve children malformed: %+v", solve.Children)
	}
	g := childrenNamed(solve, "greedy")[0]
	if g.Attrs["chargers"] != 4 || g.Attrs["colors"] != 2 {
		t.Errorf("greedy attrs = %v", g.Attrs)
	}
	if solve.Attrs["shards"] != 0 {
		t.Errorf("monolithic solve reports shards=%d", solve.Attrs["shards"])
	}
	// The run counters fold into the root span.
	if solve.Attrs["kernel_calls"] != res.Kernel.Calls || solve.Attrs["kernel_pruned"] != res.Kernel.Pruned {
		t.Errorf("kernel counters not folded into root: %v vs %+v", solve.Attrs, res.Kernel)
	}
}

// A traced sharded run records decompose/stitch/evaluate plus one
// component span per sub-run; warm-started re-runs mark adopted
// components with warm_adopted=1, matching Result.WarmReused.
func TestTraceShardedAndWarm(t *testing.T) {
	p := shardProblem(t, 52, 6, 12, 48)

	opt := Options{Colors: 2, PreferStay: true, Workers: 2, Shard: ShardOn, CollectWarm: true}
	cold := TabularGreedy(p, opt)
	if cold.Shards < 2 {
		t.Fatalf("instance did not shard: %d components", cold.Shards)
	}

	traced := opt
	traced.Trace = obs.New()
	res := TabularGreedy(p, traced)
	if err := compareSchedules(cold.Schedule, res.Schedule); err != nil {
		t.Fatalf("traced sharded schedule diverges: %v", err)
	}
	roots := res.Trace.Tree()
	if len(roots) != 1 || roots[0].Name != "solve" {
		t.Fatalf("want a single solve root, got %d roots", len(roots))
	}
	solve := roots[0]
	for _, phase := range []string{"decompose", "stitch", "evaluate"} {
		if len(childrenNamed(solve, phase)) != 1 {
			t.Fatalf("missing %s span: %+v", phase, solve.Children)
		}
	}
	comps := childrenNamed(solve, "component")
	if len(comps) != res.Shards {
		t.Fatalf("%d component spans, want %d", len(comps), res.Shards)
	}
	for _, c := range comps {
		if c.Attrs["chargers"] < 1 || c.Attrs["tasks"] < 1 {
			t.Errorf("component span lacks size attrs: %v", c.Attrs)
		}
		if c.Attrs["warm_adopted"] != 0 {
			t.Errorf("cold run adopted a component: %v", c.Attrs)
		}
		if len(childrenNamed(c, "greedy")) != 1 {
			t.Errorf("component span lacks nested greedy: %+v", c.Children)
		}
	}
	if solve.Attrs["shards"] != int64(res.Shards) {
		t.Errorf("root shards attr %d != %d", solve.Attrs["shards"], res.Shards)
	}

	// Warm re-run: every component is adoptable, so all component spans
	// must carry warm_adopted=1 and their count must equal WarmReused.
	warm := opt
	warm.Incumbent = res.Warm
	warm.Trace = obs.New()
	wres := TabularGreedy(p, warm)
	if err := compareSchedules(cold.Schedule, wres.Schedule); err != nil {
		t.Fatalf("warm traced schedule diverges: %v", err)
	}
	if wres.WarmReused != res.Shards {
		t.Fatalf("warm run reused %d of %d components", wres.WarmReused, res.Shards)
	}
	wsolve := wres.Trace.Tree()[0]
	adopted := 0
	for _, c := range childrenNamed(wsolve, "component") {
		if c.Attrs["warm_adopted"] == 1 {
			adopted++
		}
	}
	if adopted != wres.WarmReused {
		t.Fatalf("%d warm_adopted spans, want %d", adopted, wres.WarmReused)
	}
	if wsolve.Attrs["warm_reused"] != int64(wres.WarmReused) {
		t.Errorf("root warm_reused attr %d != %d", wsolve.Attrs["warm_reused"], wres.WarmReused)
	}
}

// NewProblemTraced records the compile pipeline — grid build, slot-energy
// rows, dominant extraction, kernel compile — and compiles a Problem that
// schedules identically to the untraced compile.
func TestTraceCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	in := kernelProneInstance(rng, 4, 16)
	plain := mustProblem(t, in)

	tr := obs.New()
	p, err := NewProblemTraced(in, tr)
	if err != nil {
		t.Fatal(err)
	}
	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "compile" {
		t.Fatalf("want a single compile root, got %+v", roots)
	}
	compile := roots[0]
	for _, phase := range []string{"grid_build", "slot_energy_rows", "dominant_extract", "kernel_compile"} {
		if len(childrenNamed(compile, phase)) != 1 {
			t.Fatalf("missing %s span: %+v", phase, compile.Children)
		}
	}
	if compile.Attrs["chargers"] != 4 || compile.Attrs["tasks"] != 16 {
		t.Errorf("compile attrs = %v", compile.Attrs)
	}
	if got := childrenNamed(compile, "slot_energy_rows")[0].Attrs["entries"]; got <= 0 {
		t.Errorf("slot_energy_rows entries attr = %d", got)
	}

	opt := Options{Colors: 2, PreferStay: true, Workers: 1}
	a, b := TabularGreedy(plain, opt), TabularGreedy(p, opt)
	if err := compareSchedules(a.Schedule, b.Schedule); err != nil {
		t.Fatalf("traced compile changes the schedule: %v", err)
	}

	// A nil trace must be exactly NewProblem.
	if _, err := NewProblemTraced(in, nil); err != nil {
		t.Fatalf("nil-trace compile failed: %v", err)
	}
}

// ScheduleSharded's instance-direct path records the row build, the
// decomposition, and a transient compile subtree under every component.
func TestTraceScheduleSharded(t *testing.T) {
	p := shardProblem(t, 54, 5, 10, 40)
	opt := Options{Colors: 1, PreferStay: true, Workers: 2, Trace: obs.New()}
	res, err := ScheduleSharded(p.In, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Result.Trace not set")
	}
	roots := res.Trace.Tree()
	if len(roots) != 1 || roots[0].Name != "solve" {
		t.Fatalf("want a single solve root, got %d roots", len(roots))
	}
	solve := roots[0]
	for _, phase := range []string{"grid_build", "slot_energy_rows", "decompose", "stitch"} {
		if len(childrenNamed(solve, phase)) != 1 {
			t.Fatalf("missing %s span: %+v", phase, solve.Children)
		}
	}
	comps := childrenNamed(solve, "component")
	if len(comps) != res.Shards {
		t.Fatalf("%d component spans, want %d", len(comps), res.Shards)
	}
	for _, c := range comps {
		if len(childrenNamed(c, "compile")) != 1 {
			t.Errorf("component lacks transient compile subtree: %+v", c.Children)
		}
	}
}

// The disabled-trace marginal loop must stay allocation-free after the
// kernel-stats parameter refactor: Marginal, MarginalScaled and the
// policy fan's marginalInto (nil and non-nil collector) at 0 allocs/op.
func TestTraceDisabledMarginalAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	in := kernelProneInstance(rng, 3, 12)
	p := mustProblem(t, in)
	es := p.AcquireState()
	defer p.ReleaseState(es)
	var st KernelStats
	allocs := testing.AllocsPerRun(200, func() {
		for i := range p.Gamma {
			for pol := range p.Gamma[i] {
				_ = es.Marginal(i, 0, pol)
				_ = es.MarginalScaled(i, 0, pol, 0.5)
				_ = es.marginalInto(i, 0, pol, nil)
				_ = es.marginalInto(i, 0, pol, &st)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("marginal loop allocated %v times per run, want 0", allocs)
	}
}
