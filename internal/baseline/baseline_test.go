package baseline

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
	"haste/internal/sim"
)

func params(rho float64, tau int) model.Params {
	return model.Params{
		Alpha: 10000, Beta: 40, Radius: 20,
		ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(120),
		SlotSeconds: 60, Rho: rho, Tau: tau,
	}
}

func mustProblem(t *testing.T, in *model.Instance) *core.Problem {
	t.Helper()
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

// One charger, a lone near task (high utility marginal) on one side and a
// pair of far tasks on the other: GreedyCover must pick the pair,
// GreedyUtility the lone near task (its marginal utility is larger).
func coverVsUtilityInstance() *model.Instance {
	return &model.Instance{
		Chargers: []model.Charger{{ID: 0, Pos: geom.Point{X: 0, Y: 0}}},
		Tasks: []model.Task{
			// Near task: 4 W → 240 J/slot against only 240 J required.
			{ID: 0, Pos: geom.Point{X: 10, Y: 0}, Phi: math.Pi, Release: 0, End: 4, Energy: 240, Weight: 1.0 / 3},
			// Two far tasks at azimuth 180°, 0.92 W each, huge requirement.
			{ID: 1, Pos: geom.Point{X: -19, Y: 1}, Phi: geom.Deg(-3), Release: 0, End: 4, Energy: 1e6, Weight: 1.0 / 3},
			{ID: 2, Pos: geom.Point{X: -19, Y: -1}, Phi: geom.Deg(3), Release: 0, End: 4, Energy: 1e6, Weight: 1.0 / 3},
		},
		Params: params(0, 0),
	}
}

func TestGreedyCoverPrefersMoreTasks(t *testing.T) {
	p := mustProblem(t, coverVsUtilityInstance())
	s := GreedyCover(p)
	pol := s.Policy[0][0]
	if len(p.Gamma[0][pol].Covers) != 2 {
		t.Fatalf("GreedyCover picked %v, want the two-task set", p.Gamma[0][pol])
	}
}

func TestGreedyUtilityPrefersHigherUtility(t *testing.T) {
	p := mustProblem(t, coverVsUtilityInstance())
	s := GreedyUtility(p)
	pol := s.Policy[0][0]
	covers := p.Gamma[0][pol].Covers
	if len(covers) != 1 || covers[0] != 0 {
		t.Fatalf("GreedyUtility picked %v, want the near task", p.Gamma[0][pol])
	}
	// Once the near task saturates (after slot 0), the charger moves on.
	pol1 := s.Policy[0][1]
	if len(p.Gamma[0][pol1].Covers) != 2 {
		t.Fatalf("GreedyUtility slot 1 picked %v, want the far pair", p.Gamma[0][pol1])
	}
}

func TestOnlineVisibilityDelaysReaction(t *testing.T) {
	in := coverVsUtilityInstance()
	in.Params.Tau = 2
	// Make windows long enough for τ=2 (duration ≥ 2τ).
	p := mustProblem(t, in)
	soff := GreedyUtility(p)
	son := GreedyUtilityOnline(p)
	// During slots 0 and 1 no task is visible online: the charger must
	// pick policy 0 by default both slots, regardless of tasks.
	for k := 0; k < 2; k++ {
		if son.Policy[0][k] != 0 {
			t.Errorf("online slot %d policy = %d, want default 0", k, son.Policy[0][k])
		}
	}
	// From slot 2 on the online schedule matches the offline one's
	// steady-state choice pattern shifted by τ: slot 2 behaves like
	// offline slot 0 (near task not yet charged).
	if p.Gamma[0][son.Policy[0][2]].Covers[0] != p.Gamma[0][soff.Policy[0][0]].Covers[0] {
		t.Errorf("online slot 2 should target what offline targeted first")
	}
}

func TestBaselinesProduceValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng)
		p := mustProblem(t, in)
		for name, s := range map[string]core.Schedule{
			"GreedyUtility":       GreedyUtility(p),
			"GreedyCover":         GreedyCover(p),
			"GreedyUtilityOnline": GreedyUtilityOnline(p),
			"GreedyCoverOnline":   GreedyCoverOnline(p),
		} {
			for i, row := range s.Policy {
				if len(row) != p.K {
					t.Fatalf("%s: charger %d has %d slots", name, i, len(row))
				}
				for k, pol := range row {
					if pol < 0 || pol >= len(p.Gamma[i]) {
						t.Fatalf("%s: invalid policy %d at (%d,%d)", name, pol, i, k)
					}
				}
			}
		}
	}
}

// The paper's headline comparison: HASTE (locally greedy, C=1) beats both
// baselines on aggregate, because baselines ignore cross-charger
// coordination. Statistical check over random instances.
func TestHasteBeatsBaselinesOnAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	var uh, ug, uc float64
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng)
		p := mustProblem(t, in)
		res := core.TabularGreedy(p, core.DefaultOptions(1))
		uh += sim.Execute(p, res.Schedule).Utility
		ug += sim.Execute(p, GreedyUtility(p)).Utility
		uc += sim.Execute(p, GreedyCover(p)).Utility
	}
	if uh < ug-1e-9 {
		t.Errorf("HASTE aggregate %v below GreedyUtility %v", uh, ug)
	}
	if uh < uc-1e-9 {
		t.Errorf("HASTE aggregate %v below GreedyCover %v", uh, uc)
	}
}

func randomInstance(rng *rand.Rand) *model.Instance {
	in := &model.Instance{Params: params(1.0/12, 1)}
	n, m := 4+rng.Intn(4), 12+rng.Intn(12)
	for i := 0; i < n; i++ {
		in.Chargers = append(in.Chargers, model.Charger{
			ID: i, Pos: geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40},
		})
	}
	for j := 0; j < m; j++ {
		rel := rng.Intn(4)
		in.Tasks = append(in.Tasks, model.Task{
			ID:  j,
			Pos: geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40},
			Phi: rng.Float64() * geom.TwoPi, Release: rel, End: rel + 2 + rng.Intn(8),
			Energy: 300 + rng.Float64()*2000, Weight: 1.0 / float64(m),
		})
	}
	return in
}
