// Package baseline implements the two comparison algorithms of §7.2:
//
//   - GreedyUtility: each charger greedily picks, slot by slot, the
//     orientation (dominant task set) that maximizes its own local charging
//     utility, ignoring what neighboring chargers deliver.
//   - GreedyCover: each charger picks the orientation covering the maximum
//     number of active charging tasks.
//
// Both are fully local — each charger needs no coordination — so they are
// trivially implementable in a distributed way, which is why the paper
// uses them as baselines in both the offline and the online scenario. The
// online variants additionally honor the rescheduling delay τ: a task
// released at slot t can influence a charger's orientation no earlier than
// slot t+τ (the time the charger needs to learn about the task and
// recompute).
package baseline

import (
	"haste/internal/core"
)

// GreedyUtility builds a schedule where every charger maximizes its own
// delivered utility, counting only the energy it delivers itself. With
// online = true tasks become visible τ slots after release.
func GreedyUtility(p *core.Problem) core.Schedule {
	return greedyUtility(p, false)
}

// GreedyUtilityOnline is GreedyUtility under the online visibility rule.
func GreedyUtilityOnline(p *core.Problem) core.Schedule {
	return greedyUtility(p, true)
}

// GreedyCover builds a schedule where every charger covers as many active
// tasks as possible each slot.
func GreedyCover(p *core.Problem) core.Schedule {
	return greedyCover(p, false)
}

// GreedyCoverOnline is GreedyCover under the online visibility rule.
func GreedyCoverOnline(p *core.Problem) core.Schedule {
	return greedyCover(p, true)
}

// visibleAt reports whether the task may influence decisions at slot k.
func visibleAt(p *core.Problem, taskID, k int, online bool) bool {
	t := &p.In.Tasks[taskID]
	if !t.ActiveAt(k) {
		return false
	}
	if online && k < t.Release+p.In.Params.Tau {
		return false
	}
	return true
}

func greedyUtility(p *core.Problem, online bool) core.Schedule {
	in := p.In
	n := len(in.Chargers)
	s := core.NewSchedule(n, p.K)
	u := in.U()
	for i := 0; i < n; i++ {
		// own[j]: energy this charger alone has delivered to task j — the
		// only information a coordination-free charger has.
		own := make([]float64, len(in.Tasks))
		prev := -1
		for k := 0; k < p.K; k++ {
			best, bestGain := 0, -1.0
			for pol := range p.Gamma[i] {
				// Compiled cover lists carry (task, Δe) pairs with Δe > 0;
				// zero-energy covers contribute exactly 0 gain, so skipping
				// them leaves every gain bitwise unchanged.
				var gain float64
				for _, e := range p.CompiledCovers(i, pol) {
					j := int(e.Task)
					if !visibleAt(p, j, k, online) {
						continue
					}
					t := &in.Tasks[j]
					gain += t.Weight * (u.Of(own[j]+e.De, t.Energy) - u.Of(own[j], t.Energy))
				}
				if gain > bestGain {
					best, bestGain = pol, gain
				} else if gain == bestGain && pol == prev {
					best = pol
				}
			}
			s.Policy[i][k] = best
			for _, e := range p.CompiledCovers(i, best) {
				if visibleAt(p, int(e.Task), k, online) {
					own[e.Task] += e.De
				}
			}
			prev = best
		}
	}
	return s
}

func greedyCover(p *core.Problem, online bool) core.Schedule {
	n := len(p.In.Chargers)
	s := core.NewSchedule(n, p.K)
	for i := 0; i < n; i++ {
		prev := -1
		for k := 0; k < p.K; k++ {
			best, bestCount := 0, -1
			for pol := range p.Gamma[i] {
				count := 0
				for _, j := range p.Gamma[i][pol].Covers {
					if visibleAt(p, j, k, online) {
						count++
					}
				}
				if count > bestCount {
					best, bestCount = pol, count
				} else if count == bestCount && pol == prev {
					best = pol
				}
			}
			s.Policy[i][k] = best
			prev = best
		}
	}
	return s
}
