package transport

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"haste/internal/netsim"
	"haste/internal/online"
)

// assertNoEngineGoroutines fails the test if any transport engine
// goroutine (serve loops, context watchers, stepping fans) is still alive
// after a grace period. The check scans live goroutine stacks for engine
// method frames — the stdlib-only equivalent of a goleak assertion,
// scoped to this package so other tests' goroutines cannot false-positive.
func assertNoEngineGoroutines(t *testing.T) {
	t.Helper()
	const marker = "transport.(*Engine)"
	deadline := time.Now().Add(5 * time.Second)
	var stacks string
	for {
		buf := make([]byte, 1<<20)
		stacks = string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, marker) {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("leaked engine goroutines:\n%s", stacks)
}

// fullMesh is the all-pairs topology on n nodes.
func fullMesh(n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		for j := 0; j < n; j++ {
			if j != i {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// chatterNode broadcasts a bid for a fixed number of rounds, then goes
// silent — a minimal protocol whose payloads the codec carries.
type chatterNode struct {
	id, rounds, stepped int
}

func (c *chatterNode) Step(inbox []netsim.Message) (netsim.Payload, bool) {
	c.stepped++
	if c.stepped > c.rounds {
		return nil, true
	}
	return online.BidMsg{Slot: c.stepped, Color: c.id, Delta: float64(c.stepped)}, false
}

func chatterNodes(n, rounds int) []netsim.Node {
	nodes := make([]netsim.Node, n)
	for i := range nodes {
		nodes[i] = &chatterNode{id: i, rounds: rounds}
	}
	return nodes
}

func TestEngineRunsAndClosesCleanly(t *testing.T) {
	e, err := New(fullMesh(4), netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Run(chatterNodes(4, 5))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 5 chatter rounds from 4 nodes over a full mesh, plus the quiescent
	// round: the socket substrate must account exactly like netsim.
	if want := int64(4 * 3 * 5); st.Messages != want || st.Attempted != want {
		t.Errorf("stats = %+v, want %d messages", st, want)
	}
	if st.Rounds != 6 {
		t.Errorf("rounds = %d, want 6 (5 chatter rounds + the quiescent one)", st.Rounds)
	}
	// Sessions are repeatable on one engine, like the in-memory driver.
	if _, err := e.Run(chatterNodes(4, 2)); err != nil {
		t.Fatalf("second session: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Run(chatterNodes(4, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Run after Close: err = %v, want ErrClosed", err)
	}
	assertNoEngineGoroutines(t)
}

func TestCloseWithoutRunLeaksNothing(t *testing.T) {
	e, err := New(fullMesh(3), netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoEngineGoroutines(t)
}

// sabotageNode crashes its own process mid-round: at step `at` it tears
// down its connection, so the coordinator's round trip fails while the
// session is in flight.
type sabotageNode struct {
	e       *Engine
	idx, at int
	stepped int
}

func (n *sabotageNode) Step(inbox []netsim.Message) (netsim.Payload, bool) {
	n.stepped++
	if n.stepped == n.at {
		n.e.servers[n.idx].conn.Close()
	}
	return online.BidMsg{Slot: n.stepped, Color: n.idx, Delta: 1}, false
}

func TestNodeCrashMidRoundAbortsSession(t *testing.T) {
	e, err := New(fullMesh(3), netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := chatterNodes(3, 1000)
	nodes[1] = &sabotageNode{e: e, idx: 1, at: 3}
	st, err := e.Run(nodes)
	if err == nil {
		t.Fatal("Run survived a node tearing down its connection")
	}
	if errors.Is(err, netsim.ErrNoQuiescence) {
		t.Fatalf("crash reported as non-quiescence: %v", err)
	}
	if st.Rounds == 0 {
		t.Error("no rounds recorded before the crash")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoEngineGoroutines(t)
}

func TestContextCancellationAbortsSession(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e, err := NewContext(ctx, fullMesh(3), netsim.Options{MaxRounds: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	// Endless chatter: only the cancellation can end this session (the
	// round cap would report ErrNoQuiescence instead, failing the test).
	_, err = e.Run(chatterNodes(3, 1<<30))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run: err = %v, want context.Canceled", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoEngineGoroutines(t)
}

func TestListenerCloseDoesNotDisturbEstablishedSession(t *testing.T) {
	e, err := New(fullMesh(3), netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The per-node connections are established in New; the listeners only
	// matter for new dials, so closing one mid-life must not affect the
	// session traffic.
	if err := e.servers[0].ln.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(chatterNodes(3, 4)); err != nil {
		t.Fatalf("Run after listener close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoEngineGoroutines(t)
}

func TestNewRejectsBadTopology(t *testing.T) {
	if _, err := New([][]int{{0}}, netsim.Options{}); err == nil {
		t.Error("self-loop topology accepted")
	}
	if _, err := New([][]int{{1}, {}}, netsim.Options{}); err == nil {
		t.Error("asymmetric topology accepted")
	}
	assertNoEngineGoroutines(t)
}

func TestNodeAddrIsLoopback(t *testing.T) {
	e, err := New(fullMesh(2), netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 2; i++ {
		addr := e.NodeAddr(i).String()
		if !strings.HasPrefix(addr, "127.0.0.1:") {
			t.Errorf("node %d bound to %s, want loopback", i, addr)
		}
	}
}
