// Package transport is the real-socket execution substrate for the online
// negotiation: a netsim.Driver that carries every protocol message over
// loopback TCP connections instead of in-memory channels. Each node gets
// its own listener and serve goroutine — a process-shaped deployment of
// the paper's distributed Algorithm 3 — while the coordinator runs the
// shared netsim.RunRounds loop and exchanges one framed request/response
// pair per node per round (the round barrier).
//
// # Determinism and equivalence
//
// The engine reuses netsim.RunRounds verbatim: crash draws, delivery
// bookkeeping and all failure-injection RNG draws happen in that
// single-threaded loop, in the same order as the in-memory drivers; this
// engine only supplies the stepping fan (serialize inbox → socket →
// remote Step → socket → deserialize output). Failure injection therefore
// acts at the coordinator's delivery stage and the wire carries exactly
// the surviving deliveries, so committed schedules, utilities, switch
// counts and Stats are bit-identical to netsim — the contract the
// cross-driver differential suite (difftest.DriverSweep) enforces,
// including the exact message balance
//
//	Messages == Attempted - Dropped - CrashLost - Expired + Duplicated.
//
// # Lifecycle
//
// New dials one loopback connection per node up front; Run installs the
// session's nodes and drives rounds; Close (idempotent) sends best-effort
// shutdown frames, tears down every connection and listener, and waits
// for all goroutines to exit — the shutdown-path tests assert zero
// leaked goroutines. NewContext additionally aborts a running session
// when the context is cancelled.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"haste/internal/netsim"
)

// ErrClosed is returned by Run after Close.
var ErrClosed = errors.New("transport: engine is closed")

// Engine is the loopback TCP netsim.Driver. Create with New or
// NewContext; it is not safe for concurrent Runs (sessions are
// sequential, as in the in-memory engine), but Close may be called from
// another goroutine to abort a running session.
type Engine struct {
	neighbors [][]int
	opt       netsim.Options

	links   []*link       // coordinator side: one dialed conn per node
	servers []*nodeServer // node side: listener + accepted conn + goroutine
	errs    []error       // per-node scratch for the stepping fan

	ctx       context.Context
	stop      chan struct{} // closed by Close; parks the context watcher
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    atomic.Bool
}

// link is the coordinator's end of one node's connection, with reusable
// encode/decode buffers (the round loop is single-threaded per link).
type link struct {
	conn net.Conn
	body []byte // step frame body assembly
	out  []byte // full outgoing frame assembly
	in   []byte // response frame scratch
}

// nodeServer is the remote end: it owns node i's listener and accepted
// connection and runs the serve loop. The installed node is guarded by mu
// so installation in Run happens-before the serve goroutine steps it.
type nodeServer struct {
	idx  int
	ln   net.Listener
	conn net.Conn

	mu   sync.Mutex
	node netsim.Node
}

// New builds an engine over the topology: one loopback listener plus one
// established TCP connection per node. The returned engine holds sockets
// and goroutines — Close it.
func New(neighbors [][]int, opt netsim.Options) (*Engine, error) {
	return NewContext(context.Background(), neighbors, opt)
}

// NewContext is New with a cancellation context: when ctx is cancelled,
// every connection and listener is torn down, which aborts an in-flight
// Run with an error wrapping ctx.Err().
func NewContext(ctx context.Context, neighbors [][]int, opt netsim.Options) (*Engine, error) {
	if err := netsim.ValidateTopology(neighbors); err != nil {
		return nil, err
	}
	n := len(neighbors)
	e := &Engine{
		neighbors: neighbors,
		opt:       opt,
		links:     make([]*link, n),
		servers:   make([]*nodeServer, n),
		errs:      make([]error, n),
		ctx:       ctx,
		stop:      make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		s := &nodeServer{idx: i}
		e.servers[i] = s
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("transport: listen node %d: %w", i, err)
		}
		s.ln = ln
		type accepted struct {
			conn net.Conn
			err  error
		}
		ch := make(chan accepted, 1)
		go func() {
			c, err := ln.Accept()
			ch <- accepted{c, err}
		}()
		cc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("transport: dial node %d: %w", i, err)
		}
		e.links[i] = &link{conn: cc}
		a := <-ch
		if a.err != nil {
			e.Close()
			return nil, fmt.Errorf("transport: accept node %d: %w", i, a.err)
		}
		s.conn = a.conn
	}
	for _, s := range e.servers {
		e.wg.Add(1)
		go e.serve(s)
	}
	if ctx.Done() != nil {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			select {
			case <-ctx.Done():
				e.teardown()
			case <-e.stop:
			}
		}()
	}
	return e, nil
}

// Factory is the netsim.Factory of the loopback TCP engine: pass it as
// online.Options.Driver (the `--transport tcp` flag of the CLIs does) to
// run every negotiation over real sockets.
func Factory(neighbors [][]int, opt netsim.Options) (netsim.Driver, error) {
	return New(neighbors, opt)
}

// ContextFactory is Factory bound to a cancellation context: every engine
// it builds aborts its session when ctx is cancelled.
func ContextFactory(ctx context.Context) netsim.Factory {
	return func(neighbors [][]int, opt netsim.Options) (netsim.Driver, error) {
		return NewContext(ctx, neighbors, opt)
	}
}

// NodeAddr reports the loopback address node i's listener is bound to —
// observability for tests and demos; the engine itself dials it in New.
func (e *Engine) NodeAddr(i int) net.Addr { return e.servers[i].ln.Addr() }

// Run implements netsim.Driver: install the session's nodes into the
// serve goroutines, then drive the shared round loop with the socket
// stepping fan. Like the in-memory engine it may be called once per
// session until Close.
func (e *Engine) Run(nodes []netsim.Node) (netsim.Stats, error) {
	if len(nodes) != len(e.neighbors) {
		return netsim.Stats{}, fmt.Errorf("transport: %d nodes for a %d-node topology",
			len(nodes), len(e.neighbors))
	}
	if e.closed.Load() {
		return netsim.Stats{}, ErrClosed
	}
	for i, s := range e.servers {
		s.mu.Lock()
		s.node = nodes[i]
		s.mu.Unlock()
	}
	st, err := netsim.RunRounds(e.neighbors, e.opt, e.step)
	if err != nil && !errors.Is(err, netsim.ErrNoQuiescence) {
		// A link error during teardown is a symptom; report the cause.
		if cerr := e.ctx.Err(); cerr != nil {
			err = fmt.Errorf("transport: session aborted: %w", cerr)
		} else if e.closed.Load() {
			err = fmt.Errorf("%w: %v", ErrClosed, err)
		}
	}
	return st, err
}

// step is the socket stepping fan: one goroutine per up node performs the
// framed round trip (inbox out, Step result back). Down nodes are skipped
// entirely — their serve loop never hears about the round, exactly like a
// crashed process.
func (e *Engine) step(round int, down []bool, inboxes [][]netsim.Message, outs []netsim.Payload) error {
	var wg sync.WaitGroup
	for i := range e.links {
		e.errs[i] = nil
		if down != nil && down[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], e.errs[i] = e.roundTrip(i, round, inboxes[i])
		}(i)
	}
	wg.Wait()
	return errors.Join(e.errs...)
}

// roundTrip sends node i its inbox for this round and reads back the
// node's Step output. All buffers are reused across rounds.
func (e *Engine) roundTrip(i, round int, inbox []netsim.Message) (netsim.Payload, error) {
	l := e.links[i]
	body, err := encodeStep(l.body[:0], round, inbox)
	if err != nil {
		return nil, fmt.Errorf("transport: node %d: %w", i, err)
	}
	l.body = body
	frame, err := appendFrame(l.out[:0], frameStep, body)
	if err != nil {
		return nil, fmt.Errorf("transport: node %d: %w", i, err)
	}
	l.out = frame
	if _, err := l.conn.Write(frame); err != nil {
		return nil, fmt.Errorf("transport: node %d send: %w", i, err)
	}
	typ, resp, err := readFrame(l.conn, &l.in)
	if err != nil {
		return nil, fmt.Errorf("transport: node %d recv: %w", i, err)
	}
	if typ != frameOut {
		return nil, fmt.Errorf("transport: node %d: unexpected frame type %d in response", i, typ)
	}
	out, _, err := decodeOut(resp)
	if err != nil {
		return nil, fmt.Errorf("transport: node %d: %w", i, err)
	}
	return out, nil
}

// serve is node i's process: a loop reading step frames, stepping the
// installed node, and writing the result back. It exits on a shutdown
// frame, any read/write error (connection torn down), or a malformed
// frame — the coordinator's next round trip then fails and aborts the
// session; the engine never kills the whole process over one bad peer.
func (e *Engine) serve(s *nodeServer) {
	defer e.wg.Done()
	var scratch, body, frame []byte
	for {
		typ, req, err := readFrame(s.conn, &scratch)
		if err != nil {
			return
		}
		switch typ {
		case frameStep:
			_, inbox, err := decodeStep(req)
			if err != nil {
				return
			}
			s.mu.Lock()
			node := s.node
			s.mu.Unlock()
			var out netsim.Payload
			var done bool
			if node != nil {
				out, done = node.Step(inbox)
			}
			if body, err = encodeOut(body[:0], out, done); err != nil {
				return
			}
			if frame, err = appendFrame(frame[:0], frameOut, body); err != nil {
				return
			}
			if _, err := s.conn.Write(frame); err != nil {
				return
			}
		case frameShutdown:
			return
		default:
			return
		}
	}
}

// teardown closes every connection and listener, unblocking all reads.
func (e *Engine) teardown() {
	for _, l := range e.links {
		if l != nil && l.conn != nil {
			l.conn.Close()
		}
	}
	for _, s := range e.servers {
		if s == nil {
			continue
		}
		if s.conn != nil {
			s.conn.Close()
		}
		if s.ln != nil {
			s.ln.Close()
		}
	}
}

// Close implements netsim.Driver: send each node a best-effort shutdown
// frame (a failed write just means that link is already dead), tear down
// every socket, and wait for all goroutines to exit. Idempotent and safe
// to call concurrently with a running session, which it aborts.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		close(e.stop)
		for _, l := range e.links {
			if l == nil || l.conn == nil {
				continue
			}
			if f, err := appendFrame(nil, frameShutdown, nil); err == nil {
				l.conn.Write(f)
			}
		}
		e.teardown()
		e.wg.Wait()
	})
	return nil
}
