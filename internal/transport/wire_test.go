package transport

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"haste/internal/netsim"
	"haste/internal/online"
)

var updateCorpus = flag.Bool("update-corpus", false,
	"regenerate the checked-in fuzz regression corpus under testdata/fuzz/FuzzFrameDecode")

// samplePayloads covers every payload kind, including the edge shapes:
// NaN and negative-zero floats (bitwise round-trip), empty and non-empty
// covers/acks, and rel messages with every flag combination.
func samplePayloads() []netsim.Payload {
	bid := online.BidMsg{Slot: 3, Color: 1, Delta: 0.125}
	upd := online.UpdMsg{Slot: 2, Color: 0, Seq: 7, Covers: []int{1, 5, 9}}
	return []netsim.Payload{
		bid,
		online.BidMsg{Slot: 0, Color: 0, Delta: math.NaN()},
		online.BidMsg{Slot: 1, Color: 2, Delta: math.Copysign(0, -1)},
		upd,
		online.UpdMsg{Slot: 0, Color: 3, Seq: 1},
		online.AckMsg{Slot: 4, Color: 1, To: 6, Seq: 9},
		online.RelMsg{},
		online.RelMsg{Bid: &bid},
		online.RelMsg{Upd: &upd, Acks: []online.AckMsg{{Slot: 1, To: 2, Seq: 3}, {Slot: 1, Color: 1, To: 0, Seq: 8}}},
		online.RelMsg{Bid: &bid, Upd: &upd, Acks: []online.AckMsg{{To: 4, Seq: 2}}},
	}
}

// payloadEqual compares payloads with float64 fields bit for bit (NaN
// included) — the equivalence contract is bitwise, not semantic.
func payloadEqual(a, b netsim.Payload) bool {
	ab, errA := encodeOut(nil, a, false)
	bb, errB := encodeOut(nil, b, false)
	return errA == nil && errB == nil && bytes.Equal(ab, bb)
}

func TestStepFrameRoundTrip(t *testing.T) {
	var inbox []netsim.Message
	for i, p := range samplePayloads() {
		inbox = append(inbox, netsim.Message{From: i, Payload: p})
	}
	for _, msgs := range [][]netsim.Message{nil, inbox[:1], inbox} {
		body, err := encodeStep(nil, 41, msgs)
		if err != nil {
			t.Fatalf("encodeStep: %v", err)
		}
		frame, err := appendFrame(nil, frameStep, body)
		if err != nil {
			t.Fatalf("appendFrame: %v", err)
		}
		var scratch []byte
		typ, got, err := readFrame(bytes.NewReader(frame), &scratch)
		if err != nil || typ != frameStep {
			t.Fatalf("readFrame: typ=%d err=%v", typ, err)
		}
		round, decoded, err := decodeStep(got)
		if err != nil {
			t.Fatalf("decodeStep: %v", err)
		}
		if round != 41 {
			t.Errorf("round = %d, want 41", round)
		}
		if len(decoded) != len(msgs) {
			t.Fatalf("decoded %d messages, want %d", len(decoded), len(msgs))
		}
		for i := range msgs {
			if decoded[i].From != msgs[i].From || !payloadEqual(decoded[i].Payload, msgs[i].Payload) {
				t.Errorf("message %d does not round-trip: %#v != %#v", i, decoded[i], msgs[i])
			}
		}
	}
}

func TestOutFrameRoundTrip(t *testing.T) {
	cases := append(samplePayloads(), nil)
	for _, done := range []bool{false, true} {
		for i, p := range cases {
			body, err := encodeOut(nil, p, done)
			if err != nil {
				t.Fatalf("case %d: encodeOut: %v", i, err)
			}
			got, gotDone, err := decodeOut(body)
			if err != nil {
				t.Fatalf("case %d: decodeOut: %v", i, err)
			}
			if gotDone != done {
				t.Errorf("case %d: done = %v, want %v", i, gotDone, done)
			}
			if (p == nil) != (got == nil) || (p != nil && !payloadEqual(got, p)) {
				t.Errorf("case %d: payload does not round-trip: %#v != %#v", i, got, p)
			}
			if p != nil && reflect.TypeOf(got) != reflect.TypeOf(p) {
				// Value (not pointer) types must come back: the agents
				// type-assert on online.BidMsg et al., exactly as the
				// in-memory engine delivers them.
				t.Errorf("case %d: decoded payload is a %T, want %T", i, got, p)
			}
		}
	}
}

func TestEncodeRejectsUnsupportedPayloads(t *testing.T) {
	if _, err := encodeOut(nil, "not a protocol message", false); !errors.Is(err, ErrUnsupportedPayload) {
		t.Errorf("foreign payload type: err = %v, want ErrUnsupportedPayload", err)
	}
	if _, err := encodeOut(nil, online.BidMsg{Slot: -1}, false); !errors.Is(err, ErrUnsupportedPayload) {
		t.Errorf("negative int field: err = %v, want ErrUnsupportedPayload", err)
	}
	if _, err := encodeStep(nil, -3, nil); !errors.Is(err, ErrUnsupportedPayload) {
		t.Errorf("negative round: err = %v, want ErrUnsupportedPayload", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	if _, err := appendFrame(nil, frameStep, make([]byte, MaxFrameSize)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized body: err = %v, want ErrFrameTooLarge", err)
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff, magic0, magic1, Version, frameStep}
	var scratch []byte
	if _, _, err := readFrame(bytes.NewReader(huge), &scratch); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized length prefix: err = %v, want ErrFrameTooLarge (decoder must not allocate 4 GiB)", err)
	}
}

// frame builds a raw frame with full control over every byte — for the
// malformed-input tables and the regression corpus.
func rawFrame(length uint32, header []byte, body []byte) []byte {
	var b []byte
	b = append(b, byte(length>>24), byte(length>>16), byte(length>>8), byte(length))
	b = append(b, header...)
	return append(b, body...)
}

func validFrame(t testing.TB, typ byte, body []byte) []byte {
	f, err := appendFrame(nil, typ, body)
	if err != nil {
		t.Fatalf("appendFrame: %v", err)
	}
	return f
}

// corpusFrames returns the seed/regression corpus: one representative of
// every accept path and every reject path of the decoder.
func corpusFrames(t testing.TB) map[string][]byte {
	stepBody, err := encodeStep(nil, 5, []netsim.Message{
		{From: 0, Payload: online.BidMsg{Slot: 1, Delta: 0.5}},
		{From: 2, Payload: online.UpdMsg{Slot: 1, Seq: 3, Covers: []int{7}}},
		{From: 3, Payload: online.AckMsg{Slot: 1, To: 2, Seq: 3}},
	})
	if err != nil {
		t.Fatalf("encodeStep: %v", err)
	}
	bid := online.BidMsg{Slot: 9, Color: 1, Delta: -2.25}
	relBody, err := encodeOut(nil, online.RelMsg{Bid: &bid, Acks: []online.AckMsg{{To: 1, Seq: 4}}}, true)
	if err != nil {
		t.Fatalf("encodeOut: %v", err)
	}
	outBody, err := encodeOut(nil, nil, false)
	if err != nil {
		t.Fatalf("encodeOut: %v", err)
	}
	return map[string][]byte{
		"valid-step":        validFrame(t, frameStep, stepBody),
		"valid-out-rel":     validFrame(t, frameOut, relBody),
		"valid-out-silent":  validFrame(t, frameOut, outBody),
		"valid-shutdown":    validFrame(t, frameShutdown, nil),
		"empty":             {},
		"short-prefix":      {0x00, 0x00},
		"oversized-prefix":  rawFrame(0xffffffff, []byte{magic0, magic1, Version, frameStep}, nil),
		"undersized-prefix": rawFrame(2, []byte{magic0, magic1}, nil),
		"bad-magic":         rawFrame(4, []byte{'x', 'y', Version, frameStep}, nil),
		"version-skew":      rawFrame(4, []byte{magic0, magic1, Version + 1, frameStep}, nil),
		"bad-frame-type":    rawFrame(4, []byte{magic0, magic1, Version, 0x7f}, nil),
		"cut-mid-body":      validFrame(t, frameStep, stepBody)[:12],
		"trailing-bytes":    validFrame(t, frameOut, append(append([]byte{}, outBody...), 0xEE)),
		"bad-payload-kind":  validFrame(t, frameOut, []byte{outHasPayload, 0x9}),
		"bad-out-flags":     validFrame(t, frameOut, []byte{0xF0}),
		"bad-rel-flags":     validFrame(t, frameOut, []byte{outHasPayload, kindRel, 0xFF}),
		// Count field promises more elements than the frame carries: the
		// guard must reject it without allocating the promised amount.
		"count-overrun": validFrame(t, frameStep, []byte{
			0, 0, 0, 1, // round
			0xff, 0xff, 0xff, 0xff, // message count far beyond the body
			0, 0, 0, 0, kindBid,
		}),
	}
}

// TestRegressionCorpus pins the checked-in fuzz corpus to the generated
// one: every accept/reject representative must exist on disk byte for
// byte (regenerate with -update-corpus).
func TestRegressionCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	for name, frame := range corpusFrames(t) {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(frame)) + ")\n"
		path := filepath.Join(dir, "seed-"+name)
		if *updateCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus entry %s missing (run `go test ./internal/transport -run TestRegressionCorpus -update-corpus`): %v", name, err)
		}
		if string(got) != content {
			t.Errorf("corpus entry %s is stale (regenerate with -update-corpus)", name)
		}
	}
}

// typedDecodeError reports whether err is one of the codec's documented
// rejections (or a reader-level io error) — the only errors the decoder
// may return. Anything else is an escape from the error taxonomy.
func typedDecodeError(err error) bool {
	for _, want := range []error{
		ErrFrameTooLarge, ErrBadMagic, ErrVersionSkew, ErrBadFrameType,
		ErrTruncated, ErrTrailingBytes, ErrBadPayloadKind, ErrMalformed,
		ErrUnsupportedPayload, io.EOF, io.ErrUnexpectedEOF,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

func TestDecodeErrorsAreTyped(t *testing.T) {
	for name, frame := range corpusFrames(t) {
		var scratch []byte
		typ, body, err := readFrame(bytes.NewReader(frame), &scratch)
		if err == nil {
			switch typ {
			case frameStep:
				_, _, err = decodeStep(body)
			case frameOut:
				_, _, err = decodeOut(body)
			}
		}
		valid := len(name) > 5 && name[:5] == "valid"
		if valid && err != nil {
			t.Errorf("%s: unexpected decode error %v", name, err)
		}
		if !valid && err == nil {
			t.Errorf("%s: malformed frame was accepted", name)
		}
		if err != nil && !typedDecodeError(err) {
			t.Errorf("%s: error %v is not part of the typed taxonomy", name, err)
		}
	}
}

// FuzzFrameDecode hardens the decoder against arbitrary network bytes:
// it must never panic or over-read, every rejection must be a typed
// error, and every accepted frame must re-encode canonically to the very
// bytes that were decoded (so the codec has exactly one wire form per
// value — a prerequisite for the bitwise cross-driver equivalence).
func FuzzFrameDecode(f *testing.F) {
	for _, frame := range corpusFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var scratch []byte
		typ, body, err := readFrame(bytes.NewReader(data), &scratch)
		if err != nil {
			if !typedDecodeError(err) {
				t.Fatalf("readFrame: untyped error %v", err)
			}
			return
		}
		switch typ {
		case frameStep:
			round, inbox, err := decodeStep(body)
			if err != nil {
				if !typedDecodeError(err) {
					t.Fatalf("decodeStep: untyped error %v", err)
				}
				return
			}
			re, err := encodeStep(nil, round, inbox)
			if err != nil {
				t.Fatalf("decoded step frame does not re-encode: %v", err)
			}
			if !bytes.Equal(re, body) {
				t.Fatalf("step frame is not canonical: decoded %x, re-encoded %x", body, re)
			}
		case frameOut:
			out, done, err := decodeOut(body)
			if err != nil {
				if !typedDecodeError(err) {
					t.Fatalf("decodeOut: untyped error %v", err)
				}
				return
			}
			re, err := encodeOut(nil, out, done)
			if err != nil {
				t.Fatalf("decoded out frame does not re-encode: %v", err)
			}
			if !bytes.Equal(re, body) {
				t.Fatalf("out frame is not canonical: decoded %x, re-encoded %x", body, re)
			}
		}
	})
}
