// Wire codec of the loopback TCP driver. Frames are hand-encoded with a
// fixed deterministic layout (no gob, no reflection) so that (a) the same
// payload always produces the same bytes — part of the cross-driver
// equivalence story — and (b) the decoder can be fuzz-hardened against
// arbitrary network input (FuzzFrameDecode).
//
// A frame on the wire is
//
//	uint32 BE length | 'h' 't' | version | frame type | body
//
// where length counts everything after the prefix (header + body) and is
// bounded by MaxFrameSize. The body layout per frame type:
//
//	step:     round u32 | count u32 | count × (from u32 | payload)
//	out:      flags u8 (bit0 has-payload, bit1 done) | [payload]
//	shutdown: empty
//
// and a payload is a kind byte followed by the message fields in
// declaration order — ints as u32 BE, floats as IEEE-754 bits u64 BE,
// slices as a u32 count plus elements. Every decode error is typed
// (ErrTruncated, ErrBadMagic, ...) and the decoder never over-reads or
// allocates more than the received byte count can justify.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"haste/internal/netsim"
	"haste/internal/online"
)

// Version is the wire protocol version byte. A peer speaking a different
// version is rejected with ErrVersionSkew rather than misparsed.
const Version = 1

// MaxFrameSize bounds the declared frame length (header + body). It caps
// what a single length prefix can make the reader allocate; real sessions
// stay far below it (a full reliability-layer inbox is a few kilobytes).
const MaxFrameSize = 1 << 20

const (
	prefixSize = 4 // uint32 BE length
	headerSize = 4 // magic0 magic1 version type
	magic0     = 'h'
	magic1     = 't'
)

// Frame types.
const (
	frameStep     byte = 1 // coordinator → node: this round's inbox
	frameOut      byte = 2 // node → coordinator: Step's (payload, done)
	frameShutdown byte = 3 // coordinator → node: exit the serve loop
)

// Payload kinds (the online package's four message types).
const (
	kindBid byte = 1
	kindUpd byte = 2
	kindAck byte = 3
	kindRel byte = 4
)

// Out frame flags.
const (
	outHasPayload byte = 1 << 0
	outDone       byte = 1 << 1
)

// Rel payload flags.
const (
	relHasBid byte = 1 << 0
	relHasUpd byte = 1 << 1
)

// Typed decode errors. Fuzzing asserts every rejection is one of these
// (or an io error from the reader) — never a panic.
var (
	ErrFrameTooLarge      = errors.New("transport: frame length exceeds MaxFrameSize")
	ErrBadMagic           = errors.New("transport: bad frame magic")
	ErrVersionSkew        = errors.New("transport: wire protocol version mismatch")
	ErrBadFrameType       = errors.New("transport: unknown frame type")
	ErrTruncated          = errors.New("transport: truncated frame body")
	ErrTrailingBytes      = errors.New("transport: trailing bytes after frame body")
	ErrBadPayloadKind     = errors.New("transport: unknown payload kind")
	ErrMalformed          = errors.New("transport: malformed frame body")
	ErrUnsupportedPayload = errors.New("transport: payload type has no wire encoding")
)

// writer appends big-endian fields to a buffer, latching the first
// structural error (out-of-range int) so call sites stay linear.
type writer struct {
	b   []byte
	err error
}

func (w *writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

func (w *writer) u8(v byte) { w.b = append(w.b, v) }

func (w *writer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }

func (w *writer) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }

// u32i encodes a non-negative int that must fit a u32 (slot, color and
// charger indices all do; a violation means a corrupted message, not a
// large instance).
func (w *writer) u32i(v int) {
	if v < 0 || int64(v) > math.MaxUint32 {
		w.fail(fmt.Errorf("%w: integer field %d outside uint32", ErrUnsupportedPayload, v))
	}
	w.u32(uint32(v))
}

// cursor reads big-endian fields from a frame body, latching the first
// error; every accessor returns the zero value once poisoned, so decode
// functions need no per-field error plumbing and can never over-read.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *cursor) u8() byte {
	if c.err != nil || c.off+1 > len(c.b) {
		c.fail(ErrTruncated)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || c.off+4 > len(c.b) {
		c.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

// count reads a u32 element count and validates it against the bytes
// actually present (elemSize each), so a hostile count can never drive a
// large allocation: the frame must carry the bytes it promises.
func (c *cursor) count(elemSize int) int {
	n := c.u32()
	if c.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(c.remaining()) {
		c.fail(fmt.Errorf("%w: count %d overruns %d remaining bytes", ErrMalformed, n, c.remaining()))
		return 0
	}
	return int(n)
}

// appendFrame wraps a body into a complete frame (prefix + header + body)
// appended to dst, so the caller writes it with a single Write and frames
// never interleave on a shared connection.
func appendFrame(dst []byte, typ byte, body []byte) ([]byte, error) {
	l := headerSize + len(body)
	if l > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(l))
	dst = append(dst, magic0, magic1, Version, typ)
	return append(dst, body...), nil
}

// readFrame reads one frame, reusing *scratch across calls. The returned
// body aliases *scratch and is valid until the next call. Errors are the
// typed codec errors above or the reader's own (io.EOF on a cleanly
// closed connection, io.ErrUnexpectedEOF on a mid-frame cut).
func readFrame(r io.Reader, scratch *[]byte) (typ byte, body []byte, err error) {
	var pfx [prefixSize]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return 0, nil, err
	}
	l := binary.BigEndian.Uint32(pfx[:])
	if l > MaxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	if l < headerSize {
		return 0, nil, ErrTruncated
	}
	if cap(*scratch) < int(l) {
		*scratch = make([]byte, l)
	}
	buf := (*scratch)[:l]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return 0, nil, ErrBadMagic
	}
	if buf[2] != Version {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", ErrVersionSkew, buf[2], Version)
	}
	typ = buf[3]
	if typ != frameStep && typ != frameOut && typ != frameShutdown {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadFrameType, typ)
	}
	return typ, buf[headerSize:], nil
}

func appendBid(w *writer, m online.BidMsg) {
	w.u32i(m.Slot)
	w.u32i(m.Color)
	w.u64(math.Float64bits(m.Delta))
}

func appendUpd(w *writer, m online.UpdMsg) {
	w.u32i(m.Slot)
	w.u32i(m.Color)
	w.u32(m.Seq)
	w.u32i(len(m.Covers))
	for _, t := range m.Covers {
		w.u32i(t)
	}
}

func appendAck(w *writer, m online.AckMsg) {
	w.u32i(m.Slot)
	w.u32i(m.Color)
	w.u32i(m.To)
	w.u32(m.Seq)
}

// appendPayload encodes one netsim payload. Only the online package's
// message types have a wire form; anything else is ErrUnsupportedPayload
// (the socket driver only carries the negotiation protocol).
func appendPayload(w *writer, p netsim.Payload) {
	switch m := p.(type) {
	case online.BidMsg:
		w.u8(kindBid)
		appendBid(w, m)
	case online.UpdMsg:
		w.u8(kindUpd)
		appendUpd(w, m)
	case online.AckMsg:
		w.u8(kindAck)
		appendAck(w, m)
	case online.RelMsg:
		w.u8(kindRel)
		var flags byte
		if m.Bid != nil {
			flags |= relHasBid
		}
		if m.Upd != nil {
			flags |= relHasUpd
		}
		w.u8(flags)
		if m.Bid != nil {
			appendBid(w, *m.Bid)
		}
		if m.Upd != nil {
			appendUpd(w, *m.Upd)
		}
		w.u32i(len(m.Acks))
		for _, a := range m.Acks {
			appendAck(w, a)
		}
	default:
		w.fail(fmt.Errorf("%w: %T", ErrUnsupportedPayload, p))
	}
}

func decodeBid(c *cursor) online.BidMsg {
	var m online.BidMsg
	m.Slot = int(c.u32())
	m.Color = int(c.u32())
	m.Delta = math.Float64frombits(c.u64())
	return m
}

func decodeUpd(c *cursor) online.UpdMsg {
	var m online.UpdMsg
	m.Slot = int(c.u32())
	m.Color = int(c.u32())
	m.Seq = c.u32()
	n := c.count(4)
	if n > 0 {
		m.Covers = make([]int, n)
		for i := range m.Covers {
			m.Covers[i] = int(c.u32())
		}
	}
	return m
}

func decodeAck(c *cursor) online.AckMsg {
	var m online.AckMsg
	m.Slot = int(c.u32())
	m.Color = int(c.u32())
	m.To = int(c.u32())
	m.Seq = c.u32()
	return m
}

// decodePayload decodes one payload at the cursor. The returned payload is
// a value (not a pointer) of the online message type, matching what the
// in-memory engine delivers — agents type-assert on the value types.
func decodePayload(c *cursor) netsim.Payload {
	kind := c.u8()
	if c.err != nil {
		return nil
	}
	switch kind {
	case kindBid:
		return decodeBid(c)
	case kindUpd:
		return decodeUpd(c)
	case kindAck:
		return decodeAck(c)
	case kindRel:
		var m online.RelMsg
		flags := c.u8()
		if flags&^(relHasBid|relHasUpd) != 0 {
			c.fail(fmt.Errorf("%w: unknown rel flags %#x", ErrMalformed, flags))
			return nil
		}
		if flags&relHasBid != 0 {
			b := decodeBid(c)
			m.Bid = &b
		}
		if flags&relHasUpd != 0 {
			u := decodeUpd(c)
			m.Upd = &u
		}
		n := c.count(16)
		if n > 0 {
			m.Acks = make([]online.AckMsg, n)
			for i := range m.Acks {
				m.Acks[i] = decodeAck(c)
			}
		}
		return m
	default:
		c.fail(fmt.Errorf("%w: %d", ErrBadPayloadKind, kind))
		return nil
	}
}

// encodeStep appends a step frame body (round + inbox) to dst.
func encodeStep(dst []byte, round int, inbox []netsim.Message) ([]byte, error) {
	w := writer{b: dst}
	w.u32i(round)
	w.u32i(len(inbox))
	for _, m := range inbox {
		w.u32i(m.From)
		appendPayload(&w, m.Payload)
	}
	return w.b, w.err
}

// decodeStep parses a step frame body back into (round, inbox). A nil
// inbox is returned for an empty one, matching the engine's quiescent
// rounds.
func decodeStep(body []byte) (round int, inbox []netsim.Message, err error) {
	c := cursor{b: body}
	round = int(c.u32())
	// A message is at least 1 kind byte + its smallest fixed body (the
	// 16-byte ack and bid bodies bound it from below; a from-u32 precedes
	// each), so 5 bytes/message is a safe floor for the count guard.
	n := c.count(5)
	for i := 0; i < n; i++ {
		from := int(c.u32())
		p := decodePayload(&c)
		if c.err != nil {
			return 0, nil, c.err
		}
		inbox = append(inbox, netsim.Message{From: from, Payload: p})
	}
	if c.err != nil {
		return 0, nil, c.err
	}
	if c.remaining() != 0 {
		return 0, nil, ErrTrailingBytes
	}
	return round, inbox, nil
}

// encodeOut appends an out frame body (Step's result) to dst.
func encodeOut(dst []byte, out netsim.Payload, done bool) ([]byte, error) {
	w := writer{b: dst}
	var flags byte
	if out != nil {
		flags |= outHasPayload
	}
	if done {
		flags |= outDone
	}
	w.u8(flags)
	if out != nil {
		appendPayload(&w, out)
	}
	return w.b, w.err
}

// decodeOut parses an out frame body back into Step's (payload, done).
func decodeOut(body []byte) (out netsim.Payload, done bool, err error) {
	c := cursor{b: body}
	flags := c.u8()
	if c.err == nil && flags&^(outHasPayload|outDone) != 0 {
		c.fail(fmt.Errorf("%w: unknown out flags %#x", ErrMalformed, flags))
	}
	if c.err == nil && flags&outHasPayload != 0 {
		out = decodePayload(&c)
	}
	if c.err != nil {
		return nil, false, c.err
	}
	if c.remaining() != 0 {
		return nil, false, ErrTrailingBytes
	}
	return out, flags&outDone != 0, nil
}
