// Socket-substrate chaos and performance tests. These live in the
// external test package so they can use difftest's pinned chaos workload
// (difftest imports transport, so the in-package tests cannot).
package transport_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"haste/internal/core"
	"haste/internal/difftest"
	"haste/internal/netsim"
	"haste/internal/online"
	"haste/internal/transport"
)

func chaosProblem(t testing.TB, seed int64) *core.Problem {
	t.Helper()
	p, err := difftest.ChaosProblem(seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runTCP(t *testing.T, p *core.Problem, opt online.Options) online.Result {
	t.Helper()
	opt.Driver = transport.Factory
	res, err := online.Run(p, opt)
	if err != nil {
		t.Fatalf("online.Run over TCP: %v", err)
	}
	return res
}

// TestReliabilityRecoversUtilityOverTCP ports the pinned chaos-recovery
// property (online package, seeds 603/614/622) to the real-socket driver:
// at 10% drop rate the no-reliability baseline loses utility on every
// pinned scenario, the reliability layer is strictly better on aggregate,
// and it recovers to at least 99% of failure-free per scenario — over
// loopback TCP, with the loss injected at the coordinator's delivery
// stage so the wire carries exactly the surviving deliveries.
func TestReliabilityRecoversUtilityOverTCP(t *testing.T) {
	seeds := []int64{603, 614, 622}
	if testing.Short() {
		seeds = seeds[:1]
	}
	var cleanSum, lossySum, relSum float64
	for _, seed := range seeds {
		p := chaosProblem(t, seed)
		clean := runTCP(t, p, online.Options{Seed: seed}).Outcome.Utility
		lossy := runTCP(t, p, online.Options{Seed: seed, DropRate: 0.1}).Outcome.Utility
		rel := runTCP(t, p, online.Options{Seed: seed, DropRate: 0.1, Reliable: true}).Outcome.Utility
		cleanSum += clean
		lossySum += lossy
		relSum += rel
		if rel < 0.99*clean {
			t.Errorf("seed=%d: reliable utility %v below 99%% of failure-free %v", seed, rel, clean)
		}
	}
	if lossySum >= cleanSum {
		t.Errorf("scenarios degenerate: baseline at 10%% drop (%v) does not degrade vs failure-free (%v)",
			lossySum, cleanSum)
	}
	if relSum <= lossySum {
		t.Errorf("reliability layer did not improve on the baseline at 10%% drop: %v vs %v", relSum, lossySum)
	}
}

// TestCancelledRunReleasesPooledStates drives the full online stack over
// sockets with a context that is cancelled mid-run: Run must fail with
// the cancellation, and the abandoned negotiation must leave the
// problem's pooled energy-state balance at zero — an abort may not strand
// checked-out core states.
func TestCancelledRunReleasesPooledStates(t *testing.T) {
	p := chaosProblem(t, 603)

	// Pre-cancelled context: the very first session aborts deterministically.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := online.Run(p, online.Options{Seed: 603, Driver: transport.ContextFactory(ctx)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v, want context.Canceled", err)
	}
	if n := p.StatesInUse(); n != 0 {
		t.Errorf("pre-cancelled run stranded %d pooled states", n)
	}

	// Mid-run cancellation: a timer fires while negotiations are in flight.
	// (If the run happens to finish first the error is nil — rerun with a
	// tighter budget is not worth the flake; assert only on failure.)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel2()
	}()
	_, err = online.Run(p, online.Options{Seed: 603, Colors: 4, Driver: transport.ContextFactory(ctx2)})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation: err = %v, want context.Canceled", err)
	}
	if n := p.StatesInUse(); n != 0 {
		t.Errorf("cancelled run stranded %d pooled states", n)
	}
}

// chatter is the benchmark node: it broadcasts one bid per round until
// the round budget is exhausted, so a session executes exactly the
// requested number of rounds.
type chatter struct {
	id, rounds, stepped int
}

func (c *chatter) Step(inbox []netsim.Message) (netsim.Payload, bool) {
	c.stepped++
	if c.stepped > c.rounds {
		return nil, true
	}
	return online.BidMsg{Slot: c.stepped, Color: c.id, Delta: 0.5}, false
}

// benchmarkRounds measures per-round latency of a driver: an 8-node full
// mesh runs one session of b.N chatter rounds, so ns/op ≈ the cost of one
// barrier-synchronized round (8 stepped nodes, 56 deliveries).
func benchmarkRounds(b *testing.B, factory netsim.Factory) {
	const n = 8
	neighbors := make([][]int, n)
	for i := range neighbors {
		for j := 0; j < n; j++ {
			if j != i {
				neighbors[i] = append(neighbors[i], j)
			}
		}
	}
	driver, err := factory(neighbors, netsim.Options{MaxRounds: b.N + 2})
	if err != nil {
		b.Fatal(err)
	}
	defer driver.Close()
	nodes := make([]netsim.Node, n)
	for i := range nodes {
		nodes[i] = &chatter{id: i, rounds: b.N}
	}
	b.ResetTimer()
	if _, err := driver.Run(nodes); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRoundMem(b *testing.B) { benchmarkRounds(b, netsim.MemFactory) }

func BenchmarkRoundMemParallel(b *testing.B) {
	benchmarkRounds(b, func(neighbors [][]int, opt netsim.Options) (netsim.Driver, error) {
		opt.Parallel = true
		return netsim.MemFactory(neighbors, opt)
	})
}

func BenchmarkRoundTCP(b *testing.B) { benchmarkRounds(b, transport.Factory) }
