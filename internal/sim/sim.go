// Package sim executes schedules on the physical network model: it plays a
// core.Schedule slot by slot, charging every covered active task, and
// applies the switching delay ρ of the paper's problem formulation P1 — a
// charger whose orientation changes at the start of a slot radiates
// nothing during the first ρ fraction of that slot (θ_i = Φ while
// switching), and chargers start with no orientation (θ_i(0) = Φ).
//
// The resulting Outcome is the HASTE objective (switching-aware), as
// opposed to core.Evaluate which computes the relaxed HASTE-R objective
// used inside the schedulers. Theorem 5.1's bound
// Utility ≥ (1−ρ)·RUtility is verified against this executor by tests.
package sim

import (
	"math"

	"haste/internal/core"
)

// Outcome reports the physical result of executing a schedule.
type Outcome struct {
	Utility  float64   // overall weighted charging utility Σ_j w_j·U(e_j)
	PerTask  []float64 // charging utility per task
	Energy   []float64 // harvested energy per task, joules
	Switches int       // orientation switches performed (each costs ρ·T_s)
}

// Execute plays the schedule on the instance behind p. Unassigned slots
// (policy −1) leave the charger's orientation unchanged: it keeps
// radiating with its previous dominant set, which is exactly what the
// hardware would do. A charger that was never assigned any policy has
// orientation Φ and radiates nothing.
func Execute(p *core.Problem, s core.Schedule) Outcome {
	out, _ := run(p, s, false)
	return out
}

// ExecuteDetailed additionally returns the orientation timeline:
// orient[i][k] is charger i's effective orientation during slot k (NaN
// while the charger has never been oriented). Useful for demos and
// debugging.
func ExecuteDetailed(p *core.Problem, s core.Schedule) (Outcome, [][]float64) {
	return run(p, s, true)
}

func run(p *core.Problem, s core.Schedule, detailed bool) (Outcome, [][]float64) {
	in := p.In
	n := len(in.Chargers)
	K := s.Slots()
	if K < p.K {
		K = p.K
	}
	energy := make([]float64, len(in.Tasks))
	var orient [][]float64
	if detailed {
		orient = make([][]float64, n)
		for i := range orient {
			orient[i] = make([]float64, K)
			for k := range orient[i] {
				orient[i][k] = math.NaN()
			}
		}
	}

	switches := 0
	curPol := make([]int, n)       // effective policy per charger; -1 = Φ
	curTheta := make([]float64, n) // effective orientation; NaN = Φ
	for i := range curPol {
		curPol[i] = -1
		curTheta[i] = math.NaN()
	}
	// Assignments past a charger's component horizon deliver exactly zero
	// energy (every reachable task has ended); real hardware would never
	// execute such a rotation. Clipping them to -1 here makes the switch
	// count a function of the schedule's effective content, so monolithic
	// and sharded runs — which differ only in such padding cells — count
	// identically. Before this clip, a monolithic run at Colors > 1 could
	// hop between zero-gain policies in the padding region and report
	// spurious extra switches.
	hor := p.AssignedHorizons()
	for k := 0; k < K; k++ {
		for i := 0; i < n; i++ {
			next := -1
			if k < len(s.Policy[i]) && k < hor[i] {
				next = s.Policy[i][k]
			}
			frac := 1.0
			if next >= 0 && !p.Gamma[i][next].Idle {
				theta := p.Gamma[i][next].Orientation
				if math.IsNaN(curTheta[i]) || theta != curTheta[i] {
					// The charger rotates: it radiates only during the
					// trailing part of this slot (a fixed 1−ρ in the
					// paper's model, rotation-proportional under the
					// ProportionalSwitching extension).
					switches++
					frac = 1 - in.Params.SwitchLoss(curTheta[i], theta)
					curTheta[i] = theta
				}
				curPol[i] = next
			}
			eff := curPol[i]
			if eff < 0 || p.Gamma[i][eff].Idle {
				continue
			}
			if detailed {
				orient[i][k] = p.Gamma[i][eff].Orientation
			}
			// Iterate the flat kernel's compiled cover list: zero-energy
			// pairs are already dropped (they contribute exactly +0.0) and
			// the slot energies are stored inline, so the executor does no
			// Gamma/Tasks pointer chasing per pair.
			if lo, hi := p.PolicyWindow(i, eff); k < lo || k >= hi {
				continue
			}
			for _, e := range p.CompiledCovers(i, eff) {
				if in.Tasks[e.Task].ActiveAt(k) {
					energy[e.Task] += e.De * frac
				}
			}
		}
	}

	out := Outcome{Energy: energy, PerTask: make([]float64, len(in.Tasks)), Switches: switches}
	u := in.U()
	for j, t := range in.Tasks {
		out.PerTask[j] = u.Of(energy[j], t.Energy)
		out.Utility += t.Weight * out.PerTask[j]
	}
	return out, orient
}
