package sim

import (
	"math"

	"haste/internal/core"
)

// ExecuteOrientations plays an explicit orientation timeline instead of a
// policy schedule: orient[i][k] is the orientation commanded to charger i
// for slot k, with NaN meaning "no command" (the charger keeps its
// previous orientation, or stays unoriented Φ if it never received one).
//
// Coverage is evaluated against the physical model for every task — a
// charger pointed somewhere charges every active task inside its sector,
// including tasks the scheduler did not know about when it chose the
// orientation. This is the executor for the distributed online algorithm,
// whose agents plan over locally known tasks only.
func ExecuteOrientations(p *core.Problem, orient [][]float64) Outcome {
	in := p.In
	n := len(in.Chargers)
	K := p.K
	for i := range orient {
		if len(orient[i]) > K {
			K = len(orient[i])
		}
	}
	energy := make([]float64, len(in.Tasks))
	out := Outcome{PerTask: make([]float64, len(in.Tasks))}

	// chargeable[i]: tasks charger i can ever charge (positive slot
	// energy), read straight off the sparse charger row — no scan over
	// the full task set.
	chargeable := make([][]core.CoverEntry, n)
	for i := 0; i < n; i++ {
		for _, e := range p.ChargerRow(i) {
			if e.De > 0 {
				chargeable[i] = append(chargeable[i], e)
			}
		}
	}

	cur := make([]float64, n)
	for i := range cur {
		cur[i] = math.NaN()
	}
	for k := 0; k < K; k++ {
		for i := 0; i < n; i++ {
			frac := 1.0
			if k < len(orient[i]) && !math.IsNaN(orient[i][k]) {
				cmd := orient[i][k]
				if math.IsNaN(cur[i]) || cmd != cur[i] {
					out.Switches++
					frac = 1 - in.Params.SwitchLoss(cur[i], cmd)
					cur[i] = cmd
				}
			}
			if math.IsNaN(cur[i]) {
				continue
			}
			for _, e := range chargeable[i] {
				j := int(e.Task)
				t := &in.Tasks[j]
				if t.ActiveAt(k) && in.Params.Covers(in.Chargers[i], cur[i], *t) {
					energy[j] += e.De * frac
				}
			}
		}
	}
	out.Energy = energy
	u := in.U()
	for j, t := range in.Tasks {
		out.PerTask[j] = u.Of(energy[j], t.Energy)
		out.Utility += t.Weight * out.PerTask[j]
	}
	return out
}
