package sim

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// oneTask builds a single charger/task pair: 4 W received → 240 J per
// 60 s slot, ρ = 1/12 (5 s of a slot lost per switch → 220 J).
func oneTask(energy float64, release, end int, rho float64) *model.Instance {
	return &model.Instance{
		Chargers: []model.Charger{{ID: 0, Pos: geom.Point{X: 0, Y: 0}}},
		Tasks: []model.Task{{
			ID: 0, Pos: geom.Point{X: 10, Y: 0}, Phi: math.Pi,
			Release: release, End: end, Energy: energy, Weight: 1,
		}},
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(60),
			SlotSeconds: 60, Rho: rho, Tau: 0,
		},
	}
}

func mustProblem(t *testing.T, in *model.Instance) *core.Problem {
	t.Helper()
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func TestExecuteFirstSlotSwitch(t *testing.T) {
	// θ_i(0) = Φ: the very first orientation costs a switch.
	p := mustProblem(t, oneTask(480, 0, 2, 1.0/12))
	s := core.NewSchedule(1, p.K)
	s.Policy[0][0] = 0
	s.Policy[0][1] = 0
	out := Execute(p, s)
	wantE := 240*(1-1.0/12) + 240 // 220 + 240
	if !almostEq(out.Energy[0], wantE) {
		t.Errorf("energy = %v, want %v", out.Energy[0], wantE)
	}
	if out.Switches != 1 {
		t.Errorf("switches = %d, want 1", out.Switches)
	}
	if !almostEq(out.Utility, wantE/480) {
		t.Errorf("utility = %v, want %v", out.Utility, wantE/480)
	}
}

func TestExecuteZeroRhoMatchesRelaxed(t *testing.T) {
	p := mustProblem(t, oneTask(480, 0, 2, 0))
	s := core.NewSchedule(1, p.K)
	s.Policy[0][0] = 0
	s.Policy[0][1] = 0
	out := Execute(p, s)
	if !almostEq(out.Utility, core.Evaluate(p, s)) {
		t.Errorf("ρ=0 utility %v != relaxed %v", out.Utility, core.Evaluate(p, s))
	}
}

func TestExecuteUnassignedKeepsRadiating(t *testing.T) {
	p := mustProblem(t, oneTask(480, 0, 2, 1.0/12))
	s := core.NewSchedule(1, p.K)
	s.Policy[0][0] = 0 // slot 1 left unassigned: charger keeps orientation
	out := Execute(p, s)
	wantE := 240*(1-1.0/12) + 240
	if !almostEq(out.Energy[0], wantE) {
		t.Errorf("energy = %v, want %v", out.Energy[0], wantE)
	}
	if out.Switches != 1 {
		t.Errorf("switches = %d, want 1", out.Switches)
	}
}

func TestExecuteNeverAssignedRadiatesNothing(t *testing.T) {
	p := mustProblem(t, oneTask(480, 0, 2, 1.0/12))
	out := Execute(p, core.NewSchedule(1, p.K))
	if out.Utility != 0 || out.Energy[0] != 0 || out.Switches != 0 {
		t.Errorf("unassigned run harvested something: %+v", out)
	}
}

// Two opposite tasks force the charger to flip orientation every slot;
// every slot pays the switching penalty.
func TestExecuteFlipFlopPaysEverySlot(t *testing.T) {
	rho := 0.25
	in := oneTask(1e9, 0, 4, rho)
	in.Tasks = append(in.Tasks, model.Task{
		ID: 1, Pos: geom.Point{X: -10, Y: 0}, Phi: 0,
		Release: 0, End: 4, Energy: 1e9, Weight: 1,
	})
	in.Tasks[0].Weight = 1
	p := mustProblem(t, in)
	if len(p.Gamma[0]) != 2 {
		t.Fatalf("want two policies, got %v", p.Gamma[0])
	}
	s := core.NewSchedule(1, p.K)
	for k := 0; k < 4; k++ {
		s.Policy[0][k] = k % 2
	}
	out := Execute(p, s)
	if out.Switches != 4 {
		t.Errorf("switches = %d, want 4", out.Switches)
	}
	// Each task gets two slots, each at (1−ρ) energy.
	for j := 0; j < 2; j++ {
		if !almostEq(out.Energy[j], 2*240*(1-rho)) {
			t.Errorf("task %d energy = %v, want %v", j, out.Energy[j], 2*240*(1-rho))
		}
	}
}

// Under the proportional-switching extension a flip-flopping charger pays
// the full ρ per U-turn (orientations 180° apart) but the first
// orientation from Φ also costs the full ρ; losses never exceed the fixed
// model's.
func TestExecuteProportionalSwitching(t *testing.T) {
	rho := 0.25
	in := oneTask(1e9, 0, 4, rho)
	in.Tasks = append(in.Tasks, model.Task{
		ID: 1, Pos: geom.Point{X: -10, Y: 0}, Phi: 0,
		Release: 0, End: 4, Energy: 1e9, Weight: 1,
	})
	in.Params.ProportionalSwitching = true
	p := mustProblem(t, in)
	s := core.NewSchedule(1, p.K)
	for k := 0; k < 4; k++ {
		s.Policy[0][k] = k % 2
	}
	out := Execute(p, s)
	if out.Switches != 4 {
		t.Fatalf("switches = %d, want 4", out.Switches)
	}
	// All four rotations are 180° (or from Φ): identical to fixed model.
	for j := 0; j < 2; j++ {
		if !almostEq(out.Energy[j], 2*240*(1-rho)) {
			t.Errorf("task %d energy = %v, want %v", j, out.Energy[j], 2*240*(1-rho))
		}
	}
	// A small nudge instead: second task only 60° away → later switches
	// cost ρ/3 each.
	in2 := oneTask(1e9, 0, 4, rho)
	in2.Tasks = append(in2.Tasks, model.Task{
		ID: 1, Pos: geom.Point{X: 10 * math.Cos(geom.Deg(60)), Y: 10 * math.Sin(geom.Deg(60))},
		Phi: geom.Deg(240), Release: 0, End: 4, Energy: 1e9, Weight: 1,
	})
	in2.Params.ProportionalSwitching = true
	p2 := mustProblem(t, in2)
	if len(p2.Gamma[0]) < 2 {
		t.Skip("tasks merged into one dominant set")
	}
	s2 := core.NewSchedule(1, p2.K)
	for k := 0; k < 4; k++ {
		s2.Policy[0][k] = k % 2
	}
	out2 := Execute(p2, s2)
	// Total loss: first switch ρ (from Φ) + 3 switches at Δθ/π·ρ each,
	// where Δθ is the angle between the two policy orientations.
	dTheta := geom.AngDist(p2.Gamma[0][0].Orientation, p2.Gamma[0][1].Orientation)
	wantLoss := rho + 3*rho*dTheta/math.Pi
	gotLoss := (4*480 - out2.Energy[0] - out2.Energy[1]) / 240
	if !almostEq(gotLoss, wantLoss) {
		t.Errorf("proportional loss = %v slots, want %v", gotLoss, wantLoss)
	}
}

func TestExecuteIgnoresInactiveSlots(t *testing.T) {
	p := mustProblem(t, oneTask(480, 2, 4, 0))
	s := core.NewSchedule(1, p.K)
	for k := 0; k < p.K; k++ {
		s.Policy[0][k] = 0
	}
	out := Execute(p, s)
	if !almostEq(out.Energy[0], 480) { // only slots 2,3 count
		t.Errorf("energy = %v, want 480", out.Energy[0])
	}
}

func TestExecuteDetailedOrientations(t *testing.T) {
	p := mustProblem(t, oneTask(480, 0, 3, 0))
	s := core.NewSchedule(1, p.K)
	s.Policy[0][1] = 0
	out, orient := ExecuteDetailed(p, s)
	if !math.IsNaN(orient[0][0]) {
		t.Errorf("slot 0 orientation = %v, want NaN", orient[0][0])
	}
	want := p.Gamma[0][0].Orientation
	if !almostEq(orient[0][1], want) || !almostEq(orient[0][2], want) {
		t.Errorf("orientations = %v, want %v", orient[0][1:], want)
	}
	if !almostEq(out.Energy[0], 480) {
		t.Errorf("energy = %v", out.Energy[0])
	}
}

// Theorem 5.1's worst-case accounting: physical utility of a fully
// assigned schedule is at least (1−ρ)·RUtility.
func TestExecuteLowerBoundAgainstRelaxed(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng)
		p := mustProblem(t, in)
		res := core.TabularGreedy(p, core.DefaultOptions(1))
		out := Execute(p, res.Schedule)
		if out.Utility < (1-in.Params.Rho)*res.RUtility-1e-9 {
			t.Fatalf("trial %d: utility %v < (1−ρ)·%v", trial, out.Utility, res.RUtility)
		}
		if out.Utility > res.RUtility+1e-9 {
			// Relaxed counts every assigned slot in full; physical can
			// only lose energy to switching, never gain, when every slot
			// is assigned.
			t.Fatalf("trial %d: physical %v exceeds relaxed %v", trial, out.Utility, res.RUtility)
		}
	}
}

func randomInstance(rng *rand.Rand) *model.Instance {
	in := &model.Instance{
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 15,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(120),
			SlotSeconds: 60, Rho: rng.Float64() * 0.5, Tau: 0,
		},
	}
	n, m := 3+rng.Intn(3), 8+rng.Intn(8)
	for i := 0; i < n; i++ {
		in.Chargers = append(in.Chargers, model.Charger{
			ID: i, Pos: geom.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30},
		})
	}
	for j := 0; j < m; j++ {
		rel := rng.Intn(4)
		in.Tasks = append(in.Tasks, model.Task{
			ID:  j,
			Pos: geom.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30},
			Phi: rng.Float64() * geom.TwoPi, Release: rel, End: rel + 2 + rng.Intn(6),
			Energy: 200 + rng.Float64()*1500, Weight: 1.0 / float64(m),
		})
	}
	return in
}
