package sim

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/core"
)

func TestExecuteOrientationsBasic(t *testing.T) {
	p := mustProblem(t, oneTask(480, 0, 2, 1.0/12))
	theta := p.Gamma[0][0].Orientation
	orient := [][]float64{{theta, theta}}
	out := ExecuteOrientations(p, orient)
	wantE := 240*(1-1.0/12) + 240
	if !almostEq(out.Energy[0], wantE) {
		t.Errorf("energy = %v, want %v", out.Energy[0], wantE)
	}
	if out.Switches != 1 {
		t.Errorf("switches = %d, want 1", out.Switches)
	}
}

func TestExecuteOrientationsNaNKeeps(t *testing.T) {
	p := mustProblem(t, oneTask(480, 0, 3, 0))
	theta := p.Gamma[0][0].Orientation
	orient := [][]float64{{theta, math.NaN(), math.NaN()}}
	out := ExecuteOrientations(p, orient)
	if !almostEq(out.Energy[0], 720) {
		t.Errorf("energy = %v, want 720 (kept orientation)", out.Energy[0])
	}
	if out.Switches != 1 {
		t.Errorf("switches = %d", out.Switches)
	}
}

func TestExecuteOrientationsMissPointsAway(t *testing.T) {
	p := mustProblem(t, oneTask(480, 0, 2, 0))
	orient := [][]float64{{math.Pi, math.Pi}} // pointing away from the task
	out := ExecuteOrientations(p, orient)
	if out.Energy[0] != 0 {
		t.Errorf("energy = %v, want 0", out.Energy[0])
	}
	if out.Switches != 1 { // still rotated once
		t.Errorf("switches = %d, want 1", out.Switches)
	}
}

// Playing a policy schedule through ExecuteOrientations must agree with
// Execute on the same schedule, because every policy's representative
// orientation covers exactly its dominant set.
func TestExecuteOrientationsMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng)
		p := mustProblem(t, in)
		res := core.TabularGreedy(p, core.DefaultOptions(1))
		fromPolicies := Execute(p, res.Schedule)

		orient := make([][]float64, len(in.Chargers))
		for i := range orient {
			orient[i] = make([]float64, p.K)
			cur := math.NaN()
			for k := 0; k < p.K; k++ {
				if pol := res.Schedule.Policy[i][k]; pol >= 0 && !p.Gamma[i][pol].Idle {
					cur = p.Gamma[i][pol].Orientation
				}
				orient[i][k] = cur
			}
		}
		fromOrient := ExecuteOrientations(p, orient)
		if math.Abs(fromPolicies.Utility-fromOrient.Utility) > 1e-9 {
			t.Fatalf("trial %d: policy exec %v != orientation exec %v",
				trial, fromPolicies.Utility, fromOrient.Utility)
		}
		if fromPolicies.Switches != fromOrient.Switches {
			t.Fatalf("trial %d: switches %d != %d", trial, fromPolicies.Switches, fromOrient.Switches)
		}
	}
}
