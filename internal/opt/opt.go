// Package opt computes the exact optimum of HASTE-R on small instances —
// the quantity the paper's small-scale experiments (Figs. 8 and 9) compare
// against and the yardstick for the (1−ρ)(1−1/e) approximation and
// ½(1−ρ)(1−1/e) competitive guarantees.
//
// The paper brute-forces "all combinations of scheduling policies"; that
// product grows as Π_{i,k} |Γ_i| and is hopeless even at five chargers
// once several time slots are involved. Solve therefore runs a
// branch-and-bound search over the partition cells (i,k) with an
// admissible optimistic bound: a task can never harvest more additional
// energy than the sum of its per-slot contributions over all still
// undecided cells, so
//
//	bound = Σ_j w_j · U(e_j + remaining_j)
//
// overestimates every completion (U is monotone). Cells are ordered by
// decreasing potential and the search is warm-started with the greedy
// solution, which makes the paper's small-scale setting solvable in
// milliseconds while remaining provably exact. SolveExhaustive enumerates
// the full product and is used by tests to certify Solve.
package opt

import (
	"errors"
	"sort"

	"haste/internal/core"
)

// Solution is the result of an exact solve.
type Solution struct {
	Utility  float64       // optimal HASTE-R utility
	Schedule core.Schedule // an optimal assignment
	Optimal  bool          // false when the node budget was exhausted
	Nodes    int64         // search nodes expanded
}

// ErrTooLarge is returned when the instance exceeds the solver's
// configured budget without proving optimality.
var ErrTooLarge = errors.New("opt: node budget exhausted before proving optimality")

// Options tunes the solver.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes (0 = 50M).
	MaxNodes int64
}

const defaultMaxNodes = 50_000_000

// cell is one partition Θ_{i,k} to decide.
type cell struct {
	i, k      int
	potential float64 // Σ over tasks of the best per-slot energy it can add
}

// Solve computes the exact HASTE-R optimum by branch and bound.
func Solve(p *core.Problem, opt Options) (Solution, error) {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = defaultMaxNodes
	}
	n, K, m := len(p.In.Chargers), p.K, len(p.In.Tasks)
	if n == 0 || K == 0 || m == 0 {
		return Solution{Optimal: true, Schedule: core.NewSchedule(n, K)}, nil
	}

	// Order cells by decreasing potential so strong decisions come first.
	// Potentials sum only the charger's sparse row (tasks outside it
	// contribute exactly zero), so this stays O(n·K·row) not O(n·K·m).
	cells := make([]cell, 0, n*K)
	for i := 0; i < n; i++ {
		row := p.ChargerRow(i)
		for k := 0; k < K; k++ {
			var pot float64
			for _, e := range row {
				if p.In.Tasks[e.Task].ActiveAt(k) {
					pot += e.De
				}
			}
			cells = append(cells, cell{i, k, pot})
		}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].potential > cells[b].potential })

	// remaining[d][j]: max extra energy task j can gain from cells d… end.
	remaining := make([][]float64, len(cells)+1)
	remaining[len(cells)] = make([]float64, m)
	for d := len(cells) - 1; d >= 0; d-- {
		row := append([]float64(nil), remaining[d+1]...)
		c := cells[d]
		for _, e := range p.ChargerRow(c.i) {
			if p.In.Tasks[e.Task].ActiveAt(c.k) {
				row[e.Task] += e.De
			}
		}
		remaining[d] = row
	}

	// Warm start with the greedy solution.
	greedy := core.TabularGreedy(p, core.DefaultOptions(1))
	best := Solution{Utility: greedy.RUtility, Schedule: greedy.Schedule.Clone()}

	es := p.AcquireState()
	defer p.ReleaseState(es)
	cur := core.NewSchedule(n, K)
	tasks := p.In.Tasks

	var nodes int64
	var overBudget bool
	var dfs func(d int)
	dfs = func(d int) {
		if overBudget {
			return
		}
		nodes++
		if nodes > opt.MaxNodes {
			overBudget = true
			return
		}
		if d == len(cells) {
			if es.Total() > best.Utility+1e-15 {
				best.Utility = es.Total()
				best.Schedule = cur.Clone()
			}
			return
		}
		// Admissible bound: finish every task optimistically.
		bound := 0.0
		for j := range tasks {
			bound += p.WeightedValue(j, es.Energy(j)+remaining[d][j])
		}
		if bound <= best.Utility+1e-12 {
			return
		}
		c := cells[d]
		// Branch on policies in decreasing marginal order.
		type cand struct {
			pol  int
			gain float64
		}
		cands := make([]cand, 0, len(p.Gamma[c.i]))
		for pol := range p.Gamma[c.i] {
			cands = append(cands, cand{pol, es.Marginal(c.i, c.k, pol)})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].gain > cands[b].gain })
		for _, cd := range cands {
			snapshot := snapshotEnergies(es, p, c.i, c.k, cd.pol)
			es.Apply(c.i, c.k, cd.pol)
			cur.Policy[c.i][c.k] = cd.pol
			dfs(d + 1)
			restoreEnergies(es, snapshot)
			cur.Policy[c.i][c.k] = -1
			if overBudget {
				return
			}
		}
	}
	dfs(0)

	best.Nodes = nodes
	best.Optimal = !overBudget
	if overBudget {
		return best, ErrTooLarge
	}
	return best, nil
}

// snapshot captures the per-task energies a policy application will touch
// so the DFS can undo it without copying the whole state.
type snapshot struct {
	es    *core.EnergyState
	ids   []int
	vals  []float64
	total float64
}

func snapshotEnergies(es *core.EnergyState, p *core.Problem, i, k, pol int) snapshot {
	s := snapshot{es: es, total: es.Total()}
	for _, j := range p.Gamma[i][pol].Covers {
		s.ids = append(s.ids, j)
		s.vals = append(s.vals, es.Energy(j))
	}
	return s
}

func restoreEnergies(es *core.EnergyState, s snapshot) {
	es.Restore(s.ids, s.vals, s.total)
}

// SolveExhaustive enumerates the complete policy product. Exponential —
// use only on tiny instances (tests certify Solve against it).
func SolveExhaustive(p *core.Problem) Solution {
	n, K := len(p.In.Chargers), p.K
	best := Solution{Optimal: true, Schedule: core.NewSchedule(n, K)}
	if n == 0 || K == 0 {
		return best
	}
	cur := core.NewSchedule(n, K)
	var rec func(i, k int)
	rec = func(i, k int) {
		if i == n {
			if u := core.Evaluate(p, cur); u > best.Utility {
				best.Utility = u
				best.Schedule = cur.Clone()
			}
			return
		}
		ni, nk := i, k+1
		if nk == K {
			ni, nk = i+1, 0
		}
		for pol := range p.Gamma[i] {
			cur.Policy[i][k] = pol
			rec(ni, nk)
		}
	}
	rec(0, 0)
	return best
}
