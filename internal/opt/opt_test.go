package opt

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
	"haste/internal/sim"
	"haste/internal/workload"
)

func mustProblem(t *testing.T, in *model.Instance) *core.Problem {
	t.Helper()
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func tinyInstance(rng *rand.Rand, n, m, maxK int) *model.Instance {
	in := &model.Instance{
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 12,
			ChargeAngle: geom.Deg(70), ReceiveAngle: geom.Deg(160),
			SlotSeconds: 60, Rho: 0, Tau: 0,
		},
	}
	for i := 0; i < n; i++ {
		in.Chargers = append(in.Chargers, model.Charger{
			ID: i, Pos: geom.Point{X: rng.Float64() * 15, Y: rng.Float64() * 15},
		})
	}
	for j := 0; j < m; j++ {
		rel := rng.Intn(2)
		in.Tasks = append(in.Tasks, model.Task{
			ID:  j,
			Pos: geom.Point{X: rng.Float64() * 15, Y: rng.Float64() * 15},
			Phi: rng.Float64() * geom.TwoPi, Release: rel,
			End:    rel + 1 + rng.Intn(maxK-1),
			Energy: 100 + rng.Float64()*800, Weight: 1.0 / float64(m),
		})
	}
	return in
}

func TestSolveMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		in := tinyInstance(rng, 2, 5, 3)
		p := mustProblem(t, in)
		// Keep the exhaustive product small.
		combos := 1.0
		for _, g := range p.Gamma {
			combos *= math.Pow(float64(len(g)), float64(p.K))
		}
		if combos > 2e5 {
			continue
		}
		ex := SolveExhaustive(p)
		bb, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if !bb.Optimal {
			t.Fatalf("trial %d: not proven optimal", trial)
		}
		if math.Abs(ex.Utility-bb.Utility) > 1e-9 {
			t.Fatalf("trial %d: exhaustive %v != B&B %v", trial, ex.Utility, bb.Utility)
		}
		if got := core.Evaluate(p, bb.Schedule); math.Abs(got-bb.Utility) > 1e-9 {
			t.Fatalf("trial %d: schedule evaluates to %v, claimed %v", trial, got, bb.Utility)
		}
	}
}

func TestSolveNeverBelowGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 10; trial++ {
		in := tinyInstance(rng, 3, 6, 3)
		p := mustProblem(t, in)
		greedy := core.TabularGreedy(p, core.DefaultOptions(1))
		bb, err := Solve(p, Options{MaxNodes: 5_000_000})
		if err != nil {
			t.Skipf("trial %d too large: %v", trial, err)
		}
		if bb.Utility < greedy.RUtility-1e-9 {
			t.Fatalf("trial %d: OPT %v < greedy %v", trial, bb.Utility, greedy.RUtility)
		}
	}
}

// Theorem 5.1's guarantee measured against the exact optimum: the
// simulated (switching-aware) greedy utility must be at least
// (1−ρ)(1−1/e)·OPT_R ≥ (1−ρ)(1−1/e)·OPT.
func TestGreedyMeetsApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	bound := (1 - 1.0/12) * (1 - 1/math.E)
	for trial := 0; trial < 8; trial++ {
		cfg := workload.SmallScale()
		cfg.NumChargers, cfg.NumTasks = 3, 6
		cfg.ReleaseMax = 1
		cfg.DurationMax = 3
		in := cfg.Generate(rng)
		in.Params.Tau = 0
		p := mustProblem(t, in)
		res := core.TabularGreedy(p, core.DefaultOptions(1))
		physical := sim.Execute(p, res.Schedule).Utility
		bb, err := Solve(p, Options{MaxNodes: 20_000_000})
		if err != nil {
			t.Skipf("trial %d too large: %v", trial, err)
		}
		if bb.Utility == 0 {
			continue
		}
		if ratio := physical / bb.Utility; ratio < bound-1e-9 {
			t.Fatalf("trial %d: ratio %v below theoretical bound %v", trial, ratio, bound)
		}
	}
}

func TestSolveNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	in := tinyInstance(rng, 4, 10, 4)
	p := mustProblem(t, in)
	sol, err := Solve(p, Options{MaxNodes: 10})
	if err == nil {
		// A tiny instance may legitimately finish within 10 nodes.
		if !sol.Optimal {
			t.Fatal("no error but not optimal")
		}
		return
	}
	if err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if sol.Optimal {
		t.Fatal("budget exhausted but marked optimal")
	}
	// Even truncated, the warm start guarantees at least greedy quality.
	greedy := core.TabularGreedy(p, core.DefaultOptions(1))
	if sol.Utility < greedy.RUtility-1e-9 {
		t.Fatalf("truncated solution %v below greedy %v", sol.Utility, greedy.RUtility)
	}
}

func TestSolveEmptyProblem(t *testing.T) {
	in := tinyInstance(rand.New(rand.NewSource(95)), 1, 1, 2)
	in.Tasks = nil
	p := mustProblem(t, in)
	sol, err := Solve(p, Options{})
	if err != nil || !sol.Optimal || sol.Utility != 0 {
		t.Fatalf("empty solve: %+v err=%v", sol, err)
	}
}
