package experiments

import (
	"fmt"

	"haste/internal/model"
	"haste/internal/report"
	"haste/internal/testbed"
)

// testbedFigure renders a per-task utility comparison for one testbed
// topology and scenario (Figs. 21, 22, 24, 25).
func testbedFigure(o Options, title string, in *model.Instance, mode testbed.Mode) (*report.Table, error) {
	o = o.normalize()
	c, err := testbed.Compare(in, mode, o.Seed+1)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(title, "task", "HASTE_C4", "GreedyUtility", "GreedyCover")
	for j := range c.HASTE {
		tbl.AddRow(fmt.Sprintf("task %d", j+1), c.HASTE[j], c.GreedyUtility[j], c.GreedyCover[j])
	}
	tbl.AddRow("TOTAL", c.HASTETotal, c.UtilityTotal, c.CoverTotal)
	return tbl, nil
}

func fig21(o Options) (*report.Table, error) {
	return testbedFigure(o, "Fig. 21 — testbed topology 1, per-task utility (centralized offline)",
		testbed.Topology1(), testbed.Offline)
}

func fig22(o Options) (*report.Table, error) {
	return testbedFigure(o, "Fig. 22 — testbed topology 1, per-task utility (distributed online)",
		testbed.Topology1(), testbed.Online)
}

func fig24(o Options) (*report.Table, error) {
	return testbedFigure(o, "Fig. 24 — testbed topology 2, per-task utility (centralized offline)",
		testbed.Topology2(), testbed.Offline)
}

func fig25(o Options) (*report.Table, error) {
	return testbedFigure(o, "Fig. 25 — testbed topology 2, per-task utility (distributed online)",
		testbed.Topology2(), testbed.Online)
}
