package experiments

import (
	"math"
	"math/rand"

	"haste/internal/baseline"
	"haste/internal/core"
	"haste/internal/emr"
	"haste/internal/report"
	"haste/internal/sim"
)

// Extension experiments: the ablation studies DESIGN.md §6 calls out, in
// the same runnable form as the paper figures (`haste run --fig ext-emr`).

// extEMR sweeps the EMR safety threshold and reports the utility/safety
// trade-off of the constrained scheduler against the unconstrained one.
func extEMR(o Options) (*report.Table, error) {
	o = o.normalize()
	fractions := []float64{1.0, 0.75, 0.5, 0.25, 0.1}
	tbl := report.NewTable("Ext — EMR safety threshold vs charging utility (constrained greedy)",
		"limit_frac_of_peak", "utility", "peak_emr", "pct_of_unconstrained")
	type point struct{ u, peak, pct float64 }
	acc := make([]point, len(fractions))
	var freeU float64
	for rep := 0; rep < o.Reps; rep++ {
		cfg := o.baseConfig()
		cfg.NumChargers, cfg.NumTasks = cfg.NumChargers/2, cfg.NumTasks/2
		cfg.FieldSide = 30
		in := cfg.Generate(rand.New(rand.NewSource(o.crnSeed(rep))))
		p, err := core.NewProblem(in)
		if err != nil {
			return nil, err
		}
		grid := emr.Grid(cfg.FieldSide, 2.5)
		free := core.TabularGreedy(p, o.haste(1))
		audit := emr.Field{Points: grid, Gamma: 1, Limit: math.Inf(1)}
		peak, _ := audit.Audit(p, free.Schedule)
		freeU += free.RUtility
		for i, frac := range fractions {
			f := emr.Field{Points: grid, Gamma: 1, Limit: frac * peak}
			res := emr.ConstrainedGreedy(p, f)
			u, _ := emr.ExecuteOff(p, res.Schedule)
			gotPeak, _ := f.Audit(p, res.Schedule)
			acc[i].u += u
			acc[i].peak += gotPeak
			acc[i].pct += u / free.RUtility
		}
	}
	r := float64(o.Reps)
	for i, frac := range fractions {
		tbl.AddRow(frac, acc[i].u/r, acc[i].peak/r, 100*acc[i].pct/r)
	}
	_ = freeU
	return tbl, nil
}

// extAniso compares scheduling under the isotropic (paper) and
// anisotropic (future-work [57]) receiving models.
func extAniso(o Options) (*report.Table, error) {
	o = o.normalize()
	tbl := report.NewTable("Ext — anisotropic receiving gain vs the paper's isotropic model",
		"model", "HASTE_C1", "GreedyUtility")
	var isoH, isoG, anisoH, anisoG float64
	for rep := 0; rep < o.Reps; rep++ {
		for _, aniso := range []bool{false, true} {
			cfg := o.baseConfig()
			cfg.Params.AnisotropicGain = aniso
			in := cfg.Generate(rand.New(rand.NewSource(o.crnSeed(rep))))
			p, err := core.NewProblem(in)
			if err != nil {
				return nil, err
			}
			h := sim.Execute(p, core.TabularGreedy(p, o.haste(1)).Schedule).Utility
			g := utilityOfBaseline(p)
			if aniso {
				anisoH += h
				anisoG += g
			} else {
				isoH += h
				isoG += g
			}
		}
	}
	r := float64(o.Reps)
	tbl.AddRow("isotropic", isoH/r, isoG/r)
	tbl.AddRow("anisotropic", anisoH/r, anisoG/r)
	return tbl, nil
}

// extSwitch compares the paper's fixed switching delay against the
// rotation-proportional extension across the ρ sweep.
func extSwitch(o Options) (*report.Table, error) {
	o = o.normalize()
	tbl := report.NewTable("Ext — fixed vs rotation-proportional switching delay",
		"rho", "fixed_HASTE_C1", "proportional_HASTE_C1", "fixed_switch_loss_slots", "prop_switch_loss_slots")
	for _, rho := range rhoSweep {
		var fixedU, propU, fixedLoss, propLoss float64
		for rep := 0; rep < o.Reps; rep++ {
			for _, prop := range []bool{false, true} {
				cfg := o.baseConfig()
				cfg.Params.Rho = rho
				cfg.Params.ProportionalSwitching = prop
				in := cfg.Generate(rand.New(rand.NewSource(o.crnSeed(rep))))
				p, err := core.NewProblem(in)
				if err != nil {
					return nil, err
				}
				res := core.TabularGreedy(p, o.haste(1))
				out := sim.Execute(p, res.Schedule)
				// Slots of radiation lost to switching, measured as the
				// gap between relaxed and physical per-task energy.
				loss := res.RUtility - out.Utility
				if prop {
					propU += out.Utility
					propLoss += loss
				} else {
					fixedU += out.Utility
					fixedLoss += loss
				}
			}
		}
		r := float64(o.Reps)
		tbl.AddRow(rho, fixedU/r, propU/r, fixedLoss/r, propLoss/r)
	}
	return tbl, nil
}

func utilityOfBaseline(p *core.Problem) float64 {
	return sim.Execute(p, baseline.GreedyUtility(p)).Utility
}
