package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Reps: 1, Seed: 7, Quick: true}
}

// Every registered experiment must run and produce a non-empty table.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			if len(tbl.Columns) < 2 {
				t.Fatalf("%s: too few columns: %v", e.ID, tbl.Columns)
			}
			for r, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("%s row %d: %d cells for %d columns", e.ID, r, len(row), len(tbl.Columns))
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig4"); err != nil {
		t.Errorf("fig4 missing: %v", err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("bogus ID accepted")
	}
	// IDs unique.
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

// The utility columns of the sweep figures must stay within [0, 1].
func TestUtilitiesInRange(t *testing.T) {
	for _, id := range []string{"fig4", "fig6", "fig12"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := e.Run(quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, row := range tbl.Rows {
			for _, cell := range row[1:] {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					continue
				}
				if v < 0 || v > 1.0001 {
					t.Errorf("%s: utility %v out of range in row %v", id, v, row)
				}
			}
		}
	}
}

// Fig. 4's core qualitative claim: utility increases with A_s, and all
// algorithms coincide at A_s = 360° (every orientation covers everything).
func TestFig4Shape(t *testing.T) {
	opts := quickOpts()
	opts.Reps = 2
	tbl, err := fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	first := parseRow(t, tbl.Rows[0])
	last := parseRow(t, tbl.Rows[len(tbl.Rows)-1])
	if last[1] < first[1] {
		t.Errorf("HASTE utility decreased from A_s=30° (%v) to 360° (%v)", first[1], last[1])
	}
	// At 360° the three algorithm families coincide.
	for c := 2; c <= 4; c++ {
		if diff := last[1] - last[c]; diff > 0.02 || diff < -0.02 {
			t.Errorf("algorithms differ at A_s=360°: %v vs %v", last[1], last[c])
		}
	}
}

// Fig. 16's claim: messages grow superlinearly, rounds grow with n.
func TestFig16Shape(t *testing.T) {
	opts := quickOpts()
	opts.Reps = 2
	tbl, err := fig16(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatal("too few rows")
	}
	first := parseRow(t, tbl.Rows[0])
	last := parseRow(t, tbl.Rows[len(tbl.Rows)-1])
	if last[1] <= first[1] {
		t.Errorf("messages did not grow with n: %v → %v", first[1], last[1])
	}
}

func parseRow(t *testing.T, row []string) []float64 {
	t.Helper()
	out := make([]float64, len(row))
	for i, c := range row {
		v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
		if err != nil {
			out[i] = 0
			continue
		}
		out[i] = v
	}
	return out
}
