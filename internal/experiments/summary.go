package experiments

import (
	"fmt"
	"strconv"

	"haste/internal/report"
)

// Improvement is a pairwise algorithm comparison over a figure's sweep:
// the mean and maximum relative gain of one column over another, in
// percent — the form in which the paper states its headline results
// ("HASTE outperforms GreedyUtility and GreedyCover by x and y percent
// (at most x' and y'), respectively").
type Improvement struct {
	Over     string  // the column being beaten
	AvgPct   float64 // mean over sweep points of (a/b − 1)·100
	MaxPct   float64 // maximum over sweep points
	Points   int     // sweep points compared
	Negative int     // points where the comparison lost
}

// CompareColumns computes the improvement of column a over column b
// across all rows of a table. Rows whose cells do not parse as floats or
// whose b value is zero are skipped.
func CompareColumns(tbl *report.Table, a, b string) (Improvement, error) {
	ia, ib := columnIndex(tbl, a), columnIndex(tbl, b)
	if ia < 0 || ib < 0 {
		return Improvement{}, fmt.Errorf("experiments: table %q lacks column %q or %q", tbl.Title, a, b)
	}
	imp := Improvement{Over: b}
	for _, row := range tbl.Rows {
		va, errA := strconv.ParseFloat(row[ia], 64)
		vb, errB := strconv.ParseFloat(row[ib], 64)
		if errA != nil || errB != nil || vb == 0 {
			continue
		}
		pct := (va/vb - 1) * 100
		imp.AvgPct += pct
		if pct > imp.MaxPct {
			imp.MaxPct = pct
		}
		if pct < 0 {
			imp.Negative++
		}
		imp.Points++
	}
	if imp.Points == 0 {
		return imp, fmt.Errorf("experiments: no comparable rows for %q vs %q", a, b)
	}
	imp.AvgPct /= float64(imp.Points)
	return imp, nil
}

// String renders the improvement as the paper phrases it.
func (i Improvement) String() string {
	return fmt.Sprintf("outperforms %s by %.2f%% on average (at most %.2f%%) over %d points",
		i.Over, i.AvgPct, i.MaxPct, i.Points)
}

// Summarize produces the headline-claim lines for a figure's table:
// HASTE vs each baseline and C = 4 vs C = 1 where those columns exist.
// Figures without comparison columns (box plots, grids, testbed tables)
// yield no lines.
func Summarize(tbl *report.Table) []string {
	var hasteCol string
	for _, c := range tbl.Columns {
		if c == "HASTE_C1" || c == "HASTE-DO_C1" {
			hasteCol = c
			break
		}
	}
	if hasteCol == "" {
		return nil
	}
	var out []string
	for _, baseline := range []string{"GreedyUtility", "GreedyCover"} {
		if imp, err := CompareColumns(tbl, hasteCol, baseline); err == nil {
			out = append(out, fmt.Sprintf("HASTE %s", imp))
		}
	}
	c4 := "HASTE_C4"
	if hasteCol == "HASTE-DO_C1" {
		c4 = "HASTE-DO_C4"
	}
	if imp, err := CompareColumns(tbl, c4, hasteCol); err == nil {
		out = append(out, fmt.Sprintf("C=4 vs C=1: %+.2f%% on average (at most %+.2f%%)",
			imp.AvgPct, imp.MaxPct))
	}
	if imp, err := CompareColumns(tbl, hasteCol, "OPT"); err == nil {
		out = append(out, fmt.Sprintf("HASTE achieves %.2f%% of the optimum on average (worst point %.2f%%)",
			100+imp.AvgPct, 100+worstPct(tbl, hasteCol, "OPT")))
	}
	if imp, err := CompareColumns(tbl, "HASTE-DO", "OPT"); err == nil {
		out = append(out, fmt.Sprintf("HASTE-DO achieves %.2f%% of the optimum on average (worst point %.2f%%)",
			100+imp.AvgPct, 100+worstPct(tbl, "HASTE-DO", "OPT")))
	}
	return out
}

// worstPct returns the minimum relative difference (a/b − 1)·100 across
// rows, i.e. the worst point of the sweep.
func worstPct(tbl *report.Table, a, b string) float64 {
	ia, ib := columnIndex(tbl, a), columnIndex(tbl, b)
	worst := 0.0
	first := true
	for _, row := range tbl.Rows {
		va, errA := strconv.ParseFloat(row[ia], 64)
		vb, errB := strconv.ParseFloat(row[ib], 64)
		if errA != nil || errB != nil || vb == 0 {
			continue
		}
		pct := (va/vb - 1) * 100
		if first || pct < worst {
			worst = pct
			first = false
		}
	}
	return worst
}

func columnIndex(tbl *report.Table, name string) int {
	for i, c := range tbl.Columns {
		if c == name {
			return i
		}
	}
	return -1
}
