package experiments

import (
	"math/rand"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/online"
	"haste/internal/report"
	"haste/internal/workload"
)

// onlineRunUtility runs the distributed online algorithm once on the
// run's substrate.
func onlineRunUtility(p *core.Problem, o Options, colors, samples int, seed int64) (float64, error) {
	res, err := online.Run(p, o.online(colors, samples, seed))
	if err != nil {
		return 0, err
	}
	return res.Outcome.Utility, nil
}

func fig11(o Options) (*report.Table, error) {
	return energyDurationGrid(o, "Fig. 11 — Ē and Δt̄ vs charging utility, distributed online", true)
}

func fig12(o Options) (*report.Table, error) {
	o = o.normalize()
	tbl := report.NewTable("Fig. 12 — A_s vs charging utility, distributed online",
		"A_s_deg", "HASTE-DO_C1", "HASTE-DO_C4", "GreedyUtility", "GreedyCover")
	err := sweep4(o, angleLabels(), func(pt int, cfg *workload.Config) {
		cfg.Params.ChargeAngle = geom.Deg(angleSweep[pt])
	}, onlineUtilities, tbl, "A_s")
	return tbl, err
}

func fig13(o Options) (*report.Table, error) {
	o = o.normalize()
	tbl := report.NewTable("Fig. 13 — A_o vs charging utility, distributed online",
		"A_o_deg", "HASTE-DO_C1", "HASTE-DO_C4", "GreedyUtility", "GreedyCover")
	err := sweep4(o, angleLabels(), func(pt int, cfg *workload.Config) {
		cfg.Params.ReceiveAngle = geom.Deg(angleSweep[pt])
	}, onlineUtilities, tbl, "A_o")
	return tbl, err
}

func fig14(o Options) (*report.Table, error) {
	o = o.normalize()
	tbl := report.NewTable("Fig. 14 — switching delay ρ vs charging utility, distributed online",
		"rho", "HASTE-DO_C1", "HASTE-DO_C4", "GreedyUtility", "GreedyCover")
	err := sweep4(o, rhoLabels(), func(pt int, cfg *workload.Config) {
		cfg.Params.Rho = rhoSweep[pt]
	}, onlineUtilities, tbl, "rho")
	return tbl, err
}

func fig15(o Options) (*report.Table, error) {
	return colorBoxPlot(o, "Fig. 15 — color number C vs charging utility, distributed online "+
		"(Monte-Carlo samples 2·C unless --samples given)", true)
}

// fig16: communication cost of Algorithm 3 for a single time slot as the
// charger count grows (C = 1, as in the paper).
func fig16(o Options) (*report.Table, error) {
	o = o.normalize()
	ns := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if o.Quick {
		ns = []int{10, 30, 50}
	}
	tbl := report.NewTable("Fig. 16 — communication cost vs number of chargers (C = 1, one time slot)",
		"n_chargers", "avg_messages", "avg_rounds", "avg_sessions")
	for point, n := range ns {
		var msgs, rounds, sessions float64
		for rep := 0; rep < o.Reps; rep++ {
			cfg := o.baseConfig()
			cfg.NumChargers = n
			// One-shot scenario: every task occupies the single first
			// slot, so the run performs exactly one negotiation.
			cfg.DurationMin, cfg.DurationMax = 1, 1
			cfg.ReleaseMax = 0
			cfg.Params.Tau = 0
			seed := o.repSeed(point, rep)
			in := cfg.Generate(rand.New(rand.NewSource(seed)))
			p, err := core.NewProblem(in)
			if err != nil {
				return nil, err
			}
			res, err := online.Run(p, o.online(1, 0, seed))
			if err != nil {
				return nil, err
			}
			msgs += float64(res.Stats.TotalMessages())
			rounds += float64(res.Stats.TotalRounds())
			for _, neg := range res.Stats.Negotiations {
				sessions += float64(neg.Sessions)
			}
		}
		r := float64(o.Reps)
		tbl.AddRow(n, msgs/r, rounds/r, sessions/r)
	}
	return tbl, nil
}
