package experiments

import (
	"math"
	"strings"
	"testing"

	"haste/internal/report"
)

func sweepTable() *report.Table {
	tbl := report.NewTable("t", "A_s_deg", "HASTE_C1", "HASTE_C4", "GreedyUtility", "GreedyCover")
	tbl.AddRow("30", 0.50, 0.52, 0.40, 0.45)
	tbl.AddRow("60", 0.60, 0.60, 0.50, 0.55)
	tbl.AddRow("90", 0.66, 0.68, 0.60, 0.66)
	return tbl
}

func TestCompareColumns(t *testing.T) {
	imp, err := CompareColumns(sweepTable(), "HASTE_C1", "GreedyUtility")
	if err != nil {
		t.Fatal(err)
	}
	// Gains: 25%, 20%, 10% → avg 18.33, max 25.
	if math.Abs(imp.AvgPct-18.333) > 0.01 || math.Abs(imp.MaxPct-25) > 0.01 {
		t.Errorf("improvement = %+v", imp)
	}
	if imp.Points != 3 || imp.Negative != 0 {
		t.Errorf("points/negative = %d/%d", imp.Points, imp.Negative)
	}
}

func TestCompareColumnsErrors(t *testing.T) {
	if _, err := CompareColumns(sweepTable(), "HASTE_C1", "Nope"); err == nil {
		t.Error("missing column accepted")
	}
	empty := report.NewTable("e", "a", "b")
	empty.AddRow("x", "y")
	if _, err := CompareColumns(empty, "a", "b"); err == nil {
		t.Error("unparseable rows accepted")
	}
}

func TestCompareColumnsCountsLosses(t *testing.T) {
	tbl := report.NewTable("t", "x", "HASTE_C1", "GreedyUtility")
	tbl.AddRow("1", 0.4, 0.5) // HASTE loses here
	tbl.AddRow("2", 0.6, 0.5)
	imp, err := CompareColumns(tbl, "HASTE_C1", "GreedyUtility")
	if err != nil {
		t.Fatal(err)
	}
	if imp.Negative != 1 {
		t.Errorf("Negative = %d, want 1", imp.Negative)
	}
}

func TestSummarize(t *testing.T) {
	lines := Summarize(sweepTable())
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "GreedyUtility") || !strings.Contains(lines[1], "GreedyCover") {
		t.Errorf("baseline lines wrong: %v", lines)
	}
	if !strings.Contains(lines[2], "C=4 vs C=1") {
		t.Errorf("color line wrong: %v", lines)
	}
}

func TestSummarizeOptTable(t *testing.T) {
	tbl := report.NewTable("t", "A_s_deg", "OPT", "HASTE_C1", "HASTE_C4", "HASTE-DO", "ratio_C1", "ratio_DO")
	tbl.AddRow("60", 0.50, 0.48, 0.49, 0.45, 0.96, 0.90)
	tbl.AddRow("120", 0.80, 0.76, 0.78, 0.70, 0.95, 0.875)
	lines := Summarize(tbl)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "of the optimum") {
		t.Errorf("no optimum line: %v", lines)
	}
	if !strings.Contains(joined, "HASTE-DO achieves") {
		t.Errorf("no online optimum line: %v", lines)
	}
}

func TestSummarizeNonSweepTable(t *testing.T) {
	tbl := report.NewTable("t", "task", "HASTE_C4", "GreedyUtility", "GreedyCover")
	tbl.AddRow("task 1", 0.9, 0.8, 0.7)
	if lines := Summarize(tbl); lines != nil {
		t.Errorf("testbed-style table summarized: %v", lines)
	}
}

// End-to-end: a real figure run must summarize cleanly.
func TestSummarizeRealFigure(t *testing.T) {
	tbl, err := fig4(Options{Reps: 1, Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	lines := Summarize(tbl)
	if len(lines) < 2 {
		t.Fatalf("too few summary lines: %v", lines)
	}
}
