package experiments

import (
	"math"
	"math/rand"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/online"
	"haste/internal/opt"
	"haste/internal/report"
	"haste/internal/sim"
	"haste/internal/workload"
)

// smallScaleSweep implements Figs. 8 and 9: the §7.3.1 small-scale
// networks (5 chargers, 10 tasks, 10 m × 10 m) where the brute-force
// optimum is computable. Reported are the optimal HASTE-R utility, the
// centralized offline HASTE (C = 1 and C = 4), the distributed online
// HASTE-DO, and each algorithm's ratio to the optimum — the quantities
// behind the paper's claims that HASTE achieves ≥ 92.97 % (offline) and
// ≥ 88.63 % (online) of the optimum, versus the proven bounds
// (1−ρ)(1−1/e) ≈ 0.579 and ½(1−ρ)(1−1/e) ≈ 0.290.
func smallScaleSweep(o Options, title, xName string, sweepAs bool) (*report.Table, error) {
	o = o.normalize()
	angles := []float64{30, 60, 90, 120, 180, 240, 300, 360}
	if o.Quick {
		angles = []float64{60, 180, 360}
	}
	tbl := report.NewTable(title,
		xName, "OPT", "HASTE_C1", "HASTE_C4", "HASTE-DO", "ratio_C1", "ratio_DO")
	for point, a := range angles {
		var optSum, h1Sum, h4Sum, doSum float64
		valid := 0
		for rep := 0; rep < o.Reps; rep++ {
			cfg := workload.SmallScale()
			if sweepAs {
				cfg.Params.ChargeAngle = geom.Deg(a)
			} else {
				cfg.Params.ReceiveAngle = geom.Deg(a)
			}
			seed := o.repSeed(point, rep)
			in := cfg.Generate(rand.New(rand.NewSource(o.crnSeed(rep))))
			p, err := core.NewProblem(in)
			if err != nil {
				return nil, err
			}
			sol, err := opt.Solve(p, opt.Options{MaxNodes: 30_000_000})
			if err != nil {
				continue // instance too large to certify; skip this rep
			}
			valid++
			optSum += sol.Utility
			r1 := core.TabularGreedy(p, o.haste(1))
			h1Sum += sim.Execute(p, r1.Schedule).Utility
			r4 := core.TabularGreedy(p, core.Options{
				Colors: 4, Samples: o.Samples, PreferStay: true,
				Rng: rand.New(rand.NewSource(seed)), Workers: o.Workers, Shard: o.Shard,
				Trace: o.Trace,
			})
			h4Sum += sim.Execute(p, r4.Schedule).Utility
			do, err := online.Run(p, o.online(1, 0, seed))
			if err != nil {
				return nil, err
			}
			doSum += do.Outcome.Utility
		}
		if valid == 0 {
			continue
		}
		f := 1 / float64(valid)
		optU, h1, h4, do := optSum*f, h1Sum*f, h4Sum*f, doSum*f
		r1, rdo := math.NaN(), math.NaN()
		if optU > 0 {
			r1, rdo = h1/optU, do/optU
		}
		tbl.AddRow(a, optU, h1, h4, do, r1, rdo)
	}
	return tbl, nil
}

func fig8(o Options) (*report.Table, error) {
	return smallScaleSweep(o, "Fig. 8 — A_s vs charging utility with optimum (small scale)", "A_s_deg", true)
}

func fig9(o Options) (*report.Table, error) {
	return smallScaleSweep(o, "Fig. 9 — A_o vs charging utility with optimum (small scale)", "A_o_deg", false)
}
