// Package experiments maps every table and figure of the paper's
// evaluation (§7 simulations, §8 field experiments) to a reproducible
// driver. Each driver generates the workloads, runs the algorithms,
// averages over repeated topologies and returns a report.Table whose
// series corresponds to one figure. The experiment IDs match DESIGN.md's
// per-experiment index (fig4 … fig25).
package experiments

import (
	"fmt"
	"math/rand"

	"haste/internal/baseline"
	"haste/internal/core"
	"haste/internal/model"
	"haste/internal/netsim"
	"haste/internal/obs"
	"haste/internal/online"
	"haste/internal/report"
	"haste/internal/sim"
	"haste/internal/workload"
)

// Options tunes every experiment run.
type Options struct {
	// Reps is the number of random topologies averaged per data point.
	// The paper uses 100; the default here is 3 so a full sweep finishes
	// interactively — pass --reps 100 for paper fidelity.
	Reps int
	// Seed is the base RNG seed; rep r of data point d uses a seed
	// derived from (Seed, d, r), so runs are reproducible.
	Seed int64
	// Samples overrides the Monte-Carlo sample count of TabularGreedy for
	// C > 1 (0 = algorithm default 8·C). The heavy online color sweeps
	// use a smaller value by default, noted in the table title.
	Samples int
	// Quick shrinks the workloads (fewer chargers/tasks, shorter
	// horizons) so the whole suite runs in seconds. Used by tests and
	// smoke runs; the series shapes remain, absolute values differ.
	Quick bool
	// Workers bounds TabularGreedy's worker pool (core.Options.Workers):
	// 0 = one worker per CPU, 1 = sequential. Any value produces the
	// same figures bit-for-bit; only wall-clock time changes.
	Workers int
	// Shard selects the shard-and-stitch mode (core.Options.Shard). Like
	// Workers, any value regenerates bit-identical figures — the paper's
	// dense fields rarely decompose, so ShardAuto usually stays monolithic.
	Shard core.ShardMode
	// Trace, when non-nil, records every HASTE solve's phase spans into
	// the probe (obs package). Figures are bit-identical traced or not;
	// `haste run --trace` aggregates the forest into a per-phase summary.
	Trace *obs.Trace
	// Transport selects the negotiation substrate of the online figures
	// (online.Options.Driver): nil = in-memory netsim, transport.Factory =
	// loopback TCP sockets. Every figure is bit-identical either way —
	// that is the cross-driver equivalence contract — only wall-clock
	// time changes (`haste run --transport tcp` exists to demonstrate it).
	Transport netsim.Factory
}

// online returns the distributed-scheduler options for the given color
// count with the run's Transport substrate applied.
func (o Options) online(colors, samples int, seed int64) online.Options {
	return online.Options{
		Colors: colors, Samples: samples, Seed: seed, Driver: o.Transport,
	}
}

// haste returns the TabularGreedy options for the given color count with
// the run's Workers bound and Shard mode applied.
func (o Options) haste(colors int) core.Options {
	opt := core.DefaultOptions(colors)
	opt.Workers = o.Workers
	opt.Shard = o.Shard
	opt.Trace = o.Trace
	return opt
}

func (o Options) normalize() Options {
	if o.Reps <= 0 {
		o.Reps = 3
	}
	return o
}

// repSeed derives the deterministic seed for a (data point, repetition).
func (o Options) repSeed(point, rep int) int64 {
	return o.Seed*1_000_003 + int64(point)*1_009 + int64(rep)
}

// crnSeed derives the seed for repetition rep shared across all sweep
// points — common random numbers: every point of a sweep sees the same
// random topologies and differs only in the swept parameter, which removes
// cross-point sampling noise from the curves (the standard variance-
// reduction technique for parameter sweeps).
func (o Options) crnSeed(rep int) int64 {
	return o.Seed*1_000_003 + int64(rep)
}

// baseConfig returns the paper's default workload, shrunk under Quick.
func (o Options) baseConfig() workload.Config {
	cfg := workload.Default()
	if o.Quick {
		cfg.NumChargers = 10
		cfg.NumTasks = 30
		cfg.DurationMin, cfg.DurationMax = 4, 16
		cfg.ReleaseMax = 8
		cfg.EnergyMin, cfg.EnergyMax = 1e3, 4e3
	}
	return cfg
}

// Experiment is one reproducible figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*report.Table, error)
}

// All returns every experiment in figure order.
func All() []Experiment {
	return []Experiment{
		{"fig4", "Fig. 4: charging angle A_s vs charging utility (centralized offline)", fig4},
		{"fig5", "Fig. 5: receiving angle A_o vs charging utility (centralized offline)", fig5},
		{"fig6", "Fig. 6: switching delay ρ vs charging utility (centralized offline)", fig6},
		{"fig7", "Fig. 7: color number C vs charging utility box plot (centralized offline)", fig7},
		{"fig8", "Fig. 8: A_s vs charging utility with optimum (small-scale networks)", fig8},
		{"fig9", "Fig. 9: A_o vs charging utility with optimum (small-scale networks)", fig9},
		{"fig10", "Fig. 10: required energy & task duration vs utility (centralized offline)", fig10},
		{"fig11", "Fig. 11: required energy & task duration vs utility (distributed online)", fig11},
		{"fig12", "Fig. 12: charging angle A_s vs charging utility (distributed online)", fig12},
		{"fig13", "Fig. 13: receiving angle A_o vs charging utility (distributed online)", fig13},
		{"fig14", "Fig. 14: switching delay ρ vs charging utility (distributed online)", fig14},
		{"fig15", "Fig. 15: color number C vs charging utility box plot (distributed online)", fig15},
		{"fig16", "Fig. 16: communication cost vs number of chargers (distributed online)", fig16},
		{"fig17", "Fig. 17: Gaussian placement variance vs overall charging utility", fig17},
		{"fig18", "Fig. 18: individual charging utility vs required charging energy", fig18},
		{"fig21", "Fig. 21: testbed topology 1, per-task utility (centralized offline)", fig21},
		{"fig22", "Fig. 22: testbed topology 1, per-task utility (distributed online)", fig22},
		{"fig24", "Fig. 24: testbed topology 2, per-task utility (centralized offline)", fig24},
		{"fig25", "Fig. 25: testbed topology 2, per-task utility (distributed online)", fig25},
		{"ext-emr", "Ext: EMR safety threshold vs utility (safe-charging extension)", extEMR},
		{"ext-aniso", "Ext: anisotropic receiving gain vs the isotropic model", extAniso},
		{"ext-switch", "Ext: fixed vs rotation-proportional switching delay", extSwitch},
	}
}

// ByID finds an experiment by its DESIGN.md identifier.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (see `haste list`)", id)
}

// utilities4 holds the four compared algorithms' physical utilities.
type utilities4 struct {
	h1, h4, gu, gc float64
}

func (a *utilities4) add(b utilities4) {
	a.h1 += b.h1
	a.h4 += b.h4
	a.gu += b.gu
	a.gc += b.gc
}

func (a *utilities4) scale(f float64) {
	a.h1 *= f
	a.h4 *= f
	a.gu *= f
	a.gc *= f
}

// offlineUtilities runs HASTE (C=1 and C=4), GreedyUtility and
// GreedyCover in the offline scenario and simulates the schedules with
// switching delay.
func offlineUtilities(in *model.Instance, o Options, seed int64) (utilities4, error) {
	p, err := core.NewProblem(in)
	if err != nil {
		return utilities4{}, err
	}
	var u utilities4
	r1 := core.TabularGreedy(p, o.haste(1))
	u.h1 = sim.Execute(p, r1.Schedule).Utility
	r4 := core.TabularGreedy(p, core.Options{
		Colors: 4, Samples: o.Samples, PreferStay: true,
		Rng: rand.New(rand.NewSource(seed)), Workers: o.Workers, Shard: o.Shard,
		Trace: o.Trace,
	})
	u.h4 = sim.Execute(p, r4.Schedule).Utility
	u.gu = sim.Execute(p, baseline.GreedyUtility(p)).Utility
	u.gc = sim.Execute(p, baseline.GreedyCover(p)).Utility
	return u, nil
}

// onlineUtilities runs the distributed online HASTE (C=1 and C=4) and the
// online baselines.
func onlineUtilities(in *model.Instance, o Options, seed int64) (utilities4, error) {
	p, err := core.NewProblem(in)
	if err != nil {
		return utilities4{}, err
	}
	samples := o.Samples
	if samples == 0 {
		// The distributed C = 4 run re-evaluates marginals per Monte-Carlo
		// sample on every negotiation round; 2·C samples keeps full-scale
		// sweeps tractable (override with --samples for higher fidelity).
		samples = 8
	}
	var u utilities4
	h1, err := online.Run(p, o.online(1, 0, seed))
	if err != nil {
		return utilities4{}, err
	}
	u.h1 = h1.Outcome.Utility
	h4, err := online.Run(p, o.online(4, samples, seed))
	if err != nil {
		return utilities4{}, err
	}
	u.h4 = h4.Outcome.Utility
	u.gu = sim.Execute(p, baseline.GreedyUtilityOnline(p)).Utility
	u.gc = sim.Execute(p, baseline.GreedyCoverOnline(p)).Utility
	return u, nil
}

// sweep4 runs one of the two scenario runners over a sequence of workload
// mutations and averages the four algorithms per point.
func sweep4(o Options, labels []string, mutate func(point int, cfg *workload.Config),
	runner func(in *model.Instance, o Options, seed int64) (utilities4, error),
	tbl *report.Table, xName string) error {
	for point, label := range labels {
		var avg utilities4
		for rep := 0; rep < o.Reps; rep++ {
			cfg := o.baseConfig()
			mutate(point, &cfg)
			in := cfg.Generate(rand.New(rand.NewSource(o.crnSeed(rep))))
			u, err := runner(in, o, o.repSeed(point, rep))
			if err != nil {
				return fmt.Errorf("%s=%s rep %d: %w", xName, label, rep, err)
			}
			avg.add(u)
		}
		avg.scale(1 / float64(o.Reps))
		tbl.AddRow(label, avg.h1, avg.h4, avg.gu, avg.gc)
	}
	return nil
}
