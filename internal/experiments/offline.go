package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/report"
	"haste/internal/sim"
	"haste/internal/stats"
	"haste/internal/workload"
)

// angleSweep is the x-axis the paper uses for Figs. 4/5/12/13.
var angleSweep = []float64{30, 60, 90, 120, 150, 180, 210, 240, 270, 300, 330, 360}

func angleLabels() []string {
	out := make([]string, len(angleSweep))
	for i, a := range angleSweep {
		out[i] = fmt.Sprintf("%.0f", a)
	}
	return out
}

// rhoSweep is the x-axis for Figs. 6/14 (the paper sweeps ρ to a full
// slot).
var rhoSweep = []float64{0, 1.0 / 12, 0.25, 0.5, 0.75, 1}

func rhoLabels() []string {
	out := make([]string, len(rhoSweep))
	for i, r := range rhoSweep {
		out[i] = fmt.Sprintf("%.3f", r)
	}
	return out
}

func fig4(o Options) (*report.Table, error) {
	o = o.normalize()
	tbl := report.NewTable("Fig. 4 — A_s vs charging utility, centralized offline",
		"A_s_deg", "HASTE_C1", "HASTE_C4", "GreedyUtility", "GreedyCover")
	err := sweep4(o, angleLabels(), func(pt int, cfg *workload.Config) {
		cfg.Params.ChargeAngle = geom.Deg(angleSweep[pt])
	}, offlineUtilities, tbl, "A_s")
	return tbl, err
}

func fig5(o Options) (*report.Table, error) {
	o = o.normalize()
	tbl := report.NewTable("Fig. 5 — A_o vs charging utility, centralized offline",
		"A_o_deg", "HASTE_C1", "HASTE_C4", "GreedyUtility", "GreedyCover")
	err := sweep4(o, angleLabels(), func(pt int, cfg *workload.Config) {
		cfg.Params.ReceiveAngle = geom.Deg(angleSweep[pt])
	}, offlineUtilities, tbl, "A_o")
	return tbl, err
}

func fig6(o Options) (*report.Table, error) {
	o = o.normalize()
	tbl := report.NewTable("Fig. 6 — switching delay ρ vs charging utility, centralized offline",
		"rho", "HASTE_C1", "HASTE_C4", "GreedyUtility", "GreedyCover")
	err := sweep4(o, rhoLabels(), func(pt int, cfg *workload.Config) {
		cfg.Params.Rho = rhoSweep[pt]
	}, offlineUtilities, tbl, "rho")
	return tbl, err
}

// colorBoxPlot implements Figs. 7 and 15: distribution of the achieved
// utility per color count C.
func colorBoxPlot(o Options, title string, onlineMode bool) (*report.Table, error) {
	o = o.normalize()
	tbl := report.NewTable(title,
		"C", "min", "q1", "median", "q3", "max", "mean", "variance")
	for c := 1; c <= 8; c++ {
		var us []float64
		for rep := 0; rep < o.Reps; rep++ {
			cfg := o.baseConfig()
			seed := o.repSeed(c, rep)
			in := cfg.Generate(rand.New(rand.NewSource(o.crnSeed(rep))))
			p, err := core.NewProblem(in)
			if err != nil {
				return nil, err
			}
			samples := o.Samples
			if samples == 0 && onlineMode {
				samples = 2 * c // keep the heavy online color sweep tractable
			}
			var u float64
			if onlineMode {
				if u, err = onlineRunUtility(p, o, c, samples, seed); err != nil {
					return nil, err
				}
			} else {
				res := core.TabularGreedy(p, core.Options{
					Colors: c, Samples: samples, PreferStay: true,
					Rng: rand.New(rand.NewSource(seed)), Workers: o.Workers, Shard: o.Shard,
					Trace: o.Trace,
				})
				u = sim.Execute(p, res.Schedule).Utility
			}
			us = append(us, u)
		}
		b, err := stats.Summarize(us)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(c, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.Variance)
	}
	return tbl, nil
}

func fig7(o Options) (*report.Table, error) {
	return colorBoxPlot(o, "Fig. 7 — color number C vs charging utility, centralized offline", false)
}

// energyDurationGrid implements Figs. 10 and 11: mean required energy Ē
// and mean task duration Δt̄ swept jointly; values drawn from
// [0.5·x, 1.5·x].
func energyDurationGrid(o Options, title string, onlineMode bool) (*report.Table, error) {
	o = o.normalize()
	energies := []float64{10e3, 20e3, 30e3, 40e3, 50e3} // Ē, joules
	durations := []int{30, 40, 50, 60, 70}              // Δt̄, slots
	if o.Quick {
		energies = []float64{10e3, 30e3, 50e3}
		durations = []int{10, 14, 18}
	}
	tbl := report.NewTable(title, "E_mean_kJ", "dur_mean_min", "HASTE_C1")
	point := 0
	for _, em := range energies {
		for _, dm := range durations {
			var sum float64
			for rep := 0; rep < o.Reps; rep++ {
				cfg := o.baseConfig()
				cfg.EnergyMin, cfg.EnergyMax = 0.5*em, 1.5*em
				cfg.DurationMin, cfg.DurationMax = dm/2, dm+dm/2
				seed := o.repSeed(point, rep)
				in := cfg.Generate(rand.New(rand.NewSource(o.crnSeed(rep))))
				p, err := core.NewProblem(in)
				if err != nil {
					return nil, err
				}
				if onlineMode {
					u, err := onlineRunUtility(p, o, 1, 1, seed)
					if err != nil {
						return nil, err
					}
					sum += u
				} else {
					res := core.TabularGreedy(p, o.haste(1))
					sum += sim.Execute(p, res.Schedule).Utility
				}
			}
			tbl.AddRow(em/1e3, dm, sum/float64(o.Reps))
			point++
		}
	}
	return tbl, nil
}

func fig10(o Options) (*report.Table, error) {
	return energyDurationGrid(o, "Fig. 10 — Ē and Δt̄ vs charging utility, centralized offline", false)
}

// fig17: the insight experiment — task positions drawn from a 2D Gaussian
// with varying σ_x, σ_y; utility grows with placement uniformity.
func fig17(o Options) (*report.Table, error) {
	o = o.normalize()
	sigmas := []float64{2, 5, 10, 15, 20, 25}
	if o.Quick {
		sigmas = []float64{2, 10, 25}
	}
	tbl := report.NewTable("Fig. 17 — Gaussian placement variance vs overall charging utility",
		"sigma_x", "sigma_y", "HASTE_C1")
	point := 0
	for _, sx := range sigmas {
		for _, sy := range sigmas {
			var sum float64
			for rep := 0; rep < o.Reps; rep++ {
				cfg := o.baseConfig()
				cfg.NumTasks = 50 // §7.5 uses 50 tasks
				cfg.Placement = workload.Gaussian
				cfg.SigmaX, cfg.SigmaY = sx, sy
				in := cfg.Generate(rand.New(rand.NewSource(o.crnSeed(rep))))
				p, err := core.NewProblem(in)
				if err != nil {
					return nil, err
				}
				res := core.TabularGreedy(p, o.haste(1))
				sum += sim.Execute(p, res.Schedule).Utility
			}
			tbl.AddRow(sx, sy, sum/float64(o.Reps))
			point++
		}
	}
	return tbl, nil
}

// fig18: individual task utility versus its required energy E_j, with the
// ~1/E_j envelope the paper draws through the maxima.
func fig18(o Options) (*report.Table, error) {
	o = o.normalize()
	binWidth := 10e3 // joules
	maxE := 100e3
	if o.Quick {
		binWidth, maxE = 2e3, 10e3
	}
	nBins := int(maxE / binWidth)
	sums := make([]float64, nBins)
	counts := make([]int, nBins)
	maxs := make([]float64, nBins)   // mean over reps of the per-rep bin maximum
	repMax := make([]float64, nBins) // scratch: this rep's bin maxima
	envelopes := make([]float64, 0, o.Reps)
	for rep := 0; rep < o.Reps; rep++ {
		cfg := o.baseConfig()
		cfg.EnergyMin, cfg.EnergyMax = 5e3, maxE // §7.5: [5, 100] kJ
		if o.Quick {
			cfg.EnergyMin = 1e3
		}
		in := cfg.Generate(rand.New(rand.NewSource(o.repSeed(0, rep))))
		p, err := core.NewProblem(in)
		if err != nil {
			return nil, err
		}
		res := core.TabularGreedy(p, o.haste(1))
		out := sim.Execute(p, res.Schedule)
		for b := range repMax {
			repMax[b] = 0
		}
		repEnvelope := 0.0
		for j, tk := range in.Tasks {
			b := int(tk.Energy / binWidth)
			if b >= nBins {
				b = nBins - 1
			}
			u := out.PerTask[j]
			sums[b] += u
			counts[b]++
			if u > repMax[b] {
				repMax[b] = u
			}
			if u < 1 { // saturated tasks carry no 1/E information
				if c := u * tk.Energy; c > repEnvelope {
					repEnvelope = c
				}
			}
		}
		for b := range repMax {
			maxs[b] += repMax[b] / float64(o.Reps)
		}
		envelopes = append(envelopes, repEnvelope)
	}
	envelope := 0.0
	for _, e := range envelopes {
		envelope += e / float64(len(envelopes))
	}
	tbl := report.NewTable("Fig. 18 — individual charging utility vs required energy E_j",
		"E_bin_kJ", "mean_utility", "max_utility", "envelope_c_over_E")
	for b := 0; b < nBins; b++ {
		if counts[b] == 0 {
			continue
		}
		mid := (float64(b) + 0.5) * binWidth
		env := math.Min(1, envelope/mid)
		tbl.AddRow(mid/1e3, sums[b]/float64(counts[b]), maxs[b], env)
	}
	return tbl, nil
}
