package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden figure snapshots")

// goldenOptions is the pinned configuration of the snapshots: quick
// workloads, two topologies per point, a fixed seed. Figures are fully
// deterministic under it, for every worker count — which is the point:
// performance refactors of the schedulers must not shift a single digit.
var goldenOptions = Options{Reps: 2, Seed: 7, Quick: true}

// TestGoldenFigures diffs the seeded fig4, fig6 and fig16 series against
// the snapshots under testdata/golden. Regenerate intentionally changed
// series with:
//
//	go test ./internal/experiments -run TestGoldenFigures -update
func TestGoldenFigures(t *testing.T) {
	for _, id := range []string{"fig4", "fig6", "fig16"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := e.Run(goldenOptions)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tbl.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", id+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing snapshot (run with -update to create it): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s drifted from its golden snapshot.\n--- got ---\n%s--- want ---\n%s"+
					"If the change is intentional, regenerate with -update.",
					id, buf.String(), string(want))
			}
		})
	}
}

// TestGoldenFiguresWorkerInvariant re-renders one snapshot figure at
// Workers = 1 and Workers = 8: the parallel fan must not move the figures
// at all, not even in the last printed digit.
func TestGoldenFiguresWorkerInvariant(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		o := goldenOptions
		o.Workers = workers
		tbl, err := e.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tbl.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if seq, par := render(1), render(8); seq != par {
		t.Errorf("fig4 differs between Workers=1 and Workers=8:\n--- seq ---\n%s--- par ---\n%s", seq, par)
	}
}
