// Package obs is the zero-dependency observability probe threaded through
// the scheduling pipeline: a span recorder (Trace) that core and serve
// attach phase timings and counters to, plus renderers that turn a
// recorded run into a JSON-ready tree, a text table, or an aggregated
// per-phase summary.
//
// The probe is built around one invariant: the disabled path costs
// nothing. A nil *Trace is the off switch — every method on a nil Trace
// and on the zero SpanRef is a no-op that performs no allocation, no
// lock, and no time read, so instrumented code calls the probe
// unconditionally (obs_test.go pins 0 allocs via testing.AllocsPerRun).
// Because spans bracket pipeline phases, not inner-loop iterations, the
// enabled path stays off the hot marginal scans entirely; the probe can
// only observe a run, never perturb its floating-point work, so traced
// schedules are bit-identical to untraced ones.
//
// Concurrency: a Trace is safe for concurrent span recording (the sharded
// scheduler's component workers append from multiple goroutines); the
// span log is guarded by a mutex that is only ever held for an append or
// a field write. Sibling order under one parent then reflects scheduling
// and is not deterministic — consumers that need determinism aggregate by
// phase name (Aggregate) instead of relying on order.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Trace records one run's span log. The zero value is ready to use; nil
// means tracing is off.
type Trace struct {
	mu    sync.Mutex
	spans []span
}

// span is one recorded phase. Parent indexes into the span log; -1 marks
// a root, so a Trace holds a forest (serve records its request phases as
// sibling roots, core's solve is one of them).
type span struct {
	name   string
	parent int32
	start  time.Time
	dur    time.Duration
	attrs  []Attr
}

// Attr is one integer attribute of a span (sizes, counters, worker ids;
// booleans are recorded as 0/1).
type Attr struct {
	Key string
	Val int64
}

// New returns an empty trace ready to record.
func New() *Trace { return &Trace{} }

// SpanRef is a value handle to a recorded span — or to nothing, when
// tracing is off. The zero SpanRef is inert: Start on it returns another
// zero SpanRef and End/Int/Bool do nothing, which is what lets
// instrumented code thread refs through call chains without a single
// nil check of its own.
type SpanRef struct {
	t   *Trace
	idx int32
}

// Root returns the parentless recording context of the trace: spans
// started from it are roots. On a nil trace it returns the zero (inert)
// SpanRef, so t.Root() is the standard way to turn an optional *Trace
// into a SpanRef parameter.
func (t *Trace) Root() SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return SpanRef{t: t, idx: -1}
}

// Start records a new root span.
func (t *Trace) Start(name string) SpanRef { return t.Root().Start(name) }

// Span retro-records a completed root span from an externally measured
// start and duration — for phases (like request decoding) that finish
// before the caller knows whether the request asked for a trace.
func (t *Trace) Span(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, span{name: name, parent: -1, start: start, dur: d})
	t.mu.Unlock()
}

// Start records a child span of s and returns its ref. The child's clock
// starts now; call End when the phase completes.
func (s SpanRef) Start(name string) SpanRef {
	if s.t == nil {
		return SpanRef{}
	}
	now := time.Now()
	s.t.mu.Lock()
	idx := int32(len(s.t.spans))
	s.t.spans = append(s.t.spans, span{name: name, parent: s.idx, start: now})
	s.t.mu.Unlock()
	return SpanRef{t: s.t, idx: idx}
}

// End stamps the span's duration. Ending a span twice overwrites the
// duration; ending the zero SpanRef or a Root context does nothing.
func (s SpanRef) End() {
	if s.t == nil || s.idx < 0 {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	sp.dur = now.Sub(sp.start)
	s.t.mu.Unlock()
}

// Int attaches an integer attribute and returns s for chaining.
func (s SpanRef) Int(key string, v int64) SpanRef {
	if s.t == nil || s.idx < 0 {
		return s
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	sp.attrs = append(sp.attrs, Attr{Key: key, Val: v})
	s.t.mu.Unlock()
	return s
}

// Bool attaches a boolean attribute, recorded as 0/1.
func (s SpanRef) Bool(key string, v bool) SpanRef {
	var n int64
	if v {
		n = 1
	}
	return s.Int(key, n)
}

// Len returns the number of recorded spans (0 on a nil trace).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// NewID returns a fresh 16-hex-digit identifier for correlating a trace
// with logs and response headers.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; a zero id
		// is still a valid (if non-unique) correlation key.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
