package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Node is the JSON-ready rendering of one recorded span. Tree assembles
// the span log into a forest of Nodes; serve embeds it in traced
// responses and the CLI renders it with WriteTable / WriteSummary.
type Node struct {
	Name       string           `json:"name"`
	DurationMS float64          `json:"duration_ms"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []*Node          `json:"children,omitempty"`
}

// Tree snapshots the trace into a forest of Nodes. Children appear in
// recording order (concurrent recorders make that order non-deterministic
// — see the package comment); roots likewise. Safe to call while spans
// are still being recorded: the snapshot reflects the log at call time.
func (t *Trace) Tree() []*Node {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	nodes := make([]*Node, len(spans))
	for i, sp := range spans {
		n := &Node{Name: sp.name, DurationMS: float64(sp.dur) / float64(time.Millisecond)}
		if len(sp.attrs) > 0 {
			n.Attrs = make(map[string]int64, len(sp.attrs))
			for _, a := range sp.attrs {
				n.Attrs[a.Key] = a.Val
			}
		}
		nodes[i] = n
	}
	var roots []*Node
	for i, sp := range spans {
		if sp.parent < 0 {
			roots = append(roots, nodes[i])
		} else {
			p := nodes[sp.parent]
			p.Children = append(p.Children, nodes[i])
		}
	}
	return roots
}

// RootDurationMS sums the root spans' durations — the traced fraction of
// the request or run the forest describes. Roots are sequential phases
// of one caller, so the sum is bounded by the caller's wall time.
func RootDurationMS(nodes []*Node) float64 {
	var total float64
	for _, n := range nodes {
		total += n.DurationMS
	}
	return total
}

// WriteTable renders the forest as an indented phase table:
//
//	    12.345ms  solve  shards=4 warm_reused=2
//	     1.200ms    decompose  components=16
//
// Durations lead so the eye can scan the column; attributes are sorted
// by key for stable output.
func WriteTable(w io.Writer, nodes []*Node) {
	for _, n := range nodes {
		writeNode(w, n, 0)
	}
}

func writeNode(w io.Writer, n *Node, depth int) {
	fmt.Fprintf(w, "%12.3fms  %*s%s%s\n", n.DurationMS, 2*depth, "", n.Name, attrSuffix(n.Attrs))
	for _, c := range n.Children {
		writeNode(w, c, depth+1)
	}
}

func attrSuffix(attrs map[string]int64) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := " "
	for _, k := range keys {
		s += fmt.Sprintf(" %s=%d", k, attrs[k])
	}
	return s
}

// PhaseStat aggregates every span sharing a phase path ("solve/component/
// greedy") across the forest: how often the phase ran and its total wall
// time. Aggregation is what makes a many-solve run (a figure sweep, a
// sharded fleet) readable, and — unlike sibling order — it is
// deterministic for a deterministic workload.
type PhaseStat struct {
	Path    string
	Count   int64
	TotalMS float64
}

// Aggregate folds the forest into per-path phase statistics, ordered by
// first appearance of each path in a depth-first walk.
func Aggregate(nodes []*Node) []PhaseStat {
	index := make(map[string]int)
	var stats []PhaseStat
	var walk func(prefix string, ns []*Node)
	walk = func(prefix string, ns []*Node) {
		for _, n := range ns {
			path := n.Name
			if prefix != "" {
				path = prefix + "/" + n.Name
			}
			i, ok := index[path]
			if !ok {
				i = len(stats)
				index[path] = i
				stats = append(stats, PhaseStat{Path: path})
			}
			stats[i].Count++
			stats[i].TotalMS += n.DurationMS
			walk(path, n.Children)
		}
	}
	walk("", nodes)
	return stats
}

// WriteSummary renders Aggregate's phase statistics as a table of path,
// call count, total and mean wall time.
func WriteSummary(w io.Writer, nodes []*Node) {
	stats := Aggregate(nodes)
	width := len("phase")
	for _, st := range stats {
		if len(st.Path) > width {
			width = len(st.Path)
		}
	}
	fmt.Fprintf(w, "%-*s  %8s  %12s  %12s\n", width, "phase", "count", "total", "mean")
	for _, st := range stats {
		mean := 0.0
		if st.Count > 0 {
			mean = st.TotalMS / float64(st.Count)
		}
		fmt.Fprintf(w, "%-*s  %8d  %10.3fms  %10.3fms\n", width, st.Path, st.Count, st.TotalMS, mean)
	}
}
