package obs

import (
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// The probe's core contract: with tracing off (nil *Trace, zero SpanRef)
// the full instrumentation call pattern — root span, nested children,
// attributes, retro spans — allocates nothing. This is what lets core
// call the probe unconditionally on every solve.
func TestDisabledProbeAllocFree(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Start("solve")
		sp := root.Start("greedy").Int("chargers", 5).Bool("warm", false)
		sp.End()
		child := sp.Start("evaluate")
		child.End()
		tr.Span("decode", time.Time{}, 0)
		root.Int("shards", 3)
		root.End()
		_ = tr.Root()
		_ = tr.Tree()
		_ = tr.Len()
	})
	if allocs != 0 {
		t.Fatalf("disabled probe allocated %v times per run, want 0", allocs)
	}
}

func TestTreeStructure(t *testing.T) {
	tr := New()
	root := tr.Start("solve")
	g := root.Start("greedy").Int("chargers", 4).Int("slots", 7)
	time.Sleep(time.Millisecond)
	g.End()
	e := root.Start("evaluate")
	e.End()
	root.Int("shards", 0).Bool("warm", true)
	root.End()
	tr.Span("decode", time.Now().Add(-time.Millisecond), time.Millisecond)

	nodes := tr.Tree()
	if len(nodes) != 2 {
		t.Fatalf("got %d roots, want 2", len(nodes))
	}
	solve := nodes[0]
	if solve.Name != "solve" || len(solve.Children) != 2 {
		t.Fatalf("solve root malformed: %+v", solve)
	}
	if solve.Attrs["shards"] != 0 || solve.Attrs["warm"] != 1 {
		t.Errorf("root attrs = %v", solve.Attrs)
	}
	g0 := solve.Children[0]
	if g0.Name != "greedy" || g0.Attrs["chargers"] != 4 || g0.Attrs["slots"] != 7 {
		t.Errorf("greedy child = %+v", g0)
	}
	if g0.DurationMS <= 0 {
		t.Errorf("greedy duration %v, want > 0", g0.DurationMS)
	}
	if solve.DurationMS < g0.DurationMS {
		t.Errorf("parent %vms shorter than child %vms", solve.DurationMS, g0.DurationMS)
	}
	if nodes[1].Name != "decode" || nodes[1].DurationMS != 1 {
		t.Errorf("retro span = %+v", nodes[1])
	}

	// The tree must be JSON-encodable with the documented field names.
	b, err := json.Marshal(nodes)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"name":"solve"`, `"duration_ms"`, `"attrs"`, `"children"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON missing %s: %s", want, b)
		}
	}
}

// Concurrent recorders (the sharded scheduler's component workers) must
// be race-free and lose no spans. Run with -race in CI's observability
// job.
func TestConcurrentRecording(t *testing.T) {
	tr := New()
	root := tr.Start("solve")
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := root.Start("component").Int("worker", int64(w))
				sp.Start("greedy").End()
				sp.End()
			}
		}(w)
	}
	// Snapshot while recording is in flight: must not race or corrupt.
	for i := 0; i < 10; i++ {
		_ = tr.Tree()
	}
	wg.Wait()
	root.End()
	nodes := tr.Tree()
	if len(nodes) != 1 {
		t.Fatalf("got %d roots, want 1", len(nodes))
	}
	if got := len(nodes[0].Children); got != workers*per {
		t.Fatalf("got %d component spans, want %d", got, workers*per)
	}
	if tr.Len() != 1+2*workers*per {
		t.Fatalf("span log holds %d spans, want %d", tr.Len(), 1+2*workers*per)
	}
}

func TestAggregateAndRenderers(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		root := tr.Start("solve")
		root.Start("greedy").End()
		root.Start("evaluate").End()
		root.End()
	}
	stats := Aggregate(tr.Tree())
	want := []string{"solve", "solve/greedy", "solve/evaluate"}
	if len(stats) != len(want) {
		t.Fatalf("got %d phases %v, want %d", len(stats), stats, len(want))
	}
	for i, path := range want {
		if stats[i].Path != path {
			t.Errorf("phase[%d] = %q, want %q", i, stats[i].Path, path)
		}
		if stats[i].Count != 3 {
			t.Errorf("phase %q count = %d, want 3", path, stats[i].Count)
		}
	}

	var table, summary strings.Builder
	WriteTable(&table, tr.Tree())
	if got := strings.Count(table.String(), "\n"); got != 9 {
		t.Errorf("table has %d lines, want 9:\n%s", got, table.String())
	}
	if !strings.Contains(table.String(), "  greedy") {
		t.Errorf("table lacks indented child:\n%s", table.String())
	}
	WriteSummary(&summary, tr.Tree())
	if !strings.Contains(summary.String(), "solve/greedy") {
		t.Errorf("summary lacks aggregated path:\n%s", summary.String())
	}

	if got := RootDurationMS(tr.Tree()); got < 0 {
		t.Errorf("RootDurationMS = %v", got)
	}
}

func TestNewID(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewID(), NewID()
	if !re.MatchString(a) || !re.MatchString(b) {
		t.Fatalf("ids %q, %q not 16 hex digits", a, b)
	}
	if a == b {
		t.Fatalf("consecutive ids collide: %q", a)
	}
}
