// Package viz renders HASTE instances and schedules as ASCII art — the
// repository's stand-in for the paper's topology figures (Figs. 2, 20,
// 23): a field map with chargers, devices and orientations, and a per-
// charger timeline (Gantt-style) of the scheduled dominant task sets.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
)

// FieldMap renders the instance on a character grid of the given width
// (height follows the field's aspect ratio; cells are ~2:1 to compensate
// for character aspect). Chargers print as letters (A, B, …), tasks as
// digits (task ID mod 10). When orientations are given (one per charger,
// NaN = unoriented), each charger also paints its beam direction with an
// arrow character.
func FieldMap(w io.Writer, in *model.Instance, orientations []float64, width int) error {
	if width < 10 {
		width = 10
	}
	minX, minY, maxX, maxY := bounds(in)
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	height := int(float64(width) * spanY / spanX / 2)
	if height < 5 {
		height = 5
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", width))
	}
	place := func(p geom.Point, ch byte) {
		c := int((p.X - minX) / spanX * float64(width-1))
		r := int((maxY - p.Y) / spanY * float64(height-1))
		if r >= 0 && r < height && c >= 0 && c < width {
			grid[r][c] = ch
		}
	}

	for i, c := range in.Chargers {
		if orientations != nil && i < len(orientations) && !math.IsNaN(orientations[i]) {
			// Paint the beam one step along the orientation.
			step := spanX / float64(width) * 2
			place(c.Pos.Add(geom.UnitVec(orientations[i]).Scale(step*2)), arrowFor(orientations[i]))
		}
		place(c.Pos, chargerGlyph(i))
	}
	for _, t := range in.Tasks {
		place(t.Pos, byte('0'+t.ID%10))
	}

	for _, row := range grid {
		if _, err := fmt.Fprintln(w, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "chargers A-%c, tasks by ID mod 10; field [%.1f,%.1f]x[%.1f,%.1f] m\n",
		chargerGlyph(len(in.Chargers)-1), minX, maxX, minY, maxY)
	return err
}

// Timeline renders a Gantt-style view of a schedule: one row per charger,
// one column per slot, showing which policy (dominant task set) the
// charger executes. Policies print as 0-9/a-z by index; '.' is
// unassigned, '~' an idle policy.
func Timeline(w io.Writer, p *core.Problem, s core.Schedule, maxSlots int) error {
	K := s.Slots()
	if maxSlots > 0 && K > maxSlots {
		K = maxSlots
	}
	header := fmt.Sprintf("%-10s ", "slot")
	for k := 0; k < K; k++ {
		if k%10 == 0 {
			header += fmt.Sprintf("%-10s", fmt.Sprint(k))
		}
	}
	if _, err := fmt.Fprintln(w, strings.TrimRight(header, " ")); err != nil {
		return err
	}
	for i, row := range s.Policy {
		var sb strings.Builder
		fmt.Fprintf(&sb, "charger %-2d ", i)
		for k := 0; k < K && k < len(row); k++ {
			sb.WriteByte(policyGlyph(p, i, row[k]))
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

func policyGlyph(p *core.Problem, i, pol int) byte {
	switch {
	case pol < 0:
		return '.'
	case p.Gamma[i][pol].Idle:
		return '~'
	case pol < 10:
		return byte('0' + pol)
	case pol < 36:
		return byte('a' + pol - 10)
	default:
		return '+'
	}
}

func chargerGlyph(i int) byte {
	if i < 26 {
		return byte('A' + i)
	}
	return '#'
}

// arrowFor picks an eight-direction arrow character for an orientation.
func arrowFor(theta float64) byte {
	dirs := []byte{'>', '/', '^', '\\', '<', '/', 'v', '\\'}
	oct := int(math.Round(geom.NormalizeAngle(theta)/(math.Pi/4))) % 8
	return dirs[oct]
}

func bounds(in *model.Instance) (minX, minY, maxX, maxY float64) {
	first := true
	visit := func(p geom.Point) {
		if first {
			minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
			first = false
			return
		}
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	for _, c := range in.Chargers {
		visit(c.Pos)
	}
	for _, t := range in.Tasks {
		visit(t.Pos)
	}
	return minX, minY, maxX, maxY
}
