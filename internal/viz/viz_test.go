package viz

import (
	"math"
	"strings"
	"testing"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
	"haste/internal/testbed"
)

func tiny(t *testing.T) (*model.Instance, *core.Problem) {
	t.Helper()
	in := &model.Instance{
		Chargers: []model.Charger{
			{ID: 0, Pos: geom.Point{X: 0, Y: 0}},
			{ID: 1, Pos: geom.Point{X: 10, Y: 10}},
		},
		Tasks: []model.Task{
			{ID: 0, Pos: geom.Point{X: 5, Y: 1}, Phi: math.Pi, Release: 0, End: 3, Energy: 100, Weight: 0.5},
			{ID: 1, Pos: geom.Point{X: 5, Y: 9}, Phi: 0, Release: 1, End: 4, Energy: 100, Weight: 0.5},
		},
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 15,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(180),
			SlotSeconds: 60, Rho: 0, Tau: 0,
		},
	}
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	return in, p
}

func TestFieldMap(t *testing.T) {
	in, _ := tiny(t)
	var sb strings.Builder
	if err := FieldMap(&sb, in, nil, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"A", "B", "0", "1", "field"} {
		if !strings.Contains(out, want) {
			t.Errorf("map missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 6 {
		t.Errorf("map too short: %d lines", len(lines))
	}
	for _, l := range lines[:len(lines)-1] {
		if len(l) != 40 {
			t.Errorf("row width %d, want 40: %q", len(l), l)
		}
	}
}

func TestFieldMapWithOrientations(t *testing.T) {
	in, _ := tiny(t)
	var sb strings.Builder
	orient := []float64{0, math.NaN()}
	if err := FieldMap(&sb, in, orient, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ">") {
		t.Errorf("beam arrow missing:\n%s", sb.String())
	}
}

func TestFieldMapTestbedTopology(t *testing.T) {
	in := testbed.Topology1()
	var sb strings.Builder
	if err := FieldMap(&sb, in, nil, 60); err != nil {
		t.Fatal(err)
	}
	// All 8 chargers visible.
	for _, g := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		if !strings.Contains(sb.String(), g) {
			t.Errorf("topology map missing charger %s", g)
		}
	}
}

func TestTimeline(t *testing.T) {
	_, p := tiny(t)
	s := core.NewSchedule(2, 4)
	s.Policy[0][0] = 0
	s.Policy[0][1] = 0
	s.Policy[1][2] = 0
	var sb strings.Builder
	if err := Timeline(&sb, p, s, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "charger 0  00..") {
		t.Errorf("timeline row 0 wrong:\n%s", out)
	}
	if !strings.Contains(out, "charger 1  ..0.") {
		t.Errorf("timeline row 1 wrong:\n%s", out)
	}
}

func TestTimelineTruncation(t *testing.T) {
	_, p := tiny(t)
	s := core.NewSchedule(2, 4)
	var sb strings.Builder
	if err := Timeline(&sb, p, s, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "....") {
		t.Errorf("timeline not truncated:\n%s", sb.String())
	}
}

func TestArrowFor(t *testing.T) {
	cases := map[float64]byte{
		0:               '>',
		math.Pi / 2:     '^',
		math.Pi:         '<',
		3 * math.Pi / 2: 'v',
	}
	for theta, want := range cases {
		if got := arrowFor(theta); got != want {
			t.Errorf("arrowFor(%v) = %c, want %c", theta, got, want)
		}
	}
}

func TestPolicyGlyphs(t *testing.T) {
	_, p := tiny(t)
	if g := policyGlyph(p, 0, -1); g != '.' {
		t.Errorf("unassigned glyph %c", g)
	}
	if g := policyGlyph(p, 0, 0); g != '0' {
		t.Errorf("policy glyph %c", g)
	}
}
