// Package workload generates HASTE problem instances: the paper's default
// simulation setup (§7.1), the small-scale setup used to compare against
// the brute-force optimum (§7.3.1), and the Gaussian task placement used
// for the insight experiments (§7.5, Fig. 17). All randomness flows
// through an explicit *rand.Rand so every experiment is reproducible.
package workload

import (
	"math"
	"math/rand"

	"haste/internal/geom"
	"haste/internal/model"
)

// Placement selects how task positions are drawn.
type Placement int

const (
	// Uniform scatters positions uniformly over the field (§7.1).
	Uniform Placement = iota
	// Gaussian draws each coordinate from N(Mu, Sigma), clamped to the
	// field (§7.5). Chargers remain uniform.
	Gaussian
	// Clustered places chargers AND tasks uniformly inside NumClusters
	// discs of radius ClusterRadius laid out on a square grid whose
	// center spacing guarantees that points of different clusters are
	// farther apart than the charging radius — so the charger–task
	// coverage graph decomposes into at least NumClusters independent
	// components. This is the beyond-paper-scale workload the sharded
	// scheduler (core.Options.Shard) is built for; FieldSide is ignored
	// (the grid defines the field).
	Clustered
)

// Config describes a workload. Durations and release times are in whole
// time slots (the paper uses T_s = 1 min, so slots are minutes).
type Config struct {
	FieldSide   float64 // square field side, meters
	NumChargers int     // n
	NumTasks    int     // m
	Params      model.Params

	EnergyMin, EnergyMax     float64 // E_j range, joules
	DurationMin, DurationMax int     // task duration range, slots
	ReleaseMax               int     // releases drawn uniformly from [0, ReleaseMax]

	// ArrivalRate, when positive, replaces the uniform release draw with
	// a Poisson arrival process: successive release slots are separated
	// by exponential gaps with the given mean arrival rate (tasks per
	// slot). This models the "charging tasks stochastically arrive"
	// scenario of the online evaluation more literally than the uniform
	// default; ReleaseMax is ignored.
	ArrivalRate float64

	// Weight per task; 0 means 1/m (the paper's w_j = 1/200).
	Weight float64

	Placement        Placement
	MuX, MuY         float64 // Gaussian mean (defaults to field center)
	SigmaX, SigmaY   float64 // Gaussian std deviations
	DeviceTowardBias float64 // probability a device faces the nearest charger (0 = uniform φ)

	// Clustered placement. Charger i lands in cluster i % NumClusters and
	// task j in cluster j % NumClusters, uniformly inside the cluster's
	// disc. ClusterRadius defaults to Params.Radius; ClusterSpacing (the
	// grid pitch between cluster centers) defaults to 2·ClusterRadius +
	// 2·Params.Radius, the smallest spacing that provably isolates every
	// cluster: two points of different clusters are then at least
	// spacing − 2·ClusterRadius = 2·Params.Radius > Params.Radius apart.
	NumClusters    int
	ClusterRadius  float64
	ClusterSpacing float64
}

// Default returns the paper's §7.1 setup: 50 m × 50 m field, n = 50
// chargers, m = 200 tasks, α = 10000, β = 40, D = 20 m, T_s = 1 min,
// ρ = 1/12, τ = 1, A_s = A_o = π/3, E_j ∈ [5, 20] kJ and durations in
// [10, 120] min, w_j = 1/200.
func Default() Config {
	return Config{
		FieldSide:   50,
		NumChargers: 50,
		NumTasks:    200,
		Params: model.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(60),
			SlotSeconds: 60, Rho: 1.0 / 12, Tau: 1,
		},
		EnergyMin: 5e3, EnergyMax: 20e3,
		DurationMin: 10, DurationMax: 120,
		ReleaseMax: 60,
	}
}

// SmallScale returns the §7.3.1 setup used for the optimality comparison:
// five chargers and ten tasks on a 10 m × 10 m field, E_j ∈ [200, 800] J
// and durations in [1, 5] min (raised to the 2τ minimum when τ > 0).
func SmallScale() Config {
	c := Default()
	c.FieldSide = 10
	c.NumChargers = 5
	c.NumTasks = 10
	c.EnergyMin, c.EnergyMax = 200, 800
	c.DurationMin, c.DurationMax = 1, 5
	c.ReleaseMax = 2
	return c
}

// FleetScale returns a beyond-paper-scale clustered workload of numTasks
// tasks: ⌈numTasks/40⌉ isolated clusters of 5 chargers and ~40 tasks each
// under the paper's testbed hardware constants (§8: α = 41.93,
// β = 0.6428, D = 4 m, A_s = 60°, A_o = 120°). The coverage graph
// decomposes into at least NumClusters independent components, so the
// instance exercises the shard-and-stitch scheduler at 10⁴–10⁶ tasks —
// scales where the paper's dense 50-charger field (D = 20 m on 50 m)
// would stay one giant component. Requirements and windows are kept
// small ([200, 800] J, 4–12 slots, releases ≤ 12) so the horizon stays
// bounded (K ≤ 24) while n and m grow.
func FleetScale(numTasks int) Config {
	const tasksPerCluster = 40
	clusters := (numTasks + tasksPerCluster - 1) / tasksPerCluster
	if clusters < 1 {
		clusters = 1
	}
	return Config{
		NumChargers: clusters * 5,
		NumTasks:    numTasks,
		Params: model.Params{
			Alpha: 41.93, Beta: 0.6428, Radius: 4,
			ChargeAngle: geom.Deg(60), ReceiveAngle: geom.Deg(120),
			SlotSeconds: 60, Rho: 1.0 / 12, Tau: 1,
		},
		EnergyMin: 200, EnergyMax: 800,
		DurationMin: 4, DurationMax: 12,
		ReleaseMax:    12,
		Placement:     Clustered,
		NumClusters:   clusters,
		ClusterRadius: 3,
	}
}

// Generate draws an instance from the configuration. The result always
// passes model.Validate: durations are clamped to at least max(1, 2τ).
func (c Config) Generate(rng *rand.Rand) *model.Instance {
	in := &model.Instance{Params: c.Params}
	centers := c.clusterCenters()
	for i := 0; i < c.NumChargers; i++ {
		pos := geom.Point{X: rng.Float64() * c.FieldSide, Y: rng.Float64() * c.FieldSide}
		if centers != nil {
			pos = clusterPoint(rng, centers[i%len(centers)], c.clusterRadius())
		}
		in.Chargers = append(in.Chargers, model.Charger{ID: i, Pos: pos})
	}
	w := c.Weight
	if w == 0 && c.NumTasks > 0 {
		w = 1 / float64(c.NumTasks)
	}
	minDur := c.DurationMin
	if minDur < 1 {
		minDur = 1
	}
	if c.Params.Tau > 0 && minDur < 2*c.Params.Tau {
		minDur = 2 * c.Params.Tau
	}
	maxDur := c.DurationMax
	if maxDur < minDur {
		maxDur = minDur
	}
	arrival := 0.0
	for j := 0; j < c.NumTasks; j++ {
		pos := c.taskPos(rng, j, centers)
		phi := rng.Float64() * geom.TwoPi
		if c.DeviceTowardBias > 0 && rng.Float64() < c.DeviceTowardBias {
			if nearest := c.nearestCharger(in, pos); nearest >= 0 {
				phi = geom.Azimuth(pos, in.Chargers[nearest].Pos)
			}
		}
		dur := minDur + rng.Intn(maxDur-minDur+1)
		rel := 0
		switch {
		case c.ArrivalRate > 0:
			arrival += rng.ExpFloat64() / c.ArrivalRate
			rel = int(arrival)
		case c.ReleaseMax > 0:
			rel = rng.Intn(c.ReleaseMax + 1)
		}
		in.Tasks = append(in.Tasks, model.Task{
			ID:      j,
			Pos:     pos,
			Phi:     phi,
			Release: rel,
			End:     rel + dur,
			Energy:  c.EnergyMin + rng.Float64()*(c.EnergyMax-c.EnergyMin),
			Weight:  w,
		})
	}
	return in
}

func (c Config) taskPos(rng *rand.Rand, j int, centers []geom.Point) geom.Point {
	switch c.Placement {
	case Gaussian:
		mx, my := c.MuX, c.MuY
		if mx == 0 && my == 0 {
			mx, my = c.FieldSide/2, c.FieldSide/2
		}
		return geom.Point{
			X: clamp(rng.NormFloat64()*c.SigmaX+mx, 0, c.FieldSide),
			Y: clamp(rng.NormFloat64()*c.SigmaY+my, 0, c.FieldSide),
		}
	case Clustered:
		return clusterPoint(rng, centers[j%len(centers)], c.clusterRadius())
	default:
		return geom.Point{X: rng.Float64() * c.FieldSide, Y: rng.Float64() * c.FieldSide}
	}
}

func (c Config) clusterRadius() float64 {
	if c.ClusterRadius > 0 {
		return c.ClusterRadius
	}
	return c.Params.Radius
}

// clusterCenters lays the cluster centers on a ⌈√k⌉-wide square grid
// (nil unless the placement is Clustered).
func (c Config) clusterCenters() []geom.Point {
	if c.Placement != Clustered {
		return nil
	}
	k := c.NumClusters
	if k < 1 {
		k = 1
	}
	spacing := c.ClusterSpacing
	if spacing <= 0 {
		spacing = 2*c.clusterRadius() + 2*c.Params.Radius
	}
	side := int(math.Ceil(math.Sqrt(float64(k))))
	centers := make([]geom.Point, k)
	for idx := range centers {
		row, col := idx/side, idx%side
		centers[idx] = geom.Point{
			X: (float64(col) + 0.5) * spacing,
			Y: (float64(row) + 0.5) * spacing,
		}
	}
	return centers
}

// clusterPoint draws uniformly from the disc around center.
func clusterPoint(rng *rand.Rand, center geom.Point, radius float64) geom.Point {
	r := radius * math.Sqrt(rng.Float64())
	a := rng.Float64() * geom.TwoPi
	return geom.Point{X: center.X + r*math.Cos(a), Y: center.Y + r*math.Sin(a)}
}

func (c Config) nearestCharger(in *model.Instance, pos geom.Point) int {
	best, bestD := -1, 0.0
	for i, ch := range in.Chargers {
		d := ch.Pos.Dist(pos)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
