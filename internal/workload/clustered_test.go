package workload

import (
	"math/rand"
	"testing"
	"time"
)

// clusterOf mirrors the generator's assignment rule.
func clusterOf(idx, clusters int) int { return idx % clusters }

// TestClusteredIsolation: with the default spacing, any two points of
// different clusters are farther apart than the charging radius — the
// guarantee the shard-and-stitch difftests build on. Checked exactly on a
// small instance (all cross-cluster pairs).
func TestClusteredIsolation(t *testing.T) {
	cfg := Default()
	cfg.NumChargers = 12
	cfg.NumTasks = 40
	cfg.Placement = Clustered
	cfg.NumClusters = 5
	cfg.Params.Radius = 8
	cfg.ClusterRadius = 6
	in := cfg.Generate(rand.New(rand.NewSource(1)))

	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	type member struct {
		x, y    float64
		cluster int
	}
	var pts []member
	for i, c := range in.Chargers {
		pts = append(pts, member{c.Pos.X, c.Pos.Y, clusterOf(i, cfg.NumClusters)})
	}
	for j, tk := range in.Tasks {
		pts = append(pts, member{tk.Pos.X, tk.Pos.Y, clusterOf(j, cfg.NumClusters)})
	}
	for a := range pts {
		for b := a + 1; b < len(pts); b++ {
			if pts[a].cluster == pts[b].cluster {
				continue
			}
			dx, dy := pts[a].x-pts[b].x, pts[a].y-pts[b].y
			if d2 := dx*dx + dy*dy; d2 <= cfg.Params.Radius*cfg.Params.Radius {
				t.Fatalf("cross-cluster pair %d/%d within charging radius: dist² = %v", a, b, d2)
			}
		}
	}

	// Points stay inside their cluster disc.
	centers := cfg.clusterCenters()
	for i, c := range in.Chargers {
		ctr := centers[clusterOf(i, cfg.NumClusters)]
		if c.Pos.Dist(ctr) > cfg.ClusterRadius*1.0000001 {
			t.Fatalf("charger %d outside its cluster disc", i)
		}
	}
}

// TestClusteredSpacingOverride: an explicit ClusterSpacing is honored and
// a deliberately tight spacing may merge clusters (no isolation claim),
// while the derived default always isolates.
func TestClusteredSpacingOverride(t *testing.T) {
	cfg := Default()
	cfg.NumChargers = 6
	cfg.NumTasks = 12
	cfg.Placement = Clustered
	cfg.NumClusters = 3
	cfg.ClusterRadius = 2
	cfg.ClusterSpacing = 100
	in := cfg.Generate(rand.New(rand.NewSource(2)))
	// Spacing 100 with cluster radius 2: consecutive cluster members are
	// at least 100-4 apart.
	d := in.Chargers[0].Pos.Dist(in.Chargers[1].Pos)
	if d < 90 {
		t.Fatalf("explicit spacing ignored: inter-cluster charger distance %v", d)
	}
}

// TestFleetScaleGeneratesValid: the beyond-paper-scale generator produces
// valid instances at 10⁴ tasks and scales to 10⁶ tasks in reasonable time.
// (Scheduling at 10⁶ lives in the root TestFleetScaleMillionEndToEnd —
// since the sparse compile, generated fleets are schedulable end to end,
// not just generable.)
func TestFleetScaleGeneratesValid(t *testing.T) {
	cfg := FleetScale(10_000)
	if cfg.NumClusters != 250 || cfg.NumChargers != 1250 {
		t.Fatalf("unexpected shape: %d clusters, %d chargers", cfg.NumClusters, cfg.NumChargers)
	}
	in := cfg.Generate(rand.New(rand.NewSource(3)))
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.Horizon() > 24 {
		t.Fatalf("horizon %d, want ≤ 24 (releases ≤ 12, durations ≤ 12)", in.Horizon())
	}

	start := time.Now()
	big := FleetScale(1_000_000).Generate(rand.New(rand.NewSource(4)))
	elapsed := time.Since(start)
	if len(big.Tasks) != 1_000_000 || len(big.Chargers) != 125_000 {
		t.Fatalf("10⁶-task instance has %d tasks, %d chargers", len(big.Tasks), len(big.Chargers))
	}
	if elapsed > 30*time.Second {
		t.Fatalf("10⁶-task generation took %v", elapsed)
	}
	// Spot-check isolation across clusters on a sample (the exact check is
	// quadratic; TestClusteredIsolation does it exhaustively at small n).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		a, b := rng.Intn(len(big.Tasks)), rng.Intn(len(big.Chargers))
		if clusterOf(a, 25000) == clusterOf(b, 25000) {
			continue
		}
		if big.Chargers[b].Pos.Dist(big.Tasks[a].Pos) <= big.Params.Radius {
			t.Fatalf("cross-cluster pair within radius at trial %d", trial)
		}
	}
}
