package workload

import (
	"math"
	"math/rand"
	"testing"

	"haste/internal/geom"
)

func TestDefaultGeneratesValidInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	in := Default().Generate(rng)
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(in.Chargers) != 50 || len(in.Tasks) != 200 {
		t.Fatalf("sizes: %d chargers, %d tasks", len(in.Chargers), len(in.Tasks))
	}
	if w := in.TotalWeight(); math.Abs(w-1) > 1e-9 {
		t.Errorf("total weight = %v, want 1", w)
	}
	for _, tk := range in.Tasks {
		if tk.Energy < 5e3 || tk.Energy > 20e3 {
			t.Errorf("task %d energy %v outside [5k,20k]", tk.ID, tk.Energy)
		}
		d := tk.Duration()
		if d < 10 || d > 120 {
			t.Errorf("task %d duration %d outside [10,120]", tk.ID, d)
		}
		if tk.Release < 0 || tk.Release > 60 {
			t.Errorf("task %d release %d", tk.ID, tk.Release)
		}
		if tk.Pos.X < 0 || tk.Pos.X > 50 || tk.Pos.Y < 0 || tk.Pos.Y > 50 {
			t.Errorf("task %d outside field: %v", tk.ID, tk.Pos)
		}
	}
	for _, c := range in.Chargers {
		if c.Pos.X < 0 || c.Pos.X > 50 || c.Pos.Y < 0 || c.Pos.Y > 50 {
			t.Errorf("charger %d outside field: %v", c.ID, c.Pos)
		}
	}
}

func TestSmallScaleRespectsTauConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	cfg := SmallScale()
	for trial := 0; trial < 20; trial++ {
		in := cfg.Generate(rng)
		if err := in.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(in.Chargers) != 5 || len(in.Tasks) != 10 {
			t.Fatalf("sizes wrong")
		}
		for _, tk := range in.Tasks {
			if tk.Duration() < 2*cfg.Params.Tau {
				t.Fatalf("duration %d < 2τ", tk.Duration())
			}
			if tk.Duration() > 5 {
				t.Fatalf("duration %d > 5", tk.Duration())
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	cfg := Default()
	a := cfg.Generate(rand.New(rand.NewSource(99)))
	b := cfg.Generate(rand.New(rand.NewSource(99)))
	for j := range a.Tasks {
		if a.Tasks[j] != b.Tasks[j] {
			t.Fatalf("task %d differs between identical seeds", j)
		}
	}
	c := cfg.Generate(rand.New(rand.NewSource(100)))
	same := true
	for j := range a.Tasks {
		if a.Tasks[j] != c.Tasks[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGaussianPlacementConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cfg := Default()
	cfg.Placement = Gaussian
	cfg.SigmaX, cfg.SigmaY = 2, 2
	in := cfg.Generate(rng)
	// With σ = 2 nearly all tasks should land within 10 m of the center.
	center := geom.Point{X: 25, Y: 25}
	far := 0
	for _, tk := range in.Tasks {
		if tk.Pos.Dist(center) > 10 {
			far++
		}
	}
	if far > len(in.Tasks)/20 {
		t.Errorf("%d/%d tasks far from center with σ=2", far, len(in.Tasks))
	}
	// Wide σ must spread tasks out.
	cfg.SigmaX, cfg.SigmaY = 50, 50
	in = cfg.Generate(rng)
	far = 0
	for _, tk := range in.Tasks {
		if tk.Pos.Dist(center) > 10 {
			far++
		}
	}
	if far < len(in.Tasks)/4 {
		t.Errorf("only %d/%d tasks far from center with σ=50", far, len(in.Tasks))
	}
}

func TestDeviceTowardBias(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	cfg := SmallScale()
	cfg.DeviceTowardBias = 1
	in := cfg.Generate(rng)
	for _, tk := range in.Tasks {
		// Every device must face its nearest charger exactly.
		bestD := math.Inf(1)
		var bestAz float64
		for _, c := range in.Chargers {
			if d := c.Pos.Dist(tk.Pos); d < bestD {
				bestD = d
				bestAz = geom.Azimuth(tk.Pos, c.Pos)
			}
		}
		if geom.AngDist(tk.Phi, bestAz) > 1e-9 {
			t.Fatalf("task %d φ=%v not facing nearest charger az=%v", tk.ID, tk.Phi, bestAz)
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	cfg := Default()
	cfg.ArrivalRate = 2 // ~2 tasks per slot
	in := cfg.Generate(rng)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Releases must be non-decreasing in task order (a point process).
	last := 0
	maxRel := 0
	for _, tk := range in.Tasks {
		if tk.Release < last {
			t.Fatalf("releases not ordered: %d after %d", tk.Release, last)
		}
		last = tk.Release
		if tk.Release > maxRel {
			maxRel = tk.Release
		}
	}
	// 200 tasks at rate 2/slot should span roughly 100 slots.
	if maxRel < 50 || maxRel > 200 {
		t.Errorf("Poisson span %d slots, expected ≈100", maxRel)
	}
	// A much lower rate must stretch the horizon accordingly.
	cfg.ArrivalRate = 0.5
	in2 := cfg.Generate(rand.New(rand.NewSource(86)))
	maxRel2 := 0
	for _, tk := range in2.Tasks {
		if tk.Release > maxRel2 {
			maxRel2 = tk.Release
		}
	}
	if maxRel2 <= maxRel {
		t.Errorf("rate 0.5 span %d not larger than rate 2 span %d", maxRel2, maxRel)
	}
}

func TestZeroReleaseMax(t *testing.T) {
	cfg := Default()
	cfg.ReleaseMax = 0
	in := cfg.Generate(rand.New(rand.NewSource(85)))
	for _, tk := range in.Tasks {
		if tk.Release != 0 {
			t.Fatalf("release = %d, want 0", tk.Release)
		}
	}
}
