// Package testbed models the paper's field experiments (§8) in software.
//
// The physical testbed consisted of Powercast TX91501 power transmitters
// mounted on rotatable platforms and rechargeable sensor nodes. The paper
// drives both its scheduling decisions and its analysis through the
// fitted analytic charging model with the empirical constants
//
//	α = 41.93, β = 0.6428, D = 4 m, A_s = 60°, A_o = 120°,
//	ρ = 1/12, τ = 1, w_j = 1/8 (1/20 on the large testbed), T_s = 1 min,
//
// so executing the same model in software exercises exactly the code paths
// the hardware experiment exercised (see DESIGN.md, substitution table).
// Power is in milliwatts and energy in millijoules. The paper states
// required energies of 3–5 J but does not publish per-task values; with
// the published α and one-minute slots the analytic model delivers roughly
// 0.5–1.8 J per covered slot at testbed distances, so 3–5 J would saturate
// within a couple of slots and every algorithm would tie at utility 1. We
// therefore scale the requirements (~9–17 J) to put the testbed in the
// contended regime the paper's Figs. 21/22/24/25 clearly operate in (per-
// task utilities spread well below 1). The comparison shape — who wins and
// by how much — is what the reproduction preserves.
//
// Topology 1 (Fig. 20): 8 transmitters on the boundary of a 2.4 m × 2.4 m
// square, 8 sensor nodes inside, one task per node. Tasks 1 and 6 (IDs 0
// and 5) have the two longest durations, which the paper calls out as the
// reason they reach the highest utility.
//
// Topology 2 (Fig. 23): 16 transmitters and 20 nodes, irregular; the paper
// generated it randomly, so we generate it from a fixed seed.
package testbed

import (
	"fmt"
	"math"
	"math/rand"

	"haste/internal/baseline"
	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/model"
	"haste/internal/online"
	"haste/internal/sim"
)

// params returns the hardware constants shared by both topologies.
func params() model.Params {
	return model.Params{
		Alpha: 41.93, Beta: 0.6428, Radius: 4,
		ChargeAngle:  geom.Deg(60),
		ReceiveAngle: geom.Deg(120),
		SlotSeconds:  60,
		Rho:          1.0 / 12,
		Tau:          1,
	}
}

// Topology1 returns the small testbed: 8 chargers on the boundary of the
// 2.4 m square, 8 sensor nodes inside. Positions, device orientations and
// task windows follow the layout style of Fig. 20; required energies lie
// in the paper's [3 J, 5 J] range.
func Topology1() *model.Instance {
	in := &model.Instance{Params: params()}
	// Transmitters: four corners and four edge midpoints.
	chargerPos := []geom.Point{
		{X: 0, Y: 0}, {X: 1.2, Y: 0}, {X: 2.4, Y: 0}, {X: 2.4, Y: 1.2},
		{X: 2.4, Y: 2.4}, {X: 1.2, Y: 2.4}, {X: 0, Y: 2.4}, {X: 0, Y: 1.2},
	}
	for i, p := range chargerPos {
		in.Chargers = append(in.Chargers, model.Charger{ID: i, Pos: p})
	}
	// Sensor nodes on a ring of radius 0.85 m around the field center,
	// one per 45° octant, each facing the bisector of its two nearest
	// transmitters so both fall inside its 120° receiving sector. That
	// gives the edge transmitters genuinely conflicting candidate nodes
	// (more than one dominant task set), which is what makes the testbed
	// scheduling problem non-trivial. Windows and required energies (mJ)
	// follow Fig. 20's style; tasks 0 and 5 carry the longest windows
	// (the paper's tasks 1 and 6, which it singles out as reaching the
	// top utilities thanks to their durations).
	windows := []struct {
		rel, end int
		energy   float64
	}{
		{0, 12, 14000}, // task 1: longest duration
		{1, 8, 13000},
		{2, 9, 16000},
		{1, 7, 11000},
		{3, 10, 15000},
		{0, 11, 12500}, // task 6: second-longest duration
		{4, 9, 12000},
		{2, 8, 17000},
	}
	center := geom.Point{X: 1.2, Y: 1.2}
	const ringRadius = 0.85
	for j, w := range windows {
		ringAngle := geom.Deg(22.5 + 45*float64(j))
		pos := center.Add(geom.UnitVec(ringAngle).Scale(ringRadius))
		in.Tasks = append(in.Tasks, model.Task{
			ID:      j,
			Pos:     pos,
			Phi:     bisectorToNearestTwo(pos, chargerPos),
			Release: w.rel,
			End:     w.end,
			Energy:  w.energy,
			Weight:  1.0 / 8,
		})
	}
	return in
}

// bisectorToNearestTwo returns the circular midpoint of the azimuths from
// pos to its two nearest chargers — the device orientation that keeps both
// inside a 120° receiving sector.
func bisectorToNearestTwo(pos geom.Point, chargers []geom.Point) float64 {
	best, second := -1, -1
	for i, c := range chargers {
		d := pos.Dist(c)
		switch {
		case best < 0 || d < pos.Dist(chargers[best]):
			second = best
			best = i
		case second < 0 || d < pos.Dist(chargers[second]):
			second = i
		}
	}
	a := geom.Azimuth(pos, chargers[best])
	b := geom.Azimuth(pos, chargers[second])
	// Circular midpoint via the half-way rotation from a toward b.
	diff := geom.NormalizeAngle(b - a)
	if diff > math.Pi {
		diff -= geom.TwoPi
	}
	return geom.NormalizeAngle(a + diff/2)
}

// Topology2 returns the large testbed: 16 transmitters and 20 sensor
// nodes on a 4.8 m square, generated from a fixed seed (the paper
// generated its large topology randomly, too).
func Topology2() *model.Instance {
	rng := rand.New(rand.NewSource(20180814)) // ICPP'18 vintage
	in := &model.Instance{Params: params()}
	const side = 4.8
	for i := 0; i < 16; i++ {
		in.Chargers = append(in.Chargers, model.Charger{
			ID:  i,
			Pos: geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side},
		})
	}
	for j := 0; j < 20; j++ {
		pos := geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		// Face a random charger so most tasks are chargeable, as in a
		// deployed testbed where nodes are oriented toward transmitters.
		target := in.Chargers[rng.Intn(len(in.Chargers))].Pos
		rel := rng.Intn(4)
		in.Tasks = append(in.Tasks, model.Task{
			ID:      j,
			Pos:     pos,
			Phi:     geom.Azimuth(pos, target),
			Release: rel,
			End:     rel + 4 + rng.Intn(8),
			Energy:  9000 + rng.Float64()*8000,
			Weight:  1.0 / 20,
		})
	}
	return in
}

// Mode selects the scheduling scenario.
type Mode int

const (
	// Offline: all tasks known a priori, centralized Algorithm 2.
	Offline Mode = iota
	// Online: tasks arrive at release time, distributed Algorithm 3.
	Online
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Online {
		return "online"
	}
	return "offline"
}

// Comparison holds the per-task utilities of the three algorithms on one
// topology — the content of Figs. 21/22 (Topology 1) and 24/25
// (Topology 2).
type Comparison struct {
	Mode          Mode
	HASTE         []float64 // per-task utility, HASTE with C = 4
	GreedyUtility []float64
	GreedyCover   []float64
	HASTETotal    float64
	UtilityTotal  float64
	CoverTotal    float64
}

// Compare runs HASTE (C = 4), GreedyUtility and GreedyCover on the
// instance in the given mode and reports per-task utilities.
func Compare(in *model.Instance, mode Mode, seed int64) (Comparison, error) {
	p, err := core.NewProblem(in)
	if err != nil {
		return Comparison{}, fmt.Errorf("testbed: %w", err)
	}
	c := Comparison{Mode: mode}

	var haste sim.Outcome
	if mode == Offline {
		res := core.TabularGreedy(p, core.Options{
			Colors: 4, PreferStay: true, Rng: rand.New(rand.NewSource(seed)),
		})
		haste = sim.Execute(p, res.Schedule)
	} else {
		on, err := online.Run(p, online.Options{Colors: 4, Seed: seed})
		if err != nil {
			return Comparison{}, fmt.Errorf("testbed: %w", err)
		}
		haste = on.Outcome
	}
	c.HASTE = haste.PerTask
	c.HASTETotal = haste.Utility

	var gu, gc sim.Outcome
	if mode == Offline {
		gu = sim.Execute(p, baseline.GreedyUtility(p))
		gc = sim.Execute(p, baseline.GreedyCover(p))
	} else {
		gu = sim.Execute(p, baseline.GreedyUtilityOnline(p))
		gc = sim.Execute(p, baseline.GreedyCoverOnline(p))
	}
	c.GreedyUtility, c.UtilityTotal = gu.PerTask, gu.Utility
	c.GreedyCover, c.CoverTotal = gc.PerTask, gc.Utility
	return c, nil
}
