package testbed

import (
	"sort"
	"testing"

	"haste/internal/core"
	"haste/internal/model"
)

func TestTopologiesValid(t *testing.T) {
	for name, in := range map[string]interface{ Validate() error }{
		"Topology1": Topology1(),
		"Topology2": Topology2(),
	} {
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTopology1Shape(t *testing.T) {
	in := Topology1()
	if len(in.Chargers) != 8 || len(in.Tasks) != 8 {
		t.Fatalf("sizes: %d chargers, %d tasks", len(in.Chargers), len(in.Tasks))
	}
	for _, tk := range in.Tasks {
		// Scaled contended-regime requirements (see package comment).
		if tk.Energy < 9000 || tk.Energy > 17000 {
			t.Errorf("task %d energy %v outside the scaled [9,17] J range", tk.ID, tk.Energy)
		}
		if tk.Weight != 1.0/8 {
			t.Errorf("task %d weight %v", tk.ID, tk.Weight)
		}
	}
	// Every task must be chargeable by at least one transmitter —
	// otherwise the testbed layout is broken.
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := range in.Tasks {
		reachable := false
		for i := range in.Chargers {
			if p.SlotEnergy(i, j) > 0 {
				reachable = true
				break
			}
		}
		if !reachable {
			t.Errorf("task %d unreachable by every charger", j)
		}
	}
}

func TestTopology2Shape(t *testing.T) {
	in := Topology2()
	if len(in.Chargers) != 16 || len(in.Tasks) != 20 {
		t.Fatalf("sizes: %d chargers, %d tasks", len(in.Chargers), len(in.Tasks))
	}
	// Deterministic: two calls give identical instances.
	b := Topology2()
	for j := range in.Tasks {
		if in.Tasks[j] != b.Tasks[j] {
			t.Fatal("Topology2 not deterministic")
		}
	}
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	reachable := 0
	for j := range in.Tasks {
		for i := range in.Chargers {
			if p.SlotEnergy(i, j) > 0 {
				reachable++
				break
			}
		}
	}
	if reachable < 15 {
		t.Errorf("only %d/20 tasks reachable", reachable)
	}
}

func TestCompareModes(t *testing.T) {
	for _, mode := range []Mode{Offline, Online} {
		for name, in := range map[string]*model.Instance{"T1": Topology1(), "T2": Topology2()} {
			c, err := Compare(in, mode, 1)
			if err != nil {
				t.Fatalf("%s %s: %v", name, mode, err)
			}
			if len(c.HASTE) != len(c.GreedyUtility) || len(c.HASTE) != len(c.GreedyCover) {
				t.Fatalf("%s %s: per-task slices differ in length", name, mode)
			}
			for j, u := range c.HASTE {
				if u < 0 || u > 1+1e-9 {
					t.Errorf("%s %s task %d HASTE utility %v out of range", name, mode, j, u)
				}
			}
			// The paper's headline: HASTE beats both baselines in total.
			if c.HASTETotal < c.UtilityTotal-1e-9 {
				t.Errorf("%s %s: HASTE %v < GreedyUtility %v", name, mode, c.HASTETotal, c.UtilityTotal)
			}
			if c.HASTETotal < c.CoverTotal-1e-9 {
				t.Errorf("%s %s: HASTE %v < GreedyCover %v", name, mode, c.HASTETotal, c.CoverTotal)
			}
		}
	}
}

// The paper notes tasks 1 and 6 (IDs 0 and 5) achieve the two highest
// utilities on Topology 1 thanks to their long durations.
func TestTopology1LongTasksWin(t *testing.T) {
	c, err := Compare(Topology1(), Offline, 1)
	if err != nil {
		t.Fatal(err)
	}
	type tu struct {
		id int
		u  float64
	}
	all := make([]tu, len(c.HASTE))
	for j, u := range c.HASTE {
		all[j] = tu{j, u}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].u > all[b].u })
	top2 := map[int]bool{all[0].id: true, all[1].id: true}
	if !top2[0] && !top2[5] {
		t.Errorf("expected task 0 or 5 among top-2 utilities, got %v", all[:2])
	}
}

func TestModeString(t *testing.T) {
	if Offline.String() != "offline" || Online.String() != "online" {
		t.Error("Mode.String wrong")
	}
}
