package haste_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"haste/internal/core"
	"haste/internal/workload"
)

// TestFleetScaleShardedEquivalence pins the beyond-paper-scale headline:
// on the clustered 10⁴-task fleet (the BenchmarkFleetScaleSharded
// instance) the shard-and-stitch run reproduces the monolithic relaxed
// utility exactly, one schedule per schedulable component. The general
// contract — bit-identical assigned cells, -1 padding past each
// component's horizon — is proven by internal/difftest's sharded sweep;
// this test keeps the large-scale path itself exercised by tier-1.
func TestFleetScaleShardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-task compile is ~0.5s; skipped under -short")
	}
	in := workload.FleetScale(10_000).Generate(rand.New(rand.NewSource(1)))
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	mono := core.TabularGreedy(p, core.Options{Colors: 1, PreferStay: true, Workers: 1, Shard: core.ShardOff})
	sharded := core.TabularGreedy(p, core.Options{Colors: 1, PreferStay: true, Workers: 4, Shard: core.ShardOn})
	if sharded.RUtility != mono.RUtility {
		t.Fatalf("sharded utility %v != monolithic %v", sharded.RUtility, mono.RUtility)
	}
	if want := p.SchedulableComponents(); sharded.Shards != want {
		t.Fatalf("shards = %d, want %d schedulable components", sharded.Shards, want)
	}
	if sharded.Shards < 200 {
		t.Fatalf("only %d schedulable components — fleet workload drifted", sharded.Shards)
	}
}

// TestFleetScale100k is the sparse-compile smoke: the full monolithic
// Problem at 10⁵ tasks must compile in a heap far below the ~10 GB the
// dense n×m table used to take (n = 12,500 chargers ⇒ 1.25·10⁹ float64
// cells), and the instance-direct sharded run must then schedule it. CI
// runs this under GOMEMLIMIT as a regression tripwire against any dense
// allocation sneaking back into the compile path.
func TestFleetScale100k(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-task compile+schedule is seconds; skipped under -short")
	}
	in := workload.FleetScale(100_000).Generate(rand.New(rand.NewSource(1)))
	start := time.Now()
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	compile := time.Since(start)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 1500<<20 {
		t.Fatalf("heap after 10⁵-task compile is %d MiB — dense-scale allocation crept back in", ms.HeapAlloc>>20)
	}
	start = time.Now()
	res, err := core.ScheduleSharded(in, core.Options{Colors: 1, PreferStay: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := p.SchedulableComponents(); res.Shards != want {
		t.Fatalf("shards = %d, want %d schedulable components", res.Shards, want)
	}
	if res.RUtility <= 0 {
		t.Fatalf("scheduled 10⁵-task fleet delivered utility %v", res.RUtility)
	}
	t.Logf("10⁵ tasks: compile %v (heap %d MiB), schedule %v, %d shards, utility %.2f",
		compile.Round(time.Millisecond), ms.HeapAlloc>>20, time.Since(start).Round(time.Millisecond), res.Shards, res.RUtility)
}

// TestFleetScaleMillionEndToEnd is the headline the sparse compile was
// built for: a 10⁶-task, 125,000-charger clustered fleet scheduled end to
// end — generation, sparse decomposition, per-component compilation and
// TabularGreedy, stitching — in one process. The dense-era compile would
// have needed a ~1 TB slot-energy table before the first greedy step;
// here every component's compiled form is transient and peak memory stays
// near the instance itself.
func TestFleetScaleMillionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁶-task end-to-end run takes tens of seconds; skipped under -short")
	}
	const numTasks = 1_000_000
	in := workload.FleetScale(numTasks).Generate(rand.New(rand.NewSource(1)))
	start := time.Now()
	res, err := core.ScheduleSharded(in, core.Options{Colors: 1, PreferStay: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Each of the isolated clusters holds 5 chargers, so it yields between
	// one and five schedulable components; far fewer shards than clusters
	// would mean clusters merged, far more that coverage degenerated.
	clusters := (numTasks + 39) / 40
	if res.Shards < clusters/2 || res.Shards > 5*clusters {
		t.Fatalf("shards = %d for %d isolated clusters — decomposition degenerated", res.Shards, clusters)
	}
	// Utility sanity: strictly positive and bounded by Σ_j w_j (U ≤ 1 per
	// task; the fleet workload keeps the paper's w_j = 1/m convention, so
	// the bound is 1).
	if res.RUtility <= 0 || res.RUtility > in.TotalWeight() {
		t.Fatalf("10⁶-task utility out of range: %v (total weight %v)", res.RUtility, in.TotalWeight())
	}
	assigned := 0
	for _, row := range res.Schedule.Policy {
		for _, pol := range row {
			if pol >= 0 {
				assigned++
			}
		}
	}
	if assigned == 0 {
		t.Fatal("no schedule cell assigned")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("10⁶ tasks: scheduled in %v, %d shards, utility %.2f, Go heap sys %d MiB (dense table alone would be %d GiB)",
		elapsed.Round(time.Millisecond), res.Shards, res.RUtility, ms.HeapSys>>20, (uint64(len(in.Chargers))*numTasks*8)>>30)
}
