package haste_test

import (
	"math/rand"
	"testing"

	"haste/internal/core"
	"haste/internal/workload"
)

// TestFleetScaleShardedEquivalence pins the beyond-paper-scale headline:
// on the clustered 10⁴-task fleet (the BenchmarkFleetScaleSharded
// instance) the shard-and-stitch run reproduces the monolithic relaxed
// utility exactly, one schedule per schedulable component. The general
// contract — bit-identical assigned cells, -1 padding past each
// component's horizon — is proven by internal/difftest's sharded sweep;
// this test keeps the large-scale path itself exercised by tier-1.
func TestFleetScaleShardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-task compile is ~0.5s; skipped under -short")
	}
	in := workload.FleetScale(10_000).Generate(rand.New(rand.NewSource(1)))
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	mono := core.TabularGreedy(p, core.Options{Colors: 1, PreferStay: true, Workers: 1, Shard: core.ShardOff})
	sharded := core.TabularGreedy(p, core.Options{Colors: 1, PreferStay: true, Workers: 4, Shard: core.ShardOn})
	if sharded.RUtility != mono.RUtility {
		t.Fatalf("sharded utility %v != monolithic %v", sharded.RUtility, mono.RUtility)
	}
	if want := p.SchedulableComponents(); sharded.Shards != want {
		t.Fatalf("shards = %d, want %d schedulable components", sharded.Shards, want)
	}
	if sharded.Shards < 200 {
		t.Fatalf("only %d schedulable components — fleet workload drifted", sharded.Shards)
	}
}
