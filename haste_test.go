package haste_test

import (
	"math"
	"math/rand"
	"testing"

	"haste"
)

// End-to-end through the public facade: generate, schedule, simulate.
func TestFacadeOfflineRoundTrip(t *testing.T) {
	cfg := haste.SmallScaleWorkload()
	in := cfg.Generate(rand.New(rand.NewSource(1)))
	p, err := haste.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	res := haste.ScheduleOffline(p, haste.DefaultOptions(1))
	out := haste.Simulate(p, res.Schedule)
	if out.Utility <= 0 || out.Utility > 1+1e-9 {
		t.Fatalf("utility out of range: %v", out.Utility)
	}
	if out.Utility > res.RUtility+1e-9 {
		t.Fatalf("physical %v exceeds relaxed %v", out.Utility, res.RUtility)
	}
	if rel := haste.Evaluate(p, res.Schedule); math.Abs(rel-res.RUtility) > 1e-9 {
		t.Fatalf("Evaluate %v != RUtility %v", rel, res.RUtility)
	}
}

func TestFacadeOnlineAndBaselines(t *testing.T) {
	cfg := haste.SmallScaleWorkload()
	cfg.NumChargers, cfg.NumTasks = 4, 8
	in := cfg.Generate(rand.New(rand.NewSource(2)))
	p, err := haste.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	on, err := haste.RunOnline(p, haste.OnlineOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if on.Outcome.Utility < 0 || on.Outcome.Utility > 1+1e-9 {
		t.Fatalf("online utility out of range: %v", on.Outcome.Utility)
	}
	gu := haste.Simulate(p, haste.GreedyUtility(p))
	gc := haste.Simulate(p, haste.GreedyCover(p))
	if gu.Utility < 0 || gc.Utility < 0 {
		t.Fatal("baseline utilities negative")
	}
}

func TestFacadeManualInstance(t *testing.T) {
	in := &haste.Instance{
		Chargers: []haste.Charger{{ID: 0, Pos: haste.Point{X: 0, Y: 0}}},
		Tasks: []haste.Task{{
			ID: 0, Pos: haste.Point{X: 10, Y: 0}, Phi: math.Pi,
			Release: 0, End: 2, Energy: 480, Weight: 1,
		}},
		Params: haste.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: haste.Deg(60), ReceiveAngle: haste.Deg(60),
			SlotSeconds: 60, Rho: 0, Tau: 0,
		},
	}
	p, err := haste.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	res := haste.ScheduleOffline(p, haste.DefaultOptions(1))
	if math.Abs(res.RUtility-1) > 1e-9 {
		t.Fatalf("RUtility = %v, want 1", res.RUtility)
	}
}
