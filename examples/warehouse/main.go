// Warehouse scenario: the paper's introduction motivates static
// directional chargers with deployments like asset-tracker charging in
// warehouses (cf. the Ossia/T-Mobile/Walmart pilot it cites). Sensor tags
// cluster around a few aisles — a strongly non-uniform, Gaussian-like
// placement — and the chargers must coordinate or the cluster cores get
// over-charged while the fringes starve (the §7.5 insight, Fig. 17).
//
// This example compares HASTE against the uncoordinated baselines on two
// aisle clusters and shows the coordination gap.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"math/rand"

	"haste"
	"haste/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Two aisles: tasks cluster around x = 12 and x = 38.
	cfg := workload.Default()
	cfg.NumChargers = 24
	cfg.NumTasks = 0 // tasks added manually below
	in := cfg.Generate(rng)

	aisles := []haste.Point{{X: 12, Y: 25}, {X: 38, Y: 25}}
	const tasksPerAisle = 40
	id := 0
	for _, aisle := range aisles {
		acfg := workload.Default()
		acfg.NumChargers = 0
		acfg.NumTasks = tasksPerAisle
		acfg.Placement = workload.Gaussian
		acfg.MuX, acfg.MuY = aisle.X, aisle.Y
		acfg.SigmaX, acfg.SigmaY = 4, 10
		acfg.Weight = 1.0 / (tasksPerAisle * float64(len(aisles)))
		sub := acfg.Generate(rng)
		for _, t := range sub.Tasks {
			t.ID = id
			in.Tasks = append(in.Tasks, t)
			id++
		}
	}

	p, err := haste.NewProblem(in)
	if err != nil {
		log.Fatal(err)
	}

	res := haste.ScheduleOffline(p, haste.DefaultOptions(4))
	hasteOut := haste.Simulate(p, res.Schedule)
	guOut := haste.Simulate(p, haste.GreedyUtility(p))
	gcOut := haste.Simulate(p, haste.GreedyCover(p))

	fmt.Printf("warehouse: %d chargers, %d clustered tasks, horizon %d min\n\n",
		len(in.Chargers), len(in.Tasks), p.K)
	fmt.Printf("%-22s %8s %10s\n", "algorithm", "utility", "switches")
	fmt.Printf("%-22s %8.4f %10d\n", "HASTE (C=4)", hasteOut.Utility, hasteOut.Switches)
	fmt.Printf("%-22s %8.4f %10d\n", "GreedyUtility", guOut.Utility, guOut.Switches)
	fmt.Printf("%-22s %8.4f %10d\n", "GreedyCover", gcOut.Utility, gcOut.Switches)

	// Starvation analysis: how many tasks ended below 25% of their need?
	starved := func(out haste.Outcome) int {
		n := 0
		for _, u := range out.PerTask {
			if u < 0.25 {
				n++
			}
		}
		return n
	}
	fmt.Printf("\nstarved tasks (<25%% charged): HASTE %d, GreedyUtility %d, GreedyCover %d\n",
		starved(hasteOut), starved(guOut), starved(gcOut))
}
