// Small-scale optimality check: on instances tiny enough for an exact
// solver, compare the greedy schedulers against the true optimum and the
// paper's proven bounds — Theorem 5.1's (1−ρ)(1−1/e) for the centralized
// offline algorithm and Theorem 6.1's ½(1−ρ)(1−1/e) for the distributed
// online one. The paper reports ≥ 92.97 % empirically; greedy is far
// better in practice than its worst case.
//
//	go run ./examples/smallscale
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"haste"
	"haste/internal/opt"
)

func main() {
	offBound := (1 - 1.0/12) * (1 - 1/math.E)
	onBound := offBound / 2
	fmt.Printf("theoretical floors: offline %.3f, online %.3f\n\n", offBound, onBound)
	fmt.Printf("%4s %8s %9s %9s %9s %9s\n", "seed", "OPT", "offline", "off/OPT", "online", "on/OPT")

	var worstOff, worstOn = 1.0, 1.0
	for seed := int64(1); seed <= 8; seed++ {
		cfg := haste.SmallScaleWorkload()
		in := cfg.Generate(rand.New(rand.NewSource(seed)))
		p, err := haste.NewProblem(in)
		if err != nil {
			log.Fatal(err)
		}

		sol, err := opt.Solve(p, opt.Options{})
		if err != nil {
			fmt.Printf("%4d  (instance too large to certify: %v)\n", seed, err)
			continue
		}
		off := haste.Simulate(p, haste.ScheduleOffline(p, haste.DefaultOptions(1)).Schedule)
		onRes, err := haste.RunOnline(p, haste.OnlineOptions{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		on := onRes.Outcome

		ro, rn := off.Utility/sol.Utility, on.Utility/sol.Utility
		if ro < worstOff {
			worstOff = ro
		}
		if rn < worstOn {
			worstOn = rn
		}
		fmt.Printf("%4d %8.4f %9.4f %9.4f %9.4f %9.4f\n",
			seed, sol.Utility, off.Utility, ro, on.Utility, rn)
	}
	fmt.Printf("\nworst observed ratios: offline %.4f (bound %.3f), online %.4f (bound %.3f)\n",
		worstOff, offBound, worstOn, onBound)
}
