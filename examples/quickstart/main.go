// Quickstart: build a tiny directional charger network by hand, schedule
// it with the centralized offline algorithm and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"haste"
)

func main() {
	// Two chargers guarding a corridor and three rechargeable devices.
	// Distances in meters, energies in joules, angles in radians, one
	// time slot = one minute.
	in := &haste.Instance{
		Chargers: []haste.Charger{
			{ID: 0, Pos: haste.Point{X: 0, Y: 0}},
			{ID: 1, Pos: haste.Point{X: 30, Y: 0}},
		},
		Tasks: []haste.Task{
			// A sensor between the chargers, facing charger 0.
			{ID: 0, Pos: haste.Point{X: 12, Y: 1}, Phi: math.Pi,
				Release: 0, End: 20, Energy: 4000, Weight: 1.0 / 3},
			// A sensor above charger 0, facing down at it.
			{ID: 1, Pos: haste.Point{X: 1, Y: 14}, Phi: -math.Pi / 2,
				Release: 5, End: 25, Energy: 3000, Weight: 1.0 / 3},
			// A sensor left of charger 1, facing it.
			{ID: 2, Pos: haste.Point{X: 18, Y: -2}, Phi: 0,
				Release: 10, End: 30, Energy: 5000, Weight: 1.0 / 3},
		},
		Params: haste.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle:  haste.Deg(60),
			ReceiveAngle: haste.Deg(120),
			SlotSeconds:  60,
			Rho:          1.0 / 12, // 5 s of a 1-min slot lost per rotation
			Tau:          1,
		},
	}

	p, err := haste.NewProblem(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dominant task sets per charger (Algorithm 1):")
	for i, gamma := range p.Gamma {
		fmt.Printf("  charger %d: %v\n", i, gamma)
	}

	// Schedule offline with the default color count (C = 1, the locally
	// greedy scheduler) and simulate the execution with switching delay.
	res := haste.ScheduleOffline(p, haste.DefaultOptions(1))
	out := haste.Simulate(p, res.Schedule)

	fmt.Printf("\nrelaxed objective (HASTE-R): %.4f\n", res.RUtility)
	fmt.Printf("physical utility (with ρ):   %.4f over %d switches\n", out.Utility, out.Switches)
	for j, t := range in.Tasks {
		fmt.Printf("  task %d: harvested %6.0f J of %6.0f J → utility %.3f\n",
			j, out.Energy[j], t.Energy, out.PerTask[j])
	}

	// The theoretical floor from Theorem 5.1: (1−ρ)(1−1/e) of optimum,
	// and the relaxed objective upper-bounds the optimum here.
	fmt.Printf("\nguarantee check: physical ≥ (1−ρ)·relaxed? %.4f ≥ %.4f\n",
		out.Utility, (1-in.Params.Rho)*res.RUtility)
}
