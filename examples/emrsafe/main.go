// EMR-safe charging: the safe-charging line of work the HASTE paper builds
// on (refs. [42]–[50]) caps the electromagnetic radiation intensity at
// every point of the field. This example sweeps the safety threshold and
// shows the utility/safety trade-off of the EMR-constrained greedy
// scheduler, plus what an audit of the unconstrained schedule would find.
//
//	go run ./examples/emrsafe
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"haste"
	"haste/internal/emr"
	"haste/internal/workload"
)

func main() {
	cfg := workload.Default()
	cfg.NumChargers = 16
	cfg.NumTasks = 60
	cfg.FieldSide = 30
	cfg.DurationMin, cfg.DurationMax = 8, 30
	cfg.ReleaseMax = 10
	in := cfg.Generate(rand.New(rand.NewSource(11)))

	p, err := haste.NewProblem(in)
	if err != nil {
		log.Fatal(err)
	}
	grid := emr.Grid(cfg.FieldSide, 2.5)

	// First: what does the unconstrained scheduler expose people to?
	free := haste.ScheduleOffline(p, haste.DefaultOptions(1))
	audit := emr.Field{Points: grid, Gamma: 1, Limit: math.Inf(1)}
	peak, _ := audit.Audit(p, free.Schedule)
	fmt.Printf("unconstrained: utility %.4f, peak EMR intensity %.2f\n\n", free.RUtility, peak)

	fmt.Printf("%-12s %10s %10s %12s\n", "EMR limit", "utility", "peak", "vs free (%)")
	for _, frac := range []float64{1.0, 0.75, 0.5, 0.25, 0.1} {
		f := emr.Field{Points: grid, Gamma: 1, Limit: frac * peak}
		res := emr.ConstrainedGreedy(p, f)
		u, _ := emr.ExecuteOff(p, res.Schedule)
		gotPeak, viol := f.Audit(p, res.Schedule)
		if viol != 0 {
			log.Fatalf("constraint violated %d times at limit %.2f", viol, f.Limit)
		}
		fmt.Printf("%-12.2f %10.4f %10.2f %12.1f\n",
			f.Limit, u, gotPeak, 100*u/free.RUtility)
	}
	fmt.Println("\nevery row is certified violation-free by the audit")
}
