// Online scenario: urgent charging requests arrive unpredictably (the
// paper's motivating case for static chargers over mobile ones — a mobile
// charger would have to travel; a static directional charger just turns).
// The distributed online algorithm renegotiates orientations with its
// neighbors on every arrival, paying the rescheduling delay τ and the
// switching delay ρ.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"
	"math/rand"

	"haste"
	"haste/internal/workload"
)

func main() {
	cfg := workload.Default()
	cfg.NumChargers = 16
	cfg.NumTasks = 50
	cfg.FieldSide = 35
	cfg.DurationMin, cfg.DurationMax = 8, 40
	cfg.ReleaseMax = 30 // requests trickle in over half an hour
	cfg.EnergyMin, cfg.EnergyMax = 3e3, 10e3

	in := cfg.Generate(rand.New(rand.NewSource(7)))
	p, err := haste.NewProblem(in)
	if err != nil {
		log.Fatal(err)
	}

	res, err := haste.RunOnline(p, haste.OnlineOptions{Colors: 1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("online run: %d chargers, %d tasks arriving over %d slots (τ=%d)\n\n",
		len(in.Chargers), len(in.Tasks), cfg.ReleaseMax, in.Params.Tau)
	fmt.Println("negotiations (arrival slot → traffic):")
	for _, n := range res.Stats.Negotiations {
		if n.Messages == 0 {
			continue
		}
		fmt.Printf("  slot %2d: %2d arrivals → %4d msgs in %3d rounds over %3d sessions\n",
			n.Slot, n.NewTasks, n.Messages, n.Rounds, n.Sessions)
	}
	fmt.Printf("\ntotals: %d control messages, %d rounds\n",
		res.Stats.TotalMessages(), res.Stats.TotalRounds())
	fmt.Printf("charging utility: %.4f (max %.1f), %d orientation switches\n",
		res.Outcome.Utility, in.TotalWeight(), res.Outcome.Switches)

	// Contrast with the clairvoyant offline schedule on the same tasks.
	off := haste.ScheduleOffline(p, haste.DefaultOptions(1))
	offOut := haste.Simulate(p, off.Schedule)
	fmt.Printf("\noffline (clairvoyant) utility: %.4f → online achieves %.1f%% of it\n",
		offOut.Utility, 100*res.Outcome.Utility/offOut.Utility)
}
