package haste_test

import (
	"math"
	"math/rand"
	"testing"

	"haste"
	"haste/internal/baseline"
	"haste/internal/core"
	"haste/internal/online"
	"haste/internal/sim"
	"haste/internal/workload"
)

// Full paper-scale integration run (§7.1: 50 chargers, 200 tasks): all
// four algorithms plus the distributed online run on one instance, with
// the qualitative relations the paper reports asserted end to end.
// Skipped under -short.
func TestPaperScalePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale pipeline skipped in -short mode")
	}
	in := workload.Default().Generate(rand.New(rand.NewSource(2026)))
	p, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}

	r1 := core.TabularGreedy(p, core.DefaultOptions(1))
	h1 := sim.Execute(p, r1.Schedule)
	r4 := core.TabularGreedy(p, core.Options{Colors: 4, PreferStay: true,
		Rng: rand.New(rand.NewSource(1))})
	h4 := sim.Execute(p, r4.Schedule)
	gu := sim.Execute(p, baseline.GreedyUtility(p))
	gc := sim.Execute(p, baseline.GreedyCover(p))
	on, err := online.Run(p, online.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("offline C1=%.4f C4=%.4f GU=%.4f GC=%.4f online=%.4f (msgs=%d)",
		h1.Utility, h4.Utility, gu.Utility, gc.Utility,
		on.Outcome.Utility, on.Stats.TotalMessages())

	// The paper's ordering claims at default parameters.
	if h1.Utility <= gu.Utility {
		t.Errorf("HASTE C1 %.4f should beat GreedyUtility %.4f", h1.Utility, gu.Utility)
	}
	if h1.Utility <= gc.Utility {
		t.Errorf("HASTE C1 %.4f should beat GreedyCover %.4f", h1.Utility, gc.Utility)
	}
	// Theorem 5.1's switching-delay accounting.
	if h1.Utility < (1-in.Params.Rho)*r1.RUtility-1e-9 {
		t.Errorf("physical %.4f below (1−ρ)·relaxed %.4f", h1.Utility, (1-in.Params.Rho)*r1.RUtility)
	}
	// Online loses to clairvoyant offline but stays in its ballpark.
	if on.Outcome.Utility > h1.Utility+0.02 {
		t.Errorf("online %.4f implausibly above offline %.4f", on.Outcome.Utility, h1.Utility)
	}
	if on.Outcome.Utility < 0.75*h1.Utility {
		t.Errorf("online %.4f collapsed versus offline %.4f", on.Outcome.Utility, h1.Utility)
	}
	// Negotiations happened and messages flowed.
	if on.Stats.TotalMessages() == 0 || len(on.Stats.Negotiations) == 0 {
		t.Error("online run produced no communication")
	}
	// Every utility bounded by the total weight.
	for name, u := range map[string]float64{
		"C1": h1.Utility, "C4": h4.Utility, "GU": gu.Utility, "GC": gc.Utility,
		"online": on.Outcome.Utility,
	} {
		if u < 0 || u > in.TotalWeight()+1e-9 || math.IsNaN(u) {
			t.Errorf("%s utility out of range: %v", name, u)
		}
	}
}

// The facade and the internals must agree on the same instance.
func TestFacadeMatchesInternals(t *testing.T) {
	cfg := haste.SmallScaleWorkload()
	in := cfg.Generate(rand.New(rand.NewSource(5)))
	pf, err := haste.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := core.NewProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	uf := haste.ScheduleOffline(pf, haste.DefaultOptions(1)).RUtility
	ui := core.TabularGreedy(pi, core.DefaultOptions(1)).RUtility
	if math.Abs(uf-ui) > 1e-12 {
		t.Fatalf("facade %v != internals %v", uf, ui)
	}
}
