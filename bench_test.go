// Benchmarks: one per reproduced table/figure (BenchmarkFigNN regenerates
// the corresponding experiment series at smoke scale — run
// `go run ./cmd/haste run --fig figNN --reps 100` for paper-fidelity
// numbers), plus micro-benchmarks of the algorithmic kernels and the
// ablation benches called out in DESIGN.md §7.
package haste_test

import (
	"fmt"
	"math/rand"
	"testing"

	"haste"
	"haste/internal/core"
	"haste/internal/dominant"
	"haste/internal/emr"
	"haste/internal/experiments"
	"haste/internal/model"
	"haste/internal/online"
	"haste/internal/opt"
	"haste/internal/sim"
	"haste/internal/workload"
)

// --- figure benches -------------------------------------------------------

func benchFigure(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Reps: 1, Seed: 1, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04(b *testing.B) { benchFigure(b, "fig4") }
func BenchmarkFig05(b *testing.B) { benchFigure(b, "fig5") }
func BenchmarkFig06(b *testing.B) { benchFigure(b, "fig6") }
func BenchmarkFig07(b *testing.B) { benchFigure(b, "fig7") }
func BenchmarkFig08(b *testing.B) { benchFigure(b, "fig8") }
func BenchmarkFig09(b *testing.B) { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchFigure(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchFigure(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchFigure(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchFigure(b, "fig18") }
func BenchmarkFig21(b *testing.B) { benchFigure(b, "fig21") }
func BenchmarkFig22(b *testing.B) { benchFigure(b, "fig22") }
func BenchmarkFig24(b *testing.B) { benchFigure(b, "fig24") }
func BenchmarkFig25(b *testing.B) { benchFigure(b, "fig25") }

// --- kernel benches -------------------------------------------------------

// paperScaleProblem builds one §7.1-scale instance (50 chargers, 200
// tasks).
func paperScaleProblem(b *testing.B) *core.Problem {
	b.Helper()
	in := workload.Default().Generate(rand.New(rand.NewSource(1)))
	p, err := core.NewProblem(in)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// midScaleProblem is small enough for the quadratic eager greedy.
func midScaleProblem(b *testing.B) *core.Problem {
	b.Helper()
	cfg := workload.Default()
	cfg.NumChargers, cfg.NumTasks = 12, 40
	cfg.DurationMin, cfg.DurationMax = 5, 20
	cfg.ReleaseMax = 10
	in := cfg.Generate(rand.New(rand.NewSource(2)))
	p, err := core.NewProblem(in)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkDominantExtractAll(b *testing.B) {
	in := workload.Default().Generate(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dominant.ExtractAll(in)
	}
}

// BenchmarkNewProblem measures the full compile — validation, grid-fed
// sparse rows, dominant extraction, kernel — across three scales: the
// paper's §7.1/Fig. 4 instance and the clustered fleet at 10⁴ and 10⁵
// tasks. Run with -benchmem: bytes/op is the headline, since the sparse
// rows replaced a dense n×m float64 table that would cost n·m·8 bytes
// (212 MB at 10⁴, ~10 GB at 10⁵) before dominant extraction even starts.
// BENCH_core.json's "compile" section records the numbers.
func BenchmarkNewProblem(b *testing.B) {
	for _, cfg := range []struct {
		name string
		gen  func() *model.Instance
	}{
		{"fig4", func() *model.Instance {
			return workload.Default().Generate(rand.New(rand.NewSource(1)))
		}},
		{"fleet1e4", func() *model.Instance {
			return workload.FleetScale(10_000).Generate(rand.New(rand.NewSource(1)))
		}},
		{"fleet1e5", func() *model.Instance {
			return workload.FleetScale(100_000).Generate(rand.New(rand.NewSource(1)))
		}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			in := cfg.gen()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewProblem(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMarginalEvaluation measures one Marginal call on the §7.1-scale
// instance — the innermost operation of every scheduler. The flat
// sub-bench runs the compiled kernel (the production path), generic the
// interface-dispatch fallback the kernel replaced; both must be 0 allocs/op
// (internal/core's TestMarginalPathsAllocationFree pins the flat path).
func BenchmarkMarginalEvaluation(b *testing.B) {
	for _, cfg := range []struct {
		name string
		flat bool
	}{{"flat", true}, {"generic", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			p := paperScaleProblem(b)
			p.SetFlatKernel(cfg.flat)
			defer p.SetFlatKernel(true)
			es := core.NewEnergyState(p)
			n := len(p.In.Chargers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch := i % n
				es.Marginal(ch, i%p.K, i%len(p.Gamma[ch]))
			}
		})
	}
}

func BenchmarkTabularGreedyC1(b *testing.B) {
	p := paperScaleProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TabularGreedy(p, core.DefaultOptions(1))
	}
}

func BenchmarkTabularGreedyC4(b *testing.B) {
	p := paperScaleProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TabularGreedy(p, core.Options{Colors: 4, PreferStay: true})
	}
}

// BenchmarkTabularGreedyWorkers sweeps the worker pool bound at the
// Fig. 7 configuration (C = 4, §7.1 defaults) and at C = 1. Every worker
// count produces a bit-identical schedule (internal/difftest enforces it);
// this bench records what the fan-out buys in wall-clock time.
// BENCH_core.json keeps the measured speedup table.
func BenchmarkTabularGreedyWorkers(b *testing.B) {
	p := paperScaleProblem(b)
	for _, cfg := range []struct {
		name    string
		colors  int
		workers int
	}{
		{"C4/W1", 4, 1}, {"C4/W2", 4, 2}, {"C4/W4", 4, 4}, {"C4/W8", 4, 8},
		{"C1/W1", 1, 1}, {"C1/W4", 1, 4},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.TabularGreedy(p, core.Options{
					Colors: cfg.colors, PreferStay: true, Workers: cfg.workers,
				})
			}
		})
	}
}

// BenchmarkTabularGreedyKernel compares the compiled flat kernel against
// the generic interface-dispatch fallback on the full Fig. 7 greedy run
// (C = 4, §7.1 defaults) — the end-to-end view of what the kernel buys.
// The stats sub-bench runs the flat kernel with Options.KernelStats and
// reports the saturation-pruning skip ratio as a custom metric
// (skipped evaluations / offered evaluations; see core.KernelStats).
func BenchmarkTabularGreedyKernel(b *testing.B) {
	p := paperScaleProblem(b)
	for _, cfg := range []struct {
		name  string
		flat  bool
		stats bool
	}{{"flat", true, false}, {"generic", false, false}, {"stats", true, true}} {
		b.Run(cfg.name, func(b *testing.B) {
			p.SetFlatKernel(cfg.flat)
			defer p.SetFlatKernel(true)
			b.ReportAllocs()
			var last core.KernelStats
			for i := 0; i < b.N; i++ {
				res := core.TabularGreedy(p, core.Options{
					Colors: 4, PreferStay: true, Workers: 1, KernelStats: cfg.stats,
				})
				last = res.Kernel
			}
			if cfg.stats && last.Offered > 0 {
				b.ReportMetric(float64(last.Skipped())/float64(last.Offered), "skipped/offered")
			}
		})
	}
}

// BenchmarkTabularGreedyLazy compares the eager full policy scan against
// the lazy stale-bound selector (Options.Lazy) — the TabularGreedy-side
// counterpart of BenchmarkAblationLazy. Both produce identical schedules;
// the lazy path just skips the marginal evaluations that cannot win.
func BenchmarkTabularGreedyLazy(b *testing.B) {
	p := paperScaleProblem(b)
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"C1/eager", core.Options{Colors: 1, PreferStay: true, Workers: 1}},
		{"C1/lazy", core.Options{Colors: 1, PreferStay: true, Workers: 1, Lazy: true}},
		{"C4/eager", core.Options{Colors: 4, PreferStay: true, Workers: 1}},
		{"C4/lazy", core.Options{Colors: 4, PreferStay: true, Workers: 1, Lazy: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TabularGreedy(p, cfg.opt)
			}
		})
	}
}

func BenchmarkSimExecute(b *testing.B) {
	p := paperScaleProblem(b)
	res := core.TabularGreedy(p, core.DefaultOptions(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Execute(p, res.Schedule)
	}
}

func BenchmarkOnlineRun(b *testing.B) {
	p := midScaleProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := online.Run(p, online.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptSolveSmallScale(b *testing.B) {
	cfg := haste.SmallScaleWorkload()
	in := cfg.Generate(rand.New(rand.NewSource(3)))
	p, err := core.NewProblem(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Solve(p, opt.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- beyond-paper scale (shard-and-stitch) ---------------------------------

// BenchmarkFleetScaleSharded runs TabularGreedy C=1 on the clustered
// 10⁴-task fleet (50× the paper's largest workload; 250 clusters, 1250
// chargers), monolithic vs shard-and-stitch. Every row produces exactly
// the same utility (internal/difftest's sharded sweep proves the general
// contract; TestFleetScaleShardedEquivalence pins this instance). On a
// single-vCPU box the sharded workers cannot run concurrently, so the
// W4 row measures dispatch overhead only; the interesting single-core
// number is sharded/W1 vs mono/W1 — smaller per-component tables. The
// first sharded run also compiles the 256 component sub-Problems; the
// compile sub-bench isolates that one-time cost.
func BenchmarkFleetScaleSharded(b *testing.B) {
	in := workload.FleetScale(10_000).Generate(rand.New(rand.NewSource(1)))
	b.Run("compile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewProblem(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	p, err := core.NewProblem(in)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"mono/W1", core.Options{Colors: 1, PreferStay: true, Workers: 1, Shard: core.ShardOff}},
		{"sharded/W1", core.Options{Colors: 1, PreferStay: true, Workers: 1, Shard: core.ShardOn}},
		{"sharded/W4", core.Options{Colors: 1, PreferStay: true, Workers: 4, Shard: core.ShardOn}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var res core.Result
			for i := 0; i < b.N; i++ {
				res = core.TabularGreedy(p, cfg.opt)
			}
			if res.Shards > 0 {
				b.ReportMetric(float64(res.Shards), "components")
			}
		})
	}
	// The instance-direct path: decompose the raw instance and compile
	// every component transiently inside the run — the 10⁶-task route,
	// here measured at 10⁴ for comparability with the rows above (it
	// includes per-component compilation, which the parent-Problem rows
	// amortize away after their first iteration).
	b.Run("stream/W1", func(b *testing.B) {
		b.ReportAllocs()
		var res core.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = core.ScheduleSharded(in, core.Options{Colors: 1, PreferStay: true, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Shards), "components")
	})
}

// --- ablations (DESIGN.md §7) ----------------------------------------------

// BenchmarkAblationColors measures the cost of the TabularGreedy control
// parameter C (quality numbers are in EXPERIMENTS.md; here: time/allocs).
func BenchmarkAblationColors(b *testing.B) {
	p := midScaleProblem(b)
	for _, c := range []struct {
		name   string
		colors int
	}{{"C1", 1}, {"C2", 2}, {"C4", 4}, {"C8", 8}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TabularGreedy(p, core.Options{Colors: c.colors, PreferStay: true})
			}
		})
	}
}

// BenchmarkAblationLazy compares the lazy (priority-queue) and eager
// (quadratic rescan) global greedy implementations, which produce
// identical schedules.
func BenchmarkAblationLazy(b *testing.B) {
	p := midScaleProblem(b)
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.GlobalGreedy(p, true)
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.GlobalGreedy(p, false)
		}
	})
}

// BenchmarkAblationAnisotropic measures the cost of the anisotropic
// receiving-gain extension (the paper's cited future-work model).
func BenchmarkAblationAnisotropic(b *testing.B) {
	for _, aniso := range []bool{false, true} {
		name := "isotropic"
		if aniso {
			name = "anisotropic"
		}
		b.Run(name, func(b *testing.B) {
			cfg := workload.Default()
			cfg.NumChargers, cfg.NumTasks = 12, 40
			cfg.Params.AnisotropicGain = aniso
			in := cfg.Generate(rand.New(rand.NewSource(4)))
			p, err := core.NewProblem(in)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.TabularGreedy(p, core.DefaultOptions(1))
			}
		})
	}
}

// BenchmarkAblationEMR measures the cost of the EMR-safety extension:
// unconstrained locally greedy vs the EMR-constrained greedy at loose and
// tight thresholds over a 2.5 m monitoring grid.
func BenchmarkAblationEMR(b *testing.B) {
	cfg := workload.Default()
	cfg.NumChargers, cfg.NumTasks = 12, 40
	cfg.FieldSide = 30
	in := cfg.Generate(rand.New(rand.NewSource(6)))
	p, err := core.NewProblem(in)
	if err != nil {
		b.Fatal(err)
	}
	grid := emr.Grid(30, 2.5)
	b.Run("unconstrained", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.TabularGreedy(p, core.DefaultOptions(1))
		}
	})
	for _, limit := range []float64{50, 10} {
		f := emr.Field{Points: grid, Gamma: 1, Limit: limit}
		b.Run(fmt.Sprintf("limit%.0f", limit), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				emr.ConstrainedGreedy(p, f)
			}
		})
	}
}

// BenchmarkAblationDominantPerSlot compares one global dominant-set
// extraction (the paper's Γ_{i,k} = Γ_i choice) against re-extracting over
// only the tasks active in each slot.
func BenchmarkAblationDominantPerSlot(b *testing.B) {
	in := workload.Default().Generate(rand.New(rand.NewSource(5)))
	p, err := core.NewProblem(in)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("global", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dominant.ExtractAll(in)
		}
	})
	b.Run("per-slot", func(b *testing.B) {
		// Active task lists per slot, shared across chargers.
		active := make([][]int, p.K)
		for k := 0; k < p.K; k++ {
			for _, t := range in.Tasks {
				if t.ActiveAt(k) {
					active[k] = append(active[k], t.ID)
				}
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for ch := range in.Chargers {
				for k := 0; k < p.K; k++ {
					dominant.ExtractSubset(in, ch, active[k])
				}
			}
		}
	})
}
