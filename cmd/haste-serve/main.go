// Command haste-serve runs the resident scheduling service: an HTTP JSON
// API that schedules HASTE instances with the offline TabularGreedy and
// caches compiled problems across requests (package serve).
//
// Usage:
//
//	haste-serve [--addr :8080] [--cache 64] [--concurrency N] [--queue 64]
//	            [--timeout 30s] [--drain-timeout 10s] [--core-workers 1]
//	            [--max-body 8388608] [--max-samples 1024] [--max-sessions 64]
//	            [--debug-addr host:port] [--log-level info] [--log-format text]
//
// Observability: --log-level/--log-format configure the structured access
// and session-lifecycle log on stderr (text or json; the level gates what
// slog emits). --debug-addr mounts net/http/pprof and /debug/vars on a
// separate listener so profiling never shares a port — or a load
// balancer — with the service traffic. /metrics speaks both JSON and the
// Prometheus text format (content negotiation), and any schedule or
// session request with "trace": true returns its per-phase breakdown.
//
// Endpoints: POST /v1/schedule, GET /healthz, GET /metrics, plus the
// incremental session API — POST /v1/session, GET/PATCH/DELETE
// /v1/session/{id}, GET /v1/session/{id}/subscribe (SSE) — which keeps a
// compiled problem resident per session and turns task churn into delta
// patches with warm-started re-solves. On SIGTERM or SIGINT the service
// drains gracefully: /healthz flips to 503, new schedule requests and
// session work are refused, in-flight requests run to completion and
// subscriber streams close (up to --drain-timeout), then the listener
// closes and the process exits 0.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"haste/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "haste-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("haste-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	cache := fs.Int("cache", 64, "compiled-problem cache size (instances)")
	concurrency := fs.Int("concurrency", 0, "worker slots (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "request queue depth beyond the worker slots")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request wall-clock timeout")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	coreWorkers := fs.Int("core-workers", 1, "core.Options.Workers per scheduling run")
	maxBody := fs.Int64("max-body", 8<<20, "request body limit, bytes")
	maxSamples := fs.Int("max-samples", 1024, "Monte-Carlo sample cap per request")
	maxSessions := fs.Int("max-sessions", 64, "concurrently open incremental sessions")
	debugAddr := fs.String("debug-addr", "", "separate listener for net/http/pprof and /debug/vars (off when empty)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log format on stderr: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	svc := serve.New(serve.Config{
		CacheSize:      *cache,
		MaxConcurrent:  *concurrency,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxSamples:     *maxSamples,
		MaxSessions:    *maxSessions,
		CoreWorkers:    *coreWorkers,
		Logger:         logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "haste-serve listening on %s\n", ln.Addr())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dbg := &http.Server{Handler: debugMux()}
		go func() { _ = dbg.Serve(dln) }()
		defer dbg.Close()
		fmt.Fprintf(out, "haste-serve debug listening on %s\n", dln.Addr())
	}

	httpSrv := &http.Server{Handler: svc}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}

	fmt.Fprintln(out, "haste-serve: draining")
	svc.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	m := svc.Metrics()
	fmt.Fprintf(out, "haste-serve: drained (%d requests, %d scheduled, cache %d hits / %d misses)\n",
		m.Requests, m.Scheduled, m.Cache.Hits, m.Cache.Misses)
	return nil
}

// buildLogger assembles the stderr slog logger from the CLI flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown --log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown --log-format %q (want text or json)", format)
	}
}

// debugMux mounts the pprof handlers and the expvar document the way
// net/http/pprof would on the default mux, but on a dedicated mux so the
// debug listener exposes nothing else.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
