package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"haste/internal/instio"
	"haste/internal/workload"
)

// buildBinary compiles haste-serve into the test's temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "haste-serve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestServeLifecycle runs the real binary end to end: start on an ephemeral
// port, read the listen line from stdout, schedule an instance twice (miss
// then byte-identical hit), then SIGTERM and assert a graceful drain with
// exit status 0.
func TestServeLifecycle(t *testing.T) {
	bin := buildBinary(t)
	cmd := exec.Command(bin, "--addr", "127.0.0.1:0", "--timeout", "30s", "--drain-timeout", "5s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no stdout line; stderr: %s", stderr.String())
	}
	line := sc.Text()
	const prefix = "haste-serve listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected first line %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, prefix)

	// Health first: the service must report ok before any scheduling, and
	// identify the build that is answering (debug.ReadBuildInfo is always
	// available in a go-build binary).
	res, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", res.StatusCode)
	}
	var health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		GoVersion     string  `json:"go_version"`
		Module        string  `json:"module"`
	}
	if err := json.Unmarshal(hraw, &health); err != nil {
		t.Fatalf("healthz: %v\n%s", err, hraw)
	}
	if health.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", health.Status)
	}
	if health.UptimeSeconds <= 0 {
		t.Fatalf("healthz uptime %v, want > 0", health.UptimeSeconds)
	}
	if !strings.HasPrefix(health.GoVersion, "go") {
		t.Fatalf("healthz go_version %q", health.GoVersion)
	}
	if health.Module != "haste" {
		t.Fatalf("healthz module %q, want haste", health.Module)
	}

	// Schedule the same instance twice: first compiles, second must be a
	// byte-identical cache hit.
	in := workload.SmallScale().Generate(rand.New(rand.NewSource(7)))
	var inst bytes.Buffer
	if err := instio.Save(&inst, in, ""); err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"instance":` + strings.TrimSpace(inst.String()) + `}`)
	wantCache := []string{"miss", "hit"}
	var firstHash string
	for i, want := range wantCache {
		res, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("schedule %d: status %d: %s", i, res.StatusCode, raw)
		}
		var resp struct {
			InstanceHash string  `json:"instance_hash"`
			Cache        string  `json:"cache"`
			Schedule     [][]int `json:"schedule"`
			RUtility     float64 `json:"r_utility"`
		}
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("schedule %d: bad JSON: %v\n%s", i, err, raw)
		}
		if resp.Cache != want {
			t.Fatalf("schedule %d: cache = %q, want %q", i, resp.Cache, want)
		}
		if len(resp.Schedule) != len(in.Chargers) {
			t.Fatalf("schedule %d: %d rows, want %d", i, len(resp.Schedule), len(in.Chargers))
		}
		if i == 0 {
			firstHash = resp.InstanceHash
		} else if resp.InstanceHash != firstHash {
			t.Fatalf("hash changed between identical requests: %q vs %q", resp.InstanceHash, firstHash)
		}
	}

	// Metrics must reflect the requests handled so far (healthz is not a
	// schedule request; both schedules resolved a cache outcome).
	res, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	var metrics struct {
		Scheduled int64 `json:"scheduled_total"`
		Cache     struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(mraw, &metrics); err != nil {
		t.Fatalf("metrics: %v\n%s", err, mraw)
	}
	if metrics.Scheduled != 2 || metrics.Cache.Hits != 1 || metrics.Cache.Misses != 1 {
		t.Fatalf("metrics scheduled=%d hits=%d misses=%d, want 2/1/1",
			metrics.Scheduled, metrics.Cache.Hits, metrics.Cache.Misses)
	}

	// Graceful drain: SIGTERM, then the remaining stdout must announce the
	// drain and the summary line, and the process must exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var rest []string
	for sc.Scan() {
		rest = append(rest, sc.Text())
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit: %v; stderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("process did not exit after SIGTERM")
	}
	out := strings.Join(rest, "\n")
	if !strings.Contains(out, "haste-serve: draining") {
		t.Fatalf("missing drain announcement in %q", out)
	}
	// 4 requests total: healthz, two schedules, the metrics read.
	if !strings.Contains(out, "drained (4 requests, 2 scheduled, cache 1 hits / 1 misses)") {
		t.Fatalf("unexpected drain summary in %q", out)
	}
}

// TestDebugAndLogging starts the binary with the debug listener and the
// JSON access log: pprof and expvar answer on the separate port, a traced
// schedule request returns its phase breakdown with the X-Trace-Id header,
// and the access log on stderr carries the same trace id.
func TestDebugAndLogging(t *testing.T) {
	bin := buildBinary(t)
	cmd := exec.Command(bin, "--addr", "127.0.0.1:0", "--debug-addr", "127.0.0.1:0",
		"--log-format", "json", "--log-level", "info", "--drain-timeout", "5s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	readAddr := func(prefix string) string {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stdout ended early; stderr: %s", stderr.String())
		}
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected line %q, want prefix %q", line, prefix)
		}
		return "http://" + strings.TrimPrefix(line, prefix)
	}
	base := readAddr("haste-serve listening on ")
	debug := readAddr("haste-serve debug listening on ")

	// The debug listener serves the pprof index and the expvar document —
	// and only those: service routes must not leak onto it.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/vars"} {
		res, err := http.Get(debug + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, res.StatusCode, raw)
		}
		if path == "/debug/vars" {
			var vars map[string]json.RawMessage
			if err := json.Unmarshal(raw, &vars); err != nil {
				t.Fatalf("/debug/vars not JSON: %v", err)
			}
			if _, ok := vars["memstats"]; !ok {
				t.Fatalf("/debug/vars lacks memstats: %s", raw)
			}
		}
	}
	if res, err := http.Get(debug + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("service route on the debug listener: status %d", res.StatusCode)
		}
	}

	// A traced schedule request: phase breakdown in the body, trace id
	// matching the X-Trace-Id header.
	in := workload.SmallScale().Generate(rand.New(rand.NewSource(9)))
	var inst bytes.Buffer
	if err := instio.Save(&inst, in, ""); err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"instance":` + strings.TrimSpace(inst.String()) + `,"trace":true}`)
	res, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("schedule status %d: %s", res.StatusCode, raw)
	}
	var resp struct {
		TraceID string `json:"trace_id"`
		Trace   []struct {
			Name string `json:"name"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("schedule response: %v\n%s", err, raw)
	}
	if resp.TraceID == "" || resp.TraceID != res.Header.Get("X-Trace-Id") {
		t.Fatalf("trace id %q vs header %q", resp.TraceID, res.Header.Get("X-Trace-Id"))
	}
	names := make(map[string]bool)
	for _, n := range resp.Trace {
		names[n.Name] = true
	}
	for _, phase := range []string{"decode", "acquire_slot", "resolve_problem", "solve"} {
		if !names[phase] {
			t.Fatalf("trace missing %s root: %s", phase, raw)
		}
	}

	// The Prometheus scrape works over the real wire too.
	res, err = http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	praw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(praw), "# TYPE haste_request_duration_seconds histogram") {
		t.Fatalf("prometheus scrape lacks the latency histogram:\n%s", praw)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit: %v; stderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("process did not exit after SIGTERM")
	}

	// The JSON access log must carry the schedule request with its trace id.
	var logged bool
	for _, line := range strings.Split(stderr.String(), "\n") {
		if line == "" {
			continue
		}
		var entry struct {
			Msg     string `json:"msg"`
			Path    string `json:"path"`
			TraceID string `json:"trace_id"`
			Status  int    `json:"status"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if entry.Msg == "request" && entry.Path == "/v1/schedule" {
			if entry.TraceID != resp.TraceID || entry.Status != http.StatusOK {
				t.Fatalf("access log entry %+v, want trace id %q status 200", entry, resp.TraceID)
			}
			logged = true
		}
	}
	if !logged {
		t.Fatalf("no access-log line for the schedule request; stderr: %s", stderr.String())
	}
}

// TestBadFlag asserts flag errors are reported, not swallowed.
func TestBadFlag(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "--no-such-flag").CombinedOutput()
	if err == nil {
		t.Fatalf("expected failure, got: %s", out)
	}
	if !strings.Contains(string(out), "flag provided but not defined") {
		t.Fatalf("unexpected error output: %s", out)
	}
}

// TestAddrInUse asserts a bind failure exits non-zero with the error on
// stderr rather than hanging.
func TestAddrInUse(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "--addr", "256.256.256.256:1").CombinedOutput()
	if err == nil {
		t.Fatalf("expected bind failure, got: %s", out)
	}
	if !strings.Contains(string(out), "haste-serve:") {
		t.Fatalf("unexpected error output: %s", out)
	}
}
