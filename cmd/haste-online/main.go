// Command haste-online demonstrates the distributed online scheduler on a
// randomly generated arrival trace: it prints each arrival batch with the
// negotiation it triggered (control messages, rounds), then the executed
// orientation timeline of a few chargers and the final per-task utilities.
//
// Usage:
//
//	haste-online [--chargers N] [--tasks M] [--seed S] [--colors C] [--field F]
//	             [--transport mem|tcp] [--drop P] [--dup P] [--delay P] [--crash P]
//	             [--reliable] [--parallel]
//
// The --drop/--dup/--delay/--crash flags inject seeded network failures
// into the negotiation (see package netsim for the failure model);
// --reliable turns on the commit-reliability layer. When any failure
// mode is active the demo also prints the degradation accounting.
// --transport tcp carries every negotiation over loopback TCP sockets
// (one connection per charger, package transport) instead of the
// in-memory engine; the schedule and every counter are bit-identical —
// the cross-driver equivalence contract — only wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"haste/internal/core"
	"haste/internal/geom"
	"haste/internal/netsim"
	"haste/internal/online"
	"haste/internal/report"
	"haste/internal/transport"
	"haste/internal/viz"
	"haste/internal/workload"
)

func main() {
	chargers := flag.Int("chargers", 12, "number of chargers")
	tasks := flag.Int("tasks", 40, "number of charging tasks")
	field := flag.Float64("field", 30, "square field side, meters")
	seed := flag.Int64("seed", 1, "RNG seed")
	colors := flag.Int("colors", 1, "TabularGreedy color count C")
	showMap := flag.Bool("map", false, "render an ASCII field map with the final orientations")
	drop := flag.Float64("drop", 0, "per-delivery message drop probability")
	dup := flag.Float64("dup", 0, "per-delivery message duplication probability")
	delay := flag.Float64("delay", 0, "per-delivery bounded-delay probability")
	crash := flag.Float64("crash", 0, "per-node per-round crash probability")
	reliable := flag.Bool("reliable", false, "enable the commit-reliability layer (acked, retransmitted UPDs)")
	parallel := flag.Bool("parallel", false, "run negotiation rounds with one goroutine per charger")
	transportName := flag.String("transport", "mem",
		"negotiation substrate: mem (in-memory netsim) or tcp (loopback sockets, one TCP connection per charger)")
	flag.Parse()

	var driver netsim.Factory
	switch *transportName {
	case "mem":
	case "tcp":
		driver = transport.Factory
	default:
		fmt.Fprintf(os.Stderr, "haste-online: unknown --transport %q (mem, tcp)\n", *transportName)
		os.Exit(2)
	}

	cfg := workload.Default()
	cfg.NumChargers = *chargers
	cfg.NumTasks = *tasks
	cfg.FieldSide = *field
	cfg.DurationMin, cfg.DurationMax = 6, 30
	cfg.ReleaseMax = 20
	cfg.EnergyMin, cfg.EnergyMax = 2e3, 8e3

	in := cfg.Generate(rand.New(rand.NewSource(*seed)))
	p, err := core.NewProblem(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "haste-online:", err)
		os.Exit(1)
	}

	fmt.Printf("online HASTE demo: %d chargers, %d tasks, %d time slots, τ=%d, ρ=%.3f, C=%d, transport=%s\n\n",
		*chargers, *tasks, p.K, in.Params.Tau, in.Params.Rho, *colors, *transportName)

	opt := online.Options{
		Colors:    *colors,
		Seed:      *seed,
		Parallel:  *parallel,
		DropRate:  *drop,
		DupRate:   *dup,
		DelayRate: *delay,
		CrashRate: *crash,
		Reliable:  *reliable,
		Driver:    driver,
	}
	res, err := online.Run(p, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "haste-online:", err)
		os.Exit(1)
	}

	fmt.Println("arrival-triggered negotiations:")
	for _, n := range res.Stats.Negotiations {
		fmt.Printf("  slot %3d: %2d new task(s) → %3d sessions, %5d messages, %4d rounds\n",
			n.Slot, n.NewTasks, n.Sessions, n.Messages, n.Rounds)
	}
	fmt.Printf("total: %d messages, %d rounds, %d dropped\n",
		res.Stats.TotalMessages(), res.Stats.TotalRounds(), res.Stats.Net.Dropped)
	if *drop > 0 || *dup > 0 || *delay > 0 || *crash > 0 || *reliable {
		net := res.Stats.Net
		fmt.Printf("failure injection: %d attempted, %d dropped, %d duplicated, %d delayed, %d crashes, %d crash-lost, %d expired\n",
			net.Attempted, net.Dropped, net.Duplicated, net.Delayed, net.Crashes, net.CrashLost, net.Expired)
		fmt.Printf("degradation: %d non-quiescent sessions, %d unacked commits, %d retransmits\n",
			res.Stats.NonQuiescentSessions, res.Stats.UnackedCommits, res.Stats.Retransmits)
	}
	fmt.Println()

	fmt.Println("orientation timeline (first 4 chargers, '·' = unoriented):")
	show := 4
	if show > len(res.Orientations) {
		show = len(res.Orientations)
	}
	for i := 0; i < show; i++ {
		fmt.Printf("  charger %2d: ", i)
		for k := 0; k < p.K && k < 48; k++ {
			if math.IsNaN(res.Orientations[i][k]) {
				fmt.Print("  · ")
			} else {
				fmt.Printf("%3.0f°", geom.ToDeg(res.Orientations[i][k]))
			}
		}
		fmt.Println()
	}
	fmt.Println()

	tbl := report.NewTable("per-task outcome", "task", "E_required_J", "E_harvested_J", "utility")
	for j, t := range in.Tasks {
		if j >= 15 {
			tbl.AddRow("…", "", "", "")
			break
		}
		tbl.AddRow(j, t.Energy, res.Outcome.Energy[j], res.Outcome.PerTask[j])
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "haste-online:", err)
		os.Exit(1)
	}
	fmt.Printf("\noverall charging utility: %.4f (of %.4f max), %d orientation switches\n",
		res.Outcome.Utility, in.TotalWeight(), res.Outcome.Switches)

	if *showMap {
		// Resolve each charger's last effective orientation for the map.
		final := make([]float64, len(in.Chargers))
		for i := range final {
			final[i] = math.NaN()
			for k := 0; k < p.K; k++ {
				if !math.IsNaN(res.Orientations[i][k]) {
					final[i] = res.Orientations[i][k]
				}
			}
		}
		fmt.Println("\nfield map (final orientations):")
		if err := viz.FieldMap(os.Stdout, in, final, 72); err != nil {
			fmt.Fprintln(os.Stderr, "haste-online:", err)
			os.Exit(1)
		}
	}
}
