package main

import (
	"os/exec"
	"strings"
	"testing"
)

func TestDemoRuns(t *testing.T) {
	cmd := exec.Command("go", "run", ".", "--chargers", "6", "--tasks", "15", "--seed", "2")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("demo failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"online HASTE demo",
		"arrival-triggered negotiations",
		"orientation timeline",
		"overall charging utility",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestDemoTCPTransport runs the demo over loopback sockets and asserts
// the user-visible equivalence contract end to end: apart from the header
// naming the substrate, the --transport=tcp output (negotiations,
// timeline, per-task utilities) is byte-identical to --transport=mem.
func TestDemoTCPTransport(t *testing.T) {
	args := []string{"run", ".", "--chargers", "6", "--tasks", "15", "--seed", "2"}
	mem, err := exec.Command("go", append(args, "--transport", "mem")...).CombinedOutput()
	if err != nil {
		t.Fatalf("mem demo failed: %v\n%s", err, mem)
	}
	tcp, err := exec.Command("go", append(args, "--transport", "tcp")...).CombinedOutput()
	if err != nil {
		t.Fatalf("tcp demo failed: %v\n%s", err, tcp)
	}
	if !strings.Contains(string(tcp), "transport=tcp") {
		t.Errorf("tcp output does not name its substrate:\n%s", tcp)
	}
	normalize := func(out []byte) string {
		lines := strings.SplitN(string(out), "\n", 2)
		if len(lines) < 2 {
			return ""
		}
		return lines[1] // drop the header line, which names the transport
	}
	if normalize(mem) != normalize(tcp) {
		t.Errorf("tcp output diverges from mem:\n--- mem ---\n%s\n--- tcp ---\n%s", mem, tcp)
	}
}

func TestDemoRejectsUnknownTransport(t *testing.T) {
	out, err := exec.Command("go", "run", ".", "--chargers", "4", "--tasks", "6", "--transport", "carrier-pigeon").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown transport accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown --transport") {
		t.Errorf("missing diagnostic:\n%s", out)
	}
}

func TestDemoChaosFlags(t *testing.T) {
	cmd := exec.Command("go", "run", ".",
		"--chargers", "6", "--tasks", "15", "--seed", "2",
		"--drop", "0.1", "--dup", "0.05", "--delay", "0.1", "--crash", "0.01",
		"--reliable", "--parallel")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("chaos demo failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"failure injection:",
		"degradation:",
		"overall charging utility",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}
