package main

import (
	"os/exec"
	"strings"
	"testing"
)

func TestDemoRuns(t *testing.T) {
	cmd := exec.Command("go", "run", ".", "--chargers", "6", "--tasks", "15", "--seed", "2")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("demo failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"online HASTE demo",
		"arrival-triggered negotiations",
		"orientation timeline",
		"overall charging utility",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestDemoChaosFlags(t *testing.T) {
	cmd := exec.Command("go", "run", ".",
		"--chargers", "6", "--tasks", "15", "--seed", "2",
		"--drop", "0.1", "--dup", "0.05", "--delay", "0.1", "--crash", "0.01",
		"--reliable", "--parallel")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("chaos demo failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"failure injection:",
		"degradation:",
		"overall charging utility",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}
