package main

import (
	"os/exec"
	"strings"
	"testing"
)

func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestTopology1Both(t *testing.T) {
	out, err := run(t, "--topology", "1", "--mode", "both")
	if err != nil {
		t.Fatalf("failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "(offline)") || !strings.Contains(out, "(online)") {
		t.Errorf("missing modes:\n%s", out)
	}
	if strings.Count(out, "TOTAL") != 2 {
		t.Errorf("expected two TOTAL rows:\n%s", out)
	}
}

func TestTopology2CSV(t *testing.T) {
	out, err := run(t, "--topology", "2", "--mode", "offline", "--csv")
	if err != nil {
		t.Fatalf("failed: %v\n%s", err, out)
	}
	if !strings.HasPrefix(out, "task,HASTE_C4,") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "task 20") {
		t.Errorf("expected 20 tasks:\n%s", out)
	}
}

func TestBadFlags(t *testing.T) {
	if out, err := run(t, "--topology", "3"); err == nil {
		t.Errorf("topology 3 accepted:\n%s", out)
	}
	if out, err := run(t, "--mode", "sideways"); err == nil {
		t.Errorf("bogus mode accepted:\n%s", out)
	}
}
