// Command haste-testbed replays the paper's field experiments (§8) on the
// software model of the Powercast testbed and prints the per-task charging
// utilities of HASTE (C = 4), GreedyUtility and GreedyCover — the content
// of Figs. 21/22 (Topology 1) and 24/25 (Topology 2).
//
// Usage:
//
//	haste-testbed [--topology 1|2] [--mode offline|online|both] [--seed S] [--csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"haste/internal/model"
	"haste/internal/report"
	"haste/internal/testbed"
)

func main() {
	topology := flag.Int("topology", 1, "testbed topology: 1 (8 chargers / 8 tasks) or 2 (16 / 20)")
	mode := flag.String("mode", "both", "scheduling scenario: offline, online, or both")
	seed := flag.Int64("seed", 1, "RNG seed for color sampling")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	var in *model.Instance
	switch *topology {
	case 1:
		in = testbed.Topology1()
	case 2:
		in = testbed.Topology2()
	default:
		fmt.Fprintln(os.Stderr, "haste-testbed: --topology must be 1 or 2")
		os.Exit(2)
	}

	var modes []testbed.Mode
	switch *mode {
	case "offline":
		modes = []testbed.Mode{testbed.Offline}
	case "online":
		modes = []testbed.Mode{testbed.Online}
	case "both":
		modes = []testbed.Mode{testbed.Offline, testbed.Online}
	default:
		fmt.Fprintln(os.Stderr, "haste-testbed: --mode must be offline, online or both")
		os.Exit(2)
	}

	for _, m := range modes {
		c, err := testbed.Compare(in, m, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "haste-testbed:", err)
			os.Exit(1)
		}
		tbl := report.NewTable(
			fmt.Sprintf("Testbed topology %d — per-task charging utility (%s)", *topology, m),
			"task", "HASTE_C4", "GreedyUtility", "GreedyCover")
		for j := range c.HASTE {
			tbl.AddRow(fmt.Sprintf("task %d", j+1), c.HASTE[j], c.GreedyUtility[j], c.GreedyCover[j])
		}
		tbl.AddRow("TOTAL", c.HASTETotal, c.UtilityTotal, c.CoverTotal)
		var err2 error
		if *csv {
			err2 = tbl.WriteCSV(os.Stdout)
		} else {
			err2 = tbl.WriteText(os.Stdout)
			fmt.Println()
		}
		if err2 != nil {
			fmt.Fprintln(os.Stderr, "haste-testbed:", err2)
			os.Exit(1)
		}
	}
}
