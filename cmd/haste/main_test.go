package main

import (
	"os/exec"
	"strings"
	"testing"
)

// run executes this command with the given arguments via `go run .`.
func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestListCommand(t *testing.T) {
	out, err := run(t, "list")
	if err != nil {
		t.Fatalf("list failed: %v\n%s", err, out)
	}
	for _, id := range []string{"fig4", "fig16", "fig25"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	out, err := run(t, "run", "--fig", "fig21", "--quick", "--reps", "1")
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "Fig. 21") || !strings.Contains(out, "TOTAL") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

// TestRunTransportTCPMatchesMem regenerates an online figure over the
// loopback TCP substrate and asserts the output is byte-identical to the
// in-memory run — the cross-driver equivalence contract surfaced at the
// figure level (only fig16's quick grid, to keep the socket run fast).
func TestRunTransportTCPMatchesMem(t *testing.T) {
	mem, err := run(t, "run", "--fig", "fig16", "--quick", "--reps", "1", "--csv")
	if err != nil {
		t.Fatalf("mem run failed: %v\n%s", err, mem)
	}
	tcp, err := run(t, "run", "--fig", "fig16", "--quick", "--reps", "1", "--csv", "--transport", "tcp")
	if err != nil {
		t.Fatalf("tcp run failed: %v\n%s", err, tcp)
	}
	if mem != tcp {
		t.Errorf("figure diverges across transports:\n--- mem ---\n%s\n--- tcp ---\n%s", mem, tcp)
	}
	if out, err := run(t, "run", "--fig", "fig16", "--transport", "smoke-signal"); err == nil {
		t.Errorf("unknown transport accepted:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	out, err := run(t, "run", "--fig", "fig21", "--quick", "--reps", "1", "--csv")
	if err != nil {
		t.Fatalf("run --csv failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "task,HASTE_C4,GreedyUtility,GreedyCover") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Errorf("CSV output contains table banner:\n%s", out)
	}
}

func TestRunMarkdownToDir(t *testing.T) {
	dir := t.TempDir()
	out, err := run(t, "run", "--fig", "fig21", "--quick", "--reps", "1",
		"--format", "markdown", "--out", dir)
	if err != nil {
		t.Fatalf("run --format markdown failed: %v\n%s", err, out)
	}
	data, err := exec.Command("cat", dir+"/fig21.md").CombinedOutput()
	if err != nil {
		t.Fatalf("output file missing: %v", err)
	}
	if !strings.Contains(string(data), "| task | HASTE_C4 |") {
		t.Errorf("markdown table missing:\n%s", data)
	}
}

func TestRunBadFormat(t *testing.T) {
	out, err := run(t, "run", "--fig", "fig21", "--format", "yaml")
	if err == nil {
		t.Fatalf("bad format accepted:\n%s", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	out, err := run(t, "run", "--fig", "fig99")
	if err == nil {
		t.Fatalf("unknown figure accepted:\n%s", out)
	}
	if !strings.Contains(out, "unknown experiment") {
		t.Errorf("unhelpful error:\n%s", out)
	}
}

func TestRunWithoutSelection(t *testing.T) {
	out, err := run(t, "run")
	if err == nil {
		t.Fatalf("run without --fig/--all accepted:\n%s", out)
	}
	if !strings.Contains(out, "--fig") {
		t.Errorf("unhelpful error:\n%s", out)
	}
}

func TestGenAndEvalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/inst.json"
	out, err := run(t, "gen", "--small", "--seed", "5", "--out", path)
	if err != nil {
		t.Fatalf("gen failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "wrote 5 chargers / 10 tasks") {
		t.Errorf("gen output: %s", out)
	}
	out, err = run(t, "eval", "--instance", path)
	if err != nil {
		t.Fatalf("eval failed: %v\n%s", err, out)
	}
	for _, want := range []string{"HASTE offline C=1", "HASTE online C=1", "GreedyCover"} {
		if !strings.Contains(out, want) {
			t.Errorf("eval output missing %q:\n%s", want, out)
		}
	}
}

func TestEvalRequiresInstance(t *testing.T) {
	out, err := run(t, "eval")
	if err == nil {
		t.Fatalf("eval without instance accepted:\n%s", out)
	}
	if !strings.Contains(out, "--instance") {
		t.Errorf("unhelpful error:\n%s", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	out, err := run(t, "frobnicate")
	if err == nil {
		t.Fatalf("unknown command accepted:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unhelpful error:\n%s", out)
	}
}
