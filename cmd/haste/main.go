// Command haste regenerates the paper's evaluation figures.
//
// Usage:
//
//	haste list
//	    Print the experiment index (figure IDs and titles).
//
//	haste run --fig fig4 [--reps N] [--seed S] [--samples N] [--workers N] [--csv] [--quick]
//	    Run one experiment and print its series as a table (or CSV).
//
//	haste run --all [flags]
//	    Run every experiment in order.
//
// The default repetition count (3 topologies per data point) keeps runs
// interactive; the paper averages 100 — pass --reps 100 to match. --quick
// shrinks the workloads for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"haste/internal/core"
	"haste/internal/experiments"
	"haste/internal/netsim"
	"haste/internal/obs"
	"haste/internal/report"
	"haste/internal/transport"
)

// parseTransport maps the --transport flag onto a netsim.Factory: the
// in-memory engine (nil, the default) or the loopback TCP driver. The
// figures are bit-identical either way — that is the cross-driver
// equivalence contract (difftest.DriverSweep) — only wall-clock changes.
func parseTransport(s string) (netsim.Factory, error) {
	switch s {
	case "", "mem":
		return nil, nil
	case "tcp":
		return transport.Factory, nil
	}
	return nil, fmt.Errorf("unknown --transport %q (mem, tcp)", s)
}

// parseShardMode maps the --shard flag onto core.ShardMode.
func parseShardMode(s string) (core.ShardMode, error) {
	switch s {
	case "", "auto":
		return core.ShardAuto, nil
	case "on":
		return core.ShardOn, nil
	case "off":
		return core.ShardOff, nil
	}
	return core.ShardAuto, fmt.Errorf("unknown --shard %q (auto, on, off)", s)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "haste:", err)
			os.Exit(1)
		}
	case "gen":
		if err := genCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "haste:", err)
			os.Exit(1)
		}
	case "eval":
		if err := evalCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "haste:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "haste: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	fig := fs.String("fig", "", "experiment ID to run (see `haste list`)")
	all := fs.Bool("all", false, "run every experiment")
	reps := fs.Int("reps", 0, "topologies per data point (default 3; paper uses 100)")
	seed := fs.Int64("seed", 1, "base RNG seed")
	samples := fs.Int("samples", 0, "Monte-Carlo color samples for C>1 (0 = default)")
	workers := fs.Int("workers", 0, "scheduler worker pool bound (0 = one per CPU, 1 = sequential; figures are identical either way)")
	shard := fs.String("shard", "auto", "shard-and-stitch mode: auto, on, or off (figures are identical either way)")
	transportName := fs.String("transport", "mem", "online negotiation substrate: mem or tcp (figures are identical either way)")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	format := fs.String("format", "", "output format: text (default), csv, or markdown")
	outDir := fs.String("out", "", "write each experiment to <dir>/<id>.<ext> instead of stdout")
	quick := fs.Bool("quick", false, "shrink workloads for a fast smoke run")
	summary := fs.Bool("summary", false, "append the paper-style headline claims under each table")
	trace := fs.Bool("trace", false, "record solve phase spans and print a per-phase summary on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("--cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("--cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "haste: --memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "haste: --memprofile:", err)
			}
		}()
	}
	shardMode, err := parseShardMode(*shard)
	if err != nil {
		return err
	}
	transportFactory, err := parseTransport(*transportName)
	if err != nil {
		return err
	}
	opts := experiments.Options{
		Reps: *reps, Seed: *seed, Samples: *samples, Quick: *quick,
		Workers: *workers, Shard: shardMode, Transport: transportFactory,
	}
	fmtName := *format
	if fmtName == "" {
		fmtName = "text"
		if *csv {
			fmtName = "csv"
		}
	}
	if fmtName != "text" && fmtName != "csv" && fmtName != "markdown" {
		return fmt.Errorf("unknown --format %q (text, csv, markdown)", fmtName)
	}

	var todo []experiments.Experiment
	if *all {
		todo = experiments.All()
	} else if *fig != "" {
		e, err := experiments.ByID(*fig)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	} else {
		return fmt.Errorf("pass --fig <id> or --all")
	}

	for _, e := range todo {
		start := time.Now()
		eopts := opts
		if *trace {
			// One trace per experiment so the aggregated summary reads
			// per-figure; the forest of every solve folds into phase paths.
			eopts.Trace = obs.New()
		}
		tbl, err := e.Run(eopts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if eopts.Trace != nil {
			fmt.Fprintf(os.Stderr, "trace summary (%s):\n", e.ID)
			obs.WriteSummary(os.Stderr, eopts.Trace.Tree())
		}
		w := io.Writer(os.Stdout)
		var f *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			ext := map[string]string{"text": "txt", "csv": "csv", "markdown": "md"}[fmtName]
			f, err = os.Create(filepath.Join(*outDir, e.ID+"."+ext))
			if err != nil {
				return err
			}
			w = f
		}
		if err := emit(w, tbl, fmtName); err != nil {
			return err
		}
		if *summary && fmtName != "csv" {
			for _, line := range experiments.Summarize(tbl) {
				fmt.Fprintln(w, "  »", line)
			}
		}
		if f != nil {
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("%s → %s (%v)\n", e.ID, f.Name(), time.Since(start).Round(time.Millisecond))
		} else if fmtName == "text" {
			fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

func emit(w io.Writer, tbl *report.Table, format string) error {
	switch format {
	case "csv":
		return tbl.WriteCSV(w)
	case "markdown":
		return tbl.WriteMarkdown(w)
	default:
		return tbl.WriteText(w)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `haste — reproduce the HASTE paper's evaluation figures

commands:
  haste list                      print the experiment index
  haste run --fig fig4 [flags]    run one experiment
  haste run --all [flags]         run everything
  haste gen --out field.json      generate an instance file
  haste eval --instance f.json    run every scheduler on a saved instance

flags for run:
  --reps N        topologies per data point (default 3, paper: 100)
  --seed S        base RNG seed (default 1)
  --samples N     Monte-Carlo color samples for C>1 (0 = algorithm default)
  --workers N     scheduler worker pool bound (0 = one per CPU, 1 = sequential;
                  every value regenerates bit-identical figures)
  --shard M       shard-and-stitch mode: auto (default), on, or off
                  (every mode regenerates bit-identical figures)
  --transport T   online negotiation substrate: mem (default) or tcp —
                  loopback sockets, one TCP connection per charger
                  (every substrate regenerates bit-identical figures)
  --format F      text (default), csv, or markdown
  --out DIR       write each experiment to DIR/<id>.<ext>
  --summary       append the paper-style headline claims
  --csv           shorthand for --format csv
  --quick         shrink workloads for a fast smoke run
  --trace         print a per-phase timing summary on stderr (also on eval,
                  where it prints the full phase tree of each solve)
  --cpuprofile F  write a pprof CPU profile of the run to F
  --memprofile F  write a pprof heap profile at exit to F
                  (inspect either with "go tool pprof F")`)
}
