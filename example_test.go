package haste_test

import (
	"fmt"
	"math"

	"haste"
)

// ExampleScheduleOffline schedules a single charger/device pair and
// prints the resulting utility. The device sits 10 m from the charger and
// needs exactly the energy two fully covered slots deliver.
func ExampleScheduleOffline() {
	in := &haste.Instance{
		Chargers: []haste.Charger{{ID: 0, Pos: haste.Point{X: 0, Y: 0}}},
		Tasks: []haste.Task{{
			ID:  0,
			Pos: haste.Point{X: 10, Y: 0}, Phi: math.Pi, // facing the charger
			Release: 0, End: 2, Energy: 480, Weight: 1,
		}},
		Params: haste.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: haste.Deg(60), ReceiveAngle: haste.Deg(60),
			SlotSeconds: 60, Rho: 0, Tau: 0,
		},
	}
	p, err := haste.NewProblem(in)
	if err != nil {
		panic(err)
	}
	res := haste.ScheduleOffline(p, haste.DefaultOptions(1))
	fmt.Printf("relaxed utility: %.2f\n", res.RUtility)
	fmt.Printf("physical utility: %.2f\n", haste.Simulate(p, res.Schedule).Utility)
	// Output:
	// relaxed utility: 1.00
	// physical utility: 1.00
}

// ExampleRunOnline shows the distributed online scheduler handling a task
// that arrives at slot 2: with rescheduling delay τ = 1 the charger can
// orient no earlier than slot 3.
func ExampleRunOnline() {
	in := &haste.Instance{
		Chargers: []haste.Charger{{ID: 0, Pos: haste.Point{X: 0, Y: 0}}},
		Tasks: []haste.Task{{
			ID:  0,
			Pos: haste.Point{X: 10, Y: 0}, Phi: math.Pi,
			Release: 2, End: 6, Energy: 480, Weight: 1,
		}},
		Params: haste.Params{
			Alpha: 10000, Beta: 40, Radius: 20,
			ChargeAngle: haste.Deg(60), ReceiveAngle: haste.Deg(60),
			SlotSeconds: 60, Rho: 0, Tau: 1,
		},
	}
	p, err := haste.NewProblem(in)
	if err != nil {
		panic(err)
	}
	res, err := haste.RunOnline(p, haste.OnlineOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("first command at slot 3: %v\n", !math.IsNaN(res.Orientations[0][3]))
	fmt.Printf("slots 0-2 uncommanded: %v\n",
		math.IsNaN(res.Orientations[0][0]) &&
			math.IsNaN(res.Orientations[0][1]) &&
			math.IsNaN(res.Orientations[0][2]))
	fmt.Printf("utility: %.2f\n", res.Outcome.Utility)
	// Output:
	// first command at slot 3: true
	// slots 0-2 uncommanded: true
	// utility: 1.00
}
